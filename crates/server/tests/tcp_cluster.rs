//! Full-stack TCP transport tests: the same client/protocol/cluster stack that runs over
//! in-process channels, now over real loopback sockets to `legostore-server` loops —
//! including deterministic fault injection at the TCP seam (the same `FaultPlan` type
//! that drives the in-process transport and the simulator).

use legostore_core::{Clock, Cluster, ClusterOptions};
use legostore_cloud::CloudModelBuilder;
use legostore_server::spawn_server_thread;
use legostore_types::{
    Configuration, DcId, FaultEvent, FaultKind, FaultPlan, Key, StoreError, Value,
};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

/// Stands up `n` TCP servers (threads with real listeners) and returns their addresses.
fn spawn_servers(n: u16) -> (HashMap<DcId, SocketAddr>, Vec<JoinHandle<std::io::Result<()>>>) {
    let mut addrs = HashMap::new();
    let mut handles = Vec::new();
    for id in 0..n {
        let (addr, handle) = spawn_server_thread(DcId(id)).expect("spawn server");
        addrs.insert(DcId(id), addr);
        handles.push(handle);
    }
    (addrs, handles)
}

fn tcp_options() -> ClusterOptions {
    ClusterOptions {
        // Modeled geo-latencies at 2% of real scale: the uniform model's 100 ms RTT
        // becomes 2 ms on top of the real loopback round trip.
        latency_scale: 0.02,
        op_timeout: Duration::from_millis(500),
        controller_dc: DcId(0),
        ..Default::default()
    }
}

/// PUT/GET/reconfigure over real sockets: ABD and CAS keys served by six TCP servers,
/// linearizable recorded history, clean shutdown of every server.
#[test]
fn tcp_cluster_serves_abd_and_cas_with_linearizable_history() {
    let (addrs, handles) = spawn_servers(6);
    let model = CloudModelBuilder::uniform(6).build();
    let cluster = Cluster::connect_tcp(model, tcp_options(), &addrs).expect("connect");

    let abd_key = Key::from("abd");
    let cas_key = Key::from("cas");
    let abd = Configuration::abd_majority(vec![DcId(0), DcId(1), DcId(2)], 1);
    let cas = Configuration::cas_default(
        vec![DcId(0), DcId(1), DcId(2), DcId(3), DcId(4)],
        3,
        1,
    );
    cluster.install_key(abd_key.clone(), abd, &Value::from("a0"));
    cluster.install_key(cas_key.clone(), cas, &Value::filler(700));

    let mut near = cluster.client(DcId(0));
    let mut far = cluster.client(DcId(5));
    assert_eq!(near.get(&abd_key).expect("abd get"), Value::from("a0"));
    near.put(&abd_key, Value::from("a1")).expect("abd put");
    assert_eq!(far.get(&abd_key).expect("abd get from afar"), Value::from("a1"));
    assert_eq!(far.get(&cas_key).expect("cas get"), Value::filler(700));
    far.put(&cas_key, Value::filler(350)).expect("cas put");
    assert_eq!(near.get(&cas_key).expect("cas get back"), Value::filler(350));

    // The reconfiguration controller drives Algorithm 1 over the same sockets.
    let new_config = Configuration::cas_default(
        vec![DcId(1), DcId(2), DcId(3), DcId(4)],
        2,
        1,
    );
    cluster.reconfigure(abd_key.clone(), new_config).expect("reconfigure over tcp");
    assert_eq!(
        cluster.metadata_config(&abd_key).unwrap().describe(),
        "CAS(4,2)"
    );
    assert_eq!(near.get(&abd_key).expect("get after reconfig"), Value::from("a1"));
    far.put(&abd_key, Value::from("a2")).expect("put after reconfig");
    assert_eq!(near.get(&abd_key).expect("final get"), Value::from("a2"));

    let failures = cluster.recorder().check_all();
    assert!(failures.is_empty(), "history not linearizable: {failures:?}");
    cluster.shutdown();
    for handle in handles {
        handle.join().expect("server thread").expect("server exits cleanly");
    }
}

/// A within-`f` fault plan applied at the TCP seam: DC 1 is crashed for a window and its
/// inbound link is lossy/duplicating even while alive, DC 2 is slowed. The quorum
/// `{0, 2}` stays clean throughout, so every operation must complete and the recorded
/// history must stay linearizable — the same guarantees the in-process transport gives
/// under this plan.
#[test]
fn fault_plan_over_sockets_stays_linearizable_within_f() {
    for seed in [11u64, 29] {
        let plan = FaultPlan {
            seed,
            events: vec![
                FaultEvent {
                    at_ms: 0.0,
                    kind: FaultKind::SlowDc { dc: DcId(2), extra_ms: 10.0 },
                },
                FaultEvent {
                    at_ms: 0.0,
                    kind: FaultKind::LinkFault {
                        from: DcId(0),
                        to: DcId(1),
                        drop_prob: 0.4,
                        dup_prob: 0.3,
                        extra_ms: 2.0,
                    },
                },
                FaultEvent { at_ms: 3_000.0, kind: FaultKind::CrashDc { dc: DcId(1) } },
                FaultEvent { at_ms: 6_000.0, kind: FaultKind::RestartDc { dc: DcId(1) } },
            ],
        };
        let (addrs, handles) = spawn_servers(3);
        let model = CloudModelBuilder::uniform(3).build();
        let options = ClusterOptions {
            fault_plan: plan,
            // Dropped preferred-quorum messages cost a full attempt timeout before the
            // widened re-send rides through quorum {0, 2}; keep the timeout small so the
            // ~40%-lossy link doesn't dominate test wall time.
            op_timeout: Duration::from_millis(100),
            ..tcp_options()
        };
        let cluster = Cluster::connect_tcp(model, options, &addrs).expect("connect");
        let key = Key::from("faulted");
        let config = Configuration::abd_majority(vec![DcId(0), DcId(1), DcId(2)], 1);
        cluster.install_key(key.clone(), config, &Value::from("v0"));

        let mut client = cluster.client(DcId(0));
        for i in 0..20u32 {
            if i % 3 == 0 {
                let value = Value::from(format!("v{i}").as_str());
                client.put(&key, value).unwrap_or_else(|e| panic!("seed {seed} put #{i}: {e}"));
            } else {
                client.get(&key).unwrap_or_else(|e| panic!("seed {seed} get #{i}: {e}"));
            }
        }
        let failures = cluster.recorder().check_all();
        assert!(failures.is_empty(), "seed {seed}: history not linearizable: {failures:?}");
        assert_eq!(cluster.recorder().len(key.as_str()), 20);
        cluster.shutdown();
        for handle in handles {
            handle.join().expect("server thread").expect("server exits cleanly");
        }
    }
}

/// Beyond-`f` at the TCP seam: two of three ABD hosts crashed from t = 0. Every attempt
/// times out and the client must give up with the typed terminal error — bounded time,
/// no hang, no panic — exactly as over the in-process transport.
#[test]
fn fault_plan_over_sockets_beyond_f_returns_quorum_unreachable() {
    let plan = FaultPlan {
        seed: 5,
        events: vec![
            FaultEvent { at_ms: 0.0, kind: FaultKind::CrashDc { dc: DcId(1) } },
            FaultEvent { at_ms: 0.0, kind: FaultKind::CrashDc { dc: DcId(2) } },
        ],
    };
    let (addrs, handles) = spawn_servers(3);
    let model = CloudModelBuilder::uniform(3).build();
    let options = ClusterOptions {
        fault_plan: plan,
        op_timeout: Duration::from_millis(150),
        max_attempts: 2,
        // A virtual clock is requested but sockets cannot support it; connect_tcp must
        // fall back to a real clock rather than deadlock the quiescence rule.
        clock: Clock::virtual_time(),
        ..tcp_options()
    };
    let cluster = Cluster::connect_tcp(model, options, &addrs).expect("connect");
    assert!(!cluster.options().clock.is_virtual());
    let key = Key::from("doomed");
    let config = Configuration::abd_majority(vec![DcId(0), DcId(1), DcId(2)], 1);
    cluster.install_key(key.clone(), config, &Value::from("v"));

    let mut client = cluster.client(DcId(0));
    let put = client.put(&key, Value::from("w"));
    let Err(StoreError::QuorumUnreachable { attempts, last }) = put else {
        panic!("expected QuorumUnreachable, got {put:?}");
    };
    assert_eq!(attempts, 2);
    assert!(
        matches!(*last, StoreError::QuorumTimeout { .. }),
        "wrapped error should be the stalled quorum: {last:?}"
    );
    // Failed operations are never recorded, so the history cannot be corrupted.
    assert!(cluster.recorder().check_all().is_empty());
    cluster.shutdown();
    for handle in handles {
        handle.join().expect("server thread").expect("server exits cleanly");
    }
}
