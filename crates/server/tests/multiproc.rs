//! Multi-process deployment: real `legostore-server` binaries as child OS processes,
//! a driver connecting over TCP, linearizable history, clean shutdown of every process.

use legostore_core::{Cluster, ClusterOptions};
use legostore_cloud::CloudModelBuilder;
use legostore_types::{Configuration, DcId, Key, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Launches one `legostore-server` process and parses its `READY <addr>` handshake.
fn launch(dc: DcId) -> (Child, SocketAddr) {
    let bin = env!("CARGO_BIN_EXE_legostore-server");
    let mut child = Command::new(bin)
        .args(["--dc", &dc.0.to_string(), "--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn legostore-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read READY line");
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("unexpected handshake line: {line:?}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

#[test]
fn three_server_processes_serve_a_linearizable_workload() {
    let mut children = Vec::new();
    let mut addrs = HashMap::new();
    for id in 0..3u16 {
        let (child, addr) = launch(DcId(id));
        children.push(child);
        addrs.insert(DcId(id), addr);
    }

    let model = CloudModelBuilder::uniform(3).build();
    let options = ClusterOptions {
        latency_scale: 0.02,
        op_timeout: Duration::from_millis(500),
        controller_dc: DcId(0),
        ..Default::default()
    };
    let cluster = Cluster::connect_tcp(model, options, &addrs).expect("connect");
    let key = Key::from("multiproc");
    let config = Configuration::abd_majority(vec![DcId(0), DcId(1), DcId(2)], 1);
    cluster.install_key(key.clone(), config, &Value::from("v0"));

    let mut a = cluster.client(DcId(0));
    let mut b = cluster.client(DcId(2));
    for i in 0..5u32 {
        a.put(&key, Value::from(format!("a{i}").as_str())).expect("put");
        assert_eq!(b.get(&key).expect("get"), Value::from(format!("a{i}").as_str()));
    }
    let failures = cluster.recorder().check_all();
    assert!(failures.is_empty(), "history not linearizable: {failures:?}");
    assert_eq!(cluster.recorder().len(key.as_str()), 10);

    // Shutdown frames terminate every server process with a success exit status.
    cluster.shutdown();
    for mut child in children {
        let status = child.wait().expect("wait for server process");
        assert!(status.success(), "server process exited with {status}");
    }
}
