//! Multi-process deployment: real `legostore-server` binaries as child OS processes,
//! a driver connecting over TCP, linearizable history, clean shutdown of every process.

use legostore_core::{Cluster, ClusterOptions};
use legostore_cloud::CloudModelBuilder;
use legostore_obs::ObsConfig;
use legostore_types::{Configuration, DcId, Key, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Launches one `legostore-server` process and parses its `READY <addr>` handshake.
fn launch(dc: DcId) -> (Child, SocketAddr) {
    let bin = env!("CARGO_BIN_EXE_legostore-server");
    let mut child = Command::new(bin)
        .args(["--dc", &dc.0.to_string(), "--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn legostore-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read READY line");
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("unexpected handshake line: {line:?}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

#[test]
fn three_server_processes_serve_a_linearizable_workload() {
    let mut children = Vec::new();
    let mut addrs = HashMap::new();
    for id in 0..3u16 {
        let (child, addr) = launch(DcId(id));
        children.push(child);
        addrs.insert(DcId(id), addr);
    }

    let model = CloudModelBuilder::uniform(3).build();
    let options = ClusterOptions {
        latency_scale: 0.02,
        op_timeout: Duration::from_millis(500),
        controller_dc: DcId(0),
        ..Default::default()
    };
    let cluster = Cluster::connect_tcp(model, options, &addrs).expect("connect");
    let key = Key::from("multiproc");
    let config = Configuration::abd_majority(vec![DcId(0), DcId(1), DcId(2)], 1);
    cluster.install_key(key.clone(), config, &Value::from("v0"));

    let mut a = cluster.client(DcId(0));
    let mut b = cluster.client(DcId(2));
    for i in 0..5u32 {
        a.put(&key, Value::from(format!("a{i}").as_str())).expect("put");
        assert_eq!(b.get(&key).expect("get"), Value::from(format!("a{i}").as_str()));
    }
    let failures = cluster.recorder().check_all();
    assert!(failures.is_empty(), "history not linearizable: {failures:?}");
    assert_eq!(cluster.recorder().len(key.as_str()), 10);

    // Shutdown frames terminate every server process with a success exit status.
    cluster.shutdown();
    for mut child in children {
        let status = child.wait().expect("wait for server process");
        assert!(status.success(), "server process exited with {status}");
    }
}

#[test]
fn six_server_processes_expose_wire_scrapeable_stats() {
    // The same `Cluster::stats()` call that scrapes an in-process deployment must work
    // against six real server processes: a `StatsRequest` frame per DC over the data
    // sockets, each process answering with its registry snapshot.
    let mut children = Vec::new();
    let mut addrs = HashMap::new();
    for id in 0..6u16 {
        let (child, addr) = launch(DcId(id));
        children.push(child);
        addrs.insert(DcId(id), addr);
    }

    let model = CloudModelBuilder::uniform(6).build();
    let options = ClusterOptions {
        latency_scale: 0.02,
        op_timeout: Duration::from_millis(500),
        controller_dc: DcId(0),
        obs: ObsConfig::Metrics,
        ..Default::default()
    };
    let cluster = Cluster::connect_tcp(model, options, &addrs).expect("connect");
    let key = Key::from("scraped");
    let placement = vec![DcId(0), DcId(1), DcId(2), DcId(3), DcId(4)];
    cluster.install_key(key.clone(), Configuration::cas_default(placement.clone(), 3, 1), &Value::filler(1_024));
    let mut client = cluster.client(DcId(0));
    for _ in 0..4u32 {
        client.put(&key, Value::filler(1_024)).expect("put");
        assert_eq!(client.get(&key).expect("get").len(), 1_024);
    }

    let stats = cluster.stats().expect("scrape all six processes over the wire");
    assert_eq!(stats.servers.len(), 6, "every process answered its StatsRequest");

    // Client side of the split: per-phase histograms and the service/network division
    // that the explicit `service_ns` reply field enables across process boundaries.
    assert_eq!(stats.client.counter("client.put.ops"), 4);
    for phase in 1..=3 {
        let h = stats
            .client
            .histogram(&format!("client.put.phase{phase}_ns"))
            .expect("per-phase histogram");
        assert_eq!(h.count, 4);
    }
    assert!(stats.client.histogram("client.reply.service_ns").expect("service").count > 0);
    assert!(stats.client.histogram("client.reply.network_ns").expect("network").count > 0);

    // Server side: the quorum DCs report requests, byte meters and per-phase dispatch
    // times measured inside their own processes.
    let served: Vec<DcId> = placement
        .iter()
        .copied()
        .filter(|dc| stats.servers[dc].counter("server.requests") > 0)
        .collect();
    assert!(served.len() >= 3, "at least a quorum served traffic: {served:?}");
    for dc in &served {
        let snap = &stats.servers[dc];
        assert!(snap.counter("server.bytes_in") > 0, "{dc}");
        assert!(snap.counter("server.bytes_out") > 0, "{dc}");
        let dispatched: u64 = (1..=4)
            .filter_map(|p| snap.histogram(&format!("server.dispatch_ns.phase{p}")))
            .map(|h| h.count)
            .sum();
        assert_eq!(dispatched, snap.counter("server.requests"), "{dc}");
        assert!(snap.gauge("server.keys") >= 1, "{dc}");
    }
    // The sixth DC is outside the placement: alive, scrapeable, idle.
    assert_eq!(stats.servers[&DcId(5)].counter("server.requests"), 0);

    cluster.shutdown();
    for mut child in children {
        let status = child.wait().expect("wait for server process");
        assert!(status.success(), "server process exited with {status}");
    }
}
