//! The `legostore-server` binary: one LEGOStore data-center server as an OS process.
//!
//! ```text
//! legostore-server --dc 3 [--listen 127.0.0.1:7103]
//! ```
//!
//! Binds the listen address (an OS-assigned loopback port by default), prints
//! `READY <addr>` on stdout once accepting — launchers parse that line to learn the
//! port — and serves until a connected driver sends a `Shutdown` frame.

use legostore_types::DcId;
use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: legostore-server --dc <id> [--listen <addr>]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut dc: Option<u16> = None;
    let mut listen = String::from("127.0.0.1:0");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dc" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else { usage() };
                dc = Some(v);
            }
            "--listen" => {
                let Some(v) = args.next() else { usage() };
                listen = v;
            }
            _ => usage(),
        }
    }
    let Some(dc) = dc else { usage() };
    let dc = DcId(dc);

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("legostore-server: bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => {
            // The launcher handshake: parse this line to learn the bound port.
            println!("READY {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("legostore-server: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    match legostore_server::serve(dc, listener) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("legostore-server: {dc}: {e}");
            ExitCode::FAILURE
        }
    }
}
