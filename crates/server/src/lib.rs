//! A standalone LEGOStore per-DC server speaking the wire protocol of
//! [`legostore_proto::wire`] over real TCP sockets.
//!
//! The in-process deployment (`legostore-core`) runs every data center's server as a
//! thread behind a channel. This crate hosts the *same* [`DcServer`] state machine behind
//! a `TcpListener` instead, so a geo-distributed cluster can run as one OS process per
//! data center, exchanging real bytes — the `legostore-server` binary is a thin CLI over
//! [`serve`], and `Cluster::connect_tcp` on the client side completes the pair.
//!
//! The server is deliberately simple: a single dispatch loop owns the protocol state
//! (matching the one-thread-per-DC concurrency model the protocol code was written
//! against), an acceptor thread turns incoming connections into per-connection reader
//! threads, and every reader funnels decoded [`Frame`]s into the dispatch loop over a
//! channel. Replies are routed back through the connection that carried the endpoint's
//! most recent request, exactly like the in-process server routes replies through each
//! request's reply channel. A `Shutdown` frame from any connection stops the server —
//! deployments that outlive their drivers can simply not send one.

#![warn(missing_docs)]

use legostore_obs::{Gauge, Obs, ObsConfig, ServerMetrics};
use legostore_proto::msg::MSG_KIND_NAMES;
use legostore_proto::server::{evict_stale_routes, DcServer, MAX_REPLY_ROUTES};
use legostore_proto::wire::Frame;
use legostore_types::DcId;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// What the acceptor and reader threads feed the dispatch loop.
enum Event {
    /// A new client connection (the write half the dispatch loop replies through).
    Connected(u64, TcpStream),
    /// One decoded frame from connection `.0`, plus its size on the wire in bytes.
    Frame(u64, Frame, u64),
    /// Connection `.0` reached EOF or failed; its routes are dead.
    Disconnected(u64),
}

/// Runs a LEGOStore data-center server on `listener` until a client sends a `Shutdown`
/// frame (or the listener fails). Blocks the calling thread for the server's lifetime.
///
/// Every accepted connection may carry requests from many endpoints (a driver process
/// multiplexes all its clients over one connection per server). Replies go back through
/// the connection that carried the endpoint's most recent request; the routing table is
/// bounded by [`MAX_REPLY_ROUTES`] with least-recently-seen eviction, mirroring the
/// in-process server loop.
pub fn serve(dc: DcId, listener: TcpListener) -> io::Result<()> {
    let local = listener.local_addr()?;
    // Reply timestamps are process-local nanoseconds; receivers re-stamp on arrival
    // (cross-process clocks are not comparable), so the epoch choice is arbitrary.
    let epoch = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    // A standalone server always keeps at least metric counting on: it is per-process
    // state a remote driver can only see through a stats scrape, and the cost is a few
    // atomic adds per request. `LEGOSTORE_TRACE=1` raises the level further.
    let obs = Obs::new(match ObsConfig::from_env() {
        ObsConfig::Off => ObsConfig::Metrics,
        level => level,
    });
    let metrics = ServerMetrics::new(&obs, &MSG_KIND_NAMES);
    // Dispatch-queue depth, tracked across the reader/dispatch seam: readers increment
    // as they enqueue (and push the high-water mark), the dispatch loop decrements.
    let queue_depth = Arc::new(AtomicU64::new(0));
    let (tx, rx) = mpsc::channel::<Event>();
    let acceptor = {
        let stop = stop.clone();
        let depth = queue_depth.clone();
        let depth_max = metrics.queue_depth_max.clone();
        std::thread::Builder::new()
            .name(format!("legostore-accept-{dc}"))
            .spawn(move || accept_loop(listener, tx, stop, depth, depth_max))?
    };

    let mut server = DcServer::new(dc);
    // Epoch-lease expiry runs on the same process-local clock as the reply timestamps.
    // Disabled unless configured: a standalone server has no deployment-wide op timeout
    // to derive a default from, so the driver (or operator) must opt in.
    if let Some(ms) = std::env::var("LEGOSTORE_EPOCH_LEASE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        server.set_epoch_lease_ns(ms.saturating_mul(1_000_000));
    }
    // Write halves of live connections, and endpoint → (connection, last-seen stamp).
    let mut conns: HashMap<u64, TcpStream> = HashMap::new();
    let mut routes: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut stamp: u64 = 0;
    'dispatch: while let Ok(event) = rx.recv() {
        if matches!(event, Event::Frame(..)) {
            queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
        match event {
            Event::Connected(id, stream) => {
                conns.insert(id, stream);
            }
            Event::Disconnected(id) => {
                conns.remove(&id);
                routes.retain(|_, (conn, _)| *conn != id);
            }
            Event::Frame(_, Frame::Shutdown, _) => break 'dispatch,
            Event::Frame(_, Frame::Control(ctrl), _) => server.apply_control(ctrl),
            Event::Frame(_, Frame::Reply { .. }, _) => {} // clients never send replies
            Event::Frame(_, Frame::StatsReply { .. }, _) => {} // likewise
            Event::Frame(id, Frame::StatsRequest { token }, _) => {
                // Refresh the point-in-time gauges, then answer on the connection the
                // scrape arrived on (stats frames bypass the endpoint routing table).
                metrics.keys.set(server.key_count() as u64);
                metrics.storage_bytes.set(server.storage_bytes());
                let frame = Frame::StatsReply { token, dc, snapshot: obs.snapshot() };
                if let Some(stream) = conns.get_mut(&id) {
                    let _ = frame.write_to(stream);
                }
            }
            Event::Frame(id, Frame::Request(inbound), wire_bytes) => {
                stamp += 1;
                routes.insert(inbound.from, (id, stamp));
                if routes.len() > MAX_REPLY_ROUTES {
                    evict_stale_routes(&mut routes, MAX_REPLY_ROUTES / 2);
                }
                metrics.bytes_in.add(wire_bytes);
                let (msg_kind, phase) = (inbound.msg.kind_index(), inbound.phase);
                let handled_at = Instant::now();
                let replies = server.handle_at(inbound, epoch.elapsed().as_nanos() as u64);
                let service_ns = handled_at.elapsed().as_nanos() as u64;
                metrics.on_request(msg_kind, phase, service_ns, replies.len() as u64);
                for r in replies {
                    let Some(&(conn, _)) = routes.get(&r.to) else {
                        continue; // the endpoint's connection is gone
                    };
                    let Some(stream) = conns.get_mut(&conn) else {
                        continue;
                    };
                    let frame = Frame::Reply {
                        endpoint: r.to,
                        from: dc,
                        sent_at_ns: epoch.elapsed().as_nanos() as u64,
                        service_ns,
                        phase: r.phase,
                        epoch: r.epoch,
                        reply: r.reply,
                    };
                    // Encode once: the same buffer is written and counted.
                    let bytes = frame.encode();
                    metrics.bytes_out.add(bytes.len() as u64);
                    if io::Write::write_all(stream, &bytes).is_err() {
                        conns.remove(&conn);
                        routes.retain(|_, (c, _)| *c != conn);
                    }
                }
            }
        }
    }

    // Teardown: stop the acceptor (a dummy self-connection unblocks its accept), close
    // every connection so the reader threads see EOF, and join them all via the acceptor.
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(local);
    for stream in conns.values() {
        let _ = stream.shutdown(Shutdown::Both);
    }
    drop(rx);
    let _ = acceptor.join();
    Ok(())
}

/// Accepts connections, registering each with the dispatch loop and spawning its reader.
/// Joins every reader before returning, so [`serve`] owns the whole thread tree.
fn accept_loop(
    listener: TcpListener,
    tx: mpsc::Sender<Event>,
    stop: Arc<AtomicBool>,
    depth: Arc<AtomicU64>,
    depth_max: Arc<Gauge>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id: u64 = 1;
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else { continue };
        let id = next_id;
        next_id += 1;
        if tx.send(Event::Connected(id, stream)).is_err() {
            break; // the dispatch loop is gone
        }
        let tx = tx.clone();
        let depth = depth.clone();
        let depth_max = depth_max.clone();
        let handle = std::thread::Builder::new()
            .name(format!("legostore-conn-{id}"))
            .spawn(move || read_loop(id, read_half, tx, depth, depth_max));
        match handle {
            Ok(h) => readers.push(h),
            Err(_) => break,
        }
    }
    for handle in readers {
        let _ = handle.join();
    }
}

/// Decodes frames off one connection until EOF, error, or dispatch-loop shutdown.
fn read_loop(
    id: u64,
    mut stream: TcpStream,
    tx: mpsc::Sender<Event>,
    depth: Arc<AtomicU64>,
    depth_max: Arc<Gauge>,
) {
    loop {
        match Frame::read_from_counted(&mut stream) {
            Ok(Some((frame, wire_bytes))) => {
                depth_max.maximize(depth.fetch_add(1, Ordering::Relaxed) + 1);
                if tx.send(Event::Frame(id, frame, wire_bytes)).is_err() {
                    return;
                }
            }
            Ok(None) | Err(_) => {
                let _ = tx.send(Event::Disconnected(id));
                return;
            }
        }
    }
}

/// Binds an OS-assigned loopback port and runs [`serve`] on a background thread:
/// the in-process way to stand up a TCP cluster (tests, benchmarks, single-process
/// demos). Returns the bound address and the server thread's handle; the thread exits
/// when a connected driver sends a `Shutdown` frame (e.g. `Cluster::shutdown`).
pub fn spawn_server_thread(dc: DcId) -> io::Result<(SocketAddr, JoinHandle<io::Result<()>>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name(format!("legostore-serve-{dc}"))
        .spawn(move || serve(dc, listener))?;
    Ok((addr, handle))
}

/// Locates the compiled `legostore-server` binary for multi-process launchers.
///
/// Honors `LEGOSTORE_SERVER_BIN` when set; otherwise walks up from the current
/// executable's directory (examples live in `target/<profile>/examples/`, test binaries
/// in `target/<profile>/deps/`, the binary itself in `target/<profile>/`).
pub fn find_server_binary() -> Option<std::path::PathBuf> {
    if let Some(path) = std::env::var_os("LEGOSTORE_SERVER_BIN") {
        return Some(std::path::PathBuf::from(path));
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("legostore-server{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent()?;
    for _ in 0..3 {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_proto::msg::{ProtoMsg, ProtoReply, ReconfigPayload};
    use legostore_proto::server::{ControlMsg, Inbound};
    use legostore_types::{Configuration, Key, StoreError, Tag, Value};

    /// Drives one server over a raw socket, no client stack: install a key via a
    /// `Control` frame, read it back with an ABD read query, shut the server down.
    #[test]
    fn raw_socket_round_trip_and_shutdown() {
        let dc = DcId(0);
        let (addr, handle) = spawn_server_thread(dc).expect("spawn");
        let mut conn = TcpStream::connect(addr).expect("connect");

        let config = Configuration::abd_majority(vec![dc, DcId(1), DcId(2)], 1);
        Frame::Control(ControlMsg::InstallKey {
            key: Key::from("k"),
            config: config.clone(),
            tag: Tag::INITIAL,
            payload: ReconfigPayload::Value(Value::from("hello")),
        })
        .write_to(&mut conn)
        .expect("install");

        Frame::Request(Inbound {
            from: 42,
            msg_id: 0,
            phase: 1,
            key: Key::from("k"),
            epoch: config.epoch,
            msg: ProtoMsg::AbdReadQuery,
        })
        .write_to(&mut conn)
        .expect("query");

        let reply = Frame::read_from(&mut conn).expect("read").expect("not eof");
        let Frame::Reply { endpoint, from, phase, reply, .. } = reply else {
            panic!("expected a reply frame");
        };
        assert_eq!((endpoint, from, phase), (42, dc, 1));
        let ProtoReply::AbdTagValue { tag, value } = reply else {
            panic!("expected AbdTagValue, got {reply:?}");
        };
        assert_eq!(tag, Tag::INITIAL);
        assert_eq!(value, Value::from("hello"));

        // A request for an unknown key gets a typed error back, not silence.
        Frame::Request(Inbound {
            from: 42,
            msg_id: 0,
            phase: 1,
            key: Key::from("missing"),
            epoch: config.epoch,
            msg: ProtoMsg::AbdReadQuery,
        })
        .write_to(&mut conn)
        .expect("query missing");
        let reply = Frame::read_from(&mut conn).expect("read").expect("not eof");
        let Frame::Reply { reply: ProtoReply::Error(err), .. } = reply else {
            panic!("expected an error reply, got {reply:?}");
        };
        assert!(matches!(err, StoreError::KeyNotFound(_)), "{err:?}");

        Frame::Shutdown.write_to(&mut conn).expect("shutdown");
        handle.join().expect("join").expect("serve ok");
    }

    #[test]
    fn server_binary_is_discoverable_via_env_override() {
        std::env::set_var("LEGOSTORE_SERVER_BIN", "/tmp/somewhere/legostore-server");
        let found = find_server_binary().expect("env override always resolves");
        assert_eq!(found, std::path::Path::new("/tmp/somewhere/legostore-server"));
        std::env::remove_var("LEGOSTORE_SERVER_BIN");
    }
}
