//! The generic cloud model abstraction.

use crate::{BYTES_PER_GB, DEFAULT_BANDWIDTH_BYTES_PER_SEC, DEFAULT_THETA_V, HOURS_PER_MONTH};
use legostore_types::DcId;
use serde::{Deserialize, Serialize};

/// Static description of one data center.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataCenter {
    /// Identifier (index into the model's matrices).
    pub id: DcId,
    /// Human-readable name, e.g. `"Tokyo"`.
    pub name: String,
    /// Storage price in $/GB-month (provisioned space).
    pub storage_price_gb_month: f64,
    /// Virtual-machine price in $/hour for the store's server VM class.
    pub vm_price_hour: f64,
}

/// A complete model of the cloud regions a LEGOStore deployment spans.
///
/// All matrices are indexed `[source][destination]` by [`DcId`] index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudModel {
    dcs: Vec<DataCenter>,
    /// Round-trip times in milliseconds.
    rtt_ms: Vec<Vec<f64>>,
    /// Network price in $/GB for traffic sent from `source` to `destination`.
    net_price_gb: Vec<Vec<f64>>,
    /// Bandwidth in bytes/second between pairs.
    bandwidth: Vec<Vec<f64>>,
    /// VM-capacity multiplier θ_v (VM-hours per request/second of load).
    theta_v: f64,
}

impl CloudModel {
    /// The nine-GCP-data-center model of the paper (Tables 1 and 2).
    pub fn gcp9() -> CloudModel {
        crate::gcp::gcp9()
    }

    /// Number of data centers in the model.
    pub fn num_dcs(&self) -> usize {
        self.dcs.len()
    }

    /// All data-center ids.
    pub fn dc_ids(&self) -> Vec<DcId> {
        (0..self.dcs.len()).map(DcId::from).collect()
    }

    /// Data-center metadata.
    pub fn dc(&self, id: DcId) -> &DataCenter {
        &self.dcs[id.index()]
    }

    /// All data centers.
    pub fn dcs(&self) -> &[DataCenter] {
        &self.dcs
    }

    /// Looks a data center up by (case-insensitive) name.
    pub fn dc_by_name(&self, name: &str) -> Option<DcId> {
        self.dcs
            .iter()
            .position(|d| d.name.eq_ignore_ascii_case(name))
            .map(DcId::from)
    }

    /// Round-trip time between two data centers in milliseconds.
    pub fn rtt_ms(&self, from: DcId, to: DcId) -> f64 {
        self.rtt_ms[from.index()][to.index()]
    }

    /// One-way latency `l_ij` (RTT/2) in milliseconds, as used by the paper's latency model.
    pub fn latency_ms(&self, from: DcId, to: DcId) -> f64 {
        self.rtt_ms(from, to) / 2.0
    }

    /// Network transfer price from `from` to `to` in $/GB.
    pub fn net_price_gb(&self, from: DcId, to: DcId) -> f64 {
        self.net_price_gb[from.index()][to.index()]
    }

    /// Network transfer price from `from` to `to` in $/byte.
    pub fn net_price_per_byte(&self, from: DcId, to: DcId) -> f64 {
        self.net_price_gb(from, to) / BYTES_PER_GB
    }

    /// Bandwidth from `from` to `to` in bytes/second.
    pub fn bandwidth_bytes_per_sec(&self, from: DcId, to: DcId) -> f64 {
        self.bandwidth[from.index()][to.index()]
    }

    /// Time in milliseconds to push `bytes` from `from` to `to` (excluding propagation).
    pub fn transfer_time_ms(&self, from: DcId, to: DcId, bytes: u64) -> f64 {
        if from == to {
            return 0.0;
        }
        bytes as f64 / self.bandwidth_bytes_per_sec(from, to) * 1000.0
    }

    /// Storage price at `dc` in $/byte-hour.
    pub fn storage_price_per_byte_hour(&self, dc: DcId) -> f64 {
        self.dcs[dc.index()].storage_price_gb_month / BYTES_PER_GB / HOURS_PER_MONTH
    }

    /// VM price at `dc` in $/hour.
    pub fn vm_price_hour(&self, dc: DcId) -> f64 {
        self.dcs[dc.index()].vm_price_hour
    }

    /// VM-capacity multiplier θ_v.
    pub fn theta_v(&self) -> f64 {
        self.theta_v
    }

    /// Cost in dollars of sending `bytes` from `from` to `to`.
    pub fn transfer_cost(&self, from: DcId, to: DcId, bytes: u64) -> f64 {
        if from == to {
            return 0.0;
        }
        bytes as f64 * self.net_price_per_byte(from, to)
    }

    /// Average outbound network price ($/GB) from `dc` toward the given destinations,
    /// used by the `ABD Fixed` / `CAS Fixed` baselines to rank data centers.
    pub fn avg_outbound_price_gb(&self, dc: DcId, destinations: &[DcId]) -> f64 {
        if destinations.is_empty() {
            return 0.0;
        }
        let sum: f64 = destinations
            .iter()
            .map(|d| self.net_price_gb(dc, *d))
            .sum();
        sum / destinations.len() as f64
    }

    /// Data centers sorted by ascending RTT from `from` (excluding `from` itself first, then
    /// including it at the front since intra-DC RTT is minimal).
    pub fn nearest_dcs(&self, from: DcId) -> Vec<DcId> {
        let mut ids = self.dc_ids();
        ids.sort_by(|a, b| {
            self.rtt_ms(from, *a)
                .partial_cmp(&self.rtt_ms(from, *b))
                .unwrap()
        });
        ids
    }

    /// Data centers sorted by ascending network price *into* the client location `client`
    /// (the paper's search heuristic sorts candidate servers this way).
    pub fn cheapest_into(&self, client: DcId) -> Vec<DcId> {
        let mut ids = self.dc_ids();
        ids.sort_by(|a, b| {
            let pa = self.net_price_gb(*a, client);
            let pb = self.net_price_gb(*b, client);
            pa.partial_cmp(&pb)
                .unwrap()
                .then_with(|| {
                    self.rtt_ms(client, *a)
                        .partial_cmp(&self.rtt_ms(client, *b))
                        .unwrap()
                })
        });
        ids
    }
}

/// Builder for custom [`CloudModel`]s (tests, sensitivity studies, other providers).
#[derive(Debug, Clone)]
pub struct CloudModelBuilder {
    dcs: Vec<DataCenter>,
    rtt_ms: Vec<Vec<f64>>,
    net_price_gb: Vec<Vec<f64>>,
    bandwidth: Vec<Vec<f64>>,
    theta_v: f64,
}

impl CloudModelBuilder {
    /// Starts a builder for `n` data centers with placeholder names and uniform defaults:
    /// 100 ms RTT (2 ms intra-DC), $0.08/GB, default bandwidth, zero storage/VM prices.
    pub fn uniform(n: usize) -> Self {
        let dcs = (0..n)
            .map(|i| DataCenter {
                id: DcId::from(i),
                name: format!("dc{i}"),
                storage_price_gb_month: 0.0,
                vm_price_hour: 0.0,
            })
            .collect();
        let rtt_ms = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 2.0 } else { 100.0 }).collect())
            .collect();
        let net_price_gb = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { 0.08 }).collect())
            .collect();
        let bandwidth = vec![vec![DEFAULT_BANDWIDTH_BYTES_PER_SEC; n]; n];
        CloudModelBuilder {
            dcs,
            rtt_ms,
            net_price_gb,
            bandwidth,
            theta_v: DEFAULT_THETA_V,
        }
    }

    /// Starts a builder from explicit per-DC data and matrices.
    pub fn from_parts(
        dcs: Vec<DataCenter>,
        rtt_ms: Vec<Vec<f64>>,
        net_price_gb: Vec<Vec<f64>>,
    ) -> Self {
        let n = dcs.len();
        CloudModelBuilder {
            dcs,
            rtt_ms,
            net_price_gb,
            bandwidth: vec![vec![DEFAULT_BANDWIDTH_BYTES_PER_SEC; n]; n],
            theta_v: DEFAULT_THETA_V,
        }
    }

    /// Sets the name of data center `i`.
    pub fn name(mut self, i: usize, name: impl Into<String>) -> Self {
        self.dcs[i].name = name.into();
        self
    }

    /// Sets the storage price ($/GB-month) of data center `i`.
    pub fn storage_price(mut self, i: usize, price: f64) -> Self {
        self.dcs[i].storage_price_gb_month = price;
        self
    }

    /// Sets the VM price ($/hour) of data center `i`.
    pub fn vm_price(mut self, i: usize, price: f64) -> Self {
        self.dcs[i].vm_price_hour = price;
        self
    }

    /// Sets a symmetric RTT between `i` and `j`.
    pub fn rtt(mut self, i: usize, j: usize, ms: f64) -> Self {
        self.rtt_ms[i][j] = ms;
        self.rtt_ms[j][i] = ms;
        self
    }

    /// Sets the directional network price from `i` to `j` in $/GB.
    pub fn net_price(mut self, i: usize, j: usize, dollars_per_gb: f64) -> Self {
        self.net_price_gb[i][j] = dollars_per_gb;
        self
    }

    /// Sets a uniform bandwidth (bytes/second) for every pair.
    pub fn bandwidth_all(mut self, bytes_per_sec: f64) -> Self {
        for row in &mut self.bandwidth {
            for b in row.iter_mut() {
                *b = bytes_per_sec;
            }
        }
        self
    }

    /// Sets the VM-capacity multiplier θ_v.
    pub fn theta_v(mut self, theta: f64) -> Self {
        self.theta_v = theta;
        self
    }

    /// Finalizes the model, checking matrix shapes.
    pub fn build(self) -> CloudModel {
        let n = self.dcs.len();
        assert!(self.rtt_ms.len() == n && self.rtt_ms.iter().all(|r| r.len() == n));
        assert!(self.net_price_gb.len() == n && self.net_price_gb.iter().all(|r| r.len() == n));
        assert!(self.bandwidth.len() == n && self.bandwidth.iter().all(|r| r.len() == n));
        CloudModel {
            dcs: self.dcs,
            rtt_ms: self.rtt_ms,
            net_price_gb: self.net_price_gb,
            bandwidth: self.bandwidth,
            theta_v: self.theta_v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builder_defaults() {
        let m = CloudModelBuilder::uniform(4).build();
        assert_eq!(m.num_dcs(), 4);
        assert_eq!(m.rtt_ms(DcId(0), DcId(1)), 100.0);
        assert_eq!(m.rtt_ms(DcId(2), DcId(2)), 2.0);
        assert!((m.net_price_gb(DcId(0), DcId(1)) - 0.08).abs() < 1e-12);
        assert_eq!(m.net_price_gb(DcId(3), DcId(3)), 0.0);
        assert_eq!(m.latency_ms(DcId(0), DcId(1)), 50.0);
    }

    #[test]
    fn builder_setters_apply() {
        let m = CloudModelBuilder::uniform(3)
            .name(0, "A")
            .storage_price(0, 0.05)
            .vm_price(0, 0.02)
            .rtt(0, 1, 40.0)
            .net_price(0, 1, 0.12)
            .bandwidth_all(1e6)
            .theta_v(0.001)
            .build();
        assert_eq!(m.dc_by_name("a"), Some(DcId(0)));
        assert_eq!(m.dc_by_name("missing"), None);
        assert_eq!(m.rtt_ms(DcId(1), DcId(0)), 40.0);
        assert!((m.net_price_gb(DcId(0), DcId(1)) - 0.12).abs() < 1e-12);
        assert!((m.net_price_gb(DcId(1), DcId(0)) - 0.08).abs() < 1e-12);
        assert!((m.storage_price_per_byte_hour(DcId(0)) - 0.05 / 1e9 / 730.0).abs() < 1e-20);
        assert_eq!(m.vm_price_hour(DcId(0)), 0.02);
        assert_eq!(m.theta_v(), 0.001);
        // 1 MB at 1 MB/s = 1000 ms.
        assert!((m.transfer_time_ms(DcId(0), DcId(1), 1_000_000) - 1000.0).abs() < 1e-9);
        assert_eq!(m.transfer_time_ms(DcId(0), DcId(0), 1_000_000), 0.0);
    }

    #[test]
    fn transfer_cost_scales_with_bytes_and_price() {
        let m = CloudModelBuilder::uniform(2).net_price(0, 1, 0.10).build();
        let c = m.transfer_cost(DcId(0), DcId(1), 1_000_000_000);
        assert!((c - 0.10).abs() < 1e-9);
        assert_eq!(m.transfer_cost(DcId(0), DcId(0), 123), 0.0);
    }

    #[test]
    fn nearest_and_cheapest_orderings() {
        let m = CloudModelBuilder::uniform(3)
            .rtt(0, 1, 10.0)
            .rtt(0, 2, 300.0)
            .net_price(1, 0, 0.15)
            .net_price(2, 0, 0.01)
            .build();
        let near = m.nearest_dcs(DcId(0));
        assert_eq!(near[0], DcId(0)); // itself: 2ms
        assert_eq!(near[1], DcId(1));
        assert_eq!(near[2], DcId(2));
        let cheap = m.cheapest_into(DcId(0));
        // dc0 itself is free, then dc2 (0.01), then dc1 (0.15).
        assert_eq!(cheap, vec![DcId(0), DcId(2), DcId(1)]);
    }

    #[test]
    fn avg_outbound_price() {
        let m = CloudModelBuilder::uniform(3)
            .net_price(0, 1, 0.10)
            .net_price(0, 2, 0.20)
            .build();
        let avg = m.avg_outbound_price_gb(DcId(0), &[DcId(1), DcId(2)]);
        assert!((avg - 0.15).abs() < 1e-12);
        assert_eq!(m.avg_outbound_price_gb(DcId(0), &[]), 0.0);
    }
}
