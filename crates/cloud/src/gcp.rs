//! The nine-GCP-data-center deployment used throughout the paper.
//!
//! Prices come from Table 1 (storage $/GB-month and VM $/hour) and Table 2 (pairwise RTTs in
//! milliseconds and network prices in $/GB, indexed `[source][destination]`).

use crate::model::{CloudModel, CloudModelBuilder, DataCenter};
use legostore_types::DcId;

/// The nine GCP locations of the paper, in the order used by Tables 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GcpLocation {
    /// asia-northeast1 (Tokyo).
    Tokyo,
    /// australia-southeast1 (Sydney).
    Sydney,
    /// asia-southeast1 (Singapore).
    Singapore,
    /// europe-west3 (Frankfurt).
    Frankfurt,
    /// europe-west2 (London).
    London,
    /// us-east4 (Virginia).
    Virginia,
    /// southamerica-east1 (São Paulo).
    SaoPaulo,
    /// us-west2 (Los Angeles).
    LosAngeles,
    /// us-west1 (Oregon).
    Oregon,
}

impl GcpLocation {
    /// All nine locations in table order.
    pub const ALL: [GcpLocation; 9] = [
        GcpLocation::Tokyo,
        GcpLocation::Sydney,
        GcpLocation::Singapore,
        GcpLocation::Frankfurt,
        GcpLocation::London,
        GcpLocation::Virginia,
        GcpLocation::SaoPaulo,
        GcpLocation::LosAngeles,
        GcpLocation::Oregon,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            GcpLocation::Tokyo => "Tokyo",
            GcpLocation::Sydney => "Sydney",
            GcpLocation::Singapore => "Singapore",
            GcpLocation::Frankfurt => "Frankfurt",
            GcpLocation::London => "London",
            GcpLocation::Virginia => "Virginia",
            GcpLocation::SaoPaulo => "SaoPaulo",
            GcpLocation::LosAngeles => "LosAngeles",
            GcpLocation::Oregon => "Oregon",
        }
    }

    /// The [`DcId`] of this location within the [`gcp9`] model.
    pub fn dc(self) -> DcId {
        DcId(GcpLocation::ALL.iter().position(|l| *l == self).unwrap() as u16)
    }
}

/// Storage prices in $/GB-month (Table 1).
const STORAGE_PRICE: [f64; 9] = [0.052, 0.054, 0.044, 0.048, 0.048, 0.044, 0.060, 0.048, 0.040];

/// VM prices in $/hour (Table 1, custom 1 vCPU / 1 GB VMs).
const VM_PRICE: [f64; 9] = [
    0.0261, 0.0283, 0.0253, 0.0262, 0.0262, 0.0226, 0.0310, 0.0248, 0.0215,
];

/// Pairwise RTTs in milliseconds (Table 2), `RTT[source][destination]`.
const RTT_MS: [[f64; 9]; 9] = [
    // Tokyo
    [2.0, 115.0, 70.0, 226.0, 218.0, 148.0, 253.0, 100.0, 90.0],
    // Sydney
    [115.0, 2.0, 94.0, 289.0, 277.0, 204.0, 291.0, 139.0, 162.0],
    // Singapore
    [72.0, 94.0, 2.0, 202.0, 203.0, 214.0, 319.0, 165.0, 166.0],
    // Frankfurt
    [229.0, 289.0, 201.0, 2.0, 15.0, 89.0, 202.0, 153.0, 139.0],
    // London
    [222.0, 280.0, 204.0, 15.0, 2.0, 79.0, 192.0, 141.0, 131.0],
    // Virginia
    [146.0, 204.0, 214.0, 90.0, 79.0, 2.0, 116.0, 68.0, 58.0],
    // São Paulo
    [252.0, 292.0, 317.0, 202.0, 192.0, 117.0, 1.0, 155.0, 172.0],
    // Los Angeles
    [101.0, 139.0, 180.0, 153.0, 142.0, 67.0, 155.0, 2.0, 26.0],
    // Oregon
    [95.0, 164.0, 165.0, 142.0, 131.0, 58.0, 173.0, 26.0, 2.0],
];

/// Outbound network price in $/GB (Table 2), `PRICE[source][destination]`.
const NET_PRICE_GB: [[f64; 9]; 9] = [
    // Tokyo ->
    [0.0, 0.15, 0.12, 0.12, 0.12, 0.12, 0.12, 0.12, 0.12],
    // Sydney ->
    [0.15, 0.0, 0.15, 0.15, 0.15, 0.15, 0.15, 0.15, 0.15],
    // Singapore ->
    [0.09, 0.15, 0.0, 0.09, 0.09, 0.09, 0.09, 0.09, 0.09],
    // Frankfurt ->
    [0.08, 0.15, 0.08, 0.0, 0.08, 0.08, 0.08, 0.08, 0.08],
    // London ->
    [0.08, 0.15, 0.08, 0.08, 0.0, 0.08, 0.08, 0.08, 0.08],
    // Virginia ->
    [0.08, 0.15, 0.08, 0.08, 0.08, 0.0, 0.08, 0.08, 0.08],
    // São Paulo ->
    [0.08, 0.15, 0.08, 0.08, 0.08, 0.08, 0.0, 0.08, 0.08],
    // Los Angeles ->
    [0.08, 0.15, 0.08, 0.08, 0.08, 0.08, 0.08, 0.0, 0.08],
    // Oregon ->
    [0.08, 0.15, 0.08, 0.08, 0.08, 0.08, 0.08, 0.08, 0.0],
];

/// Builds the nine-DC GCP model of the paper.
pub fn gcp9() -> CloudModel {
    let dcs: Vec<DataCenter> = GcpLocation::ALL
        .iter()
        .enumerate()
        .map(|(i, loc)| DataCenter {
            id: DcId::from(i),
            name: loc.name().to_string(),
            storage_price_gb_month: STORAGE_PRICE[i],
            vm_price_hour: VM_PRICE[i],
        })
        .collect();
    let rtt: Vec<Vec<f64>> = RTT_MS.iter().map(|r| r.to_vec()).collect();
    let price: Vec<Vec<f64>> = NET_PRICE_GB.iter().map(|r| r.to_vec()).collect();
    CloudModelBuilder::from_parts(dcs, rtt, price).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_data_centers_in_table_order() {
        let m = gcp9();
        assert_eq!(m.num_dcs(), 9);
        assert_eq!(m.dc(GcpLocation::Tokyo.dc()).name, "Tokyo");
        assert_eq!(m.dc(GcpLocation::Oregon.dc()).name, "Oregon");
        assert_eq!(GcpLocation::SaoPaulo.dc(), DcId(6));
    }

    #[test]
    fn table1_prices_embedded() {
        let m = gcp9();
        let tokyo = GcpLocation::Tokyo.dc();
        let oregon = GcpLocation::Oregon.dc();
        assert!((m.dc(tokyo).storage_price_gb_month - 0.052).abs() < 1e-12);
        assert!((m.dc(oregon).storage_price_gb_month - 0.040).abs() < 1e-12);
        assert!((m.vm_price_hour(GcpLocation::SaoPaulo.dc()) - 0.0310).abs() < 1e-12);
        assert!((m.vm_price_hour(oregon) - 0.0215).abs() < 1e-12);
    }

    #[test]
    fn table2_rtts_embedded_and_roughly_symmetric() {
        let m = gcp9();
        let tokyo = GcpLocation::Tokyo.dc();
        let sydney = GcpLocation::Sydney.dc();
        let frankfurt = GcpLocation::Frankfurt.dc();
        let london = GcpLocation::London.dc();
        assert_eq!(m.rtt_ms(tokyo, sydney), 115.0);
        assert_eq!(m.rtt_ms(frankfurt, london), 15.0);
        assert_eq!(m.rtt_ms(london, frankfurt), 15.0);
        // RTTs in the published table differ slightly by direction (measurement noise);
        // each direction must still be within the measured ballpark of its transpose.
        for i in m.dc_ids() {
            for j in m.dc_ids() {
                assert!((m.rtt_ms(i, j) - m.rtt_ms(j, i)).abs() <= 20.0, "{i}->{j}");
            }
        }
    }

    #[test]
    fn paper_cited_extreme_prices() {
        let m = gcp9();
        // "the cheapest per-byte transfer is $0.08/GB (e.g., London to Tokyo), the costliest
        //  is $0.15/GB (e.g., Sydney to Tokyo)".
        assert!((m.net_price_gb(GcpLocation::London.dc(), GcpLocation::Tokyo.dc()) - 0.08).abs() < 1e-12);
        assert!((m.net_price_gb(GcpLocation::Sydney.dc(), GcpLocation::Tokyo.dc()) - 0.15).abs() < 1e-12);
        // Everything into Sydney costs 0.15 from anywhere else.
        for i in m.dc_ids() {
            if i != GcpLocation::Sydney.dc() {
                assert!((m.net_price_gb(i, GcpLocation::Sydney.dc()) - 0.15).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn intra_dc_rtts_are_one_or_two_ms() {
        let m = gcp9();
        for i in m.dc_ids() {
            assert!(m.rtt_ms(i, i) <= 2.0);
            assert_eq!(m.net_price_gb(i, i), 0.0);
        }
    }

    #[test]
    fn rtt_extremes_match_paper_text() {
        // "The smallest RTTs are 15-20 msec while the largest exceed 300 msec."
        let m = gcp9();
        let mut min = f64::MAX;
        let mut max: f64 = 0.0;
        for i in m.dc_ids() {
            for j in m.dc_ids() {
                if i != j {
                    min = min.min(m.rtt_ms(i, j));
                    max = max.max(m.rtt_ms(i, j));
                }
            }
        }
        assert_eq!(min, 15.0);
        assert!(max > 300.0);
    }

    #[test]
    fn location_name_round_trip() {
        let m = gcp9();
        for loc in GcpLocation::ALL {
            assert_eq!(m.dc_by_name(loc.name()), Some(loc.dc()));
        }
    }
}
