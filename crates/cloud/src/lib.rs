//! Public-cloud model: data centers, latencies, bandwidths and prices.
//!
//! LEGOStore's optimizer and simulator need to know, for every pair of data centers, the
//! round-trip time and the per-byte network transfer price, and for every data center the
//! storage and VM prices. The paper measures/quotes these for nine Google Cloud Platform
//! locations (Tables 1 and 2); [`CloudModel::gcp9`] embeds exactly those numbers. Arbitrary
//! topologies can be built with [`CloudModelBuilder`] for tests and what-if studies.

pub mod gcp;
pub mod model;

pub use gcp::{gcp9, GcpLocation};
pub use model::{CloudModel, CloudModelBuilder, DataCenter};

/// Number of bytes in a gigabyte as used by cloud billing (10^9).
pub const BYTES_PER_GB: f64 = 1e9;

/// Hours in a billing month used to convert $/GB-month into $/byte-hour.
pub const HOURS_PER_MONTH: f64 = 730.0;

/// Metadata size in bytes exchanged per protocol phase (the paper rounds it up to 100 B).
pub const METADATA_BYTES: u64 = 100;

/// Default inter-DC bandwidth (bytes/second) when a model does not specify one.
///
/// The paper's latency constraints include an `o / B_ij` transfer-time term; for the object
/// sizes it studies (1 KB – 100 KB) this term is negligible compared to RTTs at gigabit
/// bandwidths, which is what we default to.
pub const DEFAULT_BANDWIDTH_BYTES_PER_SEC: f64 = 125_000_000.0; // 1 Gbit/s

/// Default VM-capacity multiplier θ_v: VM-hours needed per (request/second) of load at a DC.
///
/// The paper determines θ_v empirically for its f1-micro-class VMs; the absolute value only
/// scales the VM component of cost, so any small constant reproduces the trade-off shapes.
pub const DEFAULT_THETA_V: f64 = 0.0015;
