//! The deployment: per-DC servers, the metadata service and the reconfiguration
//! controller, all behind the [`Transport`] seam.
//!
//! [`Cluster::new`] is the in-process runtime (one server thread per data center,
//! messages on clocked channels). [`Cluster::connect_tcp`] is the same deployment over
//! real sockets: the servers are `legostore-server` processes (or threads) elsewhere, and
//! every protocol message crosses the wire as a length-prefixed frame. Clients, the
//! metadata service and the reconfiguration controller are identical in both cases — they
//! only see the [`Transport`] trait.

use crate::clock::{Clock, ClockedReceiver};
use crate::inbox::DelayedInbox;
use crate::transport::{
    InProcTransport, LinkPolicy, ReplyEnvelope, ServerMsg, TcpTransport, Transport,
};
use legostore_cloud::CloudModel;
use legostore_lincheck::HistoryRecorder;
use legostore_obs::{ClientMetrics, MetricsSnapshot, Obs, ObsConfig, ServerMetrics};
use legostore_proto::msg::MSG_KIND_NAMES;
use legostore_proto::reconfig::{ControllerProgress, ReconfigController, PHASE_FINISH};
use legostore_proto::server::{ControlMsg, DcServer, Inbound, MAX_REPLY_ROUTES};
use legostore_types::{
    Configuration, DcId, FaultPlan, Key, StoreError, StoreResult, Tag, Value,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::AtomicU32;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables of a deployment.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Factor applied to the cloud model's RTTs before sleeping (1.0 = real geo latencies;
    /// tests use a small fraction so a 300 ms RTT becomes a few ms).
    pub latency_scale: f64,
    /// Metadata bytes per message (`o_m`).
    pub metadata_bytes: u64,
    /// Per-attempt operation timeout in *scaled* clock time.
    pub op_timeout: Duration,
    /// Maximum operation attempts (initial + retries) before giving up.
    pub max_attempts: u32,
    /// Data center hosting the reconfiguration controller and authoritative metadata.
    pub controller_dc: DcId,
    /// Default fault tolerance used by CREATE's default configuration.
    pub default_fault_tolerance: usize,
    /// Whether GETs use the optimized one-phase fast paths.
    pub optimized_get: bool,
    /// Time source shared by every component of the deployment. Defaults to real
    /// (wall-clock) time; [`Clock::virtual_time`] runs the same protocols on logical time,
    /// collapsing modeled RTT waits to microseconds and making timestamps deterministic.
    /// Only transports that support the virtual clock's in-flight accounting can run on
    /// virtual time — [`Cluster::connect_tcp`] falls back to a real clock.
    pub clock: Clock,
    /// Deterministic fault schedule injected at the deployment's transport layer (see
    /// [`legostore_types::fault`]). Event times are model milliseconds, scaled by
    /// [`ClusterOptions::latency_scale`] exactly like the cloud model's RTTs. The default
    /// empty plan injects nothing and costs nothing on the message path. The same plan
    /// drives both transports: verdicts are drawn on the client side of the seam, whether
    /// the message then crosses a channel or a socket.
    pub fault_plan: FaultPlan,
    /// Telemetry level (see [`ObsConfig`]). Defaults to [`ObsConfig::from_env`], so
    /// `LEGOSTORE_OBS=1` / `LEGOSTORE_TRACE=1` light up any deployment without a code
    /// change; `Off` costs one relaxed atomic load per would-be instrumentation point.
    pub obs: ObsConfig,
    /// How long a server keeps a key's requests parked for a reconfiguration whose
    /// `FinishReconfig` never arrives before re-activating the old epoch and draining
    /// them there (see `DcServer::expire_leases`). `None` derives 16 × `op_timeout`,
    /// twice the controller's own 8 × `op_timeout` deadline — a live controller always
    /// finishes or stalls out before any server gives up on it, so a lease expiry
    /// implies the controller is gone and the metadata service never published the new
    /// configuration.
    pub epoch_lease: Option<Duration>,
}

impl ClusterOptions {
    /// The effective epoch lease in nanoseconds (defaulting from `op_timeout`).
    pub(crate) fn epoch_lease_ns(&self) -> u64 {
        self.epoch_lease.unwrap_or(self.op_timeout * 16).as_nanos() as u64
    }
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            latency_scale: 0.05,
            metadata_bytes: legostore_cloud::METADATA_BYTES,
            op_timeout: Duration::from_millis(500),
            max_attempts: 4,
            controller_dc: DcId(7),
            default_fault_tolerance: 1,
            optimized_get: true,
            clock: Clock::real(),
            fault_plan: FaultPlan::none(),
            obs: ObsConfig::from_env(),
            epoch_lease: None,
        }
    }
}

pub(crate) struct ClusterInner {
    pub(crate) model: Arc<CloudModel>,
    pub(crate) options: ClusterOptions,
    pub(crate) transport: Arc<dyn Transport>,
    pub(crate) metadata: Mutex<HashMap<Key, Configuration>>,
    pub(crate) recorder: Arc<HistoryRecorder>,
    pub(crate) next_client_id: AtomicU32,
    /// Client-process telemetry (spans, flight recorder, transport drop counters). Every
    /// [`StoreClient`](crate::client::StoreClient) of this deployment feeds it; servers
    /// each have their own `Obs`, scraped through the transport.
    pub(crate) obs: Obs,
    /// Pre-resolved client metric handles (shared by all clients of the deployment).
    pub(crate) client_metrics: ClientMetrics,
}

impl ClusterInner {
    /// The deployment's shared time source.
    pub(crate) fn clock(&self) -> &Clock {
        &self.options.clock
    }

    /// Nanoseconds since the clock's epoch (used as linearizability-check timestamps).
    pub(crate) fn now_ns(&self) -> u64 {
        self.clock().now_ns()
    }

    /// One-way + return delay the client should wait before consuming a reply from `from`.
    pub(crate) fn reply_delay(&self, client: DcId, from: DcId, reply_bytes: u64) -> Duration {
        let ms = self.model.rtt_ms(client, from)
            + self.model.transfer_time_ms(from, client, reply_bytes);
        Duration::from_secs_f64(ms * self.options.latency_scale / 1000.0)
    }

    /// Buffers `env` in `inbox` at its modeled arrival instant for a consumer at `at`
    /// (the transport's reply-leg fault interposition point).
    pub(crate) fn buffer_reply(
        &self,
        at: DcId,
        inbox: &mut DelayedInbox<ReplyEnvelope>,
        env: ReplyEnvelope,
    ) {
        self.transport.buffer_reply(at, inbox, env);
    }

    /// Sends a protocol request from the endpoint at `from` to the server at `to` (the
    /// transport's request-leg fault interposition point).
    pub(crate) fn send_request(
        &self,
        from: DcId,
        to: DcId,
        endpoint: &crate::transport::Endpoint,
        inbound: Inbound,
    ) -> StoreResult<()> {
        self.transport.send_request(from, to, endpoint, inbound)
    }

    pub(crate) fn control(&self, to: DcId, msg: ControlMsg) {
        let _ = self.transport.control(to, msg);
    }
}

/// One [`Cluster::stats`] scrape: the client-process metrics snapshot plus one snapshot
/// per data-center server, fetched through the transport (in-process channel or the
/// `StatsRequest`/`StatsReply` wire frames — the same call works against a 6-process
/// TCP deployment).
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Client-side metrics: operation spans, retries, transport fault drops.
    pub client: MetricsSnapshot,
    /// Per-DC server metrics, keyed by data center.
    pub servers: BTreeMap<DcId, MetricsSnapshot>,
}

/// A LEGOStore deployment (in-process or over TCP).
pub struct Cluster {
    pub(crate) inner: Arc<ClusterInner>,
    handles: Vec<JoinHandle<()>>,
}

impl Cluster {
    /// Spawns one in-process server thread per data center of `model`.
    pub fn new(model: CloudModel, options: ClusterOptions) -> Cluster {
        let model = Arc::new(model);
        let clock = options.clock.clone();
        let obs = Obs::new(options.obs);
        let links = LinkPolicy::new(
            model.clone(),
            options.latency_scale,
            options.metadata_bytes,
            clock.clone(),
            &options.fault_plan,
            obs.clone(),
        );
        let (transport, receivers) = InProcTransport::new(links, model.dc_ids());
        let obs_level = options.obs;
        let metadata_bytes = options.metadata_bytes;
        let epoch_lease_ns = options.epoch_lease_ns();
        let client_metrics = ClientMetrics::new(&obs);
        let inner = Arc::new(ClusterInner {
            model,
            options,
            transport: Arc::new(transport),
            metadata: Mutex::new(HashMap::new()),
            recorder: Arc::new(HistoryRecorder::new()),
            next_client_id: AtomicU32::new(1),
            obs,
            client_metrics,
        });
        let handles = receivers
            .into_iter()
            .map(|(dc, rx)| {
                let clock = clock.clone();
                // Each server thread owns its own `Obs` — per-DC registries, exactly
                // like one per server process — answered via `ServerMsg::Stats`.
                let obs = Obs::new(obs_level);
                std::thread::Builder::new()
                    .name(format!("legostore-server-{dc}"))
                    .spawn(move || {
                        server_loop(dc, rx, clock, obs, metadata_bytes, epoch_lease_ns)
                    })
                    .expect("spawn server thread")
            })
            .collect();
        Cluster { inner, handles }
    }

    /// Connects to an already-running deployment: one `legostore-server` (process or
    /// thread) per data center of `model`, listening at `addrs`.
    ///
    /// The servers exchange real bytes with this process — length-prefixed frames from
    /// [`legostore_proto::wire`] — so a 6-DC cluster can run as 6 OS processes. Socket
    /// delivery is invisible to a virtual clock's in-flight accounting, so if
    /// `options.clock` is virtual it is silently replaced with [`Clock::real`] (the
    /// returned cluster's [`Cluster::options`] show the clock actually in use). Modeled
    /// geo-latencies and the fault plan still apply: both are imposed on this side of the
    /// socket, additively with the real loopback/network delay.
    ///
    /// Fails if some server cannot be reached (refused connections are retried for a few
    /// seconds to tolerate servers that are still starting).
    pub fn connect_tcp(
        model: CloudModel,
        mut options: ClusterOptions,
        addrs: &HashMap<DcId, SocketAddr>,
    ) -> StoreResult<Cluster> {
        if options.clock.is_virtual() {
            options.clock = Clock::real();
        }
        let model = Arc::new(model);
        for dc in model.dc_ids() {
            if !addrs.contains_key(&dc) {
                return Err(StoreError::Transport(format!("no server address for {dc}")));
            }
        }
        let obs = Obs::new(options.obs);
        let links = LinkPolicy::new(
            model.clone(),
            options.latency_scale,
            options.metadata_bytes,
            options.clock.clone(),
            &options.fault_plan,
            obs.clone(),
        );
        let transport = TcpTransport::connect(links, addrs)?;
        let client_metrics = ClientMetrics::new(&obs);
        let inner = Arc::new(ClusterInner {
            model,
            options,
            transport: Arc::new(transport),
            metadata: Mutex::new(HashMap::new()),
            recorder: Arc::new(HistoryRecorder::new()),
            next_client_id: AtomicU32::new(1),
            obs,
            client_metrics,
        });
        Ok(Cluster { inner, handles: Vec::new() })
    }

    /// Spawns a deployment over the paper's nine GCP data centers with default options.
    pub fn gcp9(options: ClusterOptions) -> Cluster {
        Cluster::new(CloudModel::gcp9(), options)
    }

    /// The cloud model this deployment spans.
    pub fn model(&self) -> &CloudModel {
        &self.inner.model
    }

    /// The options the deployment was built with.
    pub fn options(&self) -> &ClusterOptions {
        &self.inner.options
    }

    /// A client bound to data center `dc` (the paper's "client" component that the user
    /// library talks to; users pick the nearest DC).
    pub fn client(&self, dc: DcId) -> crate::client::StoreClient {
        crate::client::StoreClient::new(self.inner.clone(), dc)
    }

    /// The shared operation-history recorder (for linearizability checking).
    pub fn recorder(&self) -> Arc<HistoryRecorder> {
        self.inner.recorder.clone()
    }

    /// The client-process telemetry handle: metrics registry, per-op records, and the
    /// fault flight recorder. Inert unless [`ClusterOptions::obs`] enables it.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Scrapes the full deployment: the local client snapshot plus every data-center
    /// server's snapshot through the transport. Works identically for in-process
    /// servers (channel round trip) and multi-process TCP servers (stats frames).
    pub fn stats(&self) -> StoreResult<ClusterStats> {
        let mut servers = BTreeMap::new();
        for dc in self.inner.model.dc_ids() {
            servers.insert(dc, self.inner.transport.fetch_stats(dc)?);
        }
        Ok(ClusterStats { client: self.inner.obs.snapshot(), servers })
    }

    /// The authoritative configuration of `key`, if it exists.
    pub fn metadata_config(&self, key: &Key) -> Option<Configuration> {
        self.inner.metadata.lock().get(key).cloned()
    }

    /// Marks a data center as failed: its server drops all traffic.
    pub fn fail_dc(&self, dc: DcId) {
        self.inner.control(dc, ControlMsg::SetFailed(true));
    }

    /// Recovers a previously failed data center.
    pub fn recover_dc(&self, dc: DcId) {
        self.inner.control(dc, ControlMsg::SetFailed(false));
    }

    /// Runs CAS garbage collection on every server, keeping `keep_recent` old versions.
    pub fn garbage_collect(&self, keep_recent: usize) {
        for dc in self.inner.model.dc_ids() {
            self.inner.control(dc, ControlMsg::GarbageCollect(keep_recent));
        }
    }

    /// The default configuration CREATE uses when none is given: ABD with majority quorums
    /// over the `2f + 1` data centers nearest to the creating client (paper §3.1 footnote:
    /// "a default configuration uses the nearest DCs").
    pub fn default_config(&self, near: DcId) -> Configuration {
        let f = self.inner.options.default_fault_tolerance;
        let dcs: Vec<DcId> = self
            .inner
            .model
            .nearest_dcs(near)
            .into_iter()
            .take(2 * f + 1)
            .collect();
        Configuration::abd_majority(dcs, f)
    }

    /// Installs `key` with an explicit configuration and initial value, bypassing the
    /// networked CREATE path (used by experiments to set up many keys quickly).
    pub fn install_key(&self, key: impl Into<Key>, config: Configuration, value: &Value) {
        let key = key.into();
        for (dc, payload) in DcServer::initial_payloads(&config, value) {
            self.inner.control(
                dc,
                ControlMsg::InstallKey {
                    key: key.clone(),
                    config: config.clone(),
                    tag: Tag::INITIAL,
                    payload,
                },
            );
        }
        self.inner
            .recorder
            .register_key(key.as_str(), legostore_lincheck::recorder::fingerprint(value.as_bytes()));
        self.inner.metadata.lock().insert(key, config);
    }

    /// Runs the reconfiguration protocol, moving `key` to `new_config`.
    ///
    /// Returns the clock-time duration of the transfer (query → write → metadata update →
    /// finish), which the paper reports as sub-second at real geo latencies. Under a
    /// virtual clock this is the modeled duration, independent of scheduler jitter.
    ///
    /// Fault tolerance: every controller round is idempotent at the servers, so if a
    /// round makes no progress for one `op_timeout` it is re-sent in full — a crashed or
    /// partitioned minority of either placement only delays the transfer. If the overall
    /// deadline of 8 × `op_timeout` passes without completing, the transfer stalls with
    /// [`StoreError::ReconfigStalled`] naming the round it died in; the metadata service
    /// still points at the old configuration, and the old servers re-activate on their
    /// epoch lease, so no key is left half-moved.
    pub fn reconfigure(&self, key: impl Into<Key>, new_config: Configuration) -> StoreResult<Duration> {
        let key = key.into();
        let old = self
            .metadata_config(&key)
            .ok_or_else(|| StoreError::KeyNotFound(key.clone()))?;
        let clock = self.inner.clock().clone();
        let _participant = clock.enter();
        let started_ns = clock.now_ns();
        let controller_dc = self.inner.options.controller_dc;
        let mut controller = ReconfigController::new(key.clone(), old, new_config);
        let target_epoch = controller.new_config().epoch;
        let endpoint = self.inner.transport.open_endpoint();
        let mut inbox: DelayedInbox<ReplyEnvelope> = DelayedInbox::new();
        let mut outbound = controller.start();
        let op_timeout_ns = self.inner.options.op_timeout.as_nanos() as u64;
        let deadline_ns = started_ns + op_timeout_ns * 8;
        let outcome = loop {
            for out in outbound.drain(..) {
                let inbound = Inbound {
                    from: endpoint.id(),
                    msg_id: 0,
                    phase: out.phase,
                    key: out.key.clone(),
                    epoch: out.epoch,
                    msg: out.msg.clone(),
                };
                self.inner.send_request(controller_dc, out.to, &endpoint, inbound)?;
            }
            // Collect replies until the controller advances. All parking happens in
            // channel waits so arriving replies keep being drained (a bare clock sleep
            // would leave them undelivered and stall a virtual clock). If a full
            // op-timeout passes with no round transition, the current round is re-sent:
            // requests or replies lost to faults are replaced, and servers that already
            // answered just answer again (all rounds are idempotent).
            let resend_at_ns = clock.now_ns() + op_timeout_ns;
            let mut progressed = None;
            while progressed.is_none() {
                while let Some(env) = endpoint.try_recv() {
                    self.inner.buffer_reply(controller_dc, &mut inbox, env);
                }
                if let Some(env) = inbox.pop_ready(clock.now_ns()) {
                    match controller.on_reply(env.from, env.phase, env.reply) {
                        ControllerProgress::Pending => {}
                        ControllerProgress::Send(msgs) => progressed = Some(Ok(msgs)),
                        ControllerProgress::Done(outcome) => progressed = Some(Err(outcome)),
                    }
                    continue;
                }
                let now = clock.now_ns();
                if now >= deadline_ns {
                    return Err(StoreError::ReconfigStalled {
                        epoch: target_epoch,
                        round: controller.round_number(),
                    });
                }
                if now >= resend_at_ns {
                    progressed = Some(Ok(controller.resend_current_round()));
                    continue;
                }
                let wake_ns = inbox
                    .next_available_at()
                    .unwrap_or(deadline_ns)
                    .min(deadline_ns)
                    .min(resend_at_ns);
                if let Some(env) = endpoint.recv_deadline_ns(wake_ns) {
                    self.inner.buffer_reply(controller_dc, &mut inbox, env);
                }
            }
            match progressed.expect("set above") {
                Ok(msgs) => outbound = msgs,
                Err(outcome) => break outcome,
            }
        };
        // The new placement holds the transferred value; publish it, then release the old
        // configuration's servers. The finish round is retried on the same op-timeout
        // cadence until every old-placement server acks or the deadline passes — but a
        // partial finish is not an error: the metadata already points at the new
        // configuration, and any old server that never hears the finish re-activates on
        // its epoch lease, fails subsequent requests with a redirect, and gets pruned.
        self.inner
            .metadata
            .lock()
            .insert(key.clone(), outcome.new_config.clone());
        let mut acked: HashSet<DcId> = HashSet::new();
        while acked.len() < outcome.finish_messages.len() && clock.now_ns() < deadline_ns {
            for out in outcome.finish_messages.iter().filter(|o| !acked.contains(&o.to)) {
                let inbound = Inbound {
                    from: endpoint.id(),
                    msg_id: 0,
                    phase: out.phase,
                    key: out.key.clone(),
                    epoch: out.epoch,
                    msg: out.msg.clone(),
                };
                self.inner.send_request(controller_dc, out.to, &endpoint, inbound)?;
            }
            let resend_at_ns = (clock.now_ns() + op_timeout_ns).min(deadline_ns);
            while acked.len() < outcome.finish_messages.len() && clock.now_ns() < resend_at_ns {
                while let Some(env) = endpoint.try_recv() {
                    self.inner.buffer_reply(controller_dc, &mut inbox, env);
                }
                if let Some(env) = inbox.pop_ready(clock.now_ns()) {
                    if env.phase == PHASE_FINISH {
                        acked.insert(env.from);
                    }
                    continue;
                }
                let wake_ns = inbox
                    .next_available_at()
                    .unwrap_or(resend_at_ns)
                    .min(resend_at_ns);
                if let Some(env) = endpoint.recv_deadline_ns(wake_ns) {
                    self.inner.buffer_reply(controller_dc, &mut inbox, env);
                }
            }
        }
        Ok(Duration::from_nanos(clock.now_ns() - started_ns))
    }

    /// Shuts the deployment down: in-process server threads are joined; TCP servers
    /// receive a shutdown frame and their connections are closed.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.inner.transport.shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The per-DC server thread: dispatches protocol messages to the shared `DcServer` state and
/// routes replies back to the endpoint that sent each (possibly deferred) request.
///
/// Telemetry: message/byte counters use the *modeled* wire sizes (the same
/// `wire_size(metadata_bytes)` the latency model charges for), and `handle` dispatch
/// time comes off the deployment clock — so under a virtual clock, durations are the
/// modeled ones (deterministically 0 for compute, since busy threads pin virtual time)
/// and two identical runs snapshot identically.
fn server_loop(
    dc: DcId,
    rx: ClockedReceiver<ServerMsg>,
    clock: Clock,
    obs: Obs,
    metadata_bytes: u64,
    epoch_lease_ns: u64,
) {
    let _participant = clock.enter();
    let mut server = DcServer::new(dc);
    server.set_epoch_lease_ns(epoch_lease_ns);
    let metrics = ServerMetrics::new(&obs, &MSG_KIND_NAMES);
    // endpoint → (reply channel, message counter at last request from that endpoint).
    let mut reply_routes: HashMap<u64, (crate::clock::ClockedSender<ReplyEnvelope>, u64)> =
        HashMap::new();
    let mut msg_counter: u64 = 0;
    while let Ok(msg) = rx.recv() {
        match msg {
            ServerMsg::Shutdown => break,
            ServerMsg::Control(ctrl) => server.apply_control(ctrl),
            ServerMsg::Stats(reply) => {
                // Point-in-time gauges are refreshed at scrape time; everything else
                // accumulated as requests were dispatched.
                metrics.keys.set(server.key_count() as u64);
                metrics.storage_bytes.set(server.storage_bytes());
                let _ = reply.send(obs.snapshot());
            }
            ServerMsg::Request { reply_to, inbound } => {
                msg_counter += 1;
                reply_routes.insert(inbound.from, (reply_to, msg_counter));
                // Bound the routing table. Evicting only the least-recently-seen half (not
                // the whole table) keeps routes of in-flight operations alive: a deferred
                // request may be answered long after it arrived, when a FinishReconfig
                // flushes it.
                if reply_routes.len() > MAX_REPLY_ROUTES {
                    legostore_proto::server::evict_stale_routes(
                        &mut reply_routes,
                        MAX_REPLY_ROUTES / 2,
                    );
                }
                let enabled = obs.enabled();
                let (msg_kind, phase) = (inbound.msg.kind_index(), inbound.phase);
                if enabled {
                    metrics.bytes_in.add(inbound.msg.wire_size(metadata_bytes));
                }
                let handled_at = clock.now_ns();
                let replies = server.handle_at(inbound, handled_at);
                let service_ns = clock.now_ns().saturating_sub(handled_at);
                if enabled {
                    metrics.on_request(msg_kind, phase, service_ns, replies.len() as u64);
                    metrics
                        .bytes_out
                        .add(replies.iter().map(|r| r.reply.wire_size(metadata_bytes)).sum());
                }
                for r in replies {
                    if let Some((route, _)) = reply_routes.get(&r.to) {
                        let _ = route.send(ReplyEnvelope {
                            endpoint: r.to,
                            from: dc,
                            sent_at_ns: clock.now_ns(),
                            service_ns,
                            phase: r.phase,
                            epoch: r.epoch,
                            reply: r.reply,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_cloud::GcpLocation;

    fn fast_options() -> ClusterOptions {
        ClusterOptions {
            latency_scale: 0.002,
            op_timeout: Duration::from_millis(250),
            clock: Clock::virtual_time(),
            ..Default::default()
        }
    }

    #[test]
    fn cluster_spins_up_and_shuts_down() {
        let cluster = Cluster::gcp9(fast_options());
        assert_eq!(cluster.model().num_dcs(), 9);
        assert!(cluster.metadata_config(&Key::from("nothing")).is_none());
        cluster.shutdown();
    }

    #[test]
    fn default_config_uses_nearest_dcs() {
        let cluster = Cluster::gcp9(fast_options());
        let tokyo = GcpLocation::Tokyo.dc();
        let config = cluster.default_config(tokyo);
        assert_eq!(config.n, 3);
        assert!(config.dcs.contains(&tokyo));
        config.validate().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn install_key_registers_metadata_and_servers() {
        let cluster = Cluster::gcp9(fast_options());
        let config = Configuration::cas_default(
            vec![
                GcpLocation::Tokyo.dc(),
                GcpLocation::Singapore.dc(),
                GcpLocation::Oregon.dc(),
                GcpLocation::Virginia.dc(),
                GcpLocation::Frankfurt.dc(),
            ],
            3,
            1,
        );
        cluster.install_key("wiki", config.clone(), &Value::filler(333));
        assert_eq!(cluster.metadata_config(&Key::from("wiki")).unwrap().describe(), "CAS(5,3)");
        // A client can read the installed value.
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        let v = client.get(&Key::from("wiki")).expect("get succeeds");
        assert_eq!(v, Value::filler(333));
        cluster.shutdown();
    }

    #[test]
    fn reconfigure_moves_a_key_between_protocols() {
        let cluster = Cluster::gcp9(fast_options());
        let tokyo = GcpLocation::Tokyo.dc();
        let abd = Configuration::abd_majority(
            vec![tokyo, GcpLocation::LosAngeles.dc(), GcpLocation::Oregon.dc()],
            1,
        );
        cluster.install_key("k", abd, &Value::from("original"));
        let mut client = cluster.client(tokyo);
        client.put(&Key::from("k"), Value::from("v2")).unwrap();

        let new_config = Configuration::cas_default(
            vec![
                GcpLocation::Singapore.dc(),
                GcpLocation::Frankfurt.dc(),
                GcpLocation::Virginia.dc(),
                GcpLocation::Oregon.dc(),
            ],
            2,
            1,
        );
        let took = cluster.reconfigure("k", new_config).expect("reconfig succeeds");
        assert!(took < Duration::from_secs(5));
        let meta = cluster.metadata_config(&Key::from("k")).unwrap();
        assert_eq!(meta.describe(), "CAS(4,2)");
        assert_eq!(meta.epoch.0, 1);
        // Reads (from a fresh client and from the stale one) observe the latest value.
        let mut fresh = cluster.client(GcpLocation::Frankfurt.dc());
        assert_eq!(fresh.get(&Key::from("k")).unwrap(), Value::from("v2"));
        assert_eq!(client.get(&Key::from("k")).unwrap(), Value::from("v2"));
        cluster.shutdown();
    }

    #[test]
    fn failed_dc_is_tolerated_by_quorums() {
        let cluster = Cluster::gcp9(fast_options());
        let tokyo = GcpLocation::Tokyo.dc();
        let config = Configuration::abd_majority(
            vec![tokyo, GcpLocation::LosAngeles.dc(), GcpLocation::Oregon.dc()],
            1,
        );
        cluster.install_key("k", config, &Value::from("v"));
        cluster.fail_dc(GcpLocation::LosAngeles.dc());
        let mut client = cluster.client(tokyo);
        // The operation may need a timeout-driven retry with a widened quorum, but must
        // succeed because only one of three DCs failed.
        let got = client.get(&Key::from("k")).expect("tolerates one failure");
        assert_eq!(got, Value::from("v"));
        client.put(&Key::from("k"), Value::from("v2")).expect("puts tolerate failure too");
        cluster.recover_dc(GcpLocation::LosAngeles.dc());
        assert_eq!(client.get(&Key::from("k")).unwrap(), Value::from("v2"));
        cluster.shutdown();
    }

    #[test]
    fn real_clock_smoke_round_trip() {
        // One end-to-end exercise of the default (wall-clock) time source, so the
        // RealClock wiring stays covered even though most tests run on virtual time.
        let cluster = Cluster::gcp9(ClusterOptions {
            latency_scale: 0.002,
            op_timeout: Duration::from_millis(250),
            ..Default::default()
        });
        assert!(!cluster.options().clock.is_virtual());
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        let key = Key::from("real-time");
        client.create(&key, Value::from("wall")).unwrap();
        assert_eq!(client.get(&key).unwrap(), Value::from("wall"));
        assert!(cluster.recorder().check_all().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn connect_tcp_rejects_missing_addresses_and_forces_real_clock() {
        use legostore_cloud::CloudModelBuilder;
        use std::net::TcpListener;

        let model = CloudModelBuilder::uniform(2).build();
        // Missing address for DC 1 → typed transport error, no hang.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut addrs = HashMap::new();
        addrs.insert(DcId(0), listener.local_addr().unwrap());
        let Err(err) = Cluster::connect_tcp(model.clone(), fast_options(), &addrs) else {
            panic!("expected a transport error for the missing address");
        };
        assert!(matches!(err, StoreError::Transport(_)), "{err:?}");

        // With both addresses present the cluster connects — and silently swaps the
        // requested virtual clock for a real one (sockets have no in-flight accounting).
        let listener2 = TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.insert(DcId(1), listener2.local_addr().unwrap());
        let drain = |listener: TcpListener| {
            std::thread::spawn(move || {
                // Accept the one client connection and drain it until EOF.
                if let Ok((mut conn, _)) = listener.accept() {
                    let mut buf = [0u8; 1024];
                    while matches!(std::io::Read::read(&mut conn, &mut buf), Ok(n) if n > 0) {}
                }
            })
        };
        let t1 = drain(listener);
        let t2 = drain(listener2);
        let options = fast_options();
        assert!(options.clock.is_virtual());
        let cluster = Cluster::connect_tcp(model, options, &addrs).expect("connects");
        assert!(!cluster.options().clock.is_virtual(), "virtual clock must be replaced");
        cluster.shutdown();
        t1.join().unwrap();
        t2.join().unwrap();
    }
}
