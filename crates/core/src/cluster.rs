//! The in-process deployment: per-DC server threads, the metadata service and the
//! reconfiguration controller.

use crate::clock::{Clock, ClockedReceiver, ClockedSender};
use crate::inbox::DelayedInbox;
use legostore_cloud::CloudModel;
use legostore_lincheck::HistoryRecorder;
use legostore_proto::msg::{ProtoReply, ReconfigPayload};
use legostore_proto::reconfig::{ControllerProgress, ReconfigController};
use legostore_proto::server::{DcServer, Inbound};
use legostore_types::{
    Configuration, DcId, FaultPlan, FaultState, Key, LinkVerdict, StoreError, StoreResult, Tag,
    Value,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on a server's reply-routing table; crossing it triggers an eviction of the
/// least-recently-seen half (see [`evict_stale_routes`]).
const MAX_REPLY_ROUTES: usize = 100_000;

/// Tunables of an in-process deployment.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Factor applied to the cloud model's RTTs before sleeping (1.0 = real geo latencies;
    /// tests use a small fraction so a 300 ms RTT becomes a few ms).
    pub latency_scale: f64,
    /// Metadata bytes per message (`o_m`).
    pub metadata_bytes: u64,
    /// Per-attempt operation timeout in *scaled* clock time.
    pub op_timeout: Duration,
    /// Maximum operation attempts (initial + retries) before giving up.
    pub max_attempts: u32,
    /// Data center hosting the reconfiguration controller and authoritative metadata.
    pub controller_dc: DcId,
    /// Default fault tolerance used by CREATE's default configuration.
    pub default_fault_tolerance: usize,
    /// Whether GETs use the optimized one-phase fast paths.
    pub optimized_get: bool,
    /// Time source shared by every component of the deployment. Defaults to real
    /// (wall-clock) time; [`Clock::virtual_time`] runs the same protocols on logical time,
    /// collapsing modeled RTT waits to microseconds and making timestamps deterministic.
    pub clock: Clock,
    /// Deterministic fault schedule injected at the deployment's transport layer (see
    /// [`legostore_types::fault`]). Event times are model milliseconds, scaled by
    /// [`ClusterOptions::latency_scale`] exactly like the cloud model's RTTs. The default
    /// empty plan injects nothing and costs nothing on the message path.
    pub fault_plan: FaultPlan,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            latency_scale: 0.05,
            metadata_bytes: legostore_cloud::METADATA_BYTES,
            op_timeout: Duration::from_millis(500),
            max_attempts: 4,
            controller_dc: DcId(7),
            default_fault_tolerance: 1,
            optimized_get: true,
            clock: Clock::real(),
            fault_plan: FaultPlan::none(),
        }
    }
}

/// A reply traveling back to a client or to the controller.
#[derive(Debug, Clone)]
pub(crate) struct ReplyEnvelope {
    /// The endpoint (operation attempt) this reply is for.
    pub endpoint: u64,
    /// Server data center that produced the reply.
    pub from: DcId,
    /// Clock timestamp ([`Clock::now_ns`]) at which the server emitted the reply.
    pub sent_at_ns: u64,
    /// Echoed protocol phase.
    pub phase: u8,
    /// Reply body.
    pub reply: ProtoReply,
}

pub(crate) enum ControlMsg {
    InstallKey {
        key: Key,
        config: Configuration,
        tag: Tag,
        payload: ReconfigPayload,
    },
    RemoveKey(Key),
    SetFailed(bool),
    GarbageCollect(usize),
}

pub(crate) enum ServerMsg {
    Request {
        reply_to: ClockedSender<ReplyEnvelope>,
        inbound: Inbound,
    },
    Control(ControlMsg),
    Shutdown,
}

pub(crate) struct ClusterInner {
    pub(crate) model: CloudModel,
    pub(crate) options: ClusterOptions,
    pub(crate) senders: HashMap<DcId, ClockedSender<ServerMsg>>,
    pub(crate) metadata: Mutex<HashMap<Key, Configuration>>,
    pub(crate) recorder: Arc<HistoryRecorder>,
    pub(crate) next_client_id: AtomicU32,
    pub(crate) next_endpoint: AtomicU64,
    /// Interpreter of [`ClusterOptions::fault_plan`]; `None` when the plan is empty so
    /// the fault-free message path takes no lock.
    pub(crate) faults: Option<Mutex<FaultState>>,
}

impl ClusterInner {
    /// The deployment's shared time source.
    pub(crate) fn clock(&self) -> &Clock {
        &self.options.clock
    }

    /// Nanoseconds since the clock's epoch (used as linearizability-check timestamps).
    pub(crate) fn now_ns(&self) -> u64 {
        self.clock().now_ns()
    }

    /// One-way + return delay the client should wait before consuming a reply from `from`.
    pub(crate) fn reply_delay(&self, client: DcId, from: DcId, reply_bytes: u64) -> Duration {
        let ms = self.model.rtt_ms(client, from)
            + self.model.transfer_time_ms(from, client, reply_bytes);
        Duration::from_secs_f64(ms * self.options.latency_scale / 1000.0)
    }

    /// The clock reading converted to the fault plan's time domain (model milliseconds,
    /// i.e. clock time divided by `latency_scale`).
    fn model_now_ms(&self) -> f64 {
        self.now_ns() as f64 / 1_000_000.0 / self.options.latency_scale
    }

    /// The fate of one message on the `from → to` link under the active fault plan.
    /// Fault events are applied lazily: everything scheduled at or before the current
    /// model instant takes effect before the verdict is drawn.
    pub(crate) fn fault_verdict(&self, from: DcId, to: DcId) -> LinkVerdict {
        let Some(faults) = &self.faults else {
            return LinkVerdict::CLEAN;
        };
        let mut state = faults.lock();
        state.advance_to(self.model_now_ms());
        state.verdict(from, to)
    }

    /// Buffers `env` in `inbox` at its modeled arrival instant for a consumer at `at`.
    ///
    /// This is the reply-leg fault interposition point: a faulted link drops the reply
    /// (the client only notices via its attempt timeout), a slow or lossy link defers it
    /// past the fault-free arrival instant, and a duplicating link buffers it twice (the
    /// protocol quorum trackers dedupe responders by DC, so duplicates are harmless).
    pub(crate) fn buffer_reply(
        &self,
        at: DcId,
        inbox: &mut DelayedInbox<ReplyEnvelope>,
        env: ReplyEnvelope,
    ) {
        let (copies, extra_ms) = match self.fault_verdict(env.from, at) {
            LinkVerdict::Drop => return,
            LinkVerdict::Deliver { copies, extra_delay_ms } => (copies, extra_delay_ms),
        };
        let delay = self.reply_delay(at, env.from, env.reply.wire_size(self.options.metadata_bytes))
            + Duration::from_secs_f64(extra_ms * self.options.latency_scale / 1000.0);
        for _ in 1..copies {
            inbox.push(env.sent_at_ns, delay, env.clone());
        }
        inbox.push(env.sent_at_ns, delay, env);
    }

    /// Sends a protocol request from the endpoint at `from` to the server at `to`.
    ///
    /// This is the request-leg fault interposition point: a dropped request is simply
    /// never delivered (`Ok(())` — the network gives no failure signal), and a
    /// duplicated one is enqueued twice. Extra fault delay is applied on the reply leg
    /// only, matching how the deployment models the whole round trip on the reply side.
    pub(crate) fn send_request(
        &self,
        from: DcId,
        to: DcId,
        reply_to: ClockedSender<ReplyEnvelope>,
        inbound: Inbound,
    ) -> StoreResult<()> {
        let copies = match self.fault_verdict(from, to) {
            LinkVerdict::Drop => return Ok(()),
            LinkVerdict::Deliver { copies, .. } => copies,
        };
        let sender = self
            .senders
            .get(&to)
            .ok_or_else(|| StoreError::Transport(format!("unknown data center {to}")))?;
        for _ in 1..copies {
            sender
                .send(ServerMsg::Request { reply_to: reply_to.clone(), inbound: inbound.clone() })
                .map_err(|_| StoreError::Transport(format!("server {to} has shut down")))?;
        }
        sender
            .send(ServerMsg::Request { reply_to, inbound })
            .map_err(|_| StoreError::Transport(format!("server {to} has shut down")))
    }

    pub(crate) fn control(&self, to: DcId, msg: ControlMsg) {
        if let Some(sender) = self.senders.get(&to) {
            let _ = sender.send(ServerMsg::Control(msg));
        }
    }
}

/// The in-process LEGOStore deployment.
pub struct Cluster {
    pub(crate) inner: Arc<ClusterInner>,
    handles: Vec<JoinHandle<()>>,
}

impl Cluster {
    /// Spawns one server thread per data center of `model`.
    pub fn new(model: CloudModel, options: ClusterOptions) -> Cluster {
        let clock = options.clock.clone();
        let mut senders = HashMap::new();
        let mut receivers: Vec<(DcId, ClockedReceiver<ServerMsg>)> = Vec::new();
        for dc in model.dc_ids() {
            let (tx, rx) = clock.channel();
            senders.insert(dc, tx);
            receivers.push((dc, rx));
        }
        let faults = (!options.fault_plan.is_empty())
            .then(|| Mutex::new(FaultState::new(&options.fault_plan)));
        let inner = Arc::new(ClusterInner {
            model,
            options,
            senders,
            metadata: Mutex::new(HashMap::new()),
            recorder: Arc::new(HistoryRecorder::new()),
            next_client_id: AtomicU32::new(1),
            next_endpoint: AtomicU64::new(1),
            faults,
        });
        let handles = receivers
            .into_iter()
            .map(|(dc, rx)| {
                let clock = clock.clone();
                std::thread::Builder::new()
                    .name(format!("legostore-server-{dc}"))
                    .spawn(move || server_loop(dc, rx, clock))
                    .expect("spawn server thread")
            })
            .collect();
        Cluster { inner, handles }
    }

    /// Spawns a deployment over the paper's nine GCP data centers with default options.
    pub fn gcp9(options: ClusterOptions) -> Cluster {
        Cluster::new(CloudModel::gcp9(), options)
    }

    /// The cloud model this deployment spans.
    pub fn model(&self) -> &CloudModel {
        &self.inner.model
    }

    /// The options the deployment was built with.
    pub fn options(&self) -> &ClusterOptions {
        &self.inner.options
    }

    /// A client bound to data center `dc` (the paper's "client" component that the user
    /// library talks to; users pick the nearest DC).
    pub fn client(&self, dc: DcId) -> crate::client::StoreClient {
        crate::client::StoreClient::new(self.inner.clone(), dc)
    }

    /// The shared operation-history recorder (for linearizability checking).
    pub fn recorder(&self) -> Arc<HistoryRecorder> {
        self.inner.recorder.clone()
    }

    /// The authoritative configuration of `key`, if it exists.
    pub fn metadata_config(&self, key: &Key) -> Option<Configuration> {
        self.inner.metadata.lock().get(key).cloned()
    }

    /// Marks a data center as failed: its server drops all traffic.
    pub fn fail_dc(&self, dc: DcId) {
        self.inner.control(dc, ControlMsg::SetFailed(true));
    }

    /// Recovers a previously failed data center.
    pub fn recover_dc(&self, dc: DcId) {
        self.inner.control(dc, ControlMsg::SetFailed(false));
    }

    /// Runs CAS garbage collection on every server, keeping `keep_recent` old versions.
    pub fn garbage_collect(&self, keep_recent: usize) {
        for dc in self.inner.model.dc_ids() {
            self.inner.control(dc, ControlMsg::GarbageCollect(keep_recent));
        }
    }

    /// The default configuration CREATE uses when none is given: ABD with majority quorums
    /// over the `2f + 1` data centers nearest to the creating client (paper §3.1 footnote:
    /// "a default configuration uses the nearest DCs").
    pub fn default_config(&self, near: DcId) -> Configuration {
        let f = self.inner.options.default_fault_tolerance;
        let dcs: Vec<DcId> = self
            .inner
            .model
            .nearest_dcs(near)
            .into_iter()
            .take(2 * f + 1)
            .collect();
        Configuration::abd_majority(dcs, f)
    }

    /// Installs `key` with an explicit configuration and initial value, bypassing the
    /// networked CREATE path (used by experiments to set up many keys quickly).
    pub fn install_key(&self, key: impl Into<Key>, config: Configuration, value: &Value) {
        let key = key.into();
        for (dc, payload) in DcServer::initial_payloads(&config, value) {
            self.inner.control(
                dc,
                ControlMsg::InstallKey {
                    key: key.clone(),
                    config: config.clone(),
                    tag: Tag::INITIAL,
                    payload,
                },
            );
        }
        self.inner
            .recorder
            .register_key(key.as_str(), legostore_lincheck::recorder::fingerprint(value.as_bytes()));
        self.inner.metadata.lock().insert(key, config);
    }

    /// Runs the reconfiguration protocol, moving `key` to `new_config`.
    ///
    /// Returns the clock-time duration of the transfer (query → write → metadata update →
    /// finish), which the paper reports as sub-second at real geo latencies. Under a
    /// virtual clock this is the modeled duration, independent of scheduler jitter.
    pub fn reconfigure(&self, key: impl Into<Key>, new_config: Configuration) -> StoreResult<Duration> {
        let key = key.into();
        let old = self
            .metadata_config(&key)
            .ok_or_else(|| StoreError::KeyNotFound(key.clone()))?;
        let clock = self.inner.clock().clone();
        let _participant = clock.enter();
        let started_ns = clock.now_ns();
        let controller_dc = self.inner.options.controller_dc;
        let mut controller = ReconfigController::new(key.clone(), old, new_config);
        let (tx, rx) = clock.channel::<ReplyEnvelope>();
        let endpoint = self.inner.next_endpoint.fetch_add(1, Ordering::Relaxed);
        let mut inbox: DelayedInbox<ReplyEnvelope> = DelayedInbox::new();
        let mut outbound = controller.start();
        let deadline_ns = started_ns + (self.inner.options.op_timeout * 8).as_nanos() as u64;
        let outcome = loop {
            for out in outbound.drain(..) {
                let inbound = Inbound {
                    from: endpoint,
                    msg_id: 0,
                    phase: out.phase,
                    key: out.key.clone(),
                    epoch: out.epoch,
                    msg: out.msg.clone(),
                };
                self.inner.send_request(controller_dc, out.to, tx.clone(), inbound)?;
            }
            // Collect replies until the controller advances. All parking happens in
            // channel waits so arriving replies keep being drained (a bare clock sleep
            // would leave them undelivered and stall a virtual clock).
            let mut progressed = None;
            while progressed.is_none() {
                while let Ok(env) = rx.try_recv() {
                    self.inner.buffer_reply(controller_dc, &mut inbox, env);
                }
                if let Some(env) = inbox.pop_ready(clock.now_ns()) {
                    match controller.on_reply(env.from, env.phase, env.reply) {
                        ControllerProgress::Pending => {}
                        ControllerProgress::Send(msgs) => progressed = Some(Ok(msgs)),
                        ControllerProgress::Done(outcome) => progressed = Some(Err(outcome)),
                    }
                    continue;
                }
                let wake_ns = inbox
                    .next_available_at()
                    .unwrap_or(deadline_ns)
                    .min(deadline_ns);
                if clock.now_ns() >= deadline_ns {
                    return Err(StoreError::QuorumTimeout { needed: 0, received: 0 });
                }
                match rx.recv_deadline_ns(wake_ns) {
                    Ok(env) => {
                        self.inner.buffer_reply(controller_dc, &mut inbox, env);
                    }
                    Err(_) => {
                        if clock.now_ns() >= deadline_ns {
                            return Err(StoreError::QuorumTimeout { needed: 0, received: 0 });
                        }
                    }
                }
            }
            match progressed.expect("set above") {
                Ok(msgs) => outbound = msgs,
                Err(outcome) => break outcome,
            }
        };
        // Update the metadata service, then release the old configuration's servers.
        self.inner
            .metadata
            .lock()
            .insert(key.clone(), outcome.new_config.clone());
        for out in &outcome.finish_messages {
            let inbound = Inbound {
                from: endpoint,
                msg_id: 0,
                phase: out.phase,
                key: out.key.clone(),
                epoch: out.epoch,
                msg: out.msg.clone(),
            };
            self.inner
                .send_request(self.inner.options.controller_dc, out.to, tx.clone(), inbound)?;
        }
        Ok(Duration::from_nanos(clock.now_ns() - started_ns))
    }

    /// Shuts the deployment down, joining every server thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for sender in self.inner.senders.values() {
            let _ = sender.send(ServerMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Drops the least-recently-seen reply routes until only `keep` remain.
///
/// `routes` maps an endpoint id to its reply channel plus the per-server message counter
/// value at which the endpoint last sent a request. Endpoints with recent activity are the
/// ones that may still receive (possibly deferred) replies; evicting only the stale tail —
/// instead of clearing the whole table — keeps live operations routable.
fn evict_stale_routes<T>(routes: &mut HashMap<u64, (T, u64)>, keep: usize) {
    if routes.len() <= keep {
        return;
    }
    let mut stamps: Vec<u64> = routes.values().map(|(_, seen)| *seen).collect();
    stamps.sort_unstable();
    // Stamps are unique (one per inserted request), so this keeps exactly `keep` entries.
    let cutoff = stamps[stamps.len() - keep];
    routes.retain(|_, (_, seen)| *seen >= cutoff);
}

/// The per-DC server thread: dispatches protocol messages to the shared `DcServer` state and
/// routes replies back to the endpoint that sent each (possibly deferred) request.
fn server_loop(dc: DcId, rx: ClockedReceiver<ServerMsg>, clock: Clock) {
    let _participant = clock.enter();
    let mut server = DcServer::new(dc);
    // endpoint → (reply channel, message counter at last request from that endpoint).
    let mut reply_routes: HashMap<u64, (ClockedSender<ReplyEnvelope>, u64)> = HashMap::new();
    let mut msg_counter: u64 = 0;
    while let Ok(msg) = rx.recv() {
        match msg {
            ServerMsg::Shutdown => break,
            ServerMsg::Control(ctrl) => match ctrl {
                ControlMsg::InstallKey {
                    key,
                    config,
                    tag,
                    payload,
                } => server.install_key(key, config, tag, payload),
                ControlMsg::RemoveKey(key) => {
                    server.remove_key(&key);
                }
                ControlMsg::SetFailed(failed) => server.set_failed(failed),
                ControlMsg::GarbageCollect(keep) => {
                    server.garbage_collect(keep);
                }
            },
            ServerMsg::Request { reply_to, inbound } => {
                msg_counter += 1;
                reply_routes.insert(inbound.from, (reply_to, msg_counter));
                // Bound the routing table. Evicting only the least-recently-seen half (not
                // the whole table) keeps routes of in-flight operations alive: a deferred
                // request may be answered long after it arrived, when a FinishReconfig
                // flushes it.
                if reply_routes.len() > MAX_REPLY_ROUTES {
                    evict_stale_routes(&mut reply_routes, MAX_REPLY_ROUTES / 2);
                }
                let replies = server.handle(inbound);
                for r in replies {
                    if let Some((route, _)) = reply_routes.get(&r.to) {
                        let _ = route.send(ReplyEnvelope {
                            endpoint: r.to,
                            from: dc,
                            sent_at_ns: clock.now_ns(),
                            phase: r.phase,
                            reply: r.reply,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_cloud::GcpLocation;

    fn fast_options() -> ClusterOptions {
        ClusterOptions {
            latency_scale: 0.002,
            op_timeout: Duration::from_millis(250),
            clock: Clock::virtual_time(),
            ..Default::default()
        }
    }

    #[test]
    fn cluster_spins_up_and_shuts_down() {
        let cluster = Cluster::gcp9(fast_options());
        assert_eq!(cluster.model().num_dcs(), 9);
        assert!(cluster.metadata_config(&Key::from("nothing")).is_none());
        cluster.shutdown();
    }

    #[test]
    fn default_config_uses_nearest_dcs() {
        let cluster = Cluster::gcp9(fast_options());
        let tokyo = GcpLocation::Tokyo.dc();
        let config = cluster.default_config(tokyo);
        assert_eq!(config.n, 3);
        assert!(config.dcs.contains(&tokyo));
        config.validate().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn install_key_registers_metadata_and_servers() {
        let cluster = Cluster::gcp9(fast_options());
        let config = Configuration::cas_default(
            vec![
                GcpLocation::Tokyo.dc(),
                GcpLocation::Singapore.dc(),
                GcpLocation::Oregon.dc(),
                GcpLocation::Virginia.dc(),
                GcpLocation::Frankfurt.dc(),
            ],
            3,
            1,
        );
        cluster.install_key("wiki", config.clone(), &Value::filler(333));
        assert_eq!(cluster.metadata_config(&Key::from("wiki")).unwrap().describe(), "CAS(5,3)");
        // A client can read the installed value.
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        let v = client.get(&Key::from("wiki")).expect("get succeeds");
        assert_eq!(v, Value::filler(333));
        cluster.shutdown();
    }

    #[test]
    fn reconfigure_moves_a_key_between_protocols() {
        let cluster = Cluster::gcp9(fast_options());
        let tokyo = GcpLocation::Tokyo.dc();
        let abd = Configuration::abd_majority(
            vec![tokyo, GcpLocation::LosAngeles.dc(), GcpLocation::Oregon.dc()],
            1,
        );
        cluster.install_key("k", abd, &Value::from("original"));
        let mut client = cluster.client(tokyo);
        client.put(&Key::from("k"), Value::from("v2")).unwrap();

        let new_config = Configuration::cas_default(
            vec![
                GcpLocation::Singapore.dc(),
                GcpLocation::Frankfurt.dc(),
                GcpLocation::Virginia.dc(),
                GcpLocation::Oregon.dc(),
            ],
            2,
            1,
        );
        let took = cluster.reconfigure("k", new_config).expect("reconfig succeeds");
        assert!(took < Duration::from_secs(5));
        let meta = cluster.metadata_config(&Key::from("k")).unwrap();
        assert_eq!(meta.describe(), "CAS(4,2)");
        assert_eq!(meta.epoch.0, 1);
        // Reads (from a fresh client and from the stale one) observe the latest value.
        let mut fresh = cluster.client(GcpLocation::Frankfurt.dc());
        assert_eq!(fresh.get(&Key::from("k")).unwrap(), Value::from("v2"));
        assert_eq!(client.get(&Key::from("k")).unwrap(), Value::from("v2"));
        cluster.shutdown();
    }

    #[test]
    fn failed_dc_is_tolerated_by_quorums() {
        let cluster = Cluster::gcp9(fast_options());
        let tokyo = GcpLocation::Tokyo.dc();
        let config = Configuration::abd_majority(
            vec![tokyo, GcpLocation::LosAngeles.dc(), GcpLocation::Oregon.dc()],
            1,
        );
        cluster.install_key("k", config, &Value::from("v"));
        cluster.fail_dc(GcpLocation::LosAngeles.dc());
        let mut client = cluster.client(tokyo);
        // The operation may need a timeout-driven retry with a widened quorum, but must
        // succeed because only one of three DCs failed.
        let got = client.get(&Key::from("k")).expect("tolerates one failure");
        assert_eq!(got, Value::from("v"));
        client.put(&Key::from("k"), Value::from("v2")).expect("puts tolerate failure too");
        cluster.recover_dc(GcpLocation::LosAngeles.dc());
        assert_eq!(client.get(&Key::from("k")).unwrap(), Value::from("v2"));
        cluster.shutdown();
    }

    #[test]
    fn real_clock_smoke_round_trip() {
        // One end-to-end exercise of the default (wall-clock) time source, so the
        // RealClock wiring stays covered even though most tests run on virtual time.
        let cluster = Cluster::gcp9(ClusterOptions {
            latency_scale: 0.002,
            op_timeout: Duration::from_millis(250),
            ..Default::default()
        });
        assert!(!cluster.options().clock.is_virtual());
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        let key = Key::from("real-time");
        client.create(&key, Value::from("wall")).unwrap();
        assert_eq!(client.get(&key).unwrap(), Value::from("wall"));
        assert!(cluster.recorder().check_all().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn stale_route_eviction_keeps_recent_endpoints() {
        let mut routes: HashMap<u64, ((), u64)> = HashMap::new();
        for endpoint in 0..100u64 {
            routes.insert(endpoint, ((), endpoint + 1)); // stamp = insertion order
        }
        // Endpoint 3 sends a fresh request much later: its stamp is refreshed.
        routes.insert(3, ((), 101));
        evict_stale_routes(&mut routes, 10);
        assert_eq!(routes.len(), 10);
        assert!(routes.contains_key(&3), "recently active endpoint must survive");
        for endpoint in 92..100u64 {
            assert!(routes.contains_key(&endpoint), "endpoint {endpoint} is recent");
        }
        assert!(!routes.contains_key(&0), "stale endpoint must be evicted");
        // Under the threshold nothing happens.
        let before: Vec<u64> = routes.keys().copied().collect();
        evict_stale_routes(&mut routes, 10);
        assert_eq!(routes.len(), before.len());
    }
}
