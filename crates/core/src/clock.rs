//! Real and virtual time sources for the in-process deployment.
//!
//! Every timing decision in `legostore-core` — the modeled network delays injected by
//! [`DelayedInbox`](crate::inbox::DelayedInbox), operation timeouts, reconfiguration
//! deadlines and the linearizability timestamps — goes through a [`Clock`]. Two
//! implementations exist:
//!
//! * [`Clock::real`] (the default): wall-clock time. `now_ns` reads a monotonic
//!   [`Instant`] and sleeping really sleeps, so a deployment built with
//!   `latency_scale: 1.0` paces operations exactly like the paper's geo-distributed
//!   testbed.
//! * [`Clock::virtual_time`]: a shared logical-time source. Nobody sleeps; instead, the
//!   clock tracks every participant (server threads, clients inside an operation, the
//!   reconfiguration controller) plus every message still in flight between them, and
//!   when *all* participants are quiescent it jumps straight to the next scheduled
//!   wake-up instant, waking the threads whose deadline arrived (coordinated via a
//!   condvar). Modeled multi-second RTT waits collapse to microseconds of real time
//!   while preserving the arrival *order* and the relative timestamps of every event,
//!   so latency accounting and linearizability histories come out the same — and
//!   scheduler jitter no longer leaks into `now_ns`, which makes sequential workloads
//!   byte-for-byte reproducible (concurrent client threads can still race for the
//!   order in which servers see their requests).
//!
//! # Example: a virtual-time cluster in a few lines
//!
//! ```
//! use legostore_core::{Clock, Cluster, ClusterOptions};
//! use legostore_cloud::GcpLocation;
//! use legostore_types::{Key, Value};
//!
//! // Identical to a real-time deployment, except nothing ever sleeps.
//! let cluster = Cluster::gcp9(ClusterOptions {
//!     clock: Clock::virtual_time(),
//!     ..Default::default()
//! });
//! let mut client = cluster.client(GcpLocation::Tokyo.dc());
//! client.create(&Key::from("greeting"), Value::from("hello")).unwrap();
//! assert_eq!(client.get(&Key::from("greeting")).unwrap(), Value::from("hello"));
//! // Virtual time advanced by the modeled RTTs even though no wall-clock time passed.
//! assert!(cluster.options().clock.now_ns() > 0);
//! cluster.shutdown();
//! ```

use crossbeam::channel::{Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Floor applied to real-clock channel waits so a deadline in the past still yields to the
/// scheduler instead of busy-spinning.
const MIN_REAL_WAIT: Duration = Duration::from_micros(50);

thread_local! {
    /// How many [`ClockGuard`]s the current thread holds, *per virtual clock* (keyed by the
    /// clock's address; a guard keeps its clock alive, so keys cannot dangle or be reused
    /// while an entry exists). A thread that holds a guard is a *participant*: the clock
    /// counts it as busy and must be told (by the sleep / recv primitives) when it blocks,
    /// or time would never advance past its waits. Tracking the depth per clock keeps the
    /// accounting correct for nested guards and for threads that touch several clocks.
    static PARTICIPANT_DEPTH: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
}

/// The current thread's participant depth for `clock`.
fn thread_depth(clock: &VirtualClock) -> usize {
    let key = clock as *const VirtualClock as usize;
    PARTICIPANT_DEPTH.with(|d| {
        d.borrow()
            .iter()
            .find_map(|(k, n)| (*k == key).then_some(*n))
            .unwrap_or(0)
    })
}

/// Adjusts the current thread's participant depth for `clock` by `delta`.
fn change_thread_depth(clock: &VirtualClock, delta: isize) {
    let key = clock as *const VirtualClock as usize;
    PARTICIPANT_DEPTH.with(|d| {
        let mut depths = d.borrow_mut();
        if let Some(entry) = depths.iter_mut().find(|(k, _)| *k == key) {
            entry.1 = entry
                .1
                .checked_add_signed(delta)
                .expect("participant depth balanced");
            if entry.1 == 0 {
                depths.retain(|(k, _)| *k != key);
            }
        } else {
            let initial = usize::try_from(delta).expect("participant depth balanced");
            depths.push((key, initial));
        }
    })
}

/// A time source for the deployment: either the machine's monotonic clock or a shared
/// virtual clock (see the [module docs](self) for the semantics of each).
///
/// Cloning a `Clock` yields a handle to the *same* time source; all components of one
/// [`Cluster`](crate::Cluster) must share clones of one clock, which
/// [`ClusterOptions::clock`](crate::ClusterOptions) arranges automatically.
#[derive(Clone, Debug)]
pub struct Clock {
    kind: ClockKind,
}

#[derive(Clone)]
enum ClockKind {
    Real { epoch: Instant },
    Virtual(Arc<VirtualClock>),
}

impl std::fmt::Debug for ClockKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClockKind::Real { .. } => write!(f, "RealClock"),
            ClockKind::Virtual(v) => write!(f, "VirtualClock(now={}ns)", v.lock().now_ns),
        }
    }
}

impl Default for Clock {
    /// The default clock is real time, matching the paper's testbed behaviour.
    fn default() -> Self {
        Clock::real()
    }
}

impl Clock {
    /// A wall-clock time source: `now_ns` is nanoseconds since this call, and sleeping
    /// blocks the calling thread for real.
    pub fn real() -> Clock {
        Clock {
            kind: ClockKind::Real { epoch: Instant::now() },
        }
    }

    /// A virtual time source starting at `now_ns == 0`. Sleeps return as soon as every
    /// other participant of the same clock is quiescent, advancing logical time to the
    /// earliest pending wake-up instead of waiting.
    pub fn virtual_time() -> Clock {
        Clock {
            kind: ClockKind::Virtual(Arc::new(VirtualClock::default())),
        }
    }

    /// True if this is a virtual (logical-time) clock.
    pub fn is_virtual(&self) -> bool {
        matches!(self.kind, ClockKind::Virtual(_))
    }

    /// Nanoseconds elapsed since the clock's epoch (creation for real clocks, 0 for
    /// virtual clocks). Monotonic; used as linearizability-history timestamps.
    pub fn now_ns(&self) -> u64 {
        match &self.kind {
            ClockKind::Real { epoch } => epoch.elapsed().as_nanos() as u64,
            ClockKind::Virtual(v) => v.lock().now_ns,
        }
    }

    /// Blocks until the clock reads at least `deadline_ns`. On a virtual clock this
    /// registers the deadline as a pending wake-up and lets logical time jump to it once
    /// all participants are quiescent.
    ///
    /// A thread that paces further clock-visible work after the sleep returns (sending
    /// operations, sleeping again) should hold a [`Clock::enter`] guard across the whole
    /// sequence, or a virtual clock may advance past it between the wake-up and that work.
    pub fn sleep_until_ns(&self, deadline_ns: u64) {
        match &self.kind {
            ClockKind::Real { epoch } => {
                let now = epoch.elapsed().as_nanos() as u64;
                if deadline_ns > now {
                    std::thread::sleep(Duration::from_nanos(deadline_ns - now));
                }
            }
            ClockKind::Virtual(v) => v.sleep_until(deadline_ns),
        }
    }

    /// Blocks for `duration` of clock time (see [`Clock::sleep_until_ns`]).
    pub fn sleep(&self, duration: Duration) {
        match &self.kind {
            ClockKind::Real { .. } => std::thread::sleep(duration),
            ClockKind::Virtual(v) => {
                let deadline = v.lock().now_ns.saturating_add(duration.as_nanos() as u64);
                v.sleep_until(deadline);
            }
        }
    }

    /// Registers the calling thread as a participant until the returned guard drops.
    ///
    /// While any participant is running (not blocked inside one of the clock's wait
    /// primitives), a virtual clock will not advance: the thread might be about to send a
    /// message or schedule a wake-up, and jumping ahead of it would deliver futures out of
    /// order. Server threads hold a guard for their whole life; clients hold one per
    /// operation.
    ///
    /// External drivers that pace their own work against a virtual clock (e.g. a bench
    /// loop interleaving [`Clock::sleep`] with operations on a cluster) must hold a guard
    /// for the duration of that loop: an unregistered thread is invisible to the clock
    /// between returning from a sleep and issuing its next operation, so logical time
    /// could jump ahead of work it is about to do.
    pub fn enter(&self) -> ClockGuard {
        if let ClockKind::Virtual(v) = &self.kind {
            v.lock().busy += 1;
            change_thread_depth(v, 1);
        }
        ClockGuard {
            clock: self.clone(),
            _not_send: std::marker::PhantomData,
        }
    }

    /// Creates a channel whose sends and receives are visible to this clock: a virtual
    /// clock counts every undelivered message as in-flight and refuses to advance past it.
    pub(crate) fn channel<T>(&self) -> (ClockedSender<T>, ClockedReceiver<T>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        (
            ClockedSender { tx, clock: self.clone() },
            ClockedReceiver { rx: Some(rx), clock: self.clone() },
        )
    }

    fn virtual_clock(&self) -> Option<&Arc<VirtualClock>> {
        match &self.kind {
            ClockKind::Real { .. } => None,
            ClockKind::Virtual(v) => Some(v),
        }
    }
}

/// Participant registration handle; see [`Clock::enter`].
///
/// `!Send` on purpose: the guard registers the *creating* thread's depth in a thread-local,
/// so dropping it from another thread would unbalance the busy accounting.
pub struct ClockGuard {
    clock: Clock,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ClockGuard {
    fn drop(&mut self) {
        if let Some(v) = self.clock.virtual_clock() {
            let mut s = v.lock();
            s.busy -= 1;
            change_thread_depth(v, -1);
            v.advance_if_quiescent(&mut s);
        }
    }
}

/// The sending half of a clock-aware channel ([`Clock::channel`]).
pub(crate) struct ClockedSender<T> {
    tx: Sender<T>,
    clock: Clock,
}

impl<T> Clone for ClockedSender<T> {
    fn clone(&self) -> Self {
        ClockedSender {
            tx: self.tx.clone(),
            clock: self.clock.clone(),
        }
    }
}

impl<T> ClockedSender<T> {
    /// Sends `msg`, marking it in-flight on a virtual clock until the receiver picks it up
    /// (or drains it on drop). The send and the in-flight accounting happen under the
    /// clock lock so a waiting receiver can never observe the notification without the
    /// message.
    pub(crate) fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match self.clock.virtual_clock() {
            None => self.tx.send(msg),
            Some(v) => {
                let mut s = v.lock();
                self.tx.send(msg)?;
                s.in_flight += 1;
                v.cond.notify_all();
                Ok(())
            }
        }
    }
}

/// The receiving half of a clock-aware channel ([`Clock::channel`]).
///
/// Dropping the receiver drains and un-counts any messages still queued, so replies that
/// arrive after a client loses interest (e.g. a timed-out attempt) cannot wedge the
/// virtual clock.
pub(crate) struct ClockedReceiver<T> {
    /// `Some` until dropped; the receiver is destroyed *inside* the clock lock so no send
    /// can slip between the final drain and the disconnect.
    rx: Option<Receiver<T>>,
    clock: Clock,
}

impl<T> ClockedReceiver<T> {
    fn rx(&self) -> &Receiver<T> {
        self.rx.as_ref().expect("receiver present until drop")
    }

    /// Non-blocking receive.
    pub(crate) fn try_recv(&self) -> Result<T, TryRecvError> {
        match self.clock.virtual_clock() {
            None => self.rx().try_recv(),
            Some(v) => {
                let mut s = v.lock();
                let got = self.rx().try_recv();
                if got.is_ok() {
                    s.in_flight -= 1;
                }
                got
            }
        }
    }

    /// Blocking receive with no deadline (used by server threads, which wait for work
    /// indefinitely). On a virtual clock the calling participant is counted as quiescent
    /// while it waits but registers no wake-up: only a message can resume it.
    pub(crate) fn recv(&self) -> Result<T, RecvError> {
        match self.clock.virtual_clock() {
            None => self.rx().recv(),
            Some(v) => {
                // This thread contributed `depth` busy increments to *this* clock; while it
                // is parked here, all of them must be released or time could never advance.
                let depth = thread_depth(v);
                let mut s = v.lock();
                loop {
                    match self.rx().try_recv() {
                        Ok(msg) => {
                            s.in_flight -= 1;
                            return Ok(msg);
                        }
                        Err(TryRecvError::Disconnected) => return Err(RecvError),
                        Err(TryRecvError::Empty) => {}
                    }
                    s.busy -= depth;
                    v.advance_if_quiescent(&mut s);
                    s = v.cond.wait(s).unwrap_or_else(|e| e.into_inner());
                    s.busy += depth;
                }
            }
        }
    }

    /// Blocking receive that gives up once the clock reaches `deadline_ns`. On a virtual
    /// clock the deadline is registered as a pending wake-up, so an unreachable quorum
    /// times out at the modeled instant without any wall-clock wait.
    pub(crate) fn recv_deadline_ns(&self, deadline_ns: u64) -> Result<T, RecvTimeoutError> {
        match self.clock.virtual_clock() {
            None => {
                let timeout = Duration::from_nanos(deadline_ns.saturating_sub(self.clock.now_ns()))
                    .max(MIN_REAL_WAIT);
                self.rx().recv_timeout(timeout)
            }
            Some(v) => {
                let depth = thread_depth(v);
                let mut s = v.lock();
                loop {
                    match self.rx().try_recv() {
                        Ok(msg) => {
                            s.in_flight -= 1;
                            return Ok(msg);
                        }
                        Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                        Err(TryRecvError::Empty) => {}
                    }
                    if s.now_ns >= deadline_ns {
                        return Err(RecvTimeoutError::Timeout);
                    }
                    s.busy -= depth;
                    *s.sleepers.entry(deadline_ns).or_insert(0) += 1;
                    v.advance_if_quiescent(&mut s);
                    // Re-check after the advance: it may have jumped to *our own*
                    // deadline, in which case its notification already fired and waiting
                    // would sleep forever.
                    if s.now_ns < deadline_ns {
                        s = v.cond.wait(s).unwrap_or_else(|e| e.into_inner());
                    }
                    s.remove_sleeper(deadline_ns);
                    s.busy += depth;
                }
            }
        }
    }
}

impl<T> Drop for ClockedReceiver<T> {
    fn drop(&mut self) {
        if let Some(v) = self.clock.virtual_clock().cloned() {
            let mut s = v.lock();
            if let Some(rx) = self.rx.take() {
                while rx.try_recv().is_ok() {
                    s.in_flight -= 1;
                }
                // Disconnect inside the lock: a concurrent ClockedSender::send either ran
                // before us (its message was just drained) or will observe the disconnect.
                drop(rx);
            }
            v.advance_if_quiescent(&mut s);
        }
    }
}

/// Shared state of a virtual clock.
#[derive(Default)]
struct VirtualClock {
    state: Mutex<VirtualState>,
    cond: Condvar,
}

#[derive(Default)]
struct VirtualState {
    /// Current logical time.
    now_ns: u64,
    /// Participants currently running (holding a [`ClockGuard`] and not blocked in a
    /// clock wait primitive).
    busy: usize,
    /// Messages sent through a [`ClockedSender`] and not yet received.
    in_flight: usize,
    /// Pending wake-up instants of blocked threads (deadline → waiter count).
    sleepers: BTreeMap<u64, usize>,
}

impl VirtualState {
    fn remove_sleeper(&mut self, deadline_ns: u64) {
        if let Some(count) = self.sleepers.get_mut(&deadline_ns) {
            *count -= 1;
            if *count == 0 {
                self.sleepers.remove(&deadline_ns);
            }
        }
    }
}

impl VirtualClock {
    fn lock(&self) -> MutexGuard<'_, VirtualState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The advance rule: once no participant is running and no message is undelivered,
    /// jump logical time to the earliest pending wake-up and wake everyone to re-check.
    fn advance_if_quiescent(&self, s: &mut VirtualState) {
        if s.busy == 0 && s.in_flight == 0 {
            if let Some((&wake, _)) = s.sleepers.iter().next() {
                if wake > s.now_ns {
                    s.now_ns = wake;
                    self.cond.notify_all();
                }
            }
        }
    }

    fn sleep_until(&self, deadline_ns: u64) {
        let depth = thread_depth(self);
        let mut s = self.lock();
        if s.now_ns >= deadline_ns {
            return;
        }
        s.busy -= depth;
        *s.sleepers.entry(deadline_ns).or_insert(0) += 1;
        self.advance_if_quiescent(&mut s);
        while s.now_ns < deadline_ns {
            s = self.cond.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.remove_sleeper(deadline_ns);
        s.busy += depth;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic_and_sleeps() {
        let clock = Clock::real();
        assert!(!clock.is_virtual());
        let t0 = clock.now_ns();
        clock.sleep(Duration::from_millis(2));
        let t1 = clock.now_ns();
        assert!(t1 - t0 >= 2_000_000, "slept {}ns", t1 - t0);
    }

    #[test]
    fn virtual_clock_jumps_instead_of_sleeping() {
        let clock = Clock::virtual_time();
        assert!(clock.is_virtual());
        assert_eq!(clock.now_ns(), 0);
        let wall = Instant::now();
        clock.sleep(Duration::from_secs(3600)); // an hour of virtual time
        assert_eq!(clock.now_ns(), 3_600_000_000_000);
        assert!(wall.elapsed() < Duration::from_secs(5), "must not really sleep");
    }

    #[test]
    fn virtual_clock_clones_share_time() {
        let a = Clock::virtual_time();
        let b = a.clone();
        a.sleep_until_ns(500);
        assert_eq!(b.now_ns(), 500);
        b.sleep_until_ns(200); // already past: no-op
        assert_eq!(a.now_ns(), 500);
    }

    #[test]
    fn clocked_channel_round_trip() {
        let clock = Clock::virtual_time();
        let (tx, rx) = clock.channel::<u32>();
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        clock.sleep_until_ns(1_000);
        assert_eq!(clock.now_ns(), 1_000);
    }

    #[test]
    fn recv_deadline_times_out_at_virtual_deadline() {
        let clock = Clock::virtual_time();
        let (_tx, rx) = clock.channel::<u32>();
        let wall = Instant::now();
        // Nothing will ever arrive: the deadline (a modeled 30 s timeout) must fire
        // immediately in wall-clock terms.
        let got = rx.recv_deadline_ns(30_000_000_000);
        assert!(matches!(got, Err(RecvTimeoutError::Timeout)));
        assert_eq!(clock.now_ns(), 30_000_000_000);
        assert!(wall.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn cross_thread_send_wakes_virtual_receiver() {
        let clock = Clock::virtual_time();
        let (tx, rx) = clock.channel::<&'static str>();
        let sender_clock = clock.clone();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let _guard = sender_clock.enter();
            // Only signal readiness once this thread is a registered participant, so the
            // receiver below cannot reach its 1 s deadline before we block.
            ready_tx.send(()).unwrap();
            sender_clock.sleep(Duration::from_millis(250)); // virtual
            tx.send("late").unwrap();
        });
        ready_rx.recv().unwrap();
        let got = rx.recv_deadline_ns(1_000_000_000).unwrap();
        assert_eq!(got, "late");
        assert!(clock.now_ns() >= 250_000_000);
        handle.join().unwrap();
    }

    #[test]
    fn nested_guards_do_not_wedge_the_clock() {
        // Both registrations must be released while the thread is parked, or the clock
        // would count the sleeper as busy forever.
        let clock = Clock::virtual_time();
        let _outer = clock.enter();
        let _inner = clock.enter();
        clock.sleep(Duration::from_secs(5));
        assert_eq!(clock.now_ns(), 5_000_000_000);
    }

    #[test]
    fn guards_on_different_clocks_are_independent() {
        // A guard on clock `a` must not leak into clock `b`'s busy accounting (the depth
        // bookkeeping is per clock, not per thread).
        let a = Clock::virtual_time();
        let b = Clock::virtual_time();
        let _ga = a.enter();
        let _gb = b.enter();
        b.sleep(Duration::from_millis(10));
        a.sleep(Duration::from_millis(20));
        assert_eq!(a.now_ns(), 20_000_000);
        assert_eq!(b.now_ns(), 10_000_000);
    }

    #[test]
    fn dropping_receiver_drains_in_flight_messages() {
        let clock = Clock::virtual_time();
        let (tx, rx) = clock.channel::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(rx); // must un-count both, or the clock would wedge
        clock.sleep_until_ns(99);
        assert_eq!(clock.now_ns(), 99);
        assert!(tx.send(3).is_err(), "channel is disconnected");
    }
}
