//! The deployment's transport seam: how protocol messages travel between endpoints
//! (clients, the reconfiguration controller) and per-DC servers.
//!
//! Everything above this module — the client operation loops, the reconfiguration
//! controller, the cluster orchestration — talks only to the [`Transport`] trait. Two
//! implementations exist:
//!
//! * [`InProcTransport`] — the original runtime: every server is a thread behind a clocked
//!   crossbeam channel in this process. Works under both clocks; under
//!   [`Clock::virtual_time`] the clocked channels count in-flight messages, which is the
//!   transport-side half of the virtual clock's quiescence rule (time only jumps when no
//!   thread is busy *and no message is in flight on the transport*).
//! * [`TcpTransport`] — real length-prefixed frames (see [`legostore_proto::wire`]) over
//!   std `TcpStream`s to `legostore-server` processes (or in-process serve loops from
//!   the `legostore-server` crate). Socket delivery is invisible to the virtual clock's
//!   in-flight accounting, so this transport only supports [`Clock::real`];
//!   [`Cluster::connect_tcp`](crate::cluster::Cluster::connect_tcp) falls back to a real
//!   clock automatically.
//!
//! Both implementations share the same link policy: the cloud model's scaled
//! geo-latencies are imposed on the reply leg, and a deterministic
//! [`FaultPlan`] is interposed at exactly two points —
//! [`Transport::send_request`] (request leg) and [`Transport::buffer_reply`] (reply leg).
//! Because the verdicts are drawn on the client side of the seam, the *same seeded plan*
//! produces the same drop/duplicate/delay schedule whether the bytes cross a channel or a
//! socket. (The simulator's seam is the delivery-decision object in `legostore_sim::net`,
//! which consumes the same `LinkVerdict`s inside its single-threaded event loop.)

use crate::clock::{Clock, ClockedReceiver, ClockedSender};
use crate::inbox::DelayedInbox;
use legostore_cloud::CloudModel;
use legostore_obs::{Counter, MetricsSnapshot, Obs};
use legostore_proto::msg::ProtoReply;
use legostore_proto::server::{ControlMsg, Inbound};
use legostore_proto::wire::Frame;
use legostore_types::{
    ConfigEpoch, DcId, FaultPlan, FaultState, LinkVerdict, StoreError, StoreResult,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A reply traveling back to a client or to the controller.
#[derive(Debug, Clone)]
pub struct ReplyEnvelope {
    /// The endpoint (operation attempt) this reply is for.
    pub endpoint: u64,
    /// Server data center that produced the reply.
    pub from: DcId,
    /// Clock timestamp ([`Clock::now_ns`]) at which the reply entered this process.
    /// In-process transports stamp it at the server; the TCP transport re-stamps on
    /// arrival, because the sending process's clock is not comparable to ours.
    pub sent_at_ns: u64,
    /// Server-reported processing duration for the request this reply answers, in the
    /// server's own clock. A *duration* stays meaningful across processes even though
    /// the server's timestamps do not, so clients can split round-trip time into
    /// network and service components.
    pub service_ns: u64,
    /// Echoed protocol phase.
    pub phase: u8,
    /// Configuration epoch of the request this reply answers. Clients discard replies
    /// stamped with an epoch other than the one their current attempt runs in: after a
    /// reconfiguration redirect the endpoint id alone cannot tell a live reply from a
    /// straggler solicited before the move.
    pub epoch: ConfigEpoch,
    /// Reply body.
    pub reply: ProtoReply,
}

/// A message to an in-process per-DC server thread.
pub(crate) enum ServerMsg {
    /// A protocol request plus the channel its replies route back on.
    Request {
        reply_to: ClockedSender<ReplyEnvelope>,
        inbound: Inbound,
    },
    /// An out-of-band administration command.
    Control(ControlMsg),
    /// A telemetry scrape: the server answers with a snapshot of its metrics registry
    /// on the enclosed (unclocked) channel. Scrapes ride the same queue as requests so
    /// a snapshot reflects everything the server processed before it.
    Stats(std::sync::mpsc::Sender<MetricsSnapshot>),
    /// Ends the server loop.
    Shutdown,
}

/// Demux table mapping live endpoint ids to their reply queues (TCP transport only).
type ReplyRoutes = Arc<Mutex<HashMap<u64, ClockedSender<ReplyEnvelope>>>>;

/// Pending stats scrapes keyed by token (TCP transport only): the reader thread routes
/// each `StatsReply` frame to the scraping thread that sent the matching request.
type StatsWaiters = Arc<Mutex<HashMap<u64, std::sync::mpsc::Sender<(DcId, MetricsSnapshot)>>>>;

/// How long a [`Transport::fetch_stats`] scrape waits for the server's snapshot.
const STATS_TIMEOUT: Duration = Duration::from_secs(10);

/// A reply-receiving endpoint: one per operation attempt (and one per reconfiguration).
///
/// Dropping the endpoint closes its channel (draining stragglers, releasing any virtual
/// clock in-flight counts) and, on transports with an explicit routing table, removes its
/// route — so replies to finished attempts are discarded at the source.
pub struct Endpoint {
    id: u64,
    tx: ClockedSender<ReplyEnvelope>,
    rx: ClockedReceiver<ReplyEnvelope>,
    /// TCP demux table this endpoint is registered in, if any (in-process endpoints route
    /// via the per-request reply channel instead).
    registry: Option<ReplyRoutes>,
}

impl Endpoint {
    /// The endpoint id carried in [`Inbound::from`] and echoed in replies.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A sender for routing replies to this endpoint (the in-process transport attaches
    /// one to every request).
    pub(crate) fn reply_sender(&self) -> ClockedSender<ReplyEnvelope> {
        self.tx.clone()
    }

    /// Non-blocking receive of the next delivered reply.
    pub fn try_recv(&self) -> Option<ReplyEnvelope> {
        self.rx.try_recv().ok()
    }

    /// Blocking receive until `deadline_ns` ([`Clock::now_ns`] domain).
    pub fn recv_deadline_ns(&self, deadline_ns: u64) -> Option<ReplyEnvelope> {
        self.rx.recv_deadline_ns(deadline_ns).ok()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        if let Some(registry) = &self.registry {
            registry.lock().remove(&self.id);
        }
    }
}

/// How messages are delivered between this process's endpoints and the per-DC servers.
///
/// Implementations must be cheap to call from many client threads concurrently. The fault
/// interposition contract: `send_request` draws the request-leg verdict, `buffer_reply`
/// draws the reply-leg verdict; a transport must not apply faults anywhere else, so that
/// one seeded [`FaultPlan`] produces the same schedule
/// on every transport.
pub trait Transport: Send + Sync {
    /// Opens a fresh reply endpoint with a transport-unique id.
    fn open_endpoint(&self) -> Endpoint;

    /// Sends one protocol request from `from` to the server at `to`, with replies routed
    /// to `endpoint`. A fault-dropped request returns `Ok(())` — the network gives no
    /// failure signal; the client only notices via its attempt timeout.
    fn send_request(
        &self,
        from: DcId,
        to: DcId,
        endpoint: &Endpoint,
        inbound: Inbound,
    ) -> StoreResult<()>;

    /// Buffers `env` in `inbox` at its modeled arrival instant for a consumer at `at`,
    /// applying the reply-leg fault verdict (drop / delay / duplicate).
    fn buffer_reply(&self, at: DcId, inbox: &mut DelayedInbox<ReplyEnvelope>, env: ReplyEnvelope);

    /// Sends an out-of-band administration command to the server at `to`. Unknown
    /// destinations are ignored (best-effort, like the drivers' admin paths).
    fn control(&self, to: DcId, msg: ControlMsg) -> StoreResult<()>;

    /// Scrapes the telemetry snapshot of the server at `to`. In-process servers answer
    /// over a channel; socket servers answer with a `StatsReply` frame routed back by
    /// token. Scrapes bypass the fault plan — they are operator telemetry, not protocol
    /// traffic, and must work while the data plane is being faulted.
    fn fetch_stats(&self, to: DcId) -> StoreResult<MetricsSnapshot>;

    /// Whether this transport participates in [`Clock::virtual_time`]'s in-flight
    /// accounting (the quiescence rule "advance only when no message is in flight").
    /// Transports that move bytes outside the clocked channels — real sockets — must
    /// return `false`, and the deployment then runs on [`Clock::real`].
    fn supports_virtual_time(&self) -> bool;

    /// Shuts the transport down: in-process servers get a shutdown message, socket peers
    /// get a `Shutdown` frame and their connections are closed. Idempotent.
    fn shutdown(&self);
}

/// The delivery policy both deployment transports share: the cloud model's scaled
/// geo-latencies and the deterministic fault plan.
pub(crate) struct LinkPolicy {
    pub(crate) model: Arc<CloudModel>,
    pub(crate) latency_scale: f64,
    pub(crate) metadata_bytes: u64,
    pub(crate) clock: Clock,
    /// Interpreter of the fault plan; `None` when the plan is empty so the fault-free
    /// message path takes no lock.
    pub(crate) faults: Option<Mutex<FaultState>>,
    /// Client-process telemetry handle (fault drops are observed on this side of the
    /// seam, where the verdicts are drawn).
    pub(crate) obs: Obs,
    drops_request: Arc<Counter>,
    drops_reply: Arc<Counter>,
}

impl LinkPolicy {
    pub(crate) fn new(
        model: Arc<CloudModel>,
        latency_scale: f64,
        metadata_bytes: u64,
        clock: Clock,
        fault_plan: &FaultPlan,
        obs: Obs,
    ) -> Self {
        let faults = (!fault_plan.is_empty()).then(|| Mutex::new(FaultState::new(fault_plan)));
        let drops_request = obs.registry().counter("transport.drops.request");
        let drops_reply = obs.registry().counter("transport.drops.reply");
        LinkPolicy { model, latency_scale, metadata_bytes, clock, faults, obs, drops_request, drops_reply }
    }

    /// One-way + return delay the client should wait before consuming a reply from `from`.
    pub(crate) fn reply_delay(&self, client: DcId, from: DcId, reply_bytes: u64) -> Duration {
        let ms = self.model.rtt_ms(client, from)
            + self.model.transfer_time_ms(from, client, reply_bytes);
        Duration::from_secs_f64(ms * self.latency_scale / 1000.0)
    }

    /// The clock reading converted to the fault plan's time domain (model milliseconds,
    /// i.e. clock time divided by `latency_scale`).
    fn model_now_ms(&self) -> f64 {
        self.clock.now_ns() as f64 / 1_000_000.0 / self.latency_scale
    }

    /// The fate of one message on the `from → to` link under the active fault plan.
    /// Fault events are applied lazily: everything scheduled at or before the current
    /// model instant takes effect before the verdict is drawn.
    pub(crate) fn verdict(&self, from: DcId, to: DcId) -> LinkVerdict {
        let Some(faults) = &self.faults else {
            return LinkVerdict::CLEAN;
        };
        let mut state = faults.lock();
        state.advance_to(self.model_now_ms());
        state.verdict(from, to)
    }

    /// Request-leg verdict plus drop accounting: both transports call this from
    /// `send_request` so a fault-dropped request shows up in the drop counter and the
    /// flight recorder even though the caller sees `Ok(())`.
    pub(crate) fn request_deliveries(&self, from: DcId, to: DcId) -> Option<(u32, f64)> {
        let deliveries = self.verdict(from, to).deliveries();
        if deliveries.is_none() && self.obs.enabled() {
            self.drops_request.inc();
            self.obs.flight().record(
                self.clock.now_ns(),
                0,
                format!("fault verdict dropped request {from} -> {to}"),
            );
        }
        deliveries
    }

    /// Shared reply-leg implementation of [`Transport::buffer_reply`]: a faulted link
    /// drops the reply (the client only notices via its attempt timeout), a slow or lossy
    /// link defers it past the fault-free arrival instant, and a duplicating link buffers
    /// it twice (the protocol quorum trackers dedupe responders by DC, so duplicates are
    /// harmless).
    pub(crate) fn buffer_reply(
        &self,
        at: DcId,
        inbox: &mut DelayedInbox<ReplyEnvelope>,
        env: ReplyEnvelope,
    ) {
        let Some((copies, extra_ms)) = self.verdict(env.from, at).deliveries() else {
            if self.obs.enabled() {
                self.drops_reply.inc();
                self.obs.flight().record(
                    self.clock.now_ns(),
                    env.endpoint,
                    format!("fault verdict dropped reply {} -> {at} (phase {})", env.from, env.phase),
                );
            }
            return;
        };
        let delay = self.reply_delay(at, env.from, env.reply.wire_size(self.metadata_bytes))
            + Duration::from_secs_f64(extra_ms * self.latency_scale / 1000.0);
        for _ in 1..copies {
            inbox.push(env.sent_at_ns, delay, env.clone());
        }
        inbox.push(env.sent_at_ns, delay, env);
    }
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// The original runtime: per-DC server threads behind clocked crossbeam channels.
pub struct InProcTransport {
    links: LinkPolicy,
    senders: HashMap<DcId, ClockedSender<ServerMsg>>,
    next_endpoint: AtomicU64,
}

impl InProcTransport {
    /// Builds the transport plus one receiver per data center for the server threads.
    pub(crate) fn new(
        links: LinkPolicy,
        dcs: impl IntoIterator<Item = DcId>,
    ) -> (Self, Vec<(DcId, ClockedReceiver<ServerMsg>)>) {
        let mut senders = HashMap::new();
        let mut receivers = Vec::new();
        for dc in dcs {
            let (tx, rx) = links.clock.channel();
            senders.insert(dc, tx);
            receivers.push((dc, rx));
        }
        let transport = InProcTransport { links, senders, next_endpoint: AtomicU64::new(1) };
        (transport, receivers)
    }
}

impl Transport for InProcTransport {
    fn open_endpoint(&self) -> Endpoint {
        let id = self.next_endpoint.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = self.links.clock.channel();
        Endpoint { id, tx, rx, registry: None }
    }

    fn send_request(
        &self,
        from: DcId,
        to: DcId,
        endpoint: &Endpoint,
        inbound: Inbound,
    ) -> StoreResult<()> {
        let Some((copies, _)) = self.links.request_deliveries(from, to) else {
            return Ok(());
        };
        let sender = self
            .senders
            .get(&to)
            .ok_or_else(|| StoreError::Transport(format!("unknown data center {to}")))?;
        for _ in 1..copies {
            sender
                .send(ServerMsg::Request {
                    reply_to: endpoint.reply_sender(),
                    inbound: inbound.clone(),
                })
                .map_err(|_| StoreError::Transport(format!("server {to} has shut down")))?;
        }
        sender
            .send(ServerMsg::Request { reply_to: endpoint.reply_sender(), inbound })
            .map_err(|_| StoreError::Transport(format!("server {to} has shut down")))
    }

    fn buffer_reply(&self, at: DcId, inbox: &mut DelayedInbox<ReplyEnvelope>, env: ReplyEnvelope) {
        self.links.buffer_reply(at, inbox, env);
    }

    fn control(&self, to: DcId, msg: ControlMsg) -> StoreResult<()> {
        if let Some(sender) = self.senders.get(&to) {
            let _ = sender.send(ServerMsg::Control(msg));
        }
        Ok(())
    }

    fn fetch_stats(&self, to: DcId) -> StoreResult<MetricsSnapshot> {
        let sender = self
            .senders
            .get(&to)
            .ok_or_else(|| StoreError::Transport(format!("unknown data center {to}")))?;
        // The answer channel is a plain std channel, not a clocked one: a scrape is
        // operator traffic outside the modeled message flow, so it must not count
        // toward the virtual clock's in-flight accounting (the scraping thread blocks
        // here in real time while virtual time is free to advance).
        let (tx, rx) = std::sync::mpsc::channel();
        sender
            .send(ServerMsg::Stats(tx))
            .map_err(|_| StoreError::Transport(format!("server {to} has shut down")))?;
        rx.recv_timeout(STATS_TIMEOUT)
            .map_err(|_| StoreError::Transport(format!("stats scrape of {to} timed out")))
    }

    fn supports_virtual_time(&self) -> bool {
        true
    }

    fn shutdown(&self) {
        for sender in self.senders.values() {
            let _ = sender.send(ServerMsg::Shutdown);
        }
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// How long [`TcpTransport::connect`] keeps retrying a refused connection before giving
/// up (servers may still be binding their listeners when the client starts).
const CONNECT_RETRY_WINDOW: Duration = Duration::from_secs(10);

/// Real sockets: one `TcpStream` per data center, length-prefixed
/// [`Frame`]s on the wire, and a per-process reader thread per connection that demuxes
/// replies to endpoints through a routing table.
pub struct TcpTransport {
    links: LinkPolicy,
    /// Write halves, locked per-peer so concurrent clients interleave whole frames.
    peers: HashMap<DcId, Mutex<TcpStream>>,
    /// endpoint id → reply channel (the demux table reader threads route through).
    routes: ReplyRoutes,
    /// stats token → waiting scraper (see [`StatsWaiters`]).
    stats_waiters: StatsWaiters,
    next_endpoint: AtomicU64,
    next_stats_token: AtomicU64,
    readers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    down: AtomicBool,
}

impl TcpTransport {
    /// Connects to one server per data center. Refused connections are retried for a few
    /// seconds (the servers may still be starting); other errors fail fast.
    ///
    /// The clock must be real: socket delivery is invisible to a virtual clock's
    /// in-flight accounting, so a virtual-time TCP deployment would deadlock its
    /// quiescence rule.
    pub(crate) fn connect(
        links: LinkPolicy,
        addrs: &HashMap<DcId, SocketAddr>,
    ) -> StoreResult<Self> {
        if links.clock.is_virtual() {
            return Err(StoreError::Transport(
                "the TCP transport requires a real clock (no in-flight accounting on sockets)"
                    .into(),
            ));
        }
        let routes: ReplyRoutes =
            Arc::new(Mutex::new(HashMap::new()));
        let stats_waiters: StatsWaiters = Arc::new(Mutex::new(HashMap::new()));
        let mut peers = HashMap::new();
        let mut readers = Vec::new();
        for (&dc, &addr) in addrs {
            let stream = connect_with_retry(addr)?;
            stream.set_nodelay(true).map_err(transport_err)?;
            let reader_stream = stream.try_clone().map_err(transport_err)?;
            let routes = routes.clone();
            let waiters = stats_waiters.clone();
            let clock = links.clock.clone();
            let handle = std::thread::Builder::new()
                .name(format!("legostore-tcp-reader-{dc}"))
                .spawn(move || reader_loop(reader_stream, routes, waiters, clock))
                .map_err(transport_err)?;
            readers.push(handle);
            peers.insert(dc, Mutex::new(stream));
        }
        // Endpoint ids must be unique per *server*, and several OS processes share one
        // server over independent transports — seed the counter with this process's pid so
        // two drivers' endpoints cannot collide in a server's routing table.
        let seed = ((std::process::id() as u64) << 32) | 1;
        Ok(TcpTransport {
            links,
            peers,
            routes,
            stats_waiters,
            next_endpoint: AtomicU64::new(seed),
            next_stats_token: AtomicU64::new(seed),
            readers: Mutex::new(readers),
            down: AtomicBool::new(false),
        })
    }

    fn write_frame(&self, to: DcId, frame: &Frame) -> StoreResult<()> {
        let Some(peer) = self.peers.get(&to) else {
            return Err(StoreError::Transport(format!("unknown data center {to}")));
        };
        let mut stream = peer.lock();
        frame.write_to(&mut *stream).map_err(transport_err)
    }
}

fn transport_err(e: impl std::fmt::Display) -> StoreError {
    StoreError::Transport(e.to_string())
}

fn connect_with_retry(addr: SocketAddr) -> StoreResult<TcpStream> {
    let start = std::time::Instant::now();
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if start.elapsed() < CONNECT_RETRY_WINDOW => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                return Err(StoreError::Transport(format!("connect {addr}: {e}")));
            }
        }
    }
}

/// Per-connection reader: parses frames off the socket and routes replies to endpoints.
/// Exits on EOF (server closed), on a wire error, or when our side shuts the socket down.
fn reader_loop(
    mut stream: TcpStream,
    routes: ReplyRoutes,
    stats_waiters: StatsWaiters,
    clock: Clock,
) {
    loop {
        match Frame::read_from(&mut stream) {
            Ok(Some(Frame::Reply { endpoint, from, service_ns, phase, epoch, reply, .. })) => {
                let Some(route) = routes.lock().get(&endpoint).cloned() else {
                    continue; // the attempt already finished; discard the straggler
                };
                // Re-stamp the arrival instant with our clock (the server's clock is
                // another process's); `service_ns` is a duration, so it survives the
                // process boundary untouched.
                let _ = route.send(ReplyEnvelope {
                    endpoint,
                    from,
                    sent_at_ns: clock.now_ns(),
                    service_ns,
                    phase,
                    epoch,
                    reply,
                });
            }
            Ok(Some(Frame::StatsReply { token, dc, snapshot })) => {
                if let Some(waiter) = stats_waiters.lock().remove(&token) {
                    let _ = waiter.send((dc, snapshot));
                }
            }
            Ok(Some(_)) => {} // servers send nothing else; ignore anything unexpected
            Ok(None) | Err(_) => return,
        }
    }
}

impl Transport for TcpTransport {
    fn open_endpoint(&self) -> Endpoint {
        let id = self.next_endpoint.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = self.links.clock.channel();
        self.routes.lock().insert(id, tx.clone());
        Endpoint { id, tx, rx, registry: Some(self.routes.clone()) }
    }

    fn send_request(
        &self,
        from: DcId,
        to: DcId,
        _endpoint: &Endpoint,
        inbound: Inbound,
    ) -> StoreResult<()> {
        // Request-leg fault verdict, drawn on this side of the socket so the same seeded
        // plan drives both transports identically.
        let Some((copies, _)) = self.links.request_deliveries(from, to) else {
            return Ok(());
        };
        let frame = Frame::Request(inbound);
        for _ in 0..copies {
            self.write_frame(to, &frame)?;
        }
        Ok(())
    }

    fn buffer_reply(&self, at: DcId, inbox: &mut DelayedInbox<ReplyEnvelope>, env: ReplyEnvelope) {
        self.links.buffer_reply(at, inbox, env);
    }

    fn control(&self, to: DcId, msg: ControlMsg) -> StoreResult<()> {
        if !self.peers.contains_key(&to) {
            return Ok(());
        }
        self.write_frame(to, &Frame::Control(msg))
    }

    fn fetch_stats(&self, to: DcId) -> StoreResult<MetricsSnapshot> {
        let token = self.next_stats_token.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = std::sync::mpsc::channel();
        self.stats_waiters.lock().insert(token, tx);
        if let Err(e) = self.write_frame(to, &Frame::StatsRequest { token }) {
            self.stats_waiters.lock().remove(&token);
            return Err(e);
        }
        match rx.recv_timeout(STATS_TIMEOUT) {
            Ok((_dc, snapshot)) => Ok(snapshot),
            Err(_) => {
                self.stats_waiters.lock().remove(&token);
                Err(StoreError::Transport(format!("stats scrape of {to} timed out")))
            }
        }
    }

    fn supports_virtual_time(&self) -> bool {
        false
    }

    fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        for (dc, peer) in &self.peers {
            let _ = dc;
            let mut stream = peer.lock();
            let _ = Frame::Shutdown.write_to(&mut *stream);
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for handle in self.readers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}
