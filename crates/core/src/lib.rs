//! The runnable LEGOStore: a multi-threaded, in-process deployment of the protocol stack.
//!
//! The paper's prototype runs one server process per GCP data center plus client processes
//! co-located with users. This crate reproduces that deployment inside one process: every
//! data center's server runs on its own thread behind a channel, clients are synchronous
//! handles that implement the user-facing CREATE/GET/PUT/DELETE API, and the measured
//! inter-DC round-trip times of the cloud model are injected on the client side (scaled by a
//! configurable factor so tests finish quickly). Because the protocol state machines come
//! from `legostore-proto` unchanged, the concurrency behaviour — quorum waiting, blocking
//! during reconfigurations, fail-over to new configurations — is the real thing; only the
//! wire is simulated.
//!
//! Main entry points:
//!
//! * [`Cluster`] — builds and owns the per-DC server threads plus the metadata service.
//! * [`StoreClient`] — a LEGOStore client bound to one data center
//!   ([`Cluster::client`]), offering linearizable `create` / `get` / `put` / `delete`.
//! * [`Cluster::reconfigure`] — runs the reconfiguration controller (Algorithm 1) against
//!   the live deployment.
//! * [`Cluster::recorder`] — the operation history recorder whose per-key histories can be
//!   checked for linearizability with `legostore-lincheck`.
//! * [`Clock`] — the deployment's time source: real wall-clock time (the default) or a
//!   shared virtual clock that collapses the modeled RTT waits to microseconds.
//! * [`ClusterOptions::fault_plan`] — a deterministic
//!   [`FaultPlan`](legostore_types::fault::FaultPlan) injected at the deployment's
//!   transport layer (crashes, partitions, slow DCs, lossy links), interpreted lazily as
//!   the clock passes each event's instant.

#![warn(missing_docs)]

pub mod client;
pub mod clock;
pub mod cluster;
pub mod inbox;
pub mod transport;

pub use client::StoreClient;
pub use clock::Clock;
pub use cluster::{Cluster, ClusterOptions, ClusterStats};
pub use transport::{Endpoint, ReplyEnvelope, Transport};
