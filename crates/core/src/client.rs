//! The LEGOStore client: the user-facing CREATE / GET / PUT / DELETE API (§3.1).
//!
//! A [`StoreClient`] is bound to one data center (users are served by the client in or
//! nearest to their DC). Each operation resolves the key's configuration (from the client's
//! local view, falling back to the metadata service), runs the appropriate protocol state
//! machine against the server threads, and transparently handles the two kinds of
//! disruption the paper studies: reconfigurations (restart against the new configuration
//! after refreshing metadata) and data-center failures (timeout, widen the quorum to the
//! full placement, retry).

use crate::clock::ClockedReceiver;
use crate::cluster::{ClusterInner, ControlMsg, ReplyEnvelope};
use crate::inbox::DelayedInbox;
use legostore_lincheck::recorder::fingerprint;
use legostore_proto::msg::{OpOutcome, OpProgress, Outbound, ProtoReply};
use legostore_proto::server::{DcServer, Inbound};
use legostore_proto::{AbdGet, AbdPut, CasGet, CasPut};
use legostore_types::{
    ClientId, Configuration, DcId, Key, OpKind, ProtocolKind, StoreError, StoreResult, Tag, Value,
};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One protocol operation in flight.
enum ClientOp {
    AbdPut(AbdPut),
    AbdGet(AbdGet),
    CasPut(CasPut),
    CasGet(CasGet),
}

impl ClientOp {
    fn start(&self) -> Vec<Outbound> {
        match self {
            ClientOp::AbdPut(o) => o.start(),
            ClientOp::AbdGet(o) => o.start(),
            ClientOp::CasPut(o) => o.start(),
            ClientOp::CasGet(o) => o.start(),
        }
    }

    fn on_reply(&mut self, from: DcId, phase: u8, reply: ProtoReply) -> OpProgress {
        match self {
            ClientOp::AbdPut(o) => o.on_reply(from, phase, reply),
            ClientOp::AbdGet(o) => o.on_reply(from, phase, reply),
            ClientOp::CasPut(o) => o.on_reply(from, phase, reply),
            ClientOp::CasGet(o) => o.on_reply(from, phase, reply),
        }
    }
}

/// Statistics kept by a client about its own operations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClientStats {
    /// Completed GETs.
    pub gets: u64,
    /// GETs that finished in one phase (optimized GETs).
    pub one_phase_gets: u64,
    /// Completed PUTs.
    pub puts: u64,
    /// Operation attempts that were restarted because of a reconfiguration.
    pub reconfig_restarts: u64,
    /// Operation attempts that were restarted after a timeout.
    pub timeout_restarts: u64,
}

/// A LEGOStore client bound to one data center.
pub struct StoreClient {
    cluster: Arc<ClusterInner>,
    dc: DcId,
    client_id: ClientId,
    /// Local view of key configurations (refreshed on redirects).
    view: HashMap<Key, Configuration>,
    /// Client-side cache used by the CAS optimized GET.
    cas_cache: HashMap<Key, (Tag, Value)>,
    /// Per-client operation statistics.
    stats: ClientStats,
}

impl StoreClient {
    pub(crate) fn new(cluster: Arc<ClusterInner>, dc: DcId) -> StoreClient {
        let client_id = ClientId(cluster.next_client_id.fetch_add(1, Ordering::Relaxed));
        StoreClient {
            cluster,
            dc,
            client_id,
            view: HashMap::new(),
            cas_cache: HashMap::new(),
            stats: ClientStats::default(),
        }
    }

    /// The data center this client runs in.
    pub fn dc(&self) -> DcId {
        self.dc
    }

    /// This client's unique identifier (the tie-breaker in tags).
    pub fn client_id(&self) -> ClientId {
        self.client_id
    }

    /// Operation statistics collected so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// CREATE: registers `key` with the default configuration (ABD over the nearest DCs) and
    /// stores `value` as its initial version. Errors if the key already exists.
    pub fn create(&mut self, key: &Key, value: Value) -> StoreResult<()> {
        let f = self.cluster.options.default_fault_tolerance;
        let dcs: Vec<DcId> = self
            .cluster
            .model
            .nearest_dcs(self.dc)
            .into_iter()
            .take(2 * f + 1)
            .collect();
        let config = Configuration::abd_majority(dcs, f);
        self.create_with_config(key, value, config)
    }

    /// CREATE with an explicit configuration (e.g. one produced by the optimizer).
    pub fn create_with_config(
        &mut self,
        key: &Key,
        value: Value,
        config: Configuration,
    ) -> StoreResult<()> {
        config
            .validate()
            .map_err(|e| StoreError::InvalidConfiguration(e.to_string()))?;
        {
            let mut meta = self.cluster.metadata.lock();
            if meta.contains_key(key) {
                return Err(StoreError::KeyAlreadyExists(key.clone()));
            }
            meta.insert(key.clone(), config.clone());
        }
        for (dc, payload) in DcServer::initial_payloads(&config, &value) {
            self.cluster.control(
                dc,
                ControlMsg::InstallKey {
                    key: key.clone(),
                    config: config.clone(),
                    tag: Tag::INITIAL,
                    payload,
                },
            );
        }
        self.cluster
            .recorder
            .register_key(key.as_str(), fingerprint(value.as_bytes()));
        self.view.insert(key.clone(), config);
        Ok(())
    }

    /// DELETE: removes the key everywhere. Errors if the key does not exist.
    pub fn delete(&mut self, key: &Key) -> StoreResult<()> {
        let existed = self.cluster.metadata.lock().remove(key).is_some();
        if !existed {
            return Err(StoreError::KeyNotFound(key.clone()));
        }
        for dc in self.cluster.model.dc_ids() {
            self.cluster.control(dc, ControlMsg::RemoveKey(key.clone()));
        }
        self.view.remove(key);
        self.cas_cache.remove(key);
        Ok(())
    }

    /// GET: returns the value of `key`.
    pub fn get(&mut self, key: &Key) -> StoreResult<Value> {
        let invoke = self.cluster.now_ns();
        let (value, one_phase) = self.run_operation(key, OpKind::Get, None)?;
        let ret = self.cluster.now_ns();
        self.stats.gets += 1;
        if one_phase {
            self.stats.one_phase_gets += 1;
        }
        self.cluster.recorder.record_get(
            key.as_str(),
            self.client_id.0,
            fingerprint(value.as_bytes()),
            invoke,
            ret,
        );
        Ok(value)
    }

    /// PUT: overwrites the value of `key`.
    pub fn put(&mut self, key: &Key, value: Value) -> StoreResult<()> {
        let invoke = self.cluster.now_ns();
        let fp = fingerprint(value.as_bytes());
        self.run_operation(key, OpKind::Put, Some(value))?;
        let ret = self.cluster.now_ns();
        self.stats.puts += 1;
        self.cluster
            .recorder
            .record_put(key.as_str(), self.client_id.0, fp, invoke, ret);
        Ok(())
    }

    /// Refreshes this client's view of `key`'s configuration from the metadata service.
    pub fn refresh_view(&mut self, key: &Key) -> StoreResult<Configuration> {
        let config = self
            .cluster
            .metadata
            .lock()
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::KeyNotFound(key.clone()))?;
        self.view.insert(key.clone(), config.clone());
        Ok(config)
    }

    fn config_for(&mut self, key: &Key) -> StoreResult<Configuration> {
        if let Some(c) = self.view.get(key) {
            return Ok(c.clone());
        }
        self.refresh_view(key)
    }

    fn build_op(&self, key: &Key, kind: OpKind, config: &Configuration, value: Option<&Value>) -> ClientOp {
        match (config.protocol, kind) {
            (ProtocolKind::Abd, OpKind::Put) => ClientOp::AbdPut(AbdPut::new(
                key.clone(),
                config.clone(),
                self.dc,
                self.client_id,
                value.cloned().unwrap_or_else(Value::empty),
            )),
            (ProtocolKind::Abd, OpKind::Get) => ClientOp::AbdGet(AbdGet::new(
                key.clone(),
                config.clone(),
                self.dc,
                self.cluster.options.optimized_get,
            )),
            (ProtocolKind::Cas, OpKind::Put) => ClientOp::CasPut(CasPut::new(
                key.clone(),
                config.clone(),
                self.dc,
                self.client_id,
                value.cloned().unwrap_or_else(Value::empty),
            )),
            (ProtocolKind::Cas, OpKind::Get) => {
                let cache = if self.cluster.options.optimized_get {
                    self.cas_cache.get(key).cloned()
                } else {
                    None
                };
                ClientOp::CasGet(CasGet::new(key.clone(), config.clone(), self.dc, cache))
            }
        }
    }

    /// Runs one GET/PUT to completion, handling reconfiguration redirects and timeouts.
    /// Returns the value read (GETs) or the value written (PUTs) plus the one-phase flag.
    fn run_operation(
        &mut self,
        key: &Key,
        kind: OpKind,
        value: Option<Value>,
    ) -> StoreResult<(Value, bool)> {
        let mut config = self.config_for(key)?;
        let mut widen = false;
        let max_attempts = self.cluster.options.max_attempts.max(1);
        let mut last_error = StoreError::QuorumTimeout { needed: 0, received: 0 };
        let clock = self.cluster.clock().clone();
        // Register with the clock for the whole operation: a virtual clock must not jump
        // ahead while this thread is between sends and waits.
        let _participant = clock.enter();
        for _attempt in 0..max_attempts {
            let mut effective = config.clone();
            if widen {
                // Failure handling (§4.5): re-send to every DC in the placement and take the
                // first quorum's worth of responses.
                let all = effective.dcs.clone();
                effective
                    .preferred_quorums
                    .insert(self.dc, vec![all.clone(), all.clone(), all.clone(), all]);
            }
            let mut op = self.build_op(key, kind, &effective, value.as_ref());
            let endpoint = self.cluster.next_endpoint.fetch_add(1, Ordering::Relaxed);
            let deadline_ns =
                clock.now_ns() + self.cluster.options.op_timeout.as_nanos() as u64;
            // A fresh reply channel per attempt: dropping it at the end of the attempt
            // disconnects and drains it, so replies that straggle in after a timeout or a
            // reconfiguration redirect are discarded at the source (and cannot hold a
            // virtual clock back).
            let (reply_tx, reply_rx) = clock.channel::<ReplyEnvelope>();
            let mut inbox: DelayedInbox<ReplyEnvelope> = DelayedInbox::new();
            let mut outbound = op.start();
            // Metadata round trip owed after a reconfiguration redirect; slept only once
            // the attempt's reply channel is closed (a bare sleep with an open channel
            // could strand straggler replies and stall a virtual clock).
            let mut metadata_pause = None;
            loop {
                for out in outbound.drain(..) {
                    let inbound = Inbound {
                        from: endpoint,
                        msg_id: 0,
                        phase: out.phase,
                        key: out.key.clone(),
                        epoch: out.epoch,
                        msg: out.msg.clone(),
                    };
                    self.cluster.send_request(out.to, reply_tx.clone(), inbound)?;
                }
                // Wait for the next reply (or the attempt deadline).
                let env = match self.wait_for_reply(endpoint, &reply_rx, &mut inbox, deadline_ns) {
                    Some(env) => env,
                    None => break, // timeout: widen and retry
                };
                match op.on_reply(env.from, env.phase, env.reply) {
                    OpProgress::Pending => {}
                    OpProgress::Send(msgs) => outbound = msgs,
                    OpProgress::Done(outcome) => match outcome {
                        OpOutcome::PutOk { tag } => {
                            if let Some(v) = &value {
                                self.cas_cache.insert(key.clone(), (tag, v.clone()));
                            }
                            return Ok((value.unwrap_or_else(Value::empty), false));
                        }
                        OpOutcome::GetOk { tag, value, one_phase } => {
                            self.cas_cache.insert(key.clone(), (tag, value.clone()));
                            return Ok((value, one_phase));
                        }
                        OpOutcome::Reconfigured { new_config } => {
                            // Fetch the new configuration (modeled as a metadata round trip
                            // to the controller DC) and retry against it.
                            self.stats.reconfig_restarts += 1;
                            metadata_pause = Some(self.cluster.reply_delay(
                                self.dc,
                                self.cluster.options.controller_dc,
                                self.cluster.options.metadata_bytes,
                            ));
                            config = (*new_config).clone();
                            self.view.insert(key.clone(), config.clone());
                            last_error = StoreError::OperationFailedByReconfig {
                                new_epoch: config.epoch,
                            };
                            break;
                        }
                        OpOutcome::Failed(err) => {
                            if err.is_retryable() {
                                last_error = err;
                                break;
                            }
                            return Err(err);
                        }
                    },
                }
            }
            // The attempt is over: close its reply channel (discarding any stragglers)
            // before pausing for the modeled metadata fetch.
            drop(reply_rx);
            drop(reply_tx);
            if let Some(delay) = metadata_pause {
                clock.sleep(delay);
            }
            // The attempt ended without completing: refresh the view (it may have changed)
            // and widen the quorum for the next attempt.
            if let Ok(fresh) = self.refresh_view(key) {
                if fresh.epoch > config.epoch {
                    config = fresh;
                } else {
                    widen = true;
                    self.stats.timeout_restarts += 1;
                }
            } else {
                widen = true;
            }
        }
        Err(last_error)
    }

    /// Buffers `env` in `inbox` at its modeled arrival instant.
    fn buffer_reply(&self, inbox: &mut DelayedInbox<ReplyEnvelope>, env: ReplyEnvelope) {
        self.cluster.buffer_reply(self.dc, inbox, env);
    }

    /// Waits for the next reply addressed to `endpoint` on this attempt's channel,
    /// honoring modeled network delays. `deadline_ns` is a
    /// [`Clock::now_ns`](crate::clock::Clock::now_ns) timestamp. All parking happens in
    /// channel waits (never in a bare clock sleep), so replies keep being drained into
    /// the inbox while we wait for the earliest one.
    fn wait_for_reply(
        &mut self,
        endpoint: u64,
        reply_rx: &ClockedReceiver<ReplyEnvelope>,
        inbox: &mut DelayedInbox<ReplyEnvelope>,
        deadline_ns: u64,
    ) -> Option<ReplyEnvelope> {
        let clock = self.cluster.clock().clone();
        loop {
            // Drain anything already on the channel into the delayed inbox. The channel
            // is per-attempt so every envelope should match `endpoint`; the filter stays
            // as a guard against routing mix-ups.
            while let Ok(env) = reply_rx.try_recv() {
                if env.endpoint == endpoint {
                    self.buffer_reply(inbox, env);
                }
            }
            if let Some(env) = inbox.pop_ready(clock.now_ns()) {
                return Some(env);
            }
            if clock.now_ns() >= deadline_ns {
                return None;
            }
            let wake_ns = inbox
                .next_available_at()
                .unwrap_or(deadline_ns)
                .min(deadline_ns);
            match reply_rx.recv_deadline_ns(wake_ns) {
                Ok(env) => {
                    if env.endpoint == endpoint {
                        self.buffer_reply(inbox, env);
                    }
                }
                Err(_) => {
                    if clock.now_ns() >= deadline_ns
                        && inbox.next_available_at().map(|t| t > deadline_ns).unwrap_or(true)
                    {
                        return None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::cluster::{Cluster, ClusterOptions};
    use legostore_cloud::GcpLocation;
    use std::time::Duration;

    fn fast_cluster() -> Cluster {
        Cluster::gcp9(ClusterOptions {
            latency_scale: 0.002,
            op_timeout: Duration::from_millis(250),
            clock: Clock::virtual_time(),
            ..Default::default()
        })
    }

    #[test]
    fn create_get_put_delete_round_trip() {
        let cluster = fast_cluster();
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        let key = Key::from("user:1");
        client.create(&key, Value::from("hello")).unwrap();
        assert_eq!(client.get(&key).unwrap(), Value::from("hello"));
        client.put(&key, Value::from("world")).unwrap();
        assert_eq!(client.get(&key).unwrap(), Value::from("world"));
        client.delete(&key).unwrap();
        assert!(matches!(client.get(&key), Err(StoreError::KeyNotFound(_))));
        cluster.shutdown();
    }

    #[test]
    fn create_twice_fails_and_delete_missing_fails() {
        let cluster = fast_cluster();
        let mut client = cluster.client(GcpLocation::Oregon.dc());
        let key = Key::from("dup");
        client.create(&key, Value::from("a")).unwrap();
        assert!(matches!(
            client.create(&key, Value::from("b")),
            Err(StoreError::KeyAlreadyExists(_))
        ));
        assert!(matches!(
            client.delete(&Key::from("missing")),
            Err(StoreError::KeyNotFound(_))
        ));
        cluster.shutdown();
    }

    #[test]
    fn cas_configuration_round_trip_and_cache() {
        let cluster = fast_cluster();
        let mut client = cluster.client(GcpLocation::Virginia.dc());
        let key = Key::from("coded");
        let config = Configuration::cas_default(
            vec![
                GcpLocation::Virginia.dc(),
                GcpLocation::Oregon.dc(),
                GcpLocation::LosAngeles.dc(),
                GcpLocation::Frankfurt.dc(),
                GcpLocation::London.dc(),
            ],
            3,
            1,
        );
        client
            .create_with_config(&key, Value::filler(5000), config)
            .unwrap();
        assert_eq!(client.get(&key).unwrap(), Value::filler(5000));
        client.put(&key, Value::filler(2500)).unwrap();
        // The second GET can use the client-side cache and complete in one phase.
        assert_eq!(client.get(&key).unwrap(), Value::filler(2500));
        let stats = client.stats();
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.puts, 1);
        assert!(stats.one_phase_gets >= 1, "{stats:?}");
        cluster.shutdown();
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let cluster = fast_cluster();
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        // CAS with n < k + 2f is invalid.
        let bad = Configuration::cas_default(
            vec![GcpLocation::Tokyo.dc(), GcpLocation::Oregon.dc(), GcpLocation::Virginia.dc()],
            3,
            1,
        );
        assert!(matches!(
            client.create_with_config(&Key::from("bad"), Value::empty(), bad),
            Err(StoreError::InvalidConfiguration(_))
        ));
        cluster.shutdown();
    }

    #[test]
    fn two_clients_in_different_dcs_see_each_others_writes() {
        let cluster = fast_cluster();
        let key = Key::from("shared");
        let mut tokyo = cluster.client(GcpLocation::Tokyo.dc());
        let mut london = cluster.client(GcpLocation::London.dc());
        tokyo.create(&key, Value::from("t0")).unwrap();
        tokyo.put(&key, Value::from("from-tokyo")).unwrap();
        assert_eq!(london.get(&key).unwrap(), Value::from("from-tokyo"));
        london.put(&key, Value::from("from-london")).unwrap();
        assert_eq!(tokyo.get(&key).unwrap(), Value::from("from-london"));
        // The recorded history is linearizable.
        assert!(cluster.recorder().check_all().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn history_recorder_sees_all_operations() {
        let cluster = fast_cluster();
        let mut client = cluster.client(GcpLocation::Sydney.dc());
        let key = Key::from("audited");
        client.create(&key, Value::from("0")).unwrap();
        for i in 1..=5 {
            client.put(&key, Value::from(format!("{i}").as_str())).unwrap();
            client.get(&key).unwrap();
        }
        assert_eq!(cluster.recorder().len("audited"), 10);
        assert!(cluster.recorder().check_all().is_empty());
        cluster.shutdown();
    }
}
