//! The LEGOStore client: the user-facing CREATE / GET / PUT / DELETE API (§3.1).
//!
//! A [`StoreClient`] is bound to one data center (users are served by the client in or
//! nearest to their DC). Each operation resolves the key's configuration (from the client's
//! local view, falling back to the metadata service), runs the appropriate protocol state
//! machine against the server threads, and transparently handles the two kinds of
//! disruption the paper studies: reconfigurations (restart against the new configuration
//! after refreshing metadata) and data-center failures (timeout, widen the quorum to the
//! full placement, retry).

use crate::cluster::ClusterInner;
use crate::inbox::DelayedInbox;
use crate::transport::{Endpoint, ReplyEnvelope};
use legostore_lincheck::recorder::fingerprint;
use legostore_obs::{OpRecord, OpSpan, SpanEventKind};
use legostore_proto::msg::{OpOutcome, OpProgress, Outbound, ProtoReply};
use legostore_proto::server::{ControlMsg, DcServer, Inbound};
use legostore_proto::{AbdGet, AbdPut, CasGet, CasPut};
use legostore_types::{
    ClientId, Configuration, DcId, Key, OpKind, ProtocolKind, StoreError, StoreResult, Tag, Value,
};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One protocol operation in flight.
enum ClientOp {
    AbdPut(AbdPut),
    AbdGet(AbdGet),
    CasPut(CasPut),
    CasGet(CasGet),
}

impl ClientOp {
    fn start(&self) -> Vec<Outbound> {
        match self {
            ClientOp::AbdPut(o) => o.start(),
            ClientOp::AbdGet(o) => o.start(),
            ClientOp::CasPut(o) => o.start(),
            ClientOp::CasGet(o) => o.start(),
        }
    }

    /// Re-sends the current phase to every placement DC (§4.5 timeout handling). The
    /// operation *resumes* — same state machine, same chosen tag — because a restarted
    /// PUT would take effect a second time under a fresh tag (see
    /// [`AbdPut::resend_widened`]).
    fn resend_widened(&mut self) -> Vec<Outbound> {
        match self {
            ClientOp::AbdPut(o) => o.resend_widened(),
            ClientOp::AbdGet(o) => o.resend_widened(),
            ClientOp::CasPut(o) => o.resend_widened(),
            ClientOp::CasGet(o) => o.resend_widened(),
        }
    }

    /// The tag a PUT has committed to (`None` for GETs and for PUTs still in their
    /// query phase). A rebuild across a configuration epoch must carry this tag into
    /// the new state machine — see [`StoreClient::rebuild_for_epoch`].
    fn chosen_tag(&self) -> Option<Tag> {
        match self {
            ClientOp::AbdPut(o) => o.chosen_tag(),
            ClientOp::CasPut(o) => o.chosen_tag(),
            ClientOp::AbdGet(_) | ClientOp::CasGet(_) => None,
        }
    }

    /// The protocol phase the state machine is currently in (for telemetry spans).
    fn current_phase(&self) -> u8 {
        match self {
            ClientOp::AbdPut(o) => o.current_phase(),
            ClientOp::AbdGet(o) => o.current_phase(),
            ClientOp::CasPut(o) => o.current_phase(),
            ClientOp::CasGet(o) => o.current_phase(),
        }
    }

    /// `(needed, received)` of the stalled phase's quorum (timeout diagnostics).
    fn pending_quorum(&self) -> (usize, usize) {
        match self {
            ClientOp::AbdPut(o) => o.pending_quorum(),
            ClientOp::AbdGet(o) => o.pending_quorum(),
            ClientOp::CasPut(o) => o.pending_quorum(),
            ClientOp::CasGet(o) => o.pending_quorum(),
        }
    }

    fn on_reply(&mut self, from: DcId, phase: u8, reply: ProtoReply) -> OpProgress {
        match self {
            ClientOp::AbdPut(o) => o.on_reply(from, phase, reply),
            ClientOp::AbdGet(o) => o.on_reply(from, phase, reply),
            ClientOp::CasPut(o) => o.on_reply(from, phase, reply),
            ClientOp::CasGet(o) => o.on_reply(from, phase, reply),
        }
    }
}

/// Statistics kept by a client about its own operations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClientStats {
    /// Completed GETs.
    pub gets: u64,
    /// GETs that finished in one phase (optimized GETs).
    pub one_phase_gets: u64,
    /// Completed PUTs.
    pub puts: u64,
    /// Operation attempts that were restarted because of a reconfiguration.
    pub reconfig_restarts: u64,
    /// Operation attempts that were restarted after a timeout.
    pub timeout_restarts: u64,
}

/// A LEGOStore client bound to one data center.
pub struct StoreClient {
    cluster: Arc<ClusterInner>,
    dc: DcId,
    client_id: ClientId,
    /// Local view of key configurations (refreshed on redirects).
    view: HashMap<Key, Configuration>,
    /// Client-side cache used by the CAS optimized GET.
    cas_cache: HashMap<Key, (Tag, Value)>,
    /// Per-client operation statistics.
    stats: ClientStats,
}

impl StoreClient {
    pub(crate) fn new(cluster: Arc<ClusterInner>, dc: DcId) -> StoreClient {
        let client_id = ClientId(cluster.next_client_id.fetch_add(1, Ordering::Relaxed));
        StoreClient {
            cluster,
            dc,
            client_id,
            view: HashMap::new(),
            cas_cache: HashMap::new(),
            stats: ClientStats::default(),
        }
    }

    /// The data center this client runs in.
    pub fn dc(&self) -> DcId {
        self.dc
    }

    /// This client's unique identifier (the tie-breaker in tags).
    pub fn client_id(&self) -> ClientId {
        self.client_id
    }

    /// Operation statistics collected so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// CREATE: registers `key` with the default configuration (ABD over the nearest DCs) and
    /// stores `value` as its initial version. Errors if the key already exists.
    pub fn create(&mut self, key: &Key, value: Value) -> StoreResult<()> {
        let f = self.cluster.options.default_fault_tolerance;
        let dcs: Vec<DcId> = self
            .cluster
            .model
            .nearest_dcs(self.dc)
            .into_iter()
            .take(2 * f + 1)
            .collect();
        let config = Configuration::abd_majority(dcs, f);
        self.create_with_config(key, value, config)
    }

    /// CREATE with an explicit configuration (e.g. one produced by the optimizer).
    pub fn create_with_config(
        &mut self,
        key: &Key,
        value: Value,
        config: Configuration,
    ) -> StoreResult<()> {
        config
            .validate()
            .map_err(|e| StoreError::InvalidConfiguration(e.to_string()))?;
        {
            let mut meta = self.cluster.metadata.lock();
            if meta.contains_key(key) {
                return Err(StoreError::KeyAlreadyExists(key.clone()));
            }
            meta.insert(key.clone(), config.clone());
        }
        for (dc, payload) in DcServer::initial_payloads(&config, &value) {
            self.cluster.control(
                dc,
                ControlMsg::InstallKey {
                    key: key.clone(),
                    config: config.clone(),
                    tag: Tag::INITIAL,
                    payload,
                },
            );
        }
        self.cluster
            .recorder
            .register_key(key.as_str(), fingerprint(value.as_bytes()));
        self.view.insert(key.clone(), config);
        Ok(())
    }

    /// DELETE: removes the key everywhere. Errors if the key does not exist.
    pub fn delete(&mut self, key: &Key) -> StoreResult<()> {
        let existed = self.cluster.metadata.lock().remove(key).is_some();
        if !existed {
            return Err(StoreError::KeyNotFound(key.clone()));
        }
        for dc in self.cluster.model.dc_ids() {
            self.cluster.control(dc, ControlMsg::RemoveKey(key.clone()));
        }
        self.view.remove(key);
        self.cas_cache.remove(key);
        Ok(())
    }

    /// GET: returns the value of `key`.
    pub fn get(&mut self, key: &Key) -> StoreResult<Value> {
        let invoke = self.cluster.now_ns();
        let (value, one_phase) = self.run_operation(key, OpKind::Get, None)?;
        let ret = self.cluster.now_ns();
        self.stats.gets += 1;
        if one_phase {
            self.stats.one_phase_gets += 1;
        }
        self.cluster.recorder.record_get(
            key.as_str(),
            self.client_id.0,
            fingerprint(value.as_bytes()),
            invoke,
            ret,
        );
        Ok(value)
    }

    /// PUT: overwrites the value of `key`.
    pub fn put(&mut self, key: &Key, value: Value) -> StoreResult<()> {
        let invoke = self.cluster.now_ns();
        let fp = fingerprint(value.as_bytes());
        self.run_operation(key, OpKind::Put, Some(value))?;
        let ret = self.cluster.now_ns();
        self.stats.puts += 1;
        self.cluster
            .recorder
            .record_put(key.as_str(), self.client_id.0, fp, invoke, ret);
        Ok(())
    }

    /// Refreshes this client's view of `key`'s configuration from the metadata service.
    pub fn refresh_view(&mut self, key: &Key) -> StoreResult<Configuration> {
        let config = self
            .cluster
            .metadata
            .lock()
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::KeyNotFound(key.clone()))?;
        self.view.insert(key.clone(), config.clone());
        Ok(config)
    }

    fn config_for(&mut self, key: &Key) -> StoreResult<Configuration> {
        if let Some(c) = self.view.get(key) {
            return Ok(c.clone());
        }
        self.refresh_view(key)
    }

    fn build_op(&self, key: &Key, kind: OpKind, config: &Configuration, value: Option<&Value>) -> ClientOp {
        match (config.protocol, kind) {
            (ProtocolKind::Abd, OpKind::Put) => ClientOp::AbdPut(AbdPut::new(
                key.clone(),
                config.clone(),
                self.dc,
                self.client_id,
                value.cloned().unwrap_or_else(Value::empty),
            )),
            (ProtocolKind::Abd, OpKind::Get) => ClientOp::AbdGet(AbdGet::new(
                key.clone(),
                config.clone(),
                self.dc,
                self.cluster.options.optimized_get,
            )),
            (ProtocolKind::Cas, OpKind::Put) => ClientOp::CasPut(CasPut::new(
                key.clone(),
                config.clone(),
                self.dc,
                self.client_id,
                value.cloned().unwrap_or_else(Value::empty),
            )),
            (ProtocolKind::Cas, OpKind::Get) => {
                let cache = if self.cluster.options.optimized_get {
                    self.cas_cache.get(key).cloned()
                } else {
                    None
                };
                ClientOp::CasGet(CasGet::new(key.clone(), config.clone(), self.dc, cache))
            }
        }
    }

    /// Builds (or rebuilds) the operation state machine, recording the erasure-encode
    /// duration on CAS PUTs when a span is active (`CasPut::new` splits the value into
    /// coded elements).
    fn build_op_traced(
        &self,
        key: &Key,
        kind: OpKind,
        config: &Configuration,
        value: Option<&Value>,
        span: &mut Option<OpSpan>,
    ) -> ClientOp {
        let Some(s) = span.as_mut() else {
            return self.build_op(key, kind, config, value);
        };
        let clock = self.cluster.clock();
        let build_started_ns = clock.now_ns();
        let op = self.build_op(key, kind, config, value);
        if kind.is_put() && matches!(config.protocol, ProtocolKind::Cas) {
            let now = clock.now_ns();
            s.push(now, SpanEventKind::Encode { dur_ns: now.saturating_sub(build_started_ns) });
        }
        op
    }

    /// Rebuilds the state machine after a reconfiguration moved the key to a new epoch.
    ///
    /// A PUT that already chose its tag in the old epoch re-enters the new epoch
    /// *resumed* at the write phase with that tag pinned
    /// ([`AbdPut::resume_write`] / [`CasPut::resume_write`]): its old-epoch phase-2
    /// writes may have landed at old servers and been transferred into the new
    /// placement, so a fresh machine would re-query and install the same value again
    /// under a higher tag — one logical PUT linearizing twice, observable as a
    /// new → old → new read sequence. GETs and PUTs still in their query phase have no
    /// cross-epoch effect to deduplicate and restart fresh.
    fn rebuild_for_epoch(
        &self,
        key: &Key,
        kind: OpKind,
        config: &Configuration,
        value: Option<&Value>,
        pinned: Option<Tag>,
        span: &mut Option<OpSpan>,
    ) -> ClientOp {
        let Some(tag) = pinned.filter(|_| kind.is_put()) else {
            return self.build_op_traced(key, kind, config, value, span);
        };
        let clock = self.cluster.clock();
        let build_started_ns = clock.now_ns();
        let value = value.cloned().unwrap_or_else(Value::empty);
        let op = match config.protocol {
            ProtocolKind::Abd => ClientOp::AbdPut(AbdPut::resume_write(
                key.clone(),
                config.clone(),
                self.dc,
                self.client_id,
                tag,
                value,
            )),
            ProtocolKind::Cas => ClientOp::CasPut(CasPut::resume_write(
                key.clone(),
                config.clone(),
                self.dc,
                self.client_id,
                tag,
                value,
            )),
        };
        if let Some(s) = span.as_mut() {
            if matches!(config.protocol, ProtocolKind::Cas) {
                let now = clock.now_ns();
                s.push(now, SpanEventKind::Encode { dur_ns: now.saturating_sub(build_started_ns) });
            }
        }
        op
    }

    /// Runs one GET/PUT to completion, handling reconfiguration redirects and timeouts.
    /// Returns the value read (GETs) or the value written (PUTs) plus the one-phase flag.
    ///
    /// Telemetry wrapper: when observability is on, the whole operation is covered by an
    /// [`OpSpan`] (phase starts, replies with their service/network split, retries), the
    /// finished span feeds the client metric bundle and the bounded op-record queue, and
    /// a terminal [`StoreError::QuorumUnreachable`] dumps the flight recorder to stderr
    /// so the events leading up to the give-up are preserved.
    fn run_operation(
        &mut self,
        key: &Key,
        kind: OpKind,
        value: Option<Value>,
    ) -> StoreResult<(Value, bool)> {
        let obs = self.cluster.obs.clone();
        if !obs.enabled() {
            return self.run_operation_inner(key, kind, value, &mut None);
        }
        let clock = self.cluster.clock().clone();
        let started_ns = clock.now_ns();
        let mut span = Some(OpSpan::new(obs.next_op_id(), kind, key.as_str(), self.dc, started_ns));
        let result = self.run_operation_inner(key, kind, value, &mut span);
        let mut span = span.expect("span is only taken here");
        let completed_ns = clock.now_ns();
        let ok = result.is_ok();
        span.push(completed_ns, SpanEventKind::Finished { ok });
        self.cluster.client_metrics.observe_span(&span, completed_ns, ok);
        obs.push_op(OpRecord {
            op_id: span.op_id,
            kind,
            key: key.as_str().to_string(),
            origin: self.dc,
            started_ns,
            completed_ns,
            object_bytes: result
                .as_ref()
                .map(|(v, _)| v.as_bytes().len() as u64)
                .unwrap_or(0),
            ok,
        });
        if obs.trace_enabled() {
            eprintln!("{}", span.render());
        }
        if let Err(StoreError::QuorumUnreachable { attempts, last }) = &result {
            obs.flight().record(
                completed_ns,
                span.op_id,
                format!("{kind} {key} gave up after {attempts} attempts (last: {last})"),
            );
            obs.flight()
                .dump_to_stderr(&format!("{kind} {key} from {} hit QuorumUnreachable", self.dc));
        }
        result
    }

    /// The uninstrumented operation loop behind [`StoreClient::run_operation`]; `span`
    /// is `Some` only when observability is enabled.
    fn run_operation_inner(
        &mut self,
        key: &Key,
        kind: OpKind,
        value: Option<Value>,
        span: &mut Option<OpSpan>,
    ) -> StoreResult<(Value, bool)> {
        let mut config = self.config_for(key)?;
        let max_attempts = self.cluster.options.max_attempts.max(1);
        let mut last_error = StoreError::QuorumTimeout { needed: 0, received: 0 };
        let clock = self.cluster.clock().clone();
        // Register with the clock for the whole operation: a virtual clock must not jump
        // ahead while this thread is between sends and waits.
        let _participant = clock.enter();
        // One state machine for the whole operation. A timed-out attempt *resumes* it
        // (§4.5: re-send the current phase to every placement DC) rather than restarting:
        // a restarted PUT whose writes already landed somewhere would install the same
        // value again under a fresh tag — one logical write, two linearization points.
        // The machine is rebuilt only when the configuration itself changed (reconfig
        // redirect or epoch bump) or after a retryable in-protocol failure, which only
        // effect-free reads report.
        let mut op = self.build_op_traced(key, kind, &config, value.as_ref(), span);
        let mut resume = false;
        // True once a reconfiguration redirected this operation into a newer epoch.
        // During that window a KeyNotFound from a new-placement server is transient
        // (the controller's write-new round may not have reached it yet), so it is
        // retried instead of surfaced, as long as the metadata still lists the key.
        let mut crossed_epochs = false;
        // Span bookkeeping: which phase is running and when it started (a reply's
        // network share is measured from the start of the phase that solicited it).
        let mut last_phase: u8 = 0;
        let mut phase_started_ns: u64 = 0;
        for _attempt in 0..max_attempts {
            let endpoint = self.cluster.transport.open_endpoint();
            let deadline_ns =
                clock.now_ns() + self.cluster.options.op_timeout.as_nanos() as u64;
            // A fresh endpoint per attempt: dropping it at the end of the attempt closes
            // its reply channel (and deregisters its route, on transports that keep one),
            // so replies that straggle in after a timeout or a reconfiguration redirect
            // are discarded at the source (and cannot hold a virtual clock back).
            let mut inbox: DelayedInbox<ReplyEnvelope> = DelayedInbox::new();
            let mut outbound = if resume { op.resend_widened() } else { op.start() };
            if let Some(s) = span.as_mut() {
                last_phase = op.current_phase();
                phase_started_ns = clock.now_ns();
                s.push(phase_started_ns, SpanEventKind::PhaseStart { phase: last_phase });
            }
            // Metadata round trip owed after a reconfiguration redirect; slept only once
            // the attempt's reply channel is closed (a bare sleep with an open channel
            // could strand straggler replies and stall a virtual clock).
            let mut metadata_pause = None;
            let mut timed_out = false;
            loop {
                for out in outbound.drain(..) {
                    let inbound = Inbound {
                        from: endpoint.id(),
                        msg_id: 0,
                        phase: out.phase,
                        key: out.key.clone(),
                        epoch: out.epoch,
                        msg: out.msg.clone(),
                    };
                    self.cluster.send_request(self.dc, out.to, &endpoint, inbound)?;
                }
                // Wait for the next reply (or the attempt deadline).
                let env = match self.wait_for_reply(&endpoint, &mut inbox, config.epoch, deadline_ns)
                {
                    Some(env) => env,
                    None => {
                        timed_out = true;
                        // Record how far the stalled phase got, so a final
                        // QuorumUnreachable carries real needed/received counts.
                        let (needed, received) = op.pending_quorum();
                        last_error = StoreError::QuorumTimeout { needed, received };
                        break; // timeout: resume with a widened re-send
                    }
                };
                let reply_seen_ns = span.as_mut().map(|s| {
                    let now = clock.now_ns();
                    let network_ns =
                        now.saturating_sub(phase_started_ns).saturating_sub(env.service_ns);
                    s.push(
                        now,
                        SpanEventKind::Reply {
                            from: env.from,
                            phase: env.phase,
                            service_ns: env.service_ns,
                            network_ns,
                        },
                    );
                    now
                });
                match op.on_reply(env.from, env.phase, env.reply) {
                    OpProgress::Pending => {}
                    OpProgress::Send(msgs) => {
                        outbound = msgs;
                        if let Some(s) = span.as_mut() {
                            let phase = op.current_phase();
                            if phase != last_phase {
                                last_phase = phase;
                                phase_started_ns = clock.now_ns();
                                s.push(phase_started_ns, SpanEventKind::PhaseStart { phase });
                            }
                        }
                    }
                    OpProgress::Done(outcome) => match outcome {
                        OpOutcome::PutOk { tag } => {
                            if let Some(v) = &value {
                                self.cas_cache.insert(key.clone(), (tag, v.clone()));
                            }
                            return Ok((value.unwrap_or_else(Value::empty), false));
                        }
                        OpOutcome::GetOk { tag, value, one_phase } => {
                            if let Some(s) = span.as_mut() {
                                // The completing on_reply of a CAS GET reassembles the
                                // value from coded elements — charge it as decode time.
                                if matches!(config.protocol, ProtocolKind::Cas) {
                                    let now = clock.now_ns();
                                    let dur_ns =
                                        now.saturating_sub(reply_seen_ns.unwrap_or(now));
                                    s.push(now, SpanEventKind::Decode { dur_ns });
                                }
                                if one_phase {
                                    self.cluster.client_metrics.one_phase_gets.inc();
                                }
                            }
                            self.cas_cache.insert(key.clone(), (tag, value.clone()));
                            return Ok((value, one_phase));
                        }
                        OpOutcome::Reconfigured { new_config } => {
                            // Fetch the new configuration (modeled as a metadata round trip
                            // to the controller DC) and restart against it.
                            self.stats.reconfig_restarts += 1;
                            if let Some(s) = span.as_mut() {
                                let now = clock.now_ns();
                                s.push(now, SpanEventKind::ReconfigRestart);
                                self.cluster.obs.flight().record(
                                    now,
                                    s.op_id,
                                    format!(
                                        "{kind} {key}: restarting against epoch {}",
                                        new_config.epoch
                                    ),
                                );
                            }
                            metadata_pause = Some(self.cluster.reply_delay(
                                self.dc,
                                self.cluster.options.controller_dc,
                                self.cluster.options.metadata_bytes,
                            ));
                            config = (*new_config).clone();
                            self.view.insert(key.clone(), config.clone());
                            last_error = StoreError::OperationFailedByReconfig {
                                new_epoch: config.epoch,
                            };
                            // Rebuild for the new epoch, pinning the tag a PUT already
                            // chose (its old-epoch writes may have been transferred).
                            op = self.rebuild_for_epoch(
                                key,
                                kind,
                                &config,
                                value.as_ref(),
                                op.chosen_tag(),
                                span,
                            );
                            resume = false;
                            crossed_epochs = true;
                            break;
                        }
                        OpOutcome::Failed(err) => {
                            if err.is_retryable() {
                                // Only effect-free reads reach here (e.g. a CAS GET that
                                // gathered too few coded elements), so a fresh state
                                // machine is safe — and re-querying picks up the newest
                                // finalized tag, which a resumed read would keep missing.
                                last_error = err;
                                op = self.build_op_traced(key, kind, &config, value.as_ref(), span);
                                resume = false;
                                break;
                            }
                            if crossed_epochs
                                && matches!(err, StoreError::KeyNotFound(_))
                                && self.cluster.metadata.lock().contains_key(key)
                            {
                                // The redirect raced the controller's write-new round: a
                                // new-placement server answered before the key reached
                                // it. The metadata still lists the key, so retry (with
                                // the PUT's tag still pinned) instead of failing.
                                last_error = err;
                                op = self.rebuild_for_epoch(
                                    key,
                                    kind,
                                    &config,
                                    value.as_ref(),
                                    op.chosen_tag(),
                                    span,
                                );
                                resume = false;
                                break;
                            }
                            return Err(err);
                        }
                    },
                }
            }
            // The attempt is over: close its endpoint (discarding any stragglers)
            // before pausing for the modeled metadata fetch.
            drop(endpoint);
            if let Some(delay) = metadata_pause {
                clock.sleep(delay);
            }
            if !timed_out {
                continue; // the outcome arm already rebuilt the operation
            }
            // The attempt timed out: refresh the view (it may have changed). If the
            // configuration moved, restart against it; otherwise resume the same
            // operation, re-sending its current phase to the full placement.
            if let Ok(fresh) = self.refresh_view(key) {
                if fresh.epoch > config.epoch {
                    config = fresh;
                    // Same cross-epoch hazard as the redirect arm: a timed-out PUT whose
                    // old-epoch writes were transferred must keep its tag in the new epoch.
                    op = self.rebuild_for_epoch(
                        key,
                        kind,
                        &config,
                        value.as_ref(),
                        op.chosen_tag(),
                        span,
                    );
                    resume = false;
                    crossed_epochs = true;
                    continue;
                }
            }
            resume = true;
            self.stats.timeout_restarts += 1;
            if let Some(s) = span.as_mut() {
                let now = clock.now_ns();
                let phase = op.current_phase();
                s.push(now, SpanEventKind::TimeoutWiden { phase });
                self.cluster.obs.flight().record(
                    now,
                    s.op_id,
                    format!(
                        "{kind} {key}: attempt timed out in phase {phase} ({last_error}); \
                         widening to the full placement"
                    ),
                );
            }
        }
        // Every attempt ended in a retryable failure (timeouts, reconfiguration races,
        // transport loss): report the terminal verdict instead of the last symptom, so
        // callers facing a beyond-`f` fault get a typed, non-retryable answer rather
        // than a generic timeout (or, worse, an unbounded hang).
        Err(StoreError::QuorumUnreachable {
            attempts: max_attempts,
            last: Box::new(last_error),
        })
    }

    /// Buffers `env` in `inbox` at its modeled arrival instant.
    fn buffer_reply(&self, inbox: &mut DelayedInbox<ReplyEnvelope>, env: ReplyEnvelope) {
        self.cluster.buffer_reply(self.dc, inbox, env);
    }

    /// Waits for the next reply addressed to `endpoint`, honoring modeled network
    /// delays. `deadline_ns` is a [`Clock::now_ns`](crate::clock::Clock::now_ns)
    /// timestamp. All parking happens in channel waits (never in a bare clock sleep), so
    /// replies keep being drained into the inbox while we wait for the earliest one.
    ///
    /// Replies are filtered by endpoint id *and* by `epoch`: every request of the
    /// attempt carries the attempt's configuration epoch and servers echo it back, so
    /// an envelope stamped with any other epoch is a straggler solicited before a
    /// reconfiguration redirect (or a routing mix-up) and is discarded unseen.
    fn wait_for_reply(
        &mut self,
        endpoint: &Endpoint,
        inbox: &mut DelayedInbox<ReplyEnvelope>,
        epoch: legostore_types::ConfigEpoch,
        deadline_ns: u64,
    ) -> Option<ReplyEnvelope> {
        let clock = self.cluster.clock().clone();
        loop {
            // Drain anything already delivered into the delayed inbox.
            while let Some(env) = endpoint.try_recv() {
                if env.endpoint == endpoint.id() && env.epoch == epoch {
                    self.buffer_reply(inbox, env);
                }
            }
            if let Some(env) = inbox.pop_ready(clock.now_ns()) {
                return Some(env);
            }
            if clock.now_ns() >= deadline_ns {
                return None;
            }
            let wake_ns = inbox
                .next_available_at()
                .unwrap_or(deadline_ns)
                .min(deadline_ns);
            match endpoint.recv_deadline_ns(wake_ns) {
                Some(env) => {
                    if env.endpoint == endpoint.id() && env.epoch == epoch {
                        self.buffer_reply(inbox, env);
                    }
                }
                None => {
                    if clock.now_ns() >= deadline_ns
                        && inbox.next_available_at().map(|t| t > deadline_ns).unwrap_or(true)
                    {
                        return None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::cluster::{Cluster, ClusterOptions};
    use legostore_cloud::GcpLocation;
    use std::time::Duration;

    fn fast_cluster() -> Cluster {
        Cluster::gcp9(ClusterOptions {
            latency_scale: 0.002,
            op_timeout: Duration::from_millis(250),
            clock: Clock::virtual_time(),
            ..Default::default()
        })
    }

    #[test]
    fn create_get_put_delete_round_trip() {
        let cluster = fast_cluster();
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        let key = Key::from("user:1");
        client.create(&key, Value::from("hello")).unwrap();
        assert_eq!(client.get(&key).unwrap(), Value::from("hello"));
        client.put(&key, Value::from("world")).unwrap();
        assert_eq!(client.get(&key).unwrap(), Value::from("world"));
        client.delete(&key).unwrap();
        assert!(matches!(client.get(&key), Err(StoreError::KeyNotFound(_))));
        cluster.shutdown();
    }

    #[test]
    fn create_twice_fails_and_delete_missing_fails() {
        let cluster = fast_cluster();
        let mut client = cluster.client(GcpLocation::Oregon.dc());
        let key = Key::from("dup");
        client.create(&key, Value::from("a")).unwrap();
        assert!(matches!(
            client.create(&key, Value::from("b")),
            Err(StoreError::KeyAlreadyExists(_))
        ));
        assert!(matches!(
            client.delete(&Key::from("missing")),
            Err(StoreError::KeyNotFound(_))
        ));
        cluster.shutdown();
    }

    #[test]
    fn cas_configuration_round_trip_and_cache() {
        let cluster = fast_cluster();
        let mut client = cluster.client(GcpLocation::Virginia.dc());
        let key = Key::from("coded");
        let config = Configuration::cas_default(
            vec![
                GcpLocation::Virginia.dc(),
                GcpLocation::Oregon.dc(),
                GcpLocation::LosAngeles.dc(),
                GcpLocation::Frankfurt.dc(),
                GcpLocation::London.dc(),
            ],
            3,
            1,
        );
        client
            .create_with_config(&key, Value::filler(5000), config)
            .unwrap();
        assert_eq!(client.get(&key).unwrap(), Value::filler(5000));
        client.put(&key, Value::filler(2500)).unwrap();
        // The second GET can use the client-side cache and complete in one phase.
        assert_eq!(client.get(&key).unwrap(), Value::filler(2500));
        let stats = client.stats();
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.puts, 1);
        assert!(stats.one_phase_gets >= 1, "{stats:?}");
        cluster.shutdown();
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let cluster = fast_cluster();
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        // CAS with n < k + 2f is invalid.
        let bad = Configuration::cas_default(
            vec![GcpLocation::Tokyo.dc(), GcpLocation::Oregon.dc(), GcpLocation::Virginia.dc()],
            3,
            1,
        );
        assert!(matches!(
            client.create_with_config(&Key::from("bad"), Value::empty(), bad),
            Err(StoreError::InvalidConfiguration(_))
        ));
        cluster.shutdown();
    }

    #[test]
    fn two_clients_in_different_dcs_see_each_others_writes() {
        let cluster = fast_cluster();
        let key = Key::from("shared");
        let mut tokyo = cluster.client(GcpLocation::Tokyo.dc());
        let mut london = cluster.client(GcpLocation::London.dc());
        tokyo.create(&key, Value::from("t0")).unwrap();
        tokyo.put(&key, Value::from("from-tokyo")).unwrap();
        assert_eq!(london.get(&key).unwrap(), Value::from("from-tokyo"));
        london.put(&key, Value::from("from-london")).unwrap();
        assert_eq!(tokyo.get(&key).unwrap(), Value::from("from-london"));
        // The recorded history is linearizable.
        assert!(cluster.recorder().check_all().is_empty());
        cluster.shutdown();
    }

    /// A fault plan crashing `victims` from t=0 with no recovery (a beyond-`f` outage
    /// when more than `f` of the placement is listed).
    fn permanent_crash_plan(victims: &[DcId]) -> legostore_types::FaultPlan {
        legostore_types::FaultPlan {
            seed: 1,
            events: victims
                .iter()
                .map(|dc| legostore_types::FaultEvent {
                    at_ms: 0.0,
                    kind: legostore_types::FaultKind::CrashDc { dc: *dc },
                })
                .collect(),
        }
    }

    fn faulted_cluster(victims: &[DcId]) -> Cluster {
        Cluster::gcp9(ClusterOptions {
            latency_scale: 0.002,
            op_timeout: Duration::from_millis(250),
            max_attempts: 3,
            clock: Clock::virtual_time(),
            fault_plan: permanent_crash_plan(victims),
            ..Default::default()
        })
    }

    #[test]
    fn abd_beyond_f_returns_quorum_unreachable() {
        // ABD(3, f=1) with 2 of 3 hosts crashed forever: no attempt can ever assemble a
        // majority. The client must give up with the typed terminal error — bounded in
        // (virtual) time, no hang, no panic.
        let victims = [GcpLocation::LosAngeles.dc(), GcpLocation::Oregon.dc()];
        let cluster = faulted_cluster(&victims);
        let config = Configuration::abd_majority(
            vec![GcpLocation::Tokyo.dc(), victims[0], victims[1]],
            1,
        );
        cluster.install_key("k", config, &Value::from("v"));
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        let put = client.put(&Key::from("k"), Value::from("w"));
        let Err(StoreError::QuorumUnreachable { attempts, last }) = put else {
            panic!("expected QuorumUnreachable, got {put:?}");
        };
        assert_eq!(attempts, 3);
        // The wrapped error carries the stalled phase's real progress: the write-query
        // quorum is 2 and only Tokyo could answer.
        assert_eq!(*last, StoreError::QuorumTimeout { needed: 2, received: 1 });
        let get = client.get(&Key::from("k"));
        assert!(matches!(get, Err(StoreError::QuorumUnreachable { .. })), "{get:?}");
        // Failed operations are never recorded, so the history cannot be corrupted.
        assert!(cluster.recorder().check_all().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn cas_beyond_f_returns_quorum_unreachable() {
        // CAS(5, k=3, f=1) needs quorums of 4; with 2 hosts crashed only 3 remain.
        let victims = [GcpLocation::Oregon.dc(), GcpLocation::Frankfurt.dc()];
        let cluster = faulted_cluster(&victims);
        let config = Configuration::cas_default(
            vec![
                GcpLocation::Virginia.dc(),
                victims[0],
                GcpLocation::LosAngeles.dc(),
                victims[1],
                GcpLocation::London.dc(),
            ],
            3,
            1,
        );
        cluster.install_key("coded", config, &Value::filler(600));
        let mut client = cluster.client(GcpLocation::Virginia.dc());
        let put = client.put(&Key::from("coded"), Value::filler(300));
        assert!(matches!(put, Err(StoreError::QuorumUnreachable { attempts: 3, .. })), "{put:?}");
        let get = client.get(&Key::from("coded"));
        assert!(matches!(get, Err(StoreError::QuorumUnreachable { .. })), "{get:?}");
        assert!(client.stats().timeout_restarts >= 2, "{:?}", client.stats());
        cluster.shutdown();
    }

    #[test]
    fn history_recorder_sees_all_operations() {
        let cluster = fast_cluster();
        let mut client = cluster.client(GcpLocation::Sydney.dc());
        let key = Key::from("audited");
        client.create(&key, Value::from("0")).unwrap();
        for i in 1..=5 {
            client.put(&key, Value::from(format!("{i}").as_str())).unwrap();
            client.get(&key).unwrap();
        }
        assert_eq!(cluster.recorder().len("audited"), 10);
        assert!(cluster.recorder().check_all().is_empty());
        cluster.shutdown();
    }
}
