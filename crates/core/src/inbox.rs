//! Client-side delayed inbox: delivers server replies only after the modeled network delay
//! has elapsed.
//!
//! Server threads answer instantly (their processing time is negligible in the paper's
//! setting too); what dominates real deployments is the inter-DC round trip. The inbox
//! re-creates that on the receiving side: each reply is tagged with the clock instant it
//! would arrive given the cloud model's RTT and transfer time, and
//! [`DelayedInbox::pop_ready`] releases replies in arrival order once the deployment
//! [`Clock`](crate::clock::Clock) reaches each one. The deployment's loops interleave
//! `pop_ready` polls with deadline-bounded channel waits, so the clock wait (a true sleep
//! under a real clock; a logical jump once the deployment is quiescent under
//! [`Clock::virtual_time`](crate::clock::Clock::virtual_time)) happens in the channel
//! receive, where arriving messages keep being drained.

use std::collections::BinaryHeap;
use std::time::Duration;

/// A reply waiting for its modeled arrival time.
struct Delayed<T> {
    /// Clock timestamp (nanoseconds, [`Clock::now_ns`](crate::clock::Clock::now_ns) domain) at which the item arrives.
    available_at_ns: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Delayed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.available_at_ns == other.available_at_ns && self.seq == other.seq
    }
}
impl<T> Eq for Delayed<T> {}
impl<T> PartialOrd for Delayed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Delayed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest time on top.
        other
            .available_at_ns
            .cmp(&self.available_at_ns)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Orders arbitrary items by their modeled arrival instant (a
/// [`Clock::now_ns`](crate::clock::Clock::now_ns) timestamp).
pub struct DelayedInbox<T> {
    heap: BinaryHeap<Delayed<T>>,
    seq: u64,
}

impl<T> Default for DelayedInbox<T> {
    fn default() -> Self {
        DelayedInbox {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> DelayedInbox<T> {
    /// Creates an empty inbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an item that becomes visible `delay` after the clock timestamp `sent_at_ns`.
    pub fn push(&mut self, sent_at_ns: u64, delay: Duration, item: T) {
        self.seq += 1;
        self.heap.push(Delayed {
            available_at_ns: sent_at_ns.saturating_add(delay.as_nanos() as u64),
            seq: self.seq,
            item,
        });
    }

    /// Number of buffered items (ready or not).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Clock timestamp at which the earliest buffered item becomes available.
    pub fn next_available_at(&self) -> Option<u64> {
        self.heap.peek().map(|d| d.available_at_ns)
    }

    /// Returns the earliest item if it has already arrived by the clock timestamp
    /// `now_ns`, without waiting.
    ///
    /// The deployment's client loops call this between deadline-bounded channel waits
    /// rather than parking in a bare clock sleep: a thread asleep on the clock stops
    /// draining its reply channel, and a virtual clock will not advance past
    /// undelivered messages.
    pub fn pop_ready(&mut self, now_ns: u64) -> Option<T> {
        let available_at = self.heap.peek()?.available_at_ns;
        if available_at > now_ns {
            return None;
        }
        Some(self.heap.pop().expect("peeked").item)
    }

    /// Returns the earliest item, waiting on `clock` until its modeled arrival time if
    /// needed, but never waiting past `deadline_ns`. Returns `None` if the inbox is empty
    /// or the earliest item would arrive after the deadline.
    ///
    /// Test-only on purpose: this parks the calling thread without polling anything
    /// else, so a caller that also receives from a channel would stop draining it (and
    /// could wedge a virtual clock behind the undelivered messages). The deployment's
    /// loops wait on their channel with a deadline and use [`DelayedInbox::pop_ready`]
    /// instead.
    #[cfg(test)]
    pub(crate) fn next_ready(&mut self, clock: &crate::clock::Clock, deadline_ns: u64) -> Option<T> {
        let available_at = self.heap.peek()?.available_at_ns;
        if available_at > deadline_ns {
            return None;
        }
        clock.sleep_until_ns(available_at);
        Some(self.heap.pop().expect("peeked").item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use std::time::Instant;

    #[test]
    fn items_come_out_in_arrival_order() {
        let clock = Clock::virtual_time();
        let mut inbox = DelayedInbox::new();
        let t0 = clock.now_ns();
        inbox.push(t0, Duration::from_millis(30), "slow");
        inbox.push(t0, Duration::from_millis(1), "fast");
        inbox.push(t0, Duration::from_millis(10), "medium");
        let deadline = t0 + 1_000_000_000;
        assert_eq!(inbox.next_ready(&clock, deadline), Some("fast"));
        assert_eq!(inbox.next_ready(&clock, deadline), Some("medium"));
        assert_eq!(inbox.next_ready(&clock, deadline), Some("slow"));
        assert_eq!(inbox.next_ready(&clock, deadline), None);
        assert!(inbox.is_empty());
        assert_eq!(clock.now_ns(), t0 + 30_000_000, "advanced to the last arrival");
    }

    #[test]
    fn deadline_prevents_waiting_for_far_future_items() {
        let clock = Clock::virtual_time();
        let mut inbox = DelayedInbox::new();
        let t0 = clock.now_ns();
        inbox.push(t0, Duration::from_secs(60), "later");
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox.next_ready(&clock, t0 + 5_000_000), None);
        assert_eq!(inbox.len(), 1, "item must stay buffered");
        assert_eq!(clock.now_ns(), t0, "a deadline miss must not advance the clock");
        assert!(inbox.next_available_at().unwrap() > t0 + 59_000_000_000);
    }

    #[test]
    fn waits_until_items_become_available_on_a_real_clock() {
        let clock = Clock::real();
        let mut inbox = DelayedInbox::new();
        let wall = Instant::now();
        let t0 = clock.now_ns();
        inbox.push(t0, Duration::from_millis(20), 42);
        let got = inbox.next_ready(&clock, t0 + 1_000_000_000);
        assert_eq!(got, Some(42));
        assert!(wall.elapsed() >= Duration::from_millis(19));
    }
}
