//! Client-side delayed inbox: delivers server replies only after the modeled network delay
//! has elapsed.
//!
//! Server threads answer instantly (their processing time is negligible in the paper's
//! setting too); what dominates real deployments is the inter-DC round trip. The inbox
//! re-creates that on the receiving side: each reply is tagged with the instant it would
//! arrive given the cloud model's RTT and transfer time, and [`DelayedInbox::next_ready`]
//! returns replies in arrival order, sleeping until the earliest one if necessary.

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// A reply waiting for its modeled arrival time.
struct Delayed<T> {
    available_at: Instant,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Delayed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.available_at == other.available_at && self.seq == other.seq
    }
}
impl<T> Eq for Delayed<T> {}
impl<T> PartialOrd for Delayed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Delayed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest time on top.
        other
            .available_at
            .cmp(&self.available_at)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Orders arbitrary items by their modeled arrival instant.
pub struct DelayedInbox<T> {
    heap: BinaryHeap<Delayed<T>>,
    seq: u64,
}

impl<T> Default for DelayedInbox<T> {
    fn default() -> Self {
        DelayedInbox {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> DelayedInbox<T> {
    /// Creates an empty inbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an item that becomes visible `delay` after `sent_at`.
    pub fn push(&mut self, sent_at: Instant, delay: Duration, item: T) {
        self.seq += 1;
        self.heap.push(Delayed {
            available_at: sent_at + delay,
            seq: self.seq,
            item,
        });
    }

    /// Number of buffered items (ready or not).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Instant at which the earliest buffered item becomes available.
    pub fn next_available_at(&self) -> Option<Instant> {
        self.heap.peek().map(|d| d.available_at)
    }

    /// Returns the earliest item, sleeping until its modeled arrival time if needed, but
    /// never sleeping past `deadline`. Returns `None` if the inbox is empty or the earliest
    /// item would arrive after the deadline.
    pub fn next_ready(&mut self, deadline: Instant) -> Option<T> {
        let available_at = self.heap.peek()?.available_at;
        if available_at > deadline {
            return None;
        }
        let now = Instant::now();
        if available_at > now {
            std::thread::sleep(available_at - now);
        }
        Some(self.heap.pop().expect("peeked").item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_come_out_in_arrival_order() {
        let mut inbox = DelayedInbox::new();
        let t0 = Instant::now();
        inbox.push(t0, Duration::from_millis(30), "slow");
        inbox.push(t0, Duration::from_millis(1), "fast");
        inbox.push(t0, Duration::from_millis(10), "medium");
        let deadline = t0 + Duration::from_secs(1);
        assert_eq!(inbox.next_ready(deadline), Some("fast"));
        assert_eq!(inbox.next_ready(deadline), Some("medium"));
        assert_eq!(inbox.next_ready(deadline), Some("slow"));
        assert_eq!(inbox.next_ready(deadline), None);
        assert!(inbox.is_empty());
    }

    #[test]
    fn deadline_prevents_waiting_for_far_future_items() {
        let mut inbox = DelayedInbox::new();
        let t0 = Instant::now();
        inbox.push(t0, Duration::from_secs(60), "later");
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox.next_ready(t0 + Duration::from_millis(5)), None);
        assert_eq!(inbox.len(), 1, "item must stay buffered");
        assert!(inbox.next_available_at().unwrap() > t0 + Duration::from_secs(59));
    }

    #[test]
    fn waits_until_items_become_available() {
        let mut inbox = DelayedInbox::new();
        let t0 = Instant::now();
        inbox.push(t0, Duration::from_millis(20), 42);
        let got = inbox.next_ready(t0 + Duration::from_secs(1));
        assert_eq!(got, Some(42));
        assert!(Instant::now().duration_since(t0) >= Duration::from_millis(19));
    }
}
