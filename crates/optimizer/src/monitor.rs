//! Workload monitoring: the "is a key configured poorly?" half of §3.4.
//!
//! LEGOStore reacts to workload change by watching, per key (or key group), the request
//! stream it actually serves: arrival rate, read ratio, where requests come from, how large
//! objects are, how often the SLO is violated, and how the running cost compares to what the
//! optimizer predicted. [`WorkloadMonitor`] ingests one record per completed operation and
//! maintains windowed estimates; [`WorkloadMonitor::estimate`] turns them into a
//! [`WorkloadSpec`] the optimizer can re-plan with, and [`WorkloadMonitor::triggers`]
//! evaluates the two reactive rules of the paper (persistent SLO violations, cost
//! sub-optimality) so the reconfiguration controller knows when to act.

use crate::cost::CostBreakdown;
use legostore_types::{DcId, OpKind};
use legostore_workload::WorkloadSpec;
use std::collections::BTreeMap;

/// One completed operation, as observed by the serving client/proxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpObservation {
    /// Wall-clock (or virtual) time the operation completed, in milliseconds.
    pub at_ms: f64,
    /// Data center the request originated in/near.
    pub origin: DcId,
    /// GET or PUT.
    pub kind: OpKind,
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
    /// Object bytes carried by the operation.
    pub object_bytes: u64,
}

/// Thresholds for the reactive reconfiguration rules of §3.4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriggerThresholds {
    /// Minimum number of SLO violations inside the window before the key is flagged.
    pub slo_violation_count: usize,
    /// Minimum fraction of operations violating the SLO before the key is flagged.
    pub slo_violation_fraction: f64,
    /// Fractional cost overrun (observed vs predicted) that flags the key, e.g. `0.2` = 20%.
    pub cost_overrun_fraction: f64,
}

impl Default for TriggerThresholds {
    fn default() -> Self {
        TriggerThresholds {
            slo_violation_count: 20,
            slo_violation_fraction: 0.01,
            cost_overrun_fraction: 0.2,
        }
    }
}

/// Why the monitor thinks the key should be reconsidered.
#[derive(Debug, Clone, PartialEq)]
pub enum ReconfigTrigger {
    /// The latency SLO is being violated persistently.
    SloViolations {
        /// Number of violating operations in the window.
        count: usize,
        /// Fraction of operations violating the SLO.
        fraction: f64,
    },
    /// The observed running cost exceeds the optimizer's prediction by more than the
    /// configured threshold.
    CostOverrun {
        /// Observed cost rate in $/hour.
        observed_per_hour: f64,
        /// Predicted cost rate in $/hour.
        predicted_per_hour: f64,
    },
    /// The observed workload features have drifted far from the ones the configuration was
    /// planned for (arrival rate or read ratio changed by more than 50%, or the client mix
    /// moved by more than 0.3 in total variation distance).
    WorkloadDrift {
        /// Observed aggregate arrival rate (req/s).
        observed_rate: f64,
        /// Arrival rate the plan assumed (req/s).
        planned_rate: f64,
    },
}

/// Sliding-window workload monitor for one key (or key group).
#[derive(Debug, Clone)]
pub struct WorkloadMonitor {
    window_ms: f64,
    slo_get_ms: f64,
    slo_put_ms: f64,
    observations: Vec<OpObservation>,
}

impl WorkloadMonitor {
    /// Creates a monitor with the given sliding-window length and the SLOs the current
    /// configuration is supposed to meet.
    pub fn new(window_ms: f64, slo_get_ms: f64, slo_put_ms: f64) -> Self {
        WorkloadMonitor {
            window_ms,
            slo_get_ms,
            slo_put_ms,
            observations: Vec::new(),
        }
    }

    /// Ingests one completed operation.
    pub fn record(&mut self, obs: OpObservation) {
        self.observations.push(obs);
        self.evict(obs.at_ms);
    }

    /// Ingests one live [`OpRecord`](legostore_obs::OpRecord) from the telemetry layer
    /// (the runtime's span stream, drained via `Obs::drain_ops`), converting its clock
    /// nanoseconds to the monitor's model milliseconds. `latency_scale` is the
    /// deployment's RTT scaling factor — dividing by it recovers model time, so the
    /// same SLO thresholds work at any scale (and under a virtual clock).
    pub fn ingest(&mut self, rec: &legostore_obs::OpRecord, latency_scale: f64) {
        let to_model_ms = |ns: u64| ns as f64 / 1_000_000.0 / latency_scale;
        self.record(OpObservation {
            at_ms: to_model_ms(rec.completed_ns),
            origin: rec.origin,
            kind: rec.kind,
            latency_ms: to_model_ms(rec.latency_ns()),
            object_bytes: rec.object_bytes,
        });
    }

    /// Number of observations currently inside the window.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True if no observations are inside the window.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    fn evict(&mut self, now_ms: f64) {
        let cutoff = now_ms - self.window_ms;
        self.observations.retain(|o| o.at_ms >= cutoff);
    }

    /// The span of time actually covered by the window, in seconds (at least one second to
    /// avoid dividing by ~zero right after start-up).
    fn window_seconds(&self) -> f64 {
        if self.observations.len() < 2 {
            return 1.0;
        }
        let first = self.observations.iter().map(|o| o.at_ms).fold(f64::MAX, f64::min);
        let last = self.observations.iter().map(|o| o.at_ms).fold(0.0, f64::max);
        ((last - first) / 1000.0).max(1.0)
    }

    /// Observed aggregate arrival rate in requests/second.
    pub fn arrival_rate(&self) -> f64 {
        self.observations.len() as f64 / self.window_seconds()
    }

    /// Observed fraction of GETs.
    pub fn read_ratio(&self) -> f64 {
        if self.observations.is_empty() {
            return 0.5;
        }
        self.observations.iter().filter(|o| o.kind == OpKind::Get).count() as f64
            / self.observations.len() as f64
    }

    /// Observed mean object size in bytes.
    pub fn mean_object_bytes(&self) -> u64 {
        if self.observations.is_empty() {
            return 0;
        }
        (self.observations.iter().map(|o| o.object_bytes).sum::<u64>() as f64
            / self.observations.len() as f64) as u64
    }

    /// Observed client distribution (fractions per origin DC, summing to 1).
    pub fn client_distribution(&self) -> Vec<(DcId, f64)> {
        let mut counts: BTreeMap<DcId, usize> = BTreeMap::new();
        for o in &self.observations {
            *counts.entry(o.origin).or_insert(0) += 1;
        }
        let total = self.observations.len().max(1) as f64;
        counts
            .into_iter()
            .map(|(dc, c)| (dc, c as f64 / total))
            .collect()
    }

    /// Number and fraction of operations violating their SLO inside the window.
    pub fn slo_violations(&self) -> (usize, f64) {
        let count = self
            .observations
            .iter()
            .filter(|o| {
                let slo = match o.kind {
                    OpKind::Get => self.slo_get_ms,
                    OpKind::Put => self.slo_put_ms,
                };
                o.latency_ms > slo
            })
            .count();
        let fraction = count as f64 / self.observations.len().max(1) as f64;
        (count, fraction)
    }

    /// Builds the workload spec the optimizer should re-plan with, carrying over the SLOs,
    /// fault tolerance and data footprint from the spec the key was last planned with.
    pub fn estimate(&self, planned: &WorkloadSpec) -> WorkloadSpec {
        let mut spec = planned.clone();
        spec.name = format!("{}-observed", planned.name);
        spec.arrival_rate = self.arrival_rate();
        spec.read_ratio = self.read_ratio();
        if self.mean_object_bytes() > 0 {
            spec.object_size = self.mean_object_bytes();
        }
        let dist = self.client_distribution();
        if !dist.is_empty() {
            spec.client_distribution = dist;
        }
        spec
    }

    /// Evaluates the §3.4 reactive triggers against the observations in the window.
    ///
    /// `predicted` is the cost breakdown of the plan currently installed;
    /// `observed_cost_per_hour` is what the billing meter reports for this key over the same
    /// window (the simulator and the threaded runtime both expose it).
    pub fn triggers(
        &self,
        planned: &WorkloadSpec,
        predicted: &CostBreakdown,
        observed_cost_per_hour: f64,
        thresholds: &TriggerThresholds,
    ) -> Vec<ReconfigTrigger> {
        let mut out = Vec::new();
        let (count, fraction) = self.slo_violations();
        if count >= thresholds.slo_violation_count && fraction >= thresholds.slo_violation_fraction
        {
            out.push(ReconfigTrigger::SloViolations { count, fraction });
        }
        if observed_cost_per_hour
            > predicted.total() * (1.0 + thresholds.cost_overrun_fraction)
        {
            out.push(ReconfigTrigger::CostOverrun {
                observed_per_hour: observed_cost_per_hour,
                predicted_per_hour: predicted.total(),
            });
        }
        let observed_rate = self.arrival_rate();
        let planned_rate = planned.arrival_rate.max(1e-9);
        let rate_drift = (observed_rate - planned_rate).abs() / planned_rate;
        let ratio_drift = (self.read_ratio() - planned.read_ratio).abs();
        let mix_drift = {
            let observed: BTreeMap<DcId, f64> = self.client_distribution().into_iter().collect();
            let planned_mix: BTreeMap<DcId, f64> =
                planned.client_distribution.iter().copied().collect();
            let mut keys: Vec<DcId> = observed.keys().chain(planned_mix.keys()).copied().collect();
            keys.sort();
            keys.dedup();
            keys.iter()
                .map(|k| {
                    (observed.get(k).copied().unwrap_or(0.0)
                        - planned_mix.get(k).copied().unwrap_or(0.0))
                    .abs()
                })
                .sum::<f64>()
                / 2.0
        };
        if self.observations.len() >= 20
            && (rate_drift > 0.5 || ratio_drift > 0.25 || mix_drift > 0.3)
        {
            out.push(ReconfigTrigger::WorkloadDrift {
                observed_rate,
                planned_rate,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(at_ms: f64, origin: u16, kind: OpKind, latency_ms: f64) -> OpObservation {
        OpObservation {
            at_ms,
            origin: DcId(origin),
            kind,
            latency_ms,
            object_bytes: 1024,
        }
    }

    fn planned() -> WorkloadSpec {
        let mut s = WorkloadSpec::example();
        s.arrival_rate = 100.0;
        s.read_ratio = 0.5;
        s.client_distribution = vec![(DcId(0), 1.0)];
        s.slo_get_ms = 700.0;
        s.slo_put_ms = 800.0;
        s
    }

    fn feed_uniform(monitor: &mut WorkloadMonitor, n: usize, rate_per_sec: f64, origin: u16) {
        for i in 0..n {
            let t = i as f64 * 1000.0 / rate_per_sec;
            let kind = if i % 2 == 0 { OpKind::Get } else { OpKind::Put };
            monitor.record(obs(t, origin, kind, 150.0));
        }
    }

    #[test]
    fn estimates_rate_ratio_and_mix() {
        let mut m = WorkloadMonitor::new(60_000.0, 700.0, 800.0);
        feed_uniform(&mut m, 200, 100.0, 0);
        assert!(!m.is_empty());
        assert_eq!(m.len(), 200);
        assert!((m.arrival_rate() - 100.0).abs() < 10.0, "{}", m.arrival_rate());
        assert!((m.read_ratio() - 0.5).abs() < 0.05);
        assert_eq!(m.mean_object_bytes(), 1024);
        let dist = m.client_distribution();
        assert_eq!(dist, vec![(DcId(0), 1.0)]);
        let est = m.estimate(&planned());
        est.validate().unwrap();
        assert_eq!(est.fault_tolerance, planned().fault_tolerance);
    }

    #[test]
    fn window_evicts_old_observations() {
        let mut m = WorkloadMonitor::new(10_000.0, 700.0, 800.0);
        m.record(obs(0.0, 0, OpKind::Get, 100.0));
        m.record(obs(5_000.0, 0, OpKind::Get, 100.0));
        assert_eq!(m.len(), 2);
        m.record(obs(20_000.0, 0, OpKind::Get, 100.0));
        assert_eq!(m.len(), 1, "observations older than the window are evicted");
    }

    #[test]
    fn slo_violation_trigger_fires_only_when_persistent() {
        let mut m = WorkloadMonitor::new(60_000.0, 700.0, 800.0);
        // 30 fast GETs and 25 slow ones.
        for i in 0..30 {
            m.record(obs(i as f64 * 100.0, 0, OpKind::Get, 200.0));
        }
        for i in 30..55 {
            m.record(obs(i as f64 * 100.0, 0, OpKind::Get, 950.0));
        }
        let (count, fraction) = m.slo_violations();
        assert_eq!(count, 25);
        assert!(fraction > 0.4);
        let predicted = CostBreakdown { get_network: 0.1, put_network: 0.1, storage: 0.1, vm: 0.1 };
        let triggers = m.triggers(&planned(), &predicted, 0.4, &TriggerThresholds::default());
        assert!(triggers
            .iter()
            .any(|t| matches!(t, ReconfigTrigger::SloViolations { .. })));

        // A handful of violations below the count threshold does not trigger.
        let mut quiet = WorkloadMonitor::new(60_000.0, 700.0, 800.0);
        for i in 0..100 {
            let lat = if i < 5 { 950.0 } else { 200.0 };
            quiet.record(obs(i as f64 * 100.0, 0, OpKind::Get, lat));
        }
        let triggers = quiet.triggers(&planned(), &predicted, 0.4, &TriggerThresholds::default());
        assert!(!triggers
            .iter()
            .any(|t| matches!(t, ReconfigTrigger::SloViolations { .. })));
    }

    #[test]
    fn cost_overrun_trigger() {
        let mut m = WorkloadMonitor::new(60_000.0, 700.0, 800.0);
        feed_uniform(&mut m, 50, 100.0, 0);
        let predicted = CostBreakdown { get_network: 0.2, put_network: 0.2, storage: 0.05, vm: 0.05 };
        // Observed 0.9 $/h vs predicted 0.5 $/h: 80% overrun.
        let triggers = m.triggers(&planned(), &predicted, 0.9, &TriggerThresholds::default());
        assert!(triggers
            .iter()
            .any(|t| matches!(t, ReconfigTrigger::CostOverrun { .. })));
        // Observed within 20% of prediction: no trigger.
        let triggers = m.triggers(&planned(), &predicted, 0.55, &TriggerThresholds::default());
        assert!(!triggers
            .iter()
            .any(|t| matches!(t, ReconfigTrigger::CostOverrun { .. })));
    }

    #[test]
    fn workload_drift_trigger_on_rate_and_mix_change() {
        // Planned for 100 req/s from DC 0, observed 400 req/s from DC 3.
        let mut m = WorkloadMonitor::new(60_000.0, 700.0, 800.0);
        feed_uniform(&mut m, 400, 400.0, 3);
        let predicted = CostBreakdown::default();
        let triggers = m.triggers(&planned(), &predicted, 0.0, &TriggerThresholds::default());
        assert!(triggers
            .iter()
            .any(|t| matches!(t, ReconfigTrigger::WorkloadDrift { .. })));
        // The estimated spec reflects the new reality and can be re-planned directly.
        let est = m.estimate(&planned());
        assert!(est.arrival_rate > 300.0);
        assert_eq!(est.client_dcs(), vec![DcId(3)]);
    }

    #[test]
    fn ingest_converts_op_records_to_model_time() {
        let mut m = WorkloadMonitor::new(60_000.0, 700.0, 800.0);
        let rec = legostore_obs::OpRecord {
            op_id: 1,
            kind: OpKind::Put,
            key: "k".into(),
            origin: DcId(3),
            started_ns: 0,
            completed_ns: 2_000_000, // 2 ms of (scaled) clock time
            object_bytes: 4096,
            ok: true,
        };
        m.ingest(&rec, 0.01); // 1% latency scale → 200 model ms, inside the PUT SLO
        assert_eq!(m.len(), 1);
        assert_eq!(m.mean_object_bytes(), 4096);
        assert_eq!(m.slo_violations().0, 0);
        // 9 scaled ms is 900 model ms: a GET SLO violation once unscaled.
        let slow = legostore_obs::OpRecord {
            op_id: 2,
            kind: OpKind::Get,
            key: "k".into(),
            origin: DcId(3),
            started_ns: 2_000_000,
            completed_ns: 11_000_000,
            object_bytes: 4096,
            ok: true,
        };
        m.ingest(&slow, 0.01);
        assert_eq!(m.slo_violations().0, 1);
        assert_eq!(m.client_distribution(), vec![(DcId(3), 1.0)]);
    }

    #[test]
    fn stable_workload_produces_no_triggers() {
        let mut m = WorkloadMonitor::new(60_000.0, 700.0, 800.0);
        feed_uniform(&mut m, 300, 100.0, 0);
        let predicted = CostBreakdown { get_network: 0.3, put_network: 0.3, storage: 0.2, vm: 0.2 };
        let triggers = m.triggers(&planned(), &predicted, 1.0, &TriggerThresholds::default());
        assert!(triggers.is_empty(), "{triggers:?}");
    }
}
