//! LEGOStore's cost optimizer (paper §3.2 and Appendix C) and its baselines (§4.1).
//!
//! For one key (or a group of keys with similar workload features) the optimizer chooses:
//!
//! * the protocol — ABD (replication) or CAS (erasure coding);
//! * the code length `n` and dimension `k` (replication degree, `k = 1`, for ABD);
//! * the quorum sizes `q1..q4` subject to the safety/liveness constraints;
//! * which data centers host the key and which hosts each client location's quorums
//!   contact;
//!
//! so as to minimize the $/hour cost of GET networking + PUT networking + storage + VMs,
//! subject to worst-case latency SLOs for GET and PUT and a fault-tolerance target `f`.
//!
//! The crate also provides:
//!
//! * [`baselines`] — the six baselines of §4.1 (`ABD/CAS Fixed`, `ABD/CAS Nearest`,
//!   `ABD/CAS Only Optimal`);
//! * [`analytic`] — the closed-form cost model of §4.2.4 (Eq. 4) with its optimal code
//!   dimension `Kopt`, and the coarse per-operation comparison of Table 3;
//! * [`monitor`] — windowed workload estimation and the reactive "is this key configured
//!   poorly?" triggers of §3.4;
//! * [`reconfig_analysis`] — the cost/benefit rule of §3.4 that decides whether a key
//!   should be reconfigured.

pub mod analytic;
pub mod baselines;
pub mod cost;
pub mod latency;
pub mod monitor;
pub mod plan;
pub mod reconfig_analysis;
pub mod search;

pub use analytic::{coarse_comparison, AnalyticModel, CoarseCosts};
pub use baselines::{evaluate_baseline, Baseline};
pub use cost::CostBreakdown;
pub use monitor::{OpObservation, ReconfigTrigger, TriggerThresholds, WorkloadMonitor};
pub use plan::Plan;
pub use reconfig_analysis::{should_reconfigure, ReconfigDecision};
pub use search::{Objective, Optimizer, SearchOptions};
