//! The optimizer's output: a fully specified configuration with its predicted cost and
//! worst-case latencies.

use crate::cost::CostBreakdown;
use legostore_types::Configuration;
use serde::{Deserialize, Serialize};

/// A costed, latency-checked configuration for one key / key group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// The chosen configuration, including per-client preferred quorums.
    pub config: Configuration,
    /// Predicted cost per hour, by component.
    pub cost: CostBreakdown,
    /// Worst-case GET latency (ms) over all client locations with non-zero traffic.
    pub worst_get_latency_ms: f64,
    /// Worst-case PUT latency (ms) over all client locations with non-zero traffic.
    pub worst_put_latency_ms: f64,
}

impl Plan {
    /// Total predicted cost in $/hour.
    pub fn total_cost(&self) -> f64 {
        self.cost.total()
    }

    /// Short human-readable description, e.g. `CAS(5,3) $0.213/h`.
    pub fn describe(&self) -> String {
        format!("{} ${:.4}/h", self.config.describe(), self.total_cost())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_types::DcId;

    #[test]
    fn describe_includes_protocol_and_cost() {
        let plan = Plan {
            config: Configuration::abd_majority(vec![DcId(0), DcId(1), DcId(2)], 1),
            cost: CostBreakdown {
                get_network: 0.1,
                put_network: 0.2,
                storage: 0.3,
                vm: 0.4,
            },
            worst_get_latency_ms: 120.0,
            worst_put_latency_ms: 140.0,
        };
        assert!((plan.total_cost() - 1.0).abs() < 1e-12);
        assert!(plan.describe().contains("ABD(3)"));
        assert!(plan.describe().contains("1.0000"));
    }
}
