//! Closed-form cost models: the coarse ABD-vs-CAS comparison of Table 3 and the
//! cost-versus-K model of §4.2.4 / Appendix E (Equation 4) with its optimizer `Kopt`.

use legostore_cloud::CloudModel;
use serde::{Deserialize, Serialize};

/// Per-operation and storage costs of Table 3, in "bytes moved / stored" units (the table's
/// `B` is the value size; metadata is neglected).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoarseCosts {
    /// Bytes moved per PUT.
    pub put_cost_bytes: f64,
    /// Client-observed PUT round trips.
    pub put_latency_rounds: usize,
    /// Bytes moved per GET.
    pub get_cost_bytes: f64,
    /// Client-observed GET round trips.
    pub get_latency_rounds: usize,
    /// Bytes stored per server (δ = 1, i.e. effective garbage collection).
    pub storage_per_server_bytes: f64,
}

/// Computes Table 3's rows for an `(n, k)` CAS configuration and an `n`-way ABD
/// configuration storing values of `value_bytes` bytes. Quorums are assumed to be
/// `(n + k)/2` for CAS and `(n + 1)/2` for ABD as in the table.
pub fn coarse_comparison(n: usize, k: usize, value_bytes: u64) -> (CoarseCosts, CoarseCosts) {
    let b = value_bytes as f64;
    let nf = n as f64;
    let kf = k as f64;
    let cas = CoarseCosts {
        put_cost_bytes: nf * b / kf,
        put_latency_rounds: 3,
        get_cost_bytes: (nf - kf) * b / (2.0 * kf),
        get_latency_rounds: 2,
        storage_per_server_bytes: b / kf,
    };
    let abd = CoarseCosts {
        put_cost_bytes: nf * b,
        put_latency_rounds: 2,
        get_cost_bytes: (nf - 1.0) * b,
        get_latency_rounds: 2,
        storage_per_server_bytes: b,
    };
    (cas, abd)
}

/// The analytical model of Equation (4):
///
/// `cost(K) = c1·λ·K + c2·o·λ·f/K + c3·o·2f/K + c4`
///
/// where `c1` captures VM cost, `c2` network cost, `c3` storage cost and `c4` is a
/// K-independent constant. The model explains the non-monotonicity of cost in `K`
/// (Figure 3(a)) and yields `Kopt = sqrt(o·f·(c2·λ + 2·c3) / (c1·λ))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticModel {
    /// VM-cost coefficient ($/hour per (req/s · K)).
    pub c1: f64,
    /// Network-cost coefficient ($/hour per (byte · req/s / K)).
    pub c2: f64,
    /// Storage-cost coefficient ($/hour per byte / K).
    pub c3: f64,
    /// K-independent constant ($/hour).
    pub c4: f64,
}

impl AnalyticModel {
    /// Derives the coefficients from a cloud model's average prices, matching how the cost
    /// model charges each component:
    ///
    /// * `c1` — θ_v × average VM price (each unit of K adds roughly one quorum member that
    ///   must serve the whole arrival rate);
    /// * `c2` — average network price per byte × 3600 (network traffic per request scales
    ///   with `o·f/K`);
    /// * `c3` — average storage price per byte-hour (redundant storage scales with
    ///   `o·2f/K` beyond the `o`-sized systematic copy).
    pub fn from_cloud(model: &CloudModel) -> Self {
        let n = model.num_dcs() as f64;
        let avg_vm: f64 = model.dc_ids().iter().map(|d| model.vm_price_hour(*d)).sum::<f64>() / n;
        let mut price_sum = 0.0;
        let mut pairs = 0.0;
        for i in model.dc_ids() {
            for j in model.dc_ids() {
                if i != j {
                    price_sum += model.net_price_per_byte(i, j);
                    pairs += 1.0;
                }
            }
        }
        let avg_net = price_sum / pairs;
        let avg_storage: f64 = model
            .dc_ids()
            .iter()
            .map(|d| model.storage_price_per_byte_hour(*d))
            .sum::<f64>()
            / n;
        AnalyticModel {
            c1: model.theta_v() * avg_vm,
            c2: avg_net * 3600.0,
            c3: avg_storage,
            c4: 0.0,
        }
    }

    /// Scales the storage coefficient by the key group's footprint-to-object-size ratio.
    ///
    /// In Eq. 4 the same symbol `o` multiplies both the network term (per-request bytes) and
    /// the storage term; the paper folds the group's much larger storage footprint into the
    /// fitted constant `c3`. This builder does the equivalent: with a 1 TB group of 1 KB
    /// objects, pass `total_bytes = 1e12` and `object_bytes = 1024`.
    pub fn with_footprint(mut self, total_bytes: f64, object_bytes: f64) -> Self {
        if object_bytes > 0.0 {
            self.c3 *= total_bytes / object_bytes;
        }
        self
    }

    /// Cost per hour as a function of the code dimension `k`.
    pub fn cost(&self, k: usize, object_bytes: f64, arrival_rate: f64, f: usize) -> f64 {
        let kf = k as f64;
        let ff = f as f64;
        self.c1 * arrival_rate * kf
            + self.c2 * object_bytes * arrival_rate * ff / kf
            + self.c3 * object_bytes * 2.0 * ff / kf
            + self.c4
    }

    /// The continuous optimum `Kopt = sqrt(o·f·(c2·λ + 2·c3) / (c1·λ))`.
    pub fn k_opt(&self, object_bytes: f64, arrival_rate: f64, f: usize) -> f64 {
        let ff = f as f64;
        (object_bytes * ff * (self.c2 * arrival_rate + 2.0 * self.c3) / (self.c1 * arrival_rate))
            .sqrt()
    }

    /// The best integer `k` within `1..=max_k` according to the model.
    pub fn best_integer_k(
        &self,
        object_bytes: f64,
        arrival_rate: f64,
        f: usize,
        max_k: usize,
    ) -> usize {
        (1..=max_k.max(1))
            .min_by(|a, b| {
                self.cost(*a, object_bytes, arrival_rate, f)
                    .partial_cmp(&self.cost(*b, object_bytes, arrival_rate, f))
                    .unwrap()
            })
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_cloud::CloudModel;

    #[test]
    fn table3_shapes() {
        let (cas, abd) = coarse_comparison(5, 3, 3000);
        // CAS moves N·B/k per PUT, ABD moves N·B.
        assert!((cas.put_cost_bytes - 5.0 * 3000.0 / 3.0).abs() < 1e-9);
        assert!((abd.put_cost_bytes - 15000.0).abs() < 1e-9);
        assert!(cas.put_cost_bytes < abd.put_cost_bytes);
        // CAS GETs are cheaper because the write-back carries no data.
        assert!(cas.get_cost_bytes < abd.get_cost_bytes);
        // But CAS PUTs take 3 rounds vs ABD's 2.
        assert_eq!(cas.put_latency_rounds, 3);
        assert_eq!(abd.put_latency_rounds, 2);
        assert_eq!(cas.get_latency_rounds, abd.get_latency_rounds);
        // Storage per server shrinks by k.
        assert!((cas.storage_per_server_bytes * 3.0 - abd.storage_per_server_bytes).abs() < 1e-9);
    }

    #[test]
    fn cas_is_cheaper_than_abd_even_at_k1_for_gets() {
        let (cas, abd) = coarse_comparison(3, 1, 1000);
        assert!(cas.get_cost_bytes < abd.get_cost_bytes);
    }

    #[test]
    fn cost_is_non_monotonic_in_k() {
        // 1 KB objects at 200 req/s, 100 GB group footprint, f = 1 (a Figure 3(a)-like
        // setting): cost must first fall with K (network + storage shrink) and then rise
        // (VM cost grows), giving an interior optimum.
        let model =
            AnalyticModel::from_cloud(&CloudModel::gcp9()).with_footprint(1e11, 1024.0);
        let costs: Vec<f64> = (1..=9).map(|k| model.cost(k, 1024.0, 200.0, 1)).collect();
        let min_idx = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(min_idx > 0 && min_idx < 8, "interior optimum expected, got index {min_idx}");
        assert!(costs[0] > costs[min_idx]);
        assert!(costs[8] > costs[min_idx]);
    }

    #[test]
    fn k_opt_grows_with_object_size() {
        let model = AnalyticModel::from_cloud(&CloudModel::gcp9());
        let k_small = model.k_opt(256.0, 200.0, 1);
        let k_large = model.k_opt(64.0 * 1024.0, 200.0, 1);
        assert!(k_large > k_small);
    }

    #[test]
    fn k_opt_decreases_with_arrival_rate_and_saturates() {
        let model =
            AnalyticModel::from_cloud(&CloudModel::gcp9()).with_footprint(1e12, 1024.0);
        let o = 1024.0;
        let k50 = model.k_opt(o, 50.0, 1);
        let k550 = model.k_opt(o, 550.0, 1);
        assert!(k550 < k50, "Kopt must decrease with λ ({k50} -> {k550})");
        // As λ → ∞ the limit is sqrt(o·f·c2/c1), which is still > 1: the system does not
        // revert to replication.
        let k_inf = (o * 1.0 * model.c2 / model.c1).sqrt();
        assert!(k_inf > 1.0);
        assert!(k550 > k_inf * 0.9);
    }

    #[test]
    fn best_integer_k_matches_continuous_optimum_roughly() {
        let model = AnalyticModel::from_cloud(&CloudModel::gcp9());
        let o = 10.0 * 1024.0;
        let kc = model.k_opt(o, 200.0, 1);
        let ki = model.best_integer_k(o, 200.0, 1, 7) as f64;
        assert!((ki - kc.clamp(1.0, 7.0)).abs() <= 1.5, "integer {ki} vs continuous {kc}");
    }
}
