//! The configuration search (§3.2, Appendix C "Discussion").
//!
//! The search enumerates protocol, code parameters and quorum sizes exactly, and tames the
//! exponential placement space with the paper's heuristic: data centers are ranked by their
//! (traffic-weighted) network price toward the workload's client locations, only the best
//! few form the candidate pool, and per-client quorums are then filled greedily — by price
//! under the cost objective, falling back to a nearest-first fill when the cheap choice
//! violates the latency SLO.

use crate::cost::{cost_of, CostBreakdown};
use crate::latency::{get_latency_ms, put_latency_ms};
use crate::plan::Plan;
use legostore_cloud::CloudModel;
use legostore_types::{Configuration, DcId, ProtocolKind, QuorumId, QuorumSpec};
use legostore_workload::WorkloadSpec;

/// What the search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize $/hour subject to the latency SLOs (LEGOStore's optimizer).
    Cost,
    /// Minimize worst-case GET+PUT latency subject to the SLOs, ignoring cost (the
    /// `ABD Nearest` / `CAS Nearest` baselines).
    Latency,
}

/// Which protocols the search may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolFilter {
    /// Consider both ABD and CAS (LEGOStore's optimizer).
    Any,
    /// Replication only (`ABD Only Optimal`).
    AbdOnly,
    /// Erasure coding only (`CAS Only Optimal`).
    CasOnly,
}

/// Tunables of the search.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Objective to minimize.
    pub objective: Objective,
    /// How many data centers beyond `n` the ranked candidate pool keeps (the paper's
    /// heuristic prunes the combinatorial placement space this way).
    pub candidate_pool_extra: usize,
    /// Data centers that must not be used (e.g. ones suspected to have failed, §3.4/§4.5).
    pub excluded_dcs: Vec<DcId>,
    /// Upper bound on the code length / replication degree (defaults to the number of DCs).
    pub max_n: Option<usize>,
    /// Restrict CAS candidates to this code dimension (used by the K-sweep of Figure 3).
    pub fixed_k: Option<usize>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            objective: Objective::Cost,
            candidate_pool_extra: 3,
            excluded_dcs: Vec::new(),
            max_n: None,
            fixed_k: None,
        }
    }
}

/// LEGOStore's per-key optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    model: CloudModel,
    options: SearchOptions,
}

impl Optimizer {
    /// Creates an optimizer over `model` with default options (cost objective).
    pub fn new(model: CloudModel) -> Self {
        Optimizer {
            model,
            options: SearchOptions::default(),
        }
    }

    /// Creates an optimizer with explicit options.
    pub fn with_options(model: CloudModel, options: SearchOptions) -> Self {
        Optimizer { model, options }
    }

    /// The cloud model the optimizer plans against.
    pub fn model(&self) -> &CloudModel {
        &self.model
    }

    /// The search options.
    pub fn options(&self) -> &SearchOptions {
        &self.options
    }

    /// Finds the cheapest feasible configuration using either protocol.
    pub fn optimize(&self, spec: &WorkloadSpec) -> Option<Plan> {
        self.optimize_filtered(spec, ProtocolFilter::Any)
    }

    /// Finds the best feasible configuration restricted to `filter`.
    pub fn optimize_filtered(&self, spec: &WorkloadSpec, filter: ProtocolFilter) -> Option<Plan> {
        let mut best: Option<Plan> = None;
        if matches!(filter, ProtocolFilter::Any | ProtocolFilter::AbdOnly) {
            best = self.enumerate_abd(spec, best);
        }
        if matches!(filter, ProtocolFilter::Any | ProtocolFilter::CasOnly) {
            best = self.enumerate_cas(spec, best);
        }
        best
    }

    /// Evaluates a specific protocol / `n` / `k` over a fixed placement (used by the
    /// `ABD Fixed` / `CAS Fixed` baselines): quorum sizes and per-client quorums are still
    /// chosen by the search, but the hosting data centers are given.
    pub fn evaluate_placement(
        &self,
        spec: &WorkloadSpec,
        protocol: ProtocolKind,
        k: usize,
        placement: Vec<DcId>,
    ) -> Option<Plan> {
        let n = placement.len();
        let mut best: Option<Plan> = None;
        for quorums in quorum_combinations(protocol, n, k, spec.fault_tolerance) {
            if let Some(plan) = self.evaluate_candidate(spec, protocol, k, &placement, quorums) {
                best = Self::better(self.options.objective, best, plan);
            }
        }
        best
    }

    fn better(objective: Objective, best: Option<Plan>, candidate: Plan) -> Option<Plan> {
        match best {
            None => Some(candidate),
            Some(b) => {
                let better = match objective {
                    Objective::Cost => candidate.total_cost() < b.total_cost(),
                    Objective::Latency => {
                        let cl = candidate.worst_get_latency_ms + candidate.worst_put_latency_ms;
                        let bl = b.worst_get_latency_ms + b.worst_put_latency_ms;
                        cl < bl || ((cl - bl).abs() < 1e-9 && candidate.total_cost() < b.total_cost())
                    }
                };
                Some(if better { candidate } else { b })
            }
        }
    }

    fn available_dcs(&self) -> Vec<DcId> {
        self.model
            .dc_ids()
            .into_iter()
            .filter(|d| !self.options.excluded_dcs.contains(d))
            .collect()
    }

    /// Ranks the available data centers by the paper's heuristic score: traffic-weighted
    /// network price to/from the client locations, with RTT as a tie-break.
    fn ranked_candidates(&self, spec: &WorkloadSpec) -> Vec<DcId> {
        let mut dcs = self.available_dcs();
        let score = |j: DcId| -> (f64, f64) {
            let mut price = 0.0;
            let mut rtt = 0.0;
            for (i, frac) in &spec.client_distribution {
                if *frac <= 0.0 {
                    continue;
                }
                price += frac
                    * (self.model.net_price_gb(j, *i) + self.model.net_price_gb(*i, j))
                    / 2.0;
                rtt += frac * self.model.rtt_ms(*i, j);
            }
            (price, rtt)
        };
        dcs.sort_by(|a, b| {
            let (pa, ra) = score(*a);
            let (pb, rb) = score(*b);
            match self.options.objective {
                Objective::Cost => pa
                    .partial_cmp(&pb)
                    .unwrap()
                    .then(ra.partial_cmp(&rb).unwrap()),
                Objective::Latency => ra
                    .partial_cmp(&rb)
                    .unwrap()
                    .then(pa.partial_cmp(&pb).unwrap()),
            }
        });
        dcs
    }

    /// The candidate pool for code length `n`: the best `n + extra` data centers by the
    /// heuristic ranking, widened with each client location's nearest data centers so that a
    /// latency-critical host (e.g. the only DC within SLO reach of a remote client) is never
    /// pruned away by the price ranking.
    fn candidate_pool(&self, spec: &WorkloadSpec, ranked: &[DcId], n: usize) -> Vec<DcId> {
        let pool_size = (n + self.options.candidate_pool_extra).min(ranked.len());
        let mut pool: Vec<DcId> = ranked[..pool_size].to_vec();
        for (client, frac) in &spec.client_distribution {
            if *frac <= 0.0 {
                continue;
            }
            for near in self
                .model
                .nearest_dcs(*client)
                .into_iter()
                .filter(|d| ranked.contains(d))
                .take(3)
            {
                if !pool.contains(&near) {
                    pool.push(near);
                }
            }
        }
        pool
    }

    /// Folds every feasible ABD candidate into `best` (plans are reduced as they are
    /// produced instead of being collected, since the search only ever needs the winner).
    fn enumerate_abd(&self, spec: &WorkloadSpec, mut best: Option<Plan>) -> Option<Plan> {
        let f = spec.fault_tolerance;
        let ranked = self.ranked_candidates(spec);
        let d = ranked.len();
        let max_n = self.options.max_n.unwrap_or(d).min(d);
        for n in (f + 1).max(2)..=max_n {
            let pool = self.candidate_pool(spec, &ranked, n);
            for placement in combinations(&pool, n) {
                for quorums in quorum_combinations(ProtocolKind::Abd, n, 1, f) {
                    if let Some(plan) =
                        self.evaluate_candidate(spec, ProtocolKind::Abd, 1, &placement, quorums)
                    {
                        best = Self::better(self.options.objective, best, plan);
                    }
                }
            }
        }
        best
    }

    /// Folds every feasible CAS candidate into `best` (see [`Optimizer::enumerate_abd`]).
    fn enumerate_cas(&self, spec: &WorkloadSpec, mut best: Option<Plan>) -> Option<Plan> {
        let f = spec.fault_tolerance;
        let ranked = self.ranked_candidates(spec);
        let d = ranked.len();
        let max_n = self.options.max_n.unwrap_or(d).min(d);
        for k in 1..=d.saturating_sub(2 * f) {
            if let Some(fixed) = self.options.fixed_k {
                if k != fixed {
                    continue;
                }
            }
            for n in (k + 2 * f)..=max_n {
                let pool = self.candidate_pool(spec, &ranked, n);
                for placement in combinations(&pool, n) {
                    for quorums in quorum_combinations(ProtocolKind::Cas, n, k, f) {
                        if let Some(plan) =
                            self.evaluate_candidate(spec, ProtocolKind::Cas, k, &placement, quorums)
                        {
                            best = Self::better(self.options.objective, best, plan);
                        }
                    }
                }
            }
        }
        best
    }

    /// Evaluates one fully parameterized candidate, filling per-client quorums greedily and
    /// rejecting it if any client location cannot meet the SLOs.
    fn evaluate_candidate(
        &self,
        spec: &WorkloadSpec,
        protocol: ProtocolKind,
        k: usize,
        placement: &[DcId],
        quorums: QuorumSpec,
    ) -> Option<Plan> {
        let n = placement.len();
        let mut config = Configuration {
            protocol,
            n,
            k,
            quorums,
            dcs: placement.to_vec(),
            f: spec.fault_tolerance,
            epoch: legostore_types::ConfigEpoch::INITIAL,
            preferred_quorums: Default::default(),
        };
        if config.validate().is_err() {
            return None;
        }
        let quorum_count = protocol.quorum_count();
        let mut worst_get: f64 = 0.0;
        let mut worst_put: f64 = 0.0;
        for (client, frac) in &spec.client_distribution {
            if *frac <= 0.0 {
                continue;
            }
            let (g, p) = self.fill_quorums_for_client(spec, &mut config, *client, quorum_count)?;
            worst_get = worst_get.max(g);
            worst_put = worst_put.max(p);
        }
        let cost: CostBreakdown = cost_of(&self.model, spec, &config);
        Some(Plan {
            config,
            cost,
            worst_get_latency_ms: worst_get,
            worst_put_latency_ms: worst_put,
        })
    }

    /// Chooses, for one client location, the members of each quorum: cheapest-first under
    /// the cost objective (retrying nearest-first if that breaks the SLO), nearest-first
    /// under the latency objective. On success the winning choice is left installed in
    /// `config.preferred_quorums` and the client's (GET, PUT) worst-case latencies are
    /// returned; `None` means even the nearest-first choice misses the SLO.
    fn fill_quorums_for_client(
        &self,
        spec: &WorkloadSpec,
        config: &mut Configuration,
        client: DcId,
        quorum_count: usize,
    ) -> Option<(f64, f64)> {
        let by_price = {
            let mut v = config.dcs.clone();
            v.sort_by(|a, b| {
                let pa = self.model.net_price_gb(*a, client) + self.model.net_price_gb(client, *a);
                let pb = self.model.net_price_gb(*b, client) + self.model.net_price_gb(client, *b);
                pa.partial_cmp(&pb)
                    .unwrap()
                    .then(
                        self.model
                            .rtt_ms(client, *a)
                            .partial_cmp(&self.model.rtt_ms(client, *b))
                            .unwrap(),
                    )
            });
            v
        };
        let by_rtt = {
            let mut v = config.dcs.clone();
            v.sort_by(|a, b| {
                self.model
                    .rtt_ms(client, *a)
                    .partial_cmp(&self.model.rtt_ms(client, *b))
                    .unwrap()
            });
            v
        };
        let build = |order: &[DcId]| -> Vec<Vec<DcId>> {
            (0..4)
                .map(|qi| {
                    if qi >= quorum_count {
                        return Vec::new();
                    }
                    let q = QuorumId::from_index(qi).expect("in range");
                    let size = config.quorums.size(q);
                    order[..size.min(order.len())].to_vec()
                })
                .collect()
        };
        let candidates: Vec<Vec<Vec<DcId>>> = match self.options.objective {
            Objective::Cost => vec![build(&by_price), build(&by_rtt)],
            Objective::Latency => vec![build(&by_rtt)],
        };
        for chosen in candidates {
            // Install the trial choice in place (no clone): the candidate `config` is
            // either kept with the winning choice or discarded wholesale by the caller.
            config.preferred_quorums.insert(client, chosen);
            let g = get_latency_ms(&self.model, spec, config, client);
            let p = put_latency_ms(&self.model, spec, config, client);
            if g <= spec.slo_get_ms && p <= spec.slo_put_ms {
                return Some((g, p));
            }
        }
        config.preferred_quorums.remove(&client);
        None
    }
}

/// All quorum-size combinations worth considering for the given protocol / parameters.
///
/// Quorums are kept as small as the safety constraints allow: for ABD, `q2 = n + 1 - q1`;
/// for CAS, `q3 = n + 1 - q1` and `q2 = n + k - q4`, enumerating the `(q1, q4)` trade-off.
pub fn quorum_combinations(
    protocol: ProtocolKind,
    n: usize,
    k: usize,
    f: usize,
) -> Vec<QuorumSpec> {
    let mut out = Vec::new();
    if n <= f {
        return out;
    }
    let cap = n - f;
    match protocol {
        ProtocolKind::Abd => {
            for q1 in 1..=cap {
                let q2 = n + 1 - q1;
                if q2 >= 1 && q2 <= cap {
                    out.push(QuorumSpec::abd(q1, q2));
                }
            }
        }
        ProtocolKind::Cas => {
            if n < k + 2 * f {
                return out;
            }
            for q1 in 1..=cap {
                let q3 = n + 1 - q1;
                if q3 > cap {
                    continue;
                }
                let q4_min = (n + 1 - q1).max(k + f).max(k);
                for q4 in q4_min..=cap {
                    let q2 = (n + k).saturating_sub(q4).max(1);
                    if q2 > cap {
                        continue;
                    }
                    out.push(QuorumSpec::cas(q1, q2, q3, q4));
                }
            }
        }
    }
    out
}

/// All `size`-subsets of `items`, preserving order.
pub fn combinations(items: &[DcId], size: usize) -> Vec<Vec<DcId>> {
    let mut out = Vec::new();
    if size == 0 || size > items.len() {
        return out;
    }
    let mut idx: Vec<usize> = (0..size).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        // Advance the index vector.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + items.len() - size {
                idx[i] += 1;
                for j in i + 1..size {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_cloud::{CloudModel, GcpLocation};
    use legostore_types::ConfigEpoch;
    use legostore_workload::{client_distribution, ClientDistribution, WorkloadSpec};

    fn gcp_spec(dist: ClientDistribution, slo_ms: f64, rho: f64) -> (CloudModel, WorkloadSpec) {
        let model = CloudModel::gcp9();
        let mut spec = WorkloadSpec::example();
        spec.client_distribution = client_distribution(dist, &model);
        spec.slo_get_ms = slo_ms;
        spec.slo_put_ms = slo_ms;
        spec.read_ratio = rho;
        (model, spec)
    }

    #[test]
    fn combinations_counts() {
        let items: Vec<DcId> = (0..5).map(DcId::from).collect();
        assert_eq!(combinations(&items, 2).len(), 10);
        assert_eq!(combinations(&items, 5).len(), 1);
        assert_eq!(combinations(&items, 0).len(), 0);
        assert_eq!(combinations(&items, 6).len(), 0);
        // Every combination has distinct members.
        for c in combinations(&items, 3) {
            let set: std::collections::BTreeSet<_> = c.iter().collect();
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn quorum_combinations_are_valid() {
        for n in 2..=9usize {
            for f in 1..=2usize {
                if n <= f {
                    continue;
                }
                for q in quorum_combinations(ProtocolKind::Abd, n, 1, f) {
                    let c = Configuration {
                        protocol: ProtocolKind::Abd,
                        n,
                        k: 1,
                        quorums: q,
                        dcs: (0..n).map(DcId::from).collect(),
                        f,
                        epoch: ConfigEpoch::INITIAL,
                        preferred_quorums: Default::default(),
                    };
                    c.validate().unwrap();
                }
                for k in 1..=n.saturating_sub(2 * f) {
                    for q in quorum_combinations(ProtocolKind::Cas, n, k, f) {
                        let c = Configuration {
                            protocol: ProtocolKind::Cas,
                            n,
                            k,
                            quorums: q,
                            dcs: (0..n).map(DcId::from).collect(),
                            f,
                            epoch: ConfigEpoch::INITIAL,
                            preferred_quorums: Default::default(),
                        };
                        c.validate().unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn relaxed_slo_single_site_finds_a_plan() {
        let (model, spec) = gcp_spec(ClientDistribution::Tokyo, 1000.0, 0.5);
        let optimizer = Optimizer::new(model);
        let plan = optimizer.optimize(&spec).expect("feasible");
        plan.config.validate().unwrap();
        assert!(plan.total_cost() > 0.0);
        assert!(plan.worst_get_latency_ms <= 1000.0);
        assert!(plan.worst_put_latency_ms <= 1000.0);
    }

    #[test]
    fn optimizer_is_at_least_as_good_as_each_restriction() {
        let (model, spec) = gcp_spec(ClientDistribution::SydneyTokyo, 1000.0, 0.5);
        let optimizer = Optimizer::new(model);
        let any = optimizer.optimize(&spec).expect("feasible");
        let abd = optimizer
            .optimize_filtered(&spec, ProtocolFilter::AbdOnly)
            .expect("feasible");
        let cas = optimizer
            .optimize_filtered(&spec, ProtocolFilter::CasOnly)
            .expect("feasible");
        assert!(any.total_cost() <= abd.total_cost() + 1e-9);
        assert!(any.total_cost() <= cas.total_cost() + 1e-9);
        assert!((any.total_cost() - abd.total_cost().min(cas.total_cost())).abs() < 1e-9);
    }

    #[test]
    fn stringent_slo_forbids_cas_for_spread_out_users() {
        // With a 200 ms SLO and users split between Sydney and Tokyo (115 ms RTT), the
        // 3-phase CAS PUT cannot fit, but ABD can.
        let (model, spec) = gcp_spec(ClientDistribution::SydneyTokyo, 200.0, 0.5);
        let optimizer = Optimizer::new(model);
        let cas = optimizer.optimize_filtered(&spec, ProtocolFilter::CasOnly);
        assert!(cas.is_none(), "CAS should be infeasible at 200 ms: {cas:?}");
        let abd = optimizer.optimize_filtered(&spec, ProtocolFilter::AbdOnly);
        assert!(abd.is_some(), "ABD should fit at 200 ms");
    }

    #[test]
    fn relaxed_slo_prefers_cas_for_read_heavy_workloads() {
        // §4.2.1: with a 1 s SLO, EC saves cost; the optimizer should not pick plain ABD for
        // a read-heavy single-site workload.
        let (model, mut spec) = gcp_spec(ClientDistribution::Tokyo, 1000.0, 30.0 / 31.0);
        spec.total_data_bytes = 1 << 40;
        let optimizer = Optimizer::new(model);
        let plan = optimizer.optimize(&spec).expect("feasible");
        assert_eq!(plan.config.protocol, ProtocolKind::Cas);
    }

    #[test]
    fn latency_objective_prefers_nearby_dcs() {
        let (model, spec) = gcp_spec(ClientDistribution::Tokyo, 1000.0, 0.5);
        let tokyo = GcpLocation::Tokyo.dc();
        let opt = Optimizer::with_options(
            model,
            SearchOptions {
                objective: Objective::Latency,
                ..Default::default()
            },
        );
        let plan = opt.optimize_filtered(&spec, ProtocolFilter::AbdOnly).expect("feasible");
        // The latency-optimal ABD placement for Tokyo-only clients must include Tokyo itself.
        assert!(plan.config.dcs.contains(&tokyo));
        // And its latency must be no worse than the cost-optimal plan's.
        let cost_opt = Optimizer::new(CloudModel::gcp9());
        let cost_plan = cost_opt
            .optimize_filtered(&spec, ProtocolFilter::AbdOnly)
            .expect("feasible");
        assert!(
            plan.worst_get_latency_ms <= cost_plan.worst_get_latency_ms + 1e-9
                && plan.worst_put_latency_ms <= cost_plan.worst_put_latency_ms + 1e-9
        );
    }

    #[test]
    fn excluded_dcs_are_never_used() {
        let (model, spec) = gcp_spec(ClientDistribution::Tokyo, 1000.0, 0.5);
        let tokyo = GcpLocation::Tokyo.dc();
        let singapore = GcpLocation::Singapore.dc();
        let opt = Optimizer::with_options(
            model,
            SearchOptions {
                excluded_dcs: vec![tokyo, singapore],
                ..Default::default()
            },
        );
        let plan = opt.optimize(&spec).expect("still feasible without Tokyo");
        assert!(!plan.config.dcs.contains(&tokyo));
        assert!(!plan.config.dcs.contains(&singapore));
    }

    #[test]
    fn infeasible_slo_returns_none() {
        // 20 ms SLO cannot be met by any multi-DC quorum from Sydney.
        let (model, spec) = gcp_spec(ClientDistribution::Sydney, 20.0, 0.5);
        let optimizer = Optimizer::new(model);
        assert!(optimizer.optimize(&spec).is_none());
    }

    #[test]
    fn evaluate_placement_respects_given_dcs() {
        let (model, spec) = gcp_spec(ClientDistribution::Tokyo, 1000.0, 0.5);
        let placement: Vec<DcId> = vec![
            GcpLocation::Virginia.dc(),
            GcpLocation::Oregon.dc(),
            GcpLocation::LosAngeles.dc(),
        ];
        let optimizer = Optimizer::new(model);
        let plan = optimizer
            .evaluate_placement(&spec, ProtocolKind::Abd, 1, placement.clone())
            .expect("feasible");
        assert_eq!(plan.config.dcs, placement);
        assert_eq!(plan.config.protocol, ProtocolKind::Abd);
    }

    #[test]
    fn fault_tolerance_two_needs_more_replicas() {
        let (model, mut spec) = gcp_spec(ClientDistribution::Tokyo, 1000.0, 0.5);
        spec.fault_tolerance = 2;
        let optimizer = Optimizer::new(model);
        let plan = optimizer
            .optimize_filtered(&spec, ProtocolFilter::AbdOnly)
            .expect("feasible");
        assert!(plan.config.n >= 3);
        plan.config.validate().unwrap();
        let cas = optimizer
            .optimize_filtered(&spec, ProtocolFilter::CasOnly)
            .expect("feasible");
        assert!(cas.config.n >= cas.config.k + 4);
    }
}
