//! The "when and what to reconfigure" heuristics of §3.4.
//!
//! Two reactive triggers mark a key as badly configured: persistent SLO violations and
//! cost sub-optimality. Once a better configuration is computed, the move is only made if
//! the projected savings over the workload's predicted stability window outweigh the
//! explicit cost of the transfer by a safety factor `(1 + α)`.

use crate::cost::CostBreakdown;
use crate::plan::Plan;
use legostore_cloud::CloudModel;
use legostore_types::{Configuration, ProtocolKind};
use serde::{Deserialize, Serialize};

/// The outcome of the cost/benefit analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReconfigDecision {
    /// Stay with the current configuration.
    Stay {
        /// Projected savings over the window ($), possibly negative.
        projected_savings: f64,
        /// Cost of performing the reconfiguration ($).
        transfer_cost: f64,
    },
    /// Move to the new configuration.
    Reconfigure {
        /// Projected savings over the window ($).
        projected_savings: f64,
        /// Cost of performing the reconfiguration ($).
        transfer_cost: f64,
    },
}

impl ReconfigDecision {
    /// True if the decision is to reconfigure.
    pub fn should_move(&self) -> bool {
        matches!(self, ReconfigDecision::Reconfigure { .. })
    }
}

/// Explicit network cost ($) of transferring one key of `object_bytes` bytes from `old` to
/// `new`: the controller reads enough data from the old configuration to reconstruct the
/// value and then ships a replica / codeword symbol to every member of the new placement
/// (`ReCost(c_old, c_new)` in §3.4).
pub fn transfer_cost(
    model: &CloudModel,
    old: &Configuration,
    new: &Configuration,
    object_bytes: u64,
    controller_dc: legostore_types::DcId,
) -> f64 {
    let o = object_bytes as f64;
    // Read side: ABD ships whole values from N - q2 + 1 servers (we charge one value since
    // the rest are metadata-dominated in practice: the controller stops at the quorum), CAS
    // ships k codeword symbols.
    let read_cost = match old.protocol {
        ProtocolKind::Abd => old
            .dcs
            .first()
            .map(|dc| o * model.net_price_per_byte(*dc, controller_dc))
            .unwrap_or(0.0),
        ProtocolKind::Cas => old
            .dcs
            .iter()
            .take(old.k)
            .map(|dc| (o / old.k as f64) * model.net_price_per_byte(*dc, controller_dc))
            .sum(),
    };
    // Write side: every member of the new placement receives its replica / symbol.
    let write_cost: f64 = match new.protocol {
        ProtocolKind::Abd => new
            .dcs
            .iter()
            .map(|dc| o * model.net_price_per_byte(controller_dc, *dc))
            .sum(),
        ProtocolKind::Cas => new
            .dcs
            .iter()
            .map(|dc| (o / new.k as f64) * model.net_price_per_byte(controller_dc, *dc))
            .sum(),
    };
    read_cost + write_cost
}

/// Applies the §3.4 rule: reconfigure iff
/// `T_new · (Cost(c_exist) − Cost(c_new)) > (1 + α) · ReCost`.
///
/// `window_hours` is `T_new`, the predicted stability horizon of the new workload, and
/// `alpha` the conservatism factor (`α > 0`).
#[allow(clippy::too_many_arguments)] // the §3.4 rule genuinely takes this many inputs
pub fn should_reconfigure(
    model: &CloudModel,
    existing: &Plan,
    candidate: &Plan,
    object_bytes: u64,
    num_keys: u64,
    controller_dc: legostore_types::DcId,
    window_hours: f64,
    alpha: f64,
) -> ReconfigDecision {
    let savings_per_hour = existing.total_cost() - candidate.total_cost();
    let projected_savings = savings_per_hour * window_hours;
    let per_key = transfer_cost(
        model,
        &existing.config,
        &candidate.config,
        object_bytes,
        controller_dc,
    );
    let transfer = per_key * num_keys as f64;
    if projected_savings > (1.0 + alpha) * transfer {
        ReconfigDecision::Reconfigure {
            projected_savings,
            transfer_cost: transfer,
        }
    } else {
        ReconfigDecision::Stay {
            projected_savings,
            transfer_cost: transfer,
        }
    }
}

/// Convenience: true if a measured cost overrun or SLO violation marks the key as badly
/// configured (the reactive triggers of §3.4).
pub fn is_badly_configured(
    predicted: &CostBreakdown,
    observed_cost_per_hour: f64,
    cost_overrun_threshold: f64,
    slo_violations: usize,
    slo_violation_threshold: usize,
) -> bool {
    let overrun = observed_cost_per_hour > predicted.total() * (1.0 + cost_overrun_threshold);
    let slo = slo_violations >= slo_violation_threshold;
    overrun || slo
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_cloud::CloudModel;
    use legostore_types::DcId;

    fn plan_with_cost(cost_per_hour: f64, cas: bool) -> Plan {
        let dcs: Vec<DcId> = (0..5).map(DcId::from).collect();
        let config = if cas {
            Configuration::cas_default(dcs, 3, 1)
        } else {
            Configuration::abd_majority(dcs[..3].to_vec(), 1)
        };
        Plan {
            config,
            cost: CostBreakdown {
                get_network: cost_per_hour,
                put_network: 0.0,
                storage: 0.0,
                vm: 0.0,
            },
            worst_get_latency_ms: 100.0,
            worst_put_latency_ms: 100.0,
        }
    }

    #[test]
    fn large_savings_justify_reconfiguration() {
        let model = CloudModel::gcp9();
        let existing = plan_with_cost(1.0, false);
        let candidate = plan_with_cost(0.5, true);
        let decision = should_reconfigure(
            &model,
            &existing,
            &candidate,
            1024,
            1,
            DcId(7),
            24.0, // stable for a day
            0.5,
        );
        assert!(decision.should_move(), "{decision:?}");
    }

    #[test]
    fn tiny_savings_do_not_justify_moving_huge_objects() {
        let model = CloudModel::gcp9();
        let existing = plan_with_cost(1.0, false);
        let candidate = plan_with_cost(0.999, true);
        let decision = should_reconfigure(
            &model,
            &existing,
            &candidate,
            10_000_000_000, // 10 GB to move
            1000,
            DcId(7),
            0.5, // only stable for 30 minutes
            0.5,
        );
        assert!(!decision.should_move(), "{decision:?}");
    }

    #[test]
    fn negative_savings_never_reconfigure() {
        let model = CloudModel::gcp9();
        let existing = plan_with_cost(0.5, false);
        let candidate = plan_with_cost(1.0, true);
        let decision =
            should_reconfigure(&model, &existing, &candidate, 1024, 1, DcId(0), 1000.0, 0.1);
        assert!(!decision.should_move());
    }

    #[test]
    fn transfer_cost_scales_with_object_and_code() {
        let model = CloudModel::gcp9();
        let abd = Configuration::abd_majority((0..3).map(DcId::from).collect(), 1);
        let cas = Configuration::cas_default((0..5).map(DcId::from).collect(), 3, 1);
        let small = transfer_cost(&model, &abd, &cas, 1024, DcId(8));
        let large = transfer_cost(&model, &abd, &cas, 1024 * 1024, DcId(8));
        assert!(large > small * 500.0);
        // Writing an ABD configuration ships more bytes than an equivalent CAS one.
        let to_abd = transfer_cost(&model, &cas, &abd, 1024 * 1024, DcId(8));
        let to_cas = transfer_cost(&model, &abd, &cas, 1024 * 1024, DcId(8));
        assert!(to_abd > to_cas * 0.9);
    }

    #[test]
    fn bad_configuration_triggers() {
        let predicted = CostBreakdown {
            get_network: 1.0,
            put_network: 0.0,
            storage: 0.0,
            vm: 0.0,
        };
        // 30% overrun against a 20% threshold.
        assert!(is_badly_configured(&predicted, 1.3, 0.2, 0, 100));
        // Within budget and few violations: fine.
        assert!(!is_badly_configured(&predicted, 1.1, 0.2, 3, 100));
        // SLO violations alone trigger.
        assert!(is_badly_configured(&predicted, 0.9, 0.2, 150, 100));
    }
}
