//! The six baselines of §4.1, each expressed as a restriction or re-objective of the same
//! search machinery so that comparisons are apples-to-apples.

use crate::plan::Plan;
use crate::search::{Objective, Optimizer, ProtocolFilter, SearchOptions};
use legostore_cloud::CloudModel;
use legostore_types::{DcId, ProtocolKind};
use legostore_workload::WorkloadSpec;

/// The baselines LEGOStore is compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// ABD with a fixed replication degree of 3, hosted at the DCs with the smallest
    /// average network price toward the user locations.
    AbdFixed,
    /// CAS with fixed parameters (5, 3), hosted at the cheapest-average-price DCs.
    CasFixed,
    /// ABD with optimizer-chosen parameters but latency-minimizing placement (represents
    /// latency-oriented systems such as Volley).
    AbdNearest,
    /// CAS with optimizer-chosen parameters but latency-minimizing placement.
    CasNearest,
    /// Cost-optimal replication-only configuration (represents SPANStore).
    AbdOnlyOptimal,
    /// Cost-optimal erasure-coding-only configuration (represents Pando/Giza-style systems).
    CasOnlyOptimal,
}

impl Baseline {
    /// All six baselines, in the order the paper's figures list them.
    pub const ALL: [Baseline; 6] = [
        Baseline::AbdFixed,
        Baseline::CasFixed,
        Baseline::AbdNearest,
        Baseline::CasNearest,
        Baseline::AbdOnlyOptimal,
        Baseline::CasOnlyOptimal,
    ];

    /// Display label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Baseline::AbdFixed => "ABD Fixed",
            Baseline::CasFixed => "CAS Fixed",
            Baseline::AbdNearest => "ABD Nearest",
            Baseline::CasNearest => "CAS Nearest",
            Baseline::AbdOnlyOptimal => "ABD Only Optimal",
            Baseline::CasOnlyOptimal => "CAS Only Optimal",
        }
    }
}

/// The fixed replication degree used by `ABD Fixed` (the value most frequently chosen by the
/// optimizer across the paper's experiments).
pub const ABD_FIXED_N: usize = 3;
/// The fixed `(n, k)` used by `CAS Fixed`.
pub const CAS_FIXED_NK: (usize, usize) = (5, 3);

/// Ranks data centers by their average outbound network price toward the workload's client
/// locations (the placement rule of the `Fixed` baselines).
fn cheapest_average_price_dcs(model: &CloudModel, spec: &WorkloadSpec, count: usize) -> Vec<DcId> {
    let clients = spec.client_dcs();
    let mut dcs = model.dc_ids();
    dcs.sort_by(|a, b| {
        let pa = model.avg_outbound_price_gb(*a, &clients);
        let pb = model.avg_outbound_price_gb(*b, &clients);
        pa.partial_cmp(&pb).unwrap()
    });
    dcs.truncate(count);
    dcs
}

/// Evaluates `baseline` for `spec` on `model`. Returns `None` if the baseline cannot meet
/// the SLOs (e.g. `CAS Only Optimal` under a stringent SLO, Figure 1(b)).
pub fn evaluate_baseline(
    model: &CloudModel,
    spec: &WorkloadSpec,
    baseline: Baseline,
) -> Option<Plan> {
    match baseline {
        Baseline::AbdFixed => {
            let placement = cheapest_average_price_dcs(model, spec, ABD_FIXED_N);
            Optimizer::new(model.clone()).evaluate_placement(spec, ProtocolKind::Abd, 1, placement)
        }
        Baseline::CasFixed => {
            let (n, k) = CAS_FIXED_NK;
            if model.num_dcs() < n {
                return None;
            }
            let placement = cheapest_average_price_dcs(model, spec, n);
            Optimizer::new(model.clone()).evaluate_placement(spec, ProtocolKind::Cas, k, placement)
        }
        Baseline::AbdNearest => Optimizer::with_options(
            model.clone(),
            SearchOptions {
                objective: Objective::Latency,
                ..Default::default()
            },
        )
        .optimize_filtered(spec, ProtocolFilter::AbdOnly),
        Baseline::CasNearest => Optimizer::with_options(
            model.clone(),
            SearchOptions {
                objective: Objective::Latency,
                ..Default::default()
            },
        )
        .optimize_filtered(spec, ProtocolFilter::CasOnly),
        Baseline::AbdOnlyOptimal => {
            Optimizer::new(model.clone()).optimize_filtered(spec, ProtocolFilter::AbdOnly)
        }
        Baseline::CasOnlyOptimal => {
            Optimizer::new(model.clone()).optimize_filtered(spec, ProtocolFilter::CasOnly)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_cloud::{CloudModel, GcpLocation};
    use legostore_workload::{client_distribution, ClientDistribution};

    fn spec(dist: ClientDistribution, slo: f64, rho: f64) -> (CloudModel, WorkloadSpec) {
        let model = CloudModel::gcp9();
        let mut s = WorkloadSpec::example();
        s.client_distribution = client_distribution(dist, &model);
        s.slo_get_ms = slo;
        s.slo_put_ms = slo;
        s.read_ratio = rho;
        (model, s)
    }

    #[test]
    fn fixed_baselines_use_fixed_parameters() {
        let (model, s) = spec(ClientDistribution::Tokyo, 1000.0, 0.5);
        let abd = evaluate_baseline(&model, &s, Baseline::AbdFixed).expect("feasible");
        assert_eq!(abd.config.protocol, ProtocolKind::Abd);
        assert_eq!(abd.config.n, 3);
        let cas = evaluate_baseline(&model, &s, Baseline::CasFixed).expect("feasible");
        assert_eq!(cas.config.protocol, ProtocolKind::Cas);
        assert_eq!((cas.config.n, cas.config.k), (5, 3));
    }

    #[test]
    fn fixed_baselines_avoid_expensive_outbound_dcs() {
        // Sydney has the most expensive outbound prices; the Fixed placement rule (cheapest
        // average outbound price) must therefore never pick Sydney for Tokyo-only users.
        let (model, s) = spec(ClientDistribution::Tokyo, 1000.0, 0.5);
        let abd = evaluate_baseline(&model, &s, Baseline::AbdFixed).unwrap();
        assert!(!abd.config.dcs.contains(&GcpLocation::Sydney.dc()));
    }

    #[test]
    fn optimizer_beats_or_matches_every_baseline() {
        let (model, s) = spec(ClientDistribution::SydneyTokyo, 1000.0, 30.0 / 31.0);
        let optimal = Optimizer::new(model.clone()).optimize(&s).expect("feasible");
        for b in Baseline::ALL {
            if let Some(plan) = evaluate_baseline(&model, &s, b) {
                assert!(
                    optimal.total_cost() <= plan.total_cost() + 1e-9,
                    "{}: optimizer {} vs baseline {}",
                    b.label(),
                    optimal.total_cost(),
                    plan.total_cost()
                );
            }
        }
    }

    #[test]
    fn nearest_baselines_minimize_latency_not_cost() {
        let (model, s) = spec(ClientDistribution::SydneyTokyo, 1000.0, 30.0 / 31.0);
        let nearest = evaluate_baseline(&model, &s, Baseline::CasNearest).expect("feasible");
        let optimal = evaluate_baseline(&model, &s, Baseline::CasOnlyOptimal).expect("feasible");
        // Nearest is at least as fast, and (for this Sydney+Tokyo HR workload, §G.2) strictly
        // more expensive than the cost-optimal choice.
        assert!(
            nearest.worst_get_latency_ms <= optimal.worst_get_latency_ms + 1e-9,
            "nearest {} vs optimal {}",
            nearest.worst_get_latency_ms,
            optimal.worst_get_latency_ms
        );
        assert!(nearest.total_cost() >= optimal.total_cost() - 1e-9);
    }

    #[test]
    fn cas_only_optimal_infeasible_under_stringent_slo() {
        // Figure 1(b): at a 200 ms SLO CAS Only Optimal cannot serve many workloads.
        let (model, s) = spec(ClientDistribution::SydneyTokyo, 200.0, 0.5);
        assert!(evaluate_baseline(&model, &s, Baseline::CasOnlyOptimal).is_none());
        assert!(evaluate_baseline(&model, &s, Baseline::AbdOnlyOptimal).is_some());
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = Baseline::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
