//! The cost model of Appendix C: networking cost of GETs and PUTs (equations (12), (13),
//! (28), (29)), storage cost (14) and VM cost (15), all expressed in $/hour.

use legostore_cloud::CloudModel;
use legostore_types::{Configuration, DcId, ProtocolKind, QuorumId};
use legostore_workload::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Cost per hour, broken down by component (the four terms of objective (1)).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Networking cost of GET operations ($/hour).
    pub get_network: f64,
    /// Networking cost of PUT operations ($/hour).
    pub put_network: f64,
    /// Storage cost ($/hour).
    pub storage: f64,
    /// VM (compute) cost ($/hour).
    pub vm: f64,
}

impl CostBreakdown {
    /// Total cost per hour.
    pub fn total(&self) -> f64 {
        self.get_network + self.put_network + self.storage + self.vm
    }
}

const SECONDS_PER_HOUR: f64 = 3600.0;

/// Computes the full cost breakdown of running `spec` under `config` on `model`.
///
/// The configuration's per-client preferred quorums define the `iq` indicator variables of
/// the paper's formulation; clients without a recorded preference are assumed to contact the
/// quorum-size prefix of the placement (the same default the protocols use).
pub fn cost_of(model: &CloudModel, spec: &WorkloadSpec, config: &Configuration) -> CostBreakdown {
    CostBreakdown {
        get_network: get_network_cost(model, spec, config),
        put_network: put_network_cost(model, spec, config),
        storage: storage_cost(model, spec, config),
        vm: vm_cost(model, spec, config),
    }
}

/// Networking cost of PUTs ($/hour): equation (12) for ABD, (13) for CAS.
pub fn put_network_cost(model: &CloudModel, spec: &WorkloadSpec, config: &Configuration) -> f64 {
    let put_rate = spec.put_rate();
    if put_rate <= 0.0 {
        return 0.0;
    }
    let om = spec.metadata_size as f64;
    let og = spec.object_size as f64;
    let mut dollars_per_sec = 0.0;
    for (client, frac) in &spec.client_distribution {
        if *frac <= 0.0 {
            continue;
        }
        let rate_i = put_rate * frac;
        let per_request = match config.protocol {
            ProtocolKind::Abd => {
                // Phase 1: servers in Q1 respond with their tags (metadata, server → client).
                let phase1: f64 = config
                    .quorum_for(*client, QuorumId::Q1)
                    .iter()
                    .map(|j| om * model.net_price_per_byte(*j, *client))
                    .sum();
                // Phase 2: the client ships the full value to Q2 (client → server).
                let phase2: f64 = config
                    .quorum_for(*client, QuorumId::Q2)
                    .iter()
                    .map(|k| og * model.net_price_per_byte(*client, *k))
                    .sum();
                phase1 + phase2
            }
            ProtocolKind::Cas => {
                let phase1: f64 = config
                    .quorum_for(*client, QuorumId::Q1)
                    .iter()
                    .map(|j| om * model.net_price_per_byte(*j, *client))
                    .sum();
                let phase3: f64 = config
                    .quorum_for(*client, QuorumId::Q3)
                    .iter()
                    .map(|k| om * model.net_price_per_byte(*client, *k))
                    .sum();
                let symbol = og / config.k as f64;
                let phase2: f64 = config
                    .quorum_for(*client, QuorumId::Q2)
                    .iter()
                    .map(|m| symbol * model.net_price_per_byte(*client, *m))
                    .sum();
                phase1 + phase2 + phase3
            }
        };
        dollars_per_sec += rate_i * per_request;
    }
    dollars_per_sec * SECONDS_PER_HOUR
}

/// Networking cost of GETs ($/hour): equation (28) for ABD, (29) for CAS.
pub fn get_network_cost(model: &CloudModel, spec: &WorkloadSpec, config: &Configuration) -> f64 {
    let get_rate = spec.get_rate();
    if get_rate <= 0.0 {
        return 0.0;
    }
    let om = spec.metadata_size as f64;
    let og = spec.object_size as f64;
    let mut dollars_per_sec = 0.0;
    for (client, frac) in &spec.client_distribution {
        if *frac <= 0.0 {
            continue;
        }
        let rate_i = get_rate * frac;
        let per_request = match config.protocol {
            ProtocolKind::Abd => {
                // Phase 1: Q1 servers return whole values; phase 2: the client writes the
                // value back to Q2 — both move `og` bytes per contacted server.
                let phase1: f64 = config
                    .quorum_for(*client, QuorumId::Q1)
                    .iter()
                    .map(|j| og * model.net_price_per_byte(*j, *client))
                    .sum();
                let phase2: f64 = config
                    .quorum_for(*client, QuorumId::Q2)
                    .iter()
                    .map(|k| og * model.net_price_per_byte(*client, *k))
                    .sum();
                phase1 + phase2
            }
            ProtocolKind::Cas => {
                // Phase 1 metadata from Q1; phase 2 metadata to Q4 plus codeword symbols
                // back from Q4.
                let phase1: f64 = config
                    .quorum_for(*client, QuorumId::Q1)
                    .iter()
                    .map(|j| om * model.net_price_per_byte(*j, *client))
                    .sum();
                let q4 = config.quorum_for(*client, QuorumId::Q4);
                let phase2_meta: f64 = q4
                    .iter()
                    .map(|k| om * model.net_price_per_byte(*client, *k))
                    .sum();
                let symbol = og / config.k as f64;
                let phase2_data: f64 = q4
                    .iter()
                    .map(|k| symbol * model.net_price_per_byte(*k, *client))
                    .sum();
                phase1 + phase2_meta + phase2_data
            }
        };
        dollars_per_sec += rate_i * per_request;
    }
    dollars_per_sec * SECONDS_PER_HOUR
}

/// Storage cost ($/hour): equation (14), applied to the key group's total data footprint.
pub fn storage_cost(model: &CloudModel, spec: &WorkloadSpec, config: &Configuration) -> f64 {
    let per_dc_bytes = match config.protocol {
        ProtocolKind::Abd => spec.total_data_bytes as f64,
        ProtocolKind::Cas => spec.total_data_bytes as f64 / config.k as f64,
    };
    config
        .dcs
        .iter()
        .map(|dc| per_dc_bytes * model.storage_price_per_byte_hour(*dc))
        .sum()
}

/// VM cost ($/hour): equation (15). Each data center needs VM capacity proportional to the
/// request rate it receives, which is the client arrival rate times the number of quorums
/// (phases) that include it.
pub fn vm_cost(model: &CloudModel, spec: &WorkloadSpec, config: &Configuration) -> f64 {
    let mut cost = 0.0;
    let quorum_count = config.protocol.quorum_count();
    for j in &config.dcs {
        let mut rate_at_j = 0.0;
        for (client, frac) in &spec.client_distribution {
            if *frac <= 0.0 {
                continue;
            }
            let mut phases_including_j = 0usize;
            for qi in 0..quorum_count {
                let q = QuorumId::from_index(qi).expect("quorum index in range");
                if config.quorum_for(*client, q).contains(j) {
                    phases_including_j += 1;
                }
            }
            rate_at_j += spec.arrival_rate * frac * phases_including_j as f64;
        }
        cost += model.theta_v() * model.vm_price_hour(*j) * rate_at_j;
    }
    cost
}

/// Sets the per-client preferred quorums of `config` so that every client location in
/// `spec` uses `members_per_quorum[q]` (one vector per quorum of the protocol). Helper for
/// tests and the baselines.
pub fn with_uniform_quorums(
    mut config: Configuration,
    spec: &WorkloadSpec,
    members_per_quorum: Vec<Vec<DcId>>,
) -> Configuration {
    for (client, _) in &spec.client_distribution {
        config
            .preferred_quorums
            .insert(*client, members_per_quorum.clone());
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_cloud::CloudModelBuilder;
    use legostore_types::DcId;

    fn uniform_model() -> CloudModel {
        CloudModelBuilder::uniform(5)
            .storage_price(0, 0.04)
            .storage_price(1, 0.04)
            .storage_price(2, 0.04)
            .storage_price(3, 0.04)
            .storage_price(4, 0.04)
            .vm_price(0, 0.02)
            .vm_price(1, 0.02)
            .vm_price(2, 0.02)
            .vm_price(3, 0.02)
            .vm_price(4, 0.02)
            .theta_v(0.001)
            .build()
    }

    fn spec() -> WorkloadSpec {
        let mut s = WorkloadSpec::example();
        s.object_size = 1000;
        s.metadata_size = 100;
        s.arrival_rate = 100.0;
        s.read_ratio = 0.5;
        s.total_data_bytes = 1_000_000_000; // 1 GB
        s.client_distribution = vec![(DcId(0), 1.0)];
        s
    }

    fn dcs(n: usize) -> Vec<DcId> {
        (0..n).map(DcId::from).collect()
    }

    #[test]
    fn abd_put_cost_matches_hand_computation() {
        let model = uniform_model();
        let spec = spec();
        let config = Configuration::abd_majority(dcs(3), 1);
        // q1 = q2 = 2 (prefix {0,1}); client at DC 0.
        // Phase 1: om from each of 2 servers -> client; server 0 is the client's own DC so
        // its price is 0; server 1 costs 0.08/GB.
        // Phase 2: og to each of 2 servers; again only DC 1 is billed.
        let p = 0.08 / 1e9;
        let per_put = 100.0 * p + 1000.0 * p;
        let expected = 50.0 * per_put * 3600.0; // 50 puts/sec
        let got = put_network_cost(&model, &spec, &config);
        assert!((got - expected).abs() < 1e-9, "got {got}, expected {expected}");
    }

    #[test]
    fn abd_get_cost_counts_values_both_ways() {
        let model = uniform_model();
        let spec = spec();
        let config = Configuration::abd_majority(dcs(3), 1);
        let p = 0.08 / 1e9;
        // Phase 1: og from server 1 (server 0 free); phase 2: og to server 1.
        let per_get = 1000.0 * p + 1000.0 * p;
        let expected = 50.0 * per_get * 3600.0;
        let got = get_network_cost(&model, &spec, &config);
        assert!((got - expected).abs() < 1e-9);
    }

    #[test]
    fn cas_put_ships_fractional_value() {
        let model = uniform_model();
        let spec = spec();
        let config = Configuration::cas_default(dcs(5), 3, 1);
        let got = put_network_cost(&model, &spec, &config);
        // Compare against a direct evaluation of equation (13).
        let p = |from: usize, to: usize| -> f64 {
            if from == to {
                0.0
            } else {
                0.08 / 1e9
            }
        };
        let q1 = config.quorum_for(DcId(0), QuorumId::Q1);
        let q2 = config.quorum_for(DcId(0), QuorumId::Q2);
        let q3 = config.quorum_for(DcId(0), QuorumId::Q3);
        let mut per_put = 0.0;
        for j in q1 {
            per_put += 100.0 * p(j.index(), 0);
        }
        for j in q3 {
            per_put += 100.0 * p(0, j.index());
        }
        for j in q2 {
            per_put += (1000.0 / 3.0) * p(0, j.index());
        }
        let expected = 50.0 * per_put * 3600.0;
        assert!((got - expected).abs() < 1e-9);
    }

    #[test]
    fn cas_get_is_cheaper_than_abd_get_for_same_n() {
        // The paper's point: ABD's GET write-back carries data, CAS's only metadata, so even
        // CAS(k=1) has cheaper GETs than ABD.
        let model = uniform_model();
        let mut spec = spec();
        spec.read_ratio = 1.0;
        let abd = Configuration::abd_majority(dcs(3), 1);
        let cas = Configuration::cas_default(dcs(3), 1, 1);
        let abd_cost = get_network_cost(&model, &spec, &abd);
        let cas_cost = get_network_cost(&model, &spec, &cas);
        assert!(cas_cost < abd_cost, "CAS {cas_cost} vs ABD {abd_cost}");
    }

    #[test]
    fn storage_cost_scales_with_k() {
        let model = uniform_model();
        let spec = spec();
        let abd = Configuration::abd_majority(dcs(3), 1);
        let cas = Configuration::cas_default(dcs(5), 3, 1);
        let s_abd = storage_cost(&model, &spec, &abd);
        let s_cas = storage_cost(&model, &spec, &cas);
        // ABD stores 3 full copies; CAS(5,3) stores 5/3 of the data.
        let per_byte_hour = 0.04 / 1e9 / 730.0;
        assert!((s_abd - 3.0 * 1e9 * per_byte_hour).abs() < 1e-9);
        assert!((s_cas - (5.0 / 3.0) * 1e9 * per_byte_hour).abs() < 1e-9);
        assert!(s_cas < s_abd);
    }

    #[test]
    fn vm_cost_grows_with_quorum_fanout() {
        let model = uniform_model();
        let spec = spec();
        let small = Configuration::cas_default(dcs(3), 1, 1);
        let large = Configuration::cas_default(dcs(5), 3, 1);
        assert!(vm_cost(&model, &spec, &large) > vm_cost(&model, &spec, &small));
    }

    #[test]
    fn zero_rate_workloads_cost_nothing_on_the_network() {
        let model = uniform_model();
        let mut s = spec();
        s.arrival_rate = 0.0;
        let config = Configuration::abd_majority(dcs(3), 1);
        assert_eq!(put_network_cost(&model, &s, &config), 0.0);
        assert_eq!(get_network_cost(&model, &s, &config), 0.0);
        assert_eq!(vm_cost(&model, &s, &config), 0.0);
        assert!(storage_cost(&model, &s, &config) > 0.0);
    }

    #[test]
    fn read_ratio_splits_network_cost() {
        let model = uniform_model();
        let mut hr = spec();
        hr.read_ratio = 1.0;
        let mut hw = spec();
        hw.read_ratio = 0.0;
        let config = Configuration::abd_majority(dcs(3), 1);
        assert_eq!(put_network_cost(&model, &hr, &config), 0.0);
        assert_eq!(get_network_cost(&model, &hw, &config), 0.0);
        assert!(put_network_cost(&model, &hw, &config) > 0.0);
        assert!(get_network_cost(&model, &hr, &config) > 0.0);
    }

    #[test]
    fn total_is_sum_of_components() {
        let model = uniform_model();
        let s = spec();
        let config = Configuration::cas_default(dcs(5), 3, 1);
        let b = cost_of(&model, &s, &config);
        assert!((b.total() - (b.get_network + b.put_network + b.storage + b.vm)).abs() < 1e-12);
        assert!(b.total() > 0.0);
    }

    #[test]
    fn preferred_quorums_change_the_bill() {
        // Using an expensive DC in the quorum must show up in the cost.
        let model = CloudModelBuilder::uniform(3)
            .net_price(2, 0, 0.15)
            .net_price(0, 2, 0.15)
            .build();
        let s = spec();
        let base = Configuration::abd_majority(dcs(3), 1);
        let cheap = with_uniform_quorums(
            base.clone(),
            &s,
            vec![vec![DcId(0), DcId(1)], vec![DcId(0), DcId(1)]],
        );
        let pricey = with_uniform_quorums(
            base,
            &s,
            vec![vec![DcId(0), DcId(2)], vec![DcId(0), DcId(2)]],
        );
        assert!(
            cost_of(&model, &s, &pricey).total() > cost_of(&model, &s, &cheap).total(),
            "expensive quorum must cost more"
        );
    }
}
