//! The worst-case latency model of Appendix C (equations (16)–(19)).
//!
//! Tail latency is approximated by worst-case latency: for each phase, the slowest quorum
//! member determines the phase's duration, and phases add up. Each phase's per-server term
//! is the round trip (`l_ij + l_ji`) plus the transfer time of whatever payload moves in
//! that phase (`o_m / B` for metadata, `o_g / B` for full values, `o_g / (k·B)` for codeword
//! symbols). Intra-DC queueing, encoding and decoding are ignored, as in the paper.

use legostore_cloud::CloudModel;
use legostore_types::{Configuration, DcId, ProtocolKind, QuorumId};
use legostore_workload::WorkloadSpec;

/// Worst-case latency of one phase for a client at `client` contacting `members`, where
/// `to_server_bytes` travel client→server and `from_server_bytes` travel server→client.
fn phase_latency_ms(
    model: &CloudModel,
    client: DcId,
    members: &[DcId],
    to_server_bytes: u64,
    from_server_bytes: u64,
) -> f64 {
    members
        .iter()
        .map(|j| {
            model.rtt_ms(client, *j)
                + model.transfer_time_ms(client, *j, to_server_bytes)
                + model.transfer_time_ms(*j, client, from_server_bytes)
        })
        .fold(0.0, f64::max)
}

/// Worst-case GET latency (ms) for a client located at `client` (equations (16)/(18)).
pub fn get_latency_ms(
    model: &CloudModel,
    spec: &WorkloadSpec,
    config: &Configuration,
    client: DcId,
) -> f64 {
    let om = spec.metadata_size;
    let og = spec.object_size;
    match config.protocol {
        ProtocolKind::Abd => {
            // Phase 1: query goes out (metadata), tag+value come back.
            let q1 = config.quorum_for(client, QuorumId::Q1);
            let p1 = phase_latency_ms(model, client, q1, om, om + og);
            // Phase 2: write-back ships the value, ack returns.
            let q2 = config.quorum_for(client, QuorumId::Q2);
            let p2 = phase_latency_ms(model, client, q2, om + og, om);
            p1 + p2
        }
        ProtocolKind::Cas => {
            let symbol = og / config.k as u64;
            let q1 = config.quorum_for(client, QuorumId::Q1);
            let p1 = phase_latency_ms(model, client, q1, om, om);
            let q4 = config.quorum_for(client, QuorumId::Q4);
            let p2 = phase_latency_ms(model, client, q4, om, om + symbol);
            p1 + p2
        }
    }
}

/// Worst-case PUT latency (ms) for a client located at `client` (equations (17)/(19)).
pub fn put_latency_ms(
    model: &CloudModel,
    spec: &WorkloadSpec,
    config: &Configuration,
    client: DcId,
) -> f64 {
    let om = spec.metadata_size;
    let og = spec.object_size;
    match config.protocol {
        ProtocolKind::Abd => {
            let q1 = config.quorum_for(client, QuorumId::Q1);
            let p1 = phase_latency_ms(model, client, q1, om, om);
            let q2 = config.quorum_for(client, QuorumId::Q2);
            let p2 = phase_latency_ms(model, client, q2, om + og, om);
            p1 + p2
        }
        ProtocolKind::Cas => {
            let symbol = og / config.k as u64;
            let q1 = config.quorum_for(client, QuorumId::Q1);
            let p1 = phase_latency_ms(model, client, q1, om, om);
            let q2 = config.quorum_for(client, QuorumId::Q2);
            let p2 = phase_latency_ms(model, client, q2, om + symbol, om);
            let q3 = config.quorum_for(client, QuorumId::Q3);
            let p3 = phase_latency_ms(model, client, q3, om, om);
            p1 + p2 + p3
        }
    }
}

/// Worst-case GET/PUT latencies over every client location with non-zero traffic.
pub fn worst_latencies_ms(
    model: &CloudModel,
    spec: &WorkloadSpec,
    config: &Configuration,
) -> (f64, f64) {
    let mut worst_get: f64 = 0.0;
    let mut worst_put: f64 = 0.0;
    for (client, frac) in &spec.client_distribution {
        if *frac <= 0.0 {
            continue;
        }
        worst_get = worst_get.max(get_latency_ms(model, spec, config, *client));
        worst_put = worst_put.max(put_latency_ms(model, spec, config, *client));
    }
    (worst_get, worst_put)
}

/// True if `config` meets the SLOs of `spec` for every client location.
pub fn meets_slo(model: &CloudModel, spec: &WorkloadSpec, config: &Configuration) -> bool {
    let (g, p) = worst_latencies_ms(model, spec, config);
    g <= spec.slo_get_ms && p <= spec.slo_put_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_cloud::{CloudModel, CloudModelBuilder, GcpLocation};
    use legostore_types::DcId;
    use legostore_workload::WorkloadSpec;

    fn dcs(n: usize) -> Vec<DcId> {
        (0..n).map(DcId::from).collect()
    }

    fn spec_at(client: DcId) -> WorkloadSpec {
        let mut s = WorkloadSpec::example();
        s.client_distribution = vec![(client, 1.0)];
        s.metadata_size = 0; // isolate propagation delay in the simple tests
        s.object_size = 1; // negligible transfer time
        s
    }

    #[test]
    fn abd_latency_is_two_worst_case_rtts() {
        let model = CloudModelBuilder::uniform(3)
            .rtt(0, 1, 50.0)
            .rtt(0, 2, 200.0)
            .rtt(1, 2, 100.0)
            .build();
        let spec = spec_at(DcId(0));
        let mut config = Configuration::abd_majority(dcs(3), 1);
        config
            .preferred_quorums
            .insert(DcId(0), vec![vec![DcId(0), DcId(1)], vec![DcId(0), DcId(1)]]);
        // Each phase is dominated by the 50 ms RTT to DC 1.
        let put = put_latency_ms(&model, &spec, &config, DcId(0));
        assert!((put - 100.0).abs() < 1.0, "put {put}");
        let get = get_latency_ms(&model, &spec, &config, DcId(0));
        assert!((get - 100.0).abs() < 1.0, "get {get}");
        // Using the far DC instead makes both phases 200 ms.
        config
            .preferred_quorums
            .insert(DcId(0), vec![vec![DcId(0), DcId(2)], vec![DcId(0), DcId(2)]]);
        let put = put_latency_ms(&model, &spec, &config, DcId(0));
        assert!((put - 400.0).abs() < 1.0);
    }

    #[test]
    fn cas_put_has_three_phases() {
        let model = CloudModelBuilder::uniform(5).build(); // all RTTs 100 ms
        let spec = spec_at(DcId(0));
        let config = Configuration::cas_default(dcs(5), 3, 1);
        let put = put_latency_ms(&model, &spec, &config, DcId(0));
        let get = get_latency_ms(&model, &spec, &config, DcId(0));
        // Quorums include remote DCs, so each phase is ~100 ms.
        assert!((put - 300.0).abs() < 2.0, "put {put}");
        assert!((get - 200.0).abs() < 2.0, "get {get}");
    }

    #[test]
    fn transfer_time_matters_for_large_objects() {
        let model = CloudModelBuilder::uniform(3).bandwidth_all(1_000_000.0).build(); // 1 MB/s
        let mut spec = spec_at(DcId(0));
        spec.object_size = 1_000_000; // 1 MB -> 1 s transfer
        spec.metadata_size = 100;
        let config = Configuration::abd_majority(dcs(3), 1);
        let put = put_latency_ms(&model, &spec, &config, DcId(0));
        // Phase 2 ships the 1 MB value: ≥ 1000 ms on top of the RTTs.
        assert!(put > 1000.0);
        // CAS with k=3 over 5 DCs ships only a third of the value.
        let cas = Configuration::cas_default(dcs(3), 1, 1);
        let cas_put = put_latency_ms(&model, &spec, &cas, DcId(0));
        assert!(cas_put > 1000.0); // k=1 still ships everything
    }

    #[test]
    fn paper_example_tokyo_ec_vs_replication() {
        // §4.2.5: for users in Tokyo with f=1, the lowest GET latency via ABD is 139 ms
        // (quorum {Tokyo, LA, Oregon}-ish) whereas CAS achieves ~160 ms. Check that our
        // latency model reproduces those magnitudes with the paper's RTT table.
        let model = CloudModel::gcp9();
        let tokyo = GcpLocation::Tokyo.dc();
        let mut spec = WorkloadSpec::example();
        spec.client_distribution = vec![(tokyo, 1.0)];
        spec.object_size = 1024;

        // ABD(3) over Tokyo, LA, Oregon with majority quorums.
        let abd = Configuration::abd_majority(
            vec![tokyo, GcpLocation::LosAngeles.dc(), GcpLocation::Oregon.dc()],
            1,
        );
        let abd_get = get_latency_ms(&model, &spec, &abd, tokyo);
        assert!(abd_get > 100.0 && abd_get < 250.0, "ABD GET {abd_get}");

        // CAS(4,2) over Tokyo, LA, Oregon, Singapore.
        let cas = Configuration::cas_default(
            vec![
                tokyo,
                GcpLocation::LosAngeles.dc(),
                GcpLocation::Oregon.dc(),
                GcpLocation::Singapore.dc(),
            ],
            2,
            1,
        );
        let cas_get = get_latency_ms(&model, &spec, &cas, tokyo);
        assert!(cas_get > 100.0 && cas_get < 300.0, "CAS GET {cas_get}");
        // CAS PUT has an extra phase and must be slower than CAS GET.
        assert!(put_latency_ms(&model, &spec, &cas, tokyo) > cas_get);
    }

    #[test]
    fn meets_slo_and_worst_latencies() {
        let model = CloudModelBuilder::uniform(3).build();
        let mut spec = spec_at(DcId(0));
        spec.client_distribution = vec![(DcId(0), 0.5), (DcId(2), 0.5)];
        let config = Configuration::abd_majority(dcs(3), 1);
        let (g, p) = worst_latencies_ms(&model, &spec, &config);
        assert!(g > 0.0 && p > 0.0);
        spec.slo_get_ms = g + 1.0;
        spec.slo_put_ms = p + 1.0;
        assert!(meets_slo(&model, &spec, &config));
        spec.slo_get_ms = g - 1.0;
        assert!(!meets_slo(&model, &spec, &config));
    }

    #[test]
    fn uniform_distribution_lower_bounds_slo() {
        // §4.2.2: with uniformly distributed users, SLOs below ~300 ms are infeasible
        // because some client is far from every possible quorum.
        let model = CloudModel::gcp9();
        let mut spec = WorkloadSpec::example();
        spec.client_distribution = model
            .dc_ids()
            .into_iter()
            .map(|d| (d, 1.0 / 9.0))
            .collect();
        spec.object_size = 1024;
        // Even the geographically central ABD(3) placement can't get both phases under
        // 300 ms for Sydney/São Paulo users.
        let central = Configuration::abd_majority(
            vec![
                GcpLocation::Virginia.dc(),
                GcpLocation::Oregon.dc(),
                GcpLocation::LosAngeles.dc(),
            ],
            1,
        );
        let (g, p) = worst_latencies_ms(&model, &spec, &central);
        assert!(g.max(p) > 300.0, "got {g}/{p}");
    }
}
