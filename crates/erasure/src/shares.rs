//! Conversion between application values and CAS codeword symbols.
//!
//! A value of `L` bytes is split into `k` data shards of `ceil((L + 8) / k)` bytes (an
//! 8-byte little-endian length header is prepended so decoding can strip the padding), then
//! encoded into `n` codeword symbols with [`ReedSolomon`]. Each symbol is tagged with its
//! index so that the decoder can invert the right rows of the generator matrix regardless of
//! which `k` data centers respond.
//!
//! # Hot-path layout
//!
//! [`encode_value`] lays the whole codeword out in **one** contiguous allocation: header,
//! value, and padding fill the first `k·slen` bytes, parity is computed in place into the
//! remaining `(n-k)·slen`, and the buffer is converted to [`Bytes`] exactly once. Each
//! [`Shard`] is then a zero-copy [`Bytes::slice`] window into that buffer, so fanning the
//! `n` symbols out to `n` data centers clones refcounts, never bytes. [`decode_value`]
//! borrows shard bytes in place, reassembles into a pooled per-thread scratch buffer, and
//! performs a single exact-size copy out.
//!
//! The pre-optimization paths are kept as [`encode_value_reference`] /
//! [`decode_value_reference`] so the perf harness can measure the baseline and the current
//! implementation in the same binary.

use crate::codec::{CodecError, ReedSolomon};
use bytes::Bytes;
use std::cell::RefCell;

/// One codeword symbol together with its index in the codeword.
///
/// The symbol bytes are a [`Bytes`] handle: cloning a shard (e.g. once per destination DC
/// in the quorum fan-out) bumps a refcount instead of copying the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Index of this symbol (0-based; equals the position of the hosting DC in the
    /// configuration's placement list).
    pub index: usize,
    /// Symbol bytes (shared, immutable).
    pub data: Bytes,
}

impl Shard {
    /// Creates a shard. Accepts anything convertible to [`Bytes`] (`Vec<u8>`, `Bytes`, …).
    pub fn new(index: usize, data: impl Into<Bytes>) -> Self {
        Shard {
            index,
            data: data.into(),
        }
    }

    /// Size of the symbol in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the symbol carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

const LEN_HEADER: usize = 8;

/// Pooled decode scratch buffers above this capacity are dropped instead of retained.
const MAX_POOLED_SCRATCH: usize = 1 << 22; // 4 MiB

thread_local! {
    /// Per-thread reassembly buffer reused across [`decode_value`] calls so steady-state
    /// decoding allocates only the returned value.
    static SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Size in bytes of each codeword symbol for a value of `value_len` bytes under an
/// `(_, k)` code. This is what the cost model charges per symbol transfer (`o/k` in the
/// paper, plus the negligible 8-byte header).
pub fn shard_len(value_len: usize, k: usize) -> usize {
    assert!(k > 0, "k must be positive");
    (value_len + LEN_HEADER).div_ceil(k)
}

/// Encodes `value` into `n` codeword symbols from which any `k` reconstruct the value.
///
/// All `n` symbols are views into one shared allocation (see the module docs); downstream
/// clones of the returned shards are refcount bumps.
pub fn encode_value(value: &[u8], n: usize, k: usize) -> Result<Vec<Shard>, CodecError> {
    let rs = ReedSolomon::cached(n, k)?;
    let slen = shard_len(value.len(), k);
    // One allocation for the whole codeword: [header | value | zero padding | parity].
    let mut buf = vec![0u8; n * slen];
    buf[..LEN_HEADER].copy_from_slice(&(value.len() as u64).to_le_bytes());
    buf[LEN_HEADER..LEN_HEADER + value.len()].copy_from_slice(value);
    let (data_part, parity_part) = buf.split_at_mut(k * slen);
    let data_refs: Vec<&[u8]> = data_part.chunks_exact(slen).collect();
    let mut parity_refs: Vec<&mut [u8]> = parity_part.chunks_exact_mut(slen).collect();
    rs.encode_parity(&data_refs, &mut parity_refs)?;
    let all = Bytes::from(buf);
    Ok((0..n)
        .map(|i| Shard::new(i, all.slice(i * slen..(i + 1) * slen)))
        .collect())
}

/// Reconstructs the original value from any `k` distinct shards of an `(n, k)` codeword.
///
/// Shard bytes are borrowed in place; the only allocation in steady state is the returned
/// value (reassembly happens in a pooled per-thread scratch buffer).
pub fn decode_value(shards: &[Shard], n: usize, k: usize) -> Result<Vec<u8>, CodecError> {
    let rs = ReedSolomon::cached(n, k)?;
    let pairs: Vec<(usize, &[u8])> = shards.iter().map(|s| (s.index, &s.data[..])).collect();
    SCRATCH.with(|cell| {
        let mut joined = cell.borrow_mut();
        joined.clear();
        rs.decode_into(&pairs, &mut joined)?;
        if joined.len() < LEN_HEADER {
            return Err(CodecError::ShardLengthMismatch);
        }
        let mut len_bytes = [0u8; LEN_HEADER];
        len_bytes.copy_from_slice(&joined[..LEN_HEADER]);
        let value_len = u64::from_le_bytes(len_bytes) as usize;
        if joined.len() < LEN_HEADER + value_len {
            return Err(CodecError::ShardLengthMismatch);
        }
        let value = joined[LEN_HEADER..LEN_HEADER + value_len].to_vec();
        if joined.capacity() > MAX_POOLED_SCRATCH {
            *joined = Vec::new();
        }
        Ok(value)
    })
}

/// Pre-optimization [`encode_value`]: constructs the codec per call and materializes every
/// shard as its own `Vec<u8>`.
///
/// Kept (not as dead code — the perf harness runs it) so `perfbench` can measure the
/// baseline and the optimized path in the same binary. Combine with
/// [`crate::gf256::set_kernel`]`(`[`crate::gf256::Kernel::Scalar`]`)` to reproduce the
/// full pre-change configuration.
pub fn encode_value_reference(value: &[u8], n: usize, k: usize) -> Result<Vec<Shard>, CodecError> {
    let rs = ReedSolomon::new(n, k)?;
    let slen = shard_len(value.len(), k);
    let mut padded = Vec::with_capacity(slen * k);
    padded.extend_from_slice(&(value.len() as u64).to_le_bytes());
    padded.extend_from_slice(value);
    padded.resize(slen * k, 0);
    let data: Vec<Vec<u8>> = padded.chunks(slen).map(|c| c.to_vec()).collect();
    debug_assert_eq!(data.len(), k);
    let symbols = rs.encode(&data)?;
    Ok(symbols
        .into_iter()
        .enumerate()
        .map(|(i, d)| Shard::new(i, d))
        .collect())
}

/// Pre-optimization [`decode_value`]: constructs the codec per call (so every decode that
/// touches parity re-inverts the sub-matrix) and deep-copies each shard before decoding.
///
/// See [`encode_value_reference`] for why this is kept.
pub fn decode_value_reference(shards: &[Shard], n: usize, k: usize) -> Result<Vec<u8>, CodecError> {
    let rs = ReedSolomon::new(n, k)?;
    let pairs: Vec<(usize, Vec<u8>)> = shards
        .iter()
        .map(|s| (s.index, s.data.to_vec()))
        .collect();
    let data = rs.decode_data(&pairs)?;
    let mut joined = Vec::with_capacity(data.len() * data.first().map(|d| d.len()).unwrap_or(0));
    for d in &data {
        joined.extend_from_slice(d);
    }
    if joined.len() < LEN_HEADER {
        return Err(CodecError::ShardLengthMismatch);
    }
    let mut len_bytes = [0u8; LEN_HEADER];
    len_bytes.copy_from_slice(&joined[..LEN_HEADER]);
    let value_len = u64::from_le_bytes(len_bytes) as usize;
    if joined.len() < LEN_HEADER + value_len {
        return Err(CodecError::ShardLengthMismatch);
    }
    Ok(joined[LEN_HEADER..LEN_HEADER + value_len].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shard_len_covers_value_and_header() {
        assert_eq!(shard_len(0, 1), 8);
        assert_eq!(shard_len(1024, 1), 1032);
        assert_eq!(shard_len(1024, 3), 344); // ceil(1032/3)
        assert!(shard_len(1000, 4) * 4 >= 1008);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn shard_len_rejects_zero_k() {
        shard_len(10, 0);
    }

    #[test]
    fn round_trip_simple() {
        let value = b"the quick brown fox jumps over the lazy dog".to_vec();
        let shards = encode_value(&value, 5, 3).unwrap();
        assert_eq!(shards.len(), 5);
        let decoded = decode_value(&shards[1..4], 5, 3).unwrap();
        assert_eq!(decoded, value);
    }

    #[test]
    fn round_trip_with_parity_only() {
        let value = vec![0xABu8; 4096];
        let shards = encode_value(&value, 6, 2).unwrap();
        // Decode from the last two (parity) symbols only.
        let decoded = decode_value(&shards[4..6], 6, 2).unwrap();
        assert_eq!(decoded, value);
    }

    #[test]
    fn empty_value_round_trips() {
        let shards = encode_value(&[], 4, 2).unwrap();
        let decoded = decode_value(&shards[..2], 4, 2).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn insufficient_shards_fail() {
        let value = vec![1u8; 100];
        let shards = encode_value(&value, 5, 3).unwrap();
        assert!(matches!(
            decode_value(&shards[..2], 5, 3),
            Err(CodecError::NotEnoughShards { .. })
        ));
    }

    #[test]
    fn shard_sizes_are_uniform_and_expected() {
        let value = vec![7u8; 1000];
        let shards = encode_value(&value, 9, 4).unwrap();
        let expect = shard_len(1000, 4);
        for s in &shards {
            assert_eq!(s.len(), expect);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn shards_share_one_allocation() {
        // All n symbols are windows into one contiguous buffer: symbol i+1 starts exactly
        // slen bytes after symbol i.
        let value = vec![3u8; 500];
        let shards = encode_value(&value, 5, 3).unwrap();
        let slen = shard_len(500, 3);
        let base = shards[0].data.as_ptr();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.data.as_ptr() as usize, base as usize + i * slen);
        }
        // Cloning a shard is a refcount bump onto the same storage.
        let c = shards[2].clone();
        assert_eq!(c.data.as_ptr(), shards[2].data.as_ptr());
    }

    #[test]
    fn reference_paths_agree_with_fast_paths() {
        for &(n, k) in &[(5usize, 3usize), (4, 2), (8, 1), (6, 5)] {
            for len in [0usize, 1, 129, 2048] {
                let value: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
                let fast = encode_value(&value, n, k).unwrap();
                let slow = encode_value_reference(&value, n, k).unwrap();
                assert_eq!(fast, slow, "encode mismatch n={n} k={k} len={len}");
                let from_fast = decode_value(&fast[n - k..], n, k).unwrap();
                let from_slow = decode_value_reference(&fast[n - k..], n, k).unwrap();
                assert_eq!(from_fast, value);
                assert_eq!(from_slow, value);
            }
        }
    }

    /// FNV-1a 64 over all shard bytes concatenated in index order.
    fn fingerprint(shards: &[Shard]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for s in shards {
            for &b in &s.data[..] {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    fn filler(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 31 + 7) % 256) as u8).collect()
    }

    #[test]
    fn golden_encode_fingerprints_unchanged() {
        // Fingerprints recorded from the pre-optimization implementation (per-call codec,
        // scalar GF kernels). Any codeword-level behavior change — generator matrix, header
        // layout, padding, shard order — shows up here.
        #[rustfmt::skip]
        const GOLDEN: &[((usize, usize), usize, u64)] = &[
            ((5, 3), 0, 0x2eb09ce4c4320587), ((5, 3), 1, 0x6b74dc347a360840),
            ((5, 3), 317, 0xc36720c3d5ce2cc1), ((5, 3), 4096, 0x6c6c5a6fc40a5c91),
            ((5, 3), 100000, 0xd4a921e996a080cf),
            ((4, 2), 0, 0x88201fb960ff6465), ((4, 2), 1, 0x290bd10689fa403d),
            ((4, 2), 317, 0x4b4c9852f1ca573d), ((4, 2), 4096, 0x48d6091cb4b7c915),
            ((4, 2), 100000, 0x4bd06e5805364ea5),
            ((6, 4), 0, 0x5467b0da1d106495), ((6, 4), 1, 0xc50d47f2ac150d46),
            ((6, 4), 317, 0x3c903451bfcaf661), ((6, 4), 4096, 0xd0b4648496eddafd),
            ((6, 4), 100000, 0xecbe56d6b519f45d),
            ((9, 6), 0, 0x77e875b1c7b6a32d), ((9, 6), 1, 0x2bb36ccd4d0c6edd),
            ((9, 6), 317, 0x14892a0ceb3a816e), ((9, 6), 4096, 0x368d21b0802bbedf),
            ((9, 6), 100000, 0x6cc5830aff6329b2),
            ((8, 1), 0, 0xb9b23f3a46fd0825), ((8, 1), 1, 0x4b2fb740e63e0545),
            ((8, 1), 317, 0x23069e16a554573d), ((8, 1), 4096, 0xa22d7bbd8e303025),
            ((8, 1), 100000, 0xf56d22c3e45aac35),
        ];
        for &((n, k), len, want) in GOLDEN {
            let value = filler(len);
            let fast = fingerprint(&encode_value(&value, n, k).unwrap());
            assert_eq!(fast, want, "fast encode fingerprint n={n} k={k} len={len}");
            let slow = fingerprint(&encode_value_reference(&value, n, k).unwrap());
            assert_eq!(slow, want, "reference encode fingerprint n={n} k={k} len={len}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn arbitrary_values_round_trip(
            value in proptest::collection::vec(any::<u8>(), 0..2000),
            k in 1usize..6,
            extra in 2usize..5,
            pick_seed: u64,
        ) {
            let n = k + extra;
            let shards = encode_value(&value, n, k).unwrap();
            // Deterministically pick k distinct indices based on pick_seed.
            let mut indices: Vec<usize> = (0..n).collect();
            let mut s = pick_seed;
            for i in (1..indices.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                indices.swap(i, (s as usize) % (i + 1));
            }
            let chosen: Vec<Shard> = indices[..k].iter().map(|&i| shards[i].clone()).collect();
            let decoded = decode_value(&chosen, n, k).unwrap();
            prop_assert_eq!(decoded, value);
        }
    }
}
