//! Conversion between application values and CAS codeword symbols.
//!
//! A value of `L` bytes is split into `k` data shards of `ceil((L + 8) / k)` bytes (an
//! 8-byte little-endian length header is prepended so decoding can strip the padding), then
//! encoded into `n` codeword symbols with [`ReedSolomon`]. Each symbol is tagged with its
//! index so that the decoder can invert the right rows of the generator matrix regardless of
//! which `k` data centers respond.

use crate::codec::{CodecError, ReedSolomon};

/// One codeword symbol together with its index in the codeword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Index of this symbol (0-based; equals the position of the hosting DC in the
    /// configuration's placement list).
    pub index: usize,
    /// Symbol bytes.
    pub data: Vec<u8>,
}

impl Shard {
    /// Creates a shard.
    pub fn new(index: usize, data: Vec<u8>) -> Self {
        Shard { index, data }
    }

    /// Size of the symbol in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the symbol carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

const LEN_HEADER: usize = 8;

/// Size in bytes of each codeword symbol for a value of `value_len` bytes under an
/// `(_, k)` code. This is what the cost model charges per symbol transfer (`o/k` in the
/// paper, plus the negligible 8-byte header).
pub fn shard_len(value_len: usize, k: usize) -> usize {
    assert!(k > 0, "k must be positive");
    (value_len + LEN_HEADER).div_ceil(k)
}

/// Encodes `value` into `n` codeword symbols from which any `k` reconstruct the value.
pub fn encode_value(value: &[u8], n: usize, k: usize) -> Result<Vec<Shard>, CodecError> {
    let rs = ReedSolomon::new(n, k)?;
    let slen = shard_len(value.len(), k);
    let mut padded = Vec::with_capacity(slen * k);
    padded.extend_from_slice(&(value.len() as u64).to_le_bytes());
    padded.extend_from_slice(value);
    padded.resize(slen * k, 0);
    let data: Vec<Vec<u8>> = padded.chunks(slen).map(|c| c.to_vec()).collect();
    debug_assert_eq!(data.len(), k);
    let symbols = rs.encode(&data)?;
    Ok(symbols
        .into_iter()
        .enumerate()
        .map(|(i, d)| Shard::new(i, d))
        .collect())
}

/// Reconstructs the original value from any `k` distinct shards of an `(n, k)` codeword.
pub fn decode_value(shards: &[Shard], n: usize, k: usize) -> Result<Vec<u8>, CodecError> {
    let rs = ReedSolomon::new(n, k)?;
    let pairs: Vec<(usize, Vec<u8>)> = shards.iter().map(|s| (s.index, s.data.clone())).collect();
    let data = rs.decode_data(&pairs)?;
    let mut joined = Vec::with_capacity(data.len() * data.first().map(|d| d.len()).unwrap_or(0));
    for d in &data {
        joined.extend_from_slice(d);
    }
    if joined.len() < LEN_HEADER {
        return Err(CodecError::ShardLengthMismatch);
    }
    let mut len_bytes = [0u8; LEN_HEADER];
    len_bytes.copy_from_slice(&joined[..LEN_HEADER]);
    let value_len = u64::from_le_bytes(len_bytes) as usize;
    if joined.len() < LEN_HEADER + value_len {
        return Err(CodecError::ShardLengthMismatch);
    }
    Ok(joined[LEN_HEADER..LEN_HEADER + value_len].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shard_len_covers_value_and_header() {
        assert_eq!(shard_len(0, 1), 8);
        assert_eq!(shard_len(1024, 1), 1032);
        assert_eq!(shard_len(1024, 3), 344); // ceil(1032/3)
        assert!(shard_len(1000, 4) * 4 >= 1008);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn shard_len_rejects_zero_k() {
        shard_len(10, 0);
    }

    #[test]
    fn round_trip_simple() {
        let value = b"the quick brown fox jumps over the lazy dog".to_vec();
        let shards = encode_value(&value, 5, 3).unwrap();
        assert_eq!(shards.len(), 5);
        let decoded = decode_value(&shards[1..4], 5, 3).unwrap();
        assert_eq!(decoded, value);
    }

    #[test]
    fn round_trip_with_parity_only() {
        let value = vec![0xABu8; 4096];
        let shards = encode_value(&value, 6, 2).unwrap();
        // Decode from the last two (parity) symbols only.
        let decoded = decode_value(&shards[4..6], 6, 2).unwrap();
        assert_eq!(decoded, value);
    }

    #[test]
    fn empty_value_round_trips() {
        let shards = encode_value(&[], 4, 2).unwrap();
        let decoded = decode_value(&shards[..2], 4, 2).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn insufficient_shards_fail() {
        let value = vec![1u8; 100];
        let shards = encode_value(&value, 5, 3).unwrap();
        assert!(matches!(
            decode_value(&shards[..2], 5, 3),
            Err(CodecError::NotEnoughShards { .. })
        ));
    }

    #[test]
    fn shard_sizes_are_uniform_and_expected() {
        let value = vec![7u8; 1000];
        let shards = encode_value(&value, 9, 4).unwrap();
        let expect = shard_len(1000, 4);
        for s in &shards {
            assert_eq!(s.len(), expect);
            assert!(!s.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn arbitrary_values_round_trip(
            value in proptest::collection::vec(any::<u8>(), 0..2000),
            k in 1usize..6,
            extra in 2usize..5,
            pick_seed: u64,
        ) {
            let n = k + extra;
            let shards = encode_value(&value, n, k).unwrap();
            // Deterministically pick k distinct indices based on pick_seed.
            let mut indices: Vec<usize> = (0..n).collect();
            let mut s = pick_seed;
            for i in (1..indices.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                indices.swap(i, (s as usize) % (i + 1));
            }
            let chosen: Vec<Shard> = indices[..k].iter().map(|&i| shards[i].clone()).collect();
            let decoded = decode_value(&chosen, n, k).unwrap();
            prop_assert_eq!(decoded, value);
        }
    }
}
