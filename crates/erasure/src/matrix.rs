//! Dense matrices over GF(2^8) and the operations Reed–Solomon needs: multiplication,
//! Gauss–Jordan inversion and Vandermonde construction.

use crate::gf256;

/// A row-major dense matrix over GF(2^8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Builds a matrix from nested vectors (rows of equal length).
    pub fn from_rows(rows: Vec<Vec<u8>>) -> Self {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// `rows x cols` Vandermonde matrix with entry `(i, j) = i^j` (evaluation points
    /// `0, 1, 2, ...`). Any `cols` rows with distinct evaluation points are linearly
    /// independent, which is the property the RS construction relies on.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, gf256::pow(i as u8, j as u32));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matrix multiply");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for kk in 0..self.cols {
                let a = self.get(i, kk);
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = gf256::mul(a, rhs.get(kk, j));
                    out.set(i, j, gf256::add(out.get(i, j), prod));
                }
            }
        }
        out
    }

    /// Returns a new matrix containing the listed rows of `self`, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (dst, &src) in rows.iter().enumerate() {
            for c in 0..self.cols {
                out.set(dst, c, self.get(src, c));
            }
        }
        out
    }

    /// Gauss–Jordan inversion. Returns `None` if the matrix is singular or non-square.
    pub fn inverse(&self) -> Option<Matrix> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = a.get(col, col);
            let pinv = gf256::inv(p);
            a.scale_row(col, pinv);
            inv.scale_row(col, pinv);
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor == 0 {
                    continue;
                }
                a.add_scaled_row(r, col, factor);
                inv.add_scaled_row(r, col, factor);
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for c in 0..self.cols {
            let t = self.get(r1, c);
            self.set(r1, c, self.get(r2, c));
            self.set(r2, c, t);
        }
    }

    fn scale_row(&mut self, r: usize, factor: u8) {
        let start = r * self.cols;
        gf256::mul_slice(&mut self.data[start..start + self.cols], factor);
    }

    /// `row[dst] ^= factor * row[src]`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, factor: u8) {
        for c in 0..self.cols {
            let v = gf256::add(self.get(dst, c), gf256::mul(factor, self.get(src, c)));
            self.set(dst, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_times_anything_is_identity_mapping() {
        let m = Matrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
        let i = Matrix::identity(3);
        assert_eq!(i.mul(&m), m);
        assert_eq!(m.mul(&i), m);
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let i = Matrix::identity(4);
        assert_eq!(i.inverse().unwrap(), i);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        // Two identical rows.
        let m = Matrix::from_rows(vec![vec![1, 2], vec![1, 2]]);
        assert!(m.inverse().is_none());
        // Non-square.
        let m = Matrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn vandermonde_square_submatrices_are_invertible() {
        let v = Matrix::vandermonde(8, 4);
        // Any 4 distinct rows must form an invertible matrix.
        let m = v.select_rows(&[0, 2, 5, 7]);
        let inv = m.inverse().expect("vandermonde rows independent");
        assert_eq!(m.mul(&inv), Matrix::identity(4));
    }

    #[test]
    fn select_rows_preserves_content() {
        let v = Matrix::vandermonde(5, 3);
        let s = v.select_rows(&[4, 1]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), v.row(4));
        assert_eq!(s.row(1), v.row(1));
    }

    fn arbitrary_invertible(n: usize, seed: u64) -> Matrix {
        // Build a random-ish matrix from a seed and keep perturbing until invertible.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        loop {
            let mut m = Matrix::zero(n, n);
            for r in 0..n {
                for c in 0..n {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    m.set(r, c, (state >> 33) as u8);
                }
            }
            if m.inverse().is_some() {
                return m;
            }
        }
    }

    proptest! {
        #[test]
        fn inverse_round_trip(n in 1usize..6, seed: u64) {
            let m = arbitrary_invertible(n, seed);
            let inv = m.inverse().unwrap();
            prop_assert_eq!(m.mul(&inv), Matrix::identity(n));
            prop_assert_eq!(inv.mul(&m), Matrix::identity(n));
        }

        #[test]
        fn matrix_multiply_is_associative(seed: u64) {
            let a = arbitrary_invertible(3, seed);
            let b = arbitrary_invertible(3, seed.wrapping_add(1));
            let c = arbitrary_invertible(3, seed.wrapping_add(2));
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }
    }
}
