//! Arithmetic in GF(2^8).
//!
//! Elements are bytes; addition is XOR; multiplication is polynomial multiplication modulo
//! the primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`). Multiplication and
//! division go through log/antilog tables built once at start-up, which is the standard
//! technique in storage erasure coders.

/// The primitive polynomial used to construct the field (without the leading x^8 term the
/// low byte is 0x1D).
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Generator element whose powers enumerate all non-zero field elements.
pub const GENERATOR: u8 = 0x02;

/// Precomputed exp/log tables.
struct Tables {
    /// `exp[i] = GENERATOR^i` for `i in 0..510` (doubled to avoid a modulo in `mul`).
    exp: [u8; 512],
    /// `log[x]` = discrete log of `x` base GENERATOR; `log[0]` is unused.
    log: [u16; 256],
}

static TABLES: std::sync::OnceLock<Tables> = std::sync::OnceLock::new();

fn tables() -> &'static Tables {
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        for i in 255..512usize {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Field addition (XOR). Subtraction is identical.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    let la = t.log[a as usize] as usize;
    let lb = t.log[b as usize] as usize;
    t.exp[la + lb]
}

/// Field division; panics on division by zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    let la = t.log[a as usize] as usize;
    let lb = t.log[b as usize] as usize;
    t.exp[la + 255 - lb]
}

/// Multiplicative inverse; panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    div(1, a)
}

/// Exponentiation `a^p` in the field.
pub fn pow(a: u8, mut p: u32) -> u8 {
    if a == 0 {
        return if p == 0 { 1 } else { 0 };
    }
    let t = tables();
    let la = t.log[a as usize] as u64;
    p %= 255;
    let idx = (la * p as u64) % 255;
    t.exp[idx as usize]
}

/// Multiply-accumulate over byte slices: `dst[i] ^= c * src[i]`.
///
/// This is the inner loop of encoding and decoding; it is written so the compiler can
/// auto-vectorize the XOR when `c == 1`.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d ^= *s;
        }
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        if *s != 0 {
            *d ^= t.exp[lc + t.log[*s as usize] as usize];
        }
    }
}

/// Multiply a slice in place by a constant: `dst[i] = c * dst[i]`.
pub fn mul_slice(dst: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for d in dst.iter_mut() {
        if *d != 0 {
            *d = t.exp[lc + t.log[*d as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_multiplication_table_spot_checks() {
        assert_eq!(mul(0, 17), 0);
        assert_eq!(mul(1, 17), 17);
        assert_eq!(mul(2, 2), 4);
        // 0x80 * 2 wraps through the primitive polynomial: 0x100 ^ 0x11D = 0x1D.
        assert_eq!(mul(0x80, 2), 0x1D);
    }

    #[test]
    fn inverse_and_division() {
        for a in 1..=255u8 {
            let ia = inv(a);
            assert_eq!(mul(a, ia), 1, "a={a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = div(3, 0);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 7, 0x53, 0xFF] {
            let mut acc = 1u8;
            for p in 0..20u32 {
                assert_eq!(pow(a, p), acc, "a={a} p={p}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // GENERATOR^i must enumerate all 255 non-zero elements before repeating.
        let mut seen = std::collections::HashSet::new();
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(seen.insert(x));
            x = mul(x, GENERATOR);
        }
        assert_eq!(x, 1);
        assert_eq!(seen.len(), 255);
    }

    #[test]
    fn mul_acc_slice_matches_scalar() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut dst = vec![0xAAu8; 256];
            let mut expect = dst.clone();
            mul_acc_slice(&mut dst, &src, c);
            for (e, s) in expect.iter_mut().zip(src.iter()) {
                *e = add(*e, mul(c, *s));
            }
            assert_eq!(dst, expect, "c={c}");
        }
    }

    #[test]
    fn mul_slice_matches_scalar() {
        let mut v: Vec<u8> = (0..=255u8).collect();
        let orig = v.clone();
        mul_slice(&mut v, 0x37);
        for (o, n) in orig.iter().zip(v.iter()) {
            assert_eq!(*n, mul(*o, 0x37));
        }
        let mut z = orig.clone();
        mul_slice(&mut z, 0);
        assert!(z.iter().all(|b| *b == 0));
    }

    proptest! {
        #[test]
        fn field_axioms(a: u8, b: u8, c: u8) {
            // Commutativity.
            prop_assert_eq!(mul(a, b), mul(b, a));
            prop_assert_eq!(add(a, b), add(b, a));
            // Associativity.
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
            prop_assert_eq!(add(add(a, b), c), add(a, add(b, c)));
            // Distributivity.
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
            // Identities.
            prop_assert_eq!(mul(a, 1), a);
            prop_assert_eq!(add(a, 0), a);
            // Additive inverse (characteristic 2).
            prop_assert_eq!(add(a, a), 0);
        }

        #[test]
        fn division_is_inverse_of_multiplication(a: u8, b in 1u8..=255) {
            prop_assert_eq!(div(mul(a, b), b), a);
        }
    }
}
