//! Arithmetic in GF(2^8).
//!
//! Elements are bytes; addition is XOR; multiplication is polynomial multiplication modulo
//! the primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`). Scalar multiplication and
//! division go through log/antilog tables built once at start-up, which is the standard
//! technique in storage erasure coders.
//!
//! # Slice kernels
//!
//! The encode/decode hot path is [`mul_acc_slice`] / [`mul_slice`]: multiply every byte of a
//! whole shard by one coefficient `c`. Three kernel tiers implement it, selected once at
//! runtime (overridable with `LEGOSTORE_GF_KERNEL=scalar|split|simd` for benchmarking):
//!
//! * **scalar** — the original byte-at-a-time log/exp loop, kept as the reference oracle
//!   ([`mul_acc_slice_scalar`], [`mul_slice_scalar`]); every other kernel is proptested to
//!   be byte-identical to it.
//! * **split** — the portable split-table kernel: two 16-entry tables per coefficient
//!   (`lo[x] = c·x` for the low nibble, `hi[x] = c·(x«4)` for the high nibble, so
//!   `c·s = lo[s & 0xF] ⊕ hi[s » 4]`), applied over 8-byte unrolled chunks. All 256
//!   coefficient table pairs are precomputed once into an 8 KiB static.
//! * **simd** — the same split-table algorithm vectorized with `pshufb` 16-lane table
//!   lookups (SSSE3: 16 B/iteration, AVX2: 32 B/iteration), detected at runtime on
//!   x86_64. This is the kernel that makes coding memory-bound rather than compute-bound
//!   (~20x the scalar loop on AVX2 hardware).

use std::sync::atomic::{AtomicU8, Ordering};

/// The primitive polynomial used to construct the field (without the leading x^8 term the
/// low byte is 0x1D).
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Generator element whose powers enumerate all non-zero field elements.
pub const GENERATOR: u8 = 0x02;

/// Precomputed exp/log tables.
struct Tables {
    /// `exp[i] = GENERATOR^i` for `i in 0..510` (doubled to avoid a modulo in `mul`).
    exp: [u8; 512],
    /// `log[x]` = discrete log of `x` base GENERATOR; `log[0]` is unused.
    log: [u16; 256],
}

static TABLES: std::sync::OnceLock<Tables> = std::sync::OnceLock::new();

fn tables() -> &'static Tables {
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        for i in 255..512usize {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Per-coefficient split tables: `SPLIT[c][x] = c·x` for `x in 0..16` and
/// `SPLIT[c][16 + x] = c·(x << 4)`, so `c·s = SPLIT[c][s & 0xF] ⊕ SPLIT[c][16 + (s >> 4)]`.
/// 256 coefficients × 32 bytes = 8 KiB, built once.
static SPLIT: std::sync::OnceLock<Box<[[u8; 32]; 256]>> = std::sync::OnceLock::new();

fn split_tables() -> &'static [[u8; 32]; 256] {
    SPLIT.get_or_init(|| {
        let mut t = Box::new([[0u8; 32]; 256]);
        for (c, row) in t.iter_mut().enumerate() {
            for x in 0..16u8 {
                row[x as usize] = mul(c as u8, x);
                row[16 + x as usize] = mul(c as u8, x << 4);
            }
        }
        t
    })
}

/// Field addition (XOR). Subtraction is identical.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    let la = t.log[a as usize] as usize;
    let lb = t.log[b as usize] as usize;
    t.exp[la + lb]
}

/// Field division; panics on division by zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    let la = t.log[a as usize] as usize;
    let lb = t.log[b as usize] as usize;
    t.exp[la + 255 - lb]
}

/// Multiplicative inverse; panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    div(1, a)
}

/// Exponentiation `a^p` in the field.
pub fn pow(a: u8, mut p: u32) -> u8 {
    if a == 0 {
        return if p == 0 { 1 } else { 0 };
    }
    let t = tables();
    let la = t.log[a as usize] as u64;
    p %= 255;
    let idx = (la * p as u64) % 255;
    t.exp[idx as usize]
}

// ---------------------------------------------------------------------------
// Kernel selection
// ---------------------------------------------------------------------------

/// Which slice-kernel tier to run. `Simd` falls back to `Split` per call when the CPU
/// lacks SSSE3 (the detection result is cached inside the SIMD dispatcher).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Byte-at-a-time log/exp loop (the pre-optimization implementation; reference oracle).
    Scalar,
    /// Portable split-table kernel over unrolled 8-byte chunks.
    Split,
    /// Runtime-detected `pshufb` split-table kernel (AVX2 or SSSE3), split-table fallback.
    Simd,
}

const KERNEL_UNSET: u8 = 0;
const KERNEL_SCALAR: u8 = 1;
const KERNEL_SPLIT: u8 = 2;
const KERNEL_SIMD: u8 = 3;

static KERNEL: AtomicU8 = AtomicU8::new(KERNEL_UNSET);

/// Forces a kernel tier (benchmark harnesses compare tiers; tests pin the oracle).
pub fn set_kernel(k: Kernel) {
    let v = match k {
        Kernel::Scalar => KERNEL_SCALAR,
        Kernel::Split => KERNEL_SPLIT,
        Kernel::Simd => KERNEL_SIMD,
    };
    KERNEL.store(v, Ordering::Relaxed);
}

/// The kernel tier currently in effect (resolving the default / `LEGOSTORE_GF_KERNEL` on
/// first use).
pub fn active_kernel() -> Kernel {
    match kernel_tag() {
        KERNEL_SCALAR => Kernel::Scalar,
        KERNEL_SPLIT => Kernel::Split,
        _ => Kernel::Simd,
    }
}

#[inline]
fn kernel_tag() -> u8 {
    let k = KERNEL.load(Ordering::Relaxed);
    if k != KERNEL_UNSET {
        return k;
    }
    let resolved = match std::env::var("LEGOSTORE_GF_KERNEL").as_deref() {
        Ok("scalar") => KERNEL_SCALAR,
        Ok("split") => KERNEL_SPLIT,
        _ => KERNEL_SIMD,
    };
    KERNEL.store(resolved, Ordering::Relaxed);
    resolved
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (the pre-optimization implementation)
// ---------------------------------------------------------------------------

/// Reference `dst[i] ^= c * src[i]`, byte-at-a-time through the log/exp tables.
///
/// This is the original implementation, kept as the behavioral oracle for the fast
/// kernels (see the proptests in this module) and as the `baseline` mode of `perfbench`.
pub fn mul_acc_slice_scalar(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d ^= *s;
        }
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        if *s != 0 {
            *d ^= t.exp[lc + t.log[*s as usize] as usize];
        }
    }
}

/// Reference `dst[i] = c * dst[i]`, byte-at-a-time through the log/exp tables.
pub fn mul_slice_scalar(dst: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for d in dst.iter_mut() {
        if *d != 0 {
            *d = t.exp[lc + t.log[*d as usize] as usize];
        }
    }
}

// ---------------------------------------------------------------------------
// Portable split-table kernels
// ---------------------------------------------------------------------------

/// XOR `src` into `dst` over 8-byte unrolled chunks (the `c == 1` fast path; the unroll
/// lets LLVM lift it to full-width vector XORs).
fn xor_slice(dst: &mut [u8], src: &[u8]) {
    let mut dc = dst.chunks_exact_mut(8);
    let mut sc = src.chunks_exact(8);
    for (d, s) in (&mut dc).zip(&mut sc) {
        for i in 0..8 {
            d[i] ^= s[i];
        }
    }
    for (d, s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d ^= *s;
    }
}

fn mul_acc_slice_split(dst: &mut [u8], src: &[u8], c: u8) {
    let tbl = &split_tables()[c as usize];
    let mut dc = dst.chunks_exact_mut(8);
    let mut sc = src.chunks_exact(8);
    for (d, s) in (&mut dc).zip(&mut sc) {
        for i in 0..8 {
            d[i] ^= tbl[(s[i] & 0x0F) as usize] ^ tbl[16 + (s[i] >> 4) as usize];
        }
    }
    for (d, s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d ^= tbl[(*s & 0x0F) as usize] ^ tbl[16 + (*s >> 4) as usize];
    }
}

fn mul_slice_split(dst: &mut [u8], c: u8) {
    let tbl = &split_tables()[c as usize];
    let mut dc = dst.chunks_exact_mut(8);
    for d in &mut dc {
        for i in 0..8 {
            d[i] = tbl[(d[i] & 0x0F) as usize] ^ tbl[16 + (d[i] >> 4) as usize];
        }
    }
    for d in dc.into_remainder().iter_mut() {
        *d = tbl[(*d & 0x0F) as usize] ^ tbl[16 + (*d >> 4) as usize];
    }
}

// ---------------------------------------------------------------------------
// SIMD split-table kernels (x86_64 pshufb; runtime-detected)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod simd {
    //! `pshufb`-based split-table kernels. `_mm_shuffle_epi8` performs sixteen (AVX2:
    //! 2×16) parallel lookups into a 16-entry byte table per instruction — exactly the
    //! low/high-nibble split-table algorithm of the portable kernel, 16/32 bytes at a
    //! time. Safety: every function is gated on the corresponding CPUID feature via
    //! `is_x86_feature_detected!`, and all memory access goes through unaligned
    //! load/store intrinsics on in-bounds offsets (`n` is rounded down to the vector
    //! width; the tail is handled by the caller's portable path).

    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    const LEVEL_UNKNOWN: u8 = 0;
    const LEVEL_NONE: u8 = 1;
    const LEVEL_SSSE3: u8 = 2;
    const LEVEL_AVX2: u8 = 3;

    static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNKNOWN);

    /// Detected SIMD level, cached after the first query.
    pub(super) fn level() -> u8 {
        let l = LEVEL.load(Ordering::Relaxed);
        if l != LEVEL_UNKNOWN {
            return l;
        }
        let detected = if is_x86_feature_detected!("avx2") {
            LEVEL_AVX2
        } else if is_x86_feature_detected!("ssse3") {
            LEVEL_SSSE3
        } else {
            LEVEL_NONE
        };
        LEVEL.store(detected, Ordering::Relaxed);
        detected
    }

    pub(super) fn available() -> bool {
        level() >= LEVEL_SSSE3
    }

    /// `dst[i] ^= c·src[i]` for the longest prefix divisible by the vector width;
    /// returns the number of bytes processed.
    pub(super) fn mul_acc_prefix(dst: &mut [u8], src: &[u8], tbl: &[u8; 32]) -> usize {
        match level() {
            LEVEL_AVX2 => unsafe { mul_acc_avx2(dst, src, tbl) },
            LEVEL_SSSE3 => unsafe { mul_acc_ssse3(dst, src, tbl) },
            _ => 0,
        }
    }

    /// `dst[i] = c·dst[i]` for the longest prefix divisible by the vector width;
    /// returns the number of bytes processed.
    pub(super) fn mul_prefix(dst: &mut [u8], tbl: &[u8; 32]) -> usize {
        match level() {
            LEVEL_AVX2 => unsafe { mul_avx2(dst, tbl) },
            LEVEL_SSSE3 => unsafe { mul_ssse3(dst, tbl) },
            _ => 0,
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mul_acc_avx2(dst: &mut [u8], src: &[u8], tbl: &[u8; 32]) -> usize {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(tbl.as_ptr() as *const __m128i));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(tbl.as_ptr().add(16) as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let n = dst.len().min(src.len()) / 32 * 32;
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
            let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
            let r = _mm256_xor_si256(d, _mm256_xor_si256(l, h));
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, r);
            i += 32;
        }
        n
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], tbl: &[u8; 32]) -> usize {
        let lo = _mm_loadu_si128(tbl.as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(tbl.as_ptr().add(16) as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = dst.len().min(src.len()) / 16 * 16;
        let mut i = 0;
        while i < n {
            let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            let l = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
            let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
            let r = _mm_xor_si128(d, _mm_xor_si128(l, h));
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, r);
            i += 16;
        }
        n
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mul_avx2(dst: &mut [u8], tbl: &[u8; 32]) -> usize {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(tbl.as_ptr() as *const __m128i));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(tbl.as_ptr().add(16) as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let n = dst.len() / 32 * 32;
        let mut i = 0;
        while i < n {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(d, mask));
            let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(d, 4), mask));
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, _mm256_xor_si256(l, h));
            i += 32;
        }
        n
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn mul_ssse3(dst: &mut [u8], tbl: &[u8; 32]) -> usize {
        let lo = _mm_loadu_si128(tbl.as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(tbl.as_ptr().add(16) as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = dst.len() / 16 * 16;
        let mut i = 0;
        while i < n {
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            let l = _mm_shuffle_epi8(lo, _mm_and_si128(d, mask));
            let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(d, 4), mask));
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, _mm_xor_si128(l, h));
            i += 16;
        }
        n
    }
}

// ---------------------------------------------------------------------------
// Public dispatching kernels
// ---------------------------------------------------------------------------

/// Multiply-accumulate over byte slices: `dst[i] ^= c * src[i]`.
///
/// This is the inner loop of encoding and decoding. Dispatches to the fastest available
/// kernel tier (see the module docs); byte-identical to [`mul_acc_slice_scalar`].
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(dst, src);
        return;
    }
    match kernel_tag() {
        KERNEL_SCALAR => mul_acc_slice_scalar(dst, src, c),
        KERNEL_SPLIT => mul_acc_slice_split(dst, src, c),
        _ => {
            #[cfg(target_arch = "x86_64")]
            {
                if simd::available() {
                    let tbl = &split_tables()[c as usize];
                    let done = simd::mul_acc_prefix(dst, src, tbl);
                    if done < dst.len() {
                        mul_acc_slice_split(&mut dst[done..], &src[done..], c);
                    }
                    return;
                }
            }
            mul_acc_slice_split(dst, src, c);
        }
    }
}

/// Multiply a slice in place by a constant: `dst[i] = c * dst[i]`.
///
/// Dispatches like [`mul_acc_slice`]; byte-identical to [`mul_slice_scalar`].
pub fn mul_slice(dst: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    match kernel_tag() {
        KERNEL_SCALAR => mul_slice_scalar(dst, c),
        KERNEL_SPLIT => mul_slice_split(dst, c),
        _ => {
            #[cfg(target_arch = "x86_64")]
            {
                if simd::available() {
                    let tbl = &split_tables()[c as usize];
                    let done = simd::mul_prefix(dst, tbl);
                    if done < dst.len() {
                        mul_slice_split(&mut dst[done..], c);
                    }
                    return;
                }
            }
            mul_slice_split(dst, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_multiplication_table_spot_checks() {
        assert_eq!(mul(0, 17), 0);
        assert_eq!(mul(1, 17), 17);
        assert_eq!(mul(2, 2), 4);
        // 0x80 * 2 wraps through the primitive polynomial: 0x100 ^ 0x11D = 0x1D.
        assert_eq!(mul(0x80, 2), 0x1D);
    }

    #[test]
    fn inverse_and_division() {
        for a in 1..=255u8 {
            let ia = inv(a);
            assert_eq!(mul(a, ia), 1, "a={a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = div(3, 0);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 7, 0x53, 0xFF] {
            let mut acc = 1u8;
            for p in 0..20u32 {
                assert_eq!(pow(a, p), acc, "a={a} p={p}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // GENERATOR^i must enumerate all 255 non-zero elements before repeating.
        let mut seen = std::collections::HashSet::new();
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(seen.insert(x));
            x = mul(x, GENERATOR);
        }
        assert_eq!(x, 1);
        assert_eq!(seen.len(), 255);
    }

    #[test]
    fn mul_acc_slice_matches_scalar() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut dst = vec![0xAAu8; 256];
            let mut expect = dst.clone();
            mul_acc_slice(&mut dst, &src, c);
            for (e, s) in expect.iter_mut().zip(src.iter()) {
                *e = add(*e, mul(c, *s));
            }
            assert_eq!(dst, expect, "c={c}");
        }
    }

    #[test]
    fn mul_slice_matches_scalar() {
        let mut v: Vec<u8> = (0..=255u8).collect();
        let orig = v.clone();
        mul_slice(&mut v, 0x37);
        for (o, n) in orig.iter().zip(v.iter()) {
            assert_eq!(*n, mul(*o, 0x37));
        }
        let mut z = orig.clone();
        mul_slice(&mut z, 0);
        assert!(z.iter().all(|b| *b == 0));
    }

    /// Every coefficient, on a buffer long enough to exercise the vector body and the
    /// scalar tail of every kernel tier.
    #[test]
    fn all_coefficients_all_tiers_match_the_oracle() {
        let src: Vec<u8> = (0..997).map(|i| (i * 131 + 17) as u8).collect();
        let base: Vec<u8> = (0..997).map(|i| (i * 37 + 5) as u8).collect();
        for c in 0..=255u8 {
            let mut expect = base.clone();
            mul_acc_slice_scalar(&mut expect, &src, c);
            let mut split = base.clone();
            mul_acc_slice_split(&mut split, &src, c);
            assert_eq!(split, expect, "split mul_acc c={c}");
            let mut dispatched = base.clone();
            mul_acc_slice(&mut dispatched, &src, c);
            assert_eq!(dispatched, expect, "dispatched mul_acc c={c}");

            let mut expect_m = base.clone();
            mul_slice_scalar(&mut expect_m, c);
            let mut split_m = base.clone();
            mul_slice_split(&mut split_m, c);
            assert_eq!(split_m, expect_m, "split mul c={c}");
            let mut dispatched_m = base.clone();
            mul_slice(&mut dispatched_m, c);
            assert_eq!(dispatched_m, expect_m, "dispatched mul c={c}");
        }
    }

    proptest! {
        #[test]
        fn field_axioms(a: u8, b: u8, c: u8) {
            // Commutativity.
            prop_assert_eq!(mul(a, b), mul(b, a));
            prop_assert_eq!(add(a, b), add(b, a));
            // Associativity.
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
            prop_assert_eq!(add(add(a, b), c), add(a, add(b, c)));
            // Distributivity.
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
            // Identities.
            prop_assert_eq!(mul(a, 1), a);
            prop_assert_eq!(add(a, 0), a);
            // Additive inverse (characteristic 2).
            prop_assert_eq!(add(a, a), 0);
        }

        #[test]
        fn division_is_inverse_of_multiplication(a: u8, b in 1u8..=255) {
            prop_assert_eq!(div(mul(a, b), b), a);
        }

        /// The fast kernels are byte-identical to the scalar oracle for arbitrary
        /// coefficients, odd lengths, and unaligned slices (the `offset` strips a prefix
        /// so the kernel sees a pointer off any natural alignment).
        #[test]
        fn kernels_match_oracle_on_arbitrary_slices(
            c: u8,
            offset in 0usize..17,
            src in proptest::collection::vec(any::<u8>(), 0..300),
            seed: u64,
        ) {
            let offset = offset.min(src.len());
            let src = &src[offset..];
            // Deterministic but arbitrary dst contents.
            let mut s = seed;
            let base: Vec<u8> = (0..src.len())
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (s >> 33) as u8
                })
                .collect();

            let mut expect = base.clone();
            mul_acc_slice_scalar(&mut expect, src, c);
            let mut split = base.clone();
            mul_acc_slice_split(&mut split, src, c);
            prop_assert_eq!(&split, &expect);
            let mut dispatched = base.clone();
            mul_acc_slice(&mut dispatched, src, c);
            prop_assert_eq!(&dispatched, &expect);

            let mut expect_m = base.clone();
            mul_slice_scalar(&mut expect_m, c);
            let mut split_m = base.clone();
            mul_slice_split(&mut split_m, c);
            prop_assert_eq!(&split_m, &expect_m);
            let mut dispatched_m = base;
            mul_slice(&mut dispatched_m, c);
            prop_assert_eq!(&dispatched_m, &expect_m);
        }
    }
}
