//! From-scratch Reed–Solomon erasure coding over GF(2^8).
//!
//! The CAS protocol stores, at each of `n` data centers, one *codeword symbol* of size
//! `ceil(|value| / k)` such that the original value can be reconstructed from any `k`
//! symbols. This is exactly an `(n, k)` maximum-distance-separable (MDS) code; the paper's
//! prototype uses liberasurecode's Reed–Solomon backend, which we re-implement here so that
//! the repository has no native or external coding dependency.
//!
//! Layout of the crate:
//!
//! * [`gf256`] — arithmetic in the finite field GF(2^8) with the polynomial `0x11D`
//!   (the field used by most storage RS implementations). Bulk multiply-accumulate runs
//!   through tiered kernels — scalar log/exp oracle, portable split-table, and
//!   runtime-detected SSSE3/AVX2 `pshufb` — selectable via [`gf256::set_kernel`] or the
//!   `LEGOSTORE_GF_KERNEL` environment variable.
//! * [`matrix`] — small dense matrices over GF(2^8) with Gauss–Jordan inversion.
//! * [`codec`] — the systematic Reed–Solomon encoder/decoder ([`ReedSolomon`]), with a
//!   process-wide `(n, k)` codec cache ([`ReedSolomon::cached`]) and per-codec memoized
//!   decode sub-matrix inverses.
//! * [`shares`] — conversion between application values and fixed-size shards, including
//!   the length header and padding handling ([`encode_value`], [`decode_value`]). Encoding
//!   produces all `n` symbols as zero-copy windows into one shared buffer; the
//!   pre-optimization paths survive as [`encode_value_reference`] /
//!   [`decode_value_reference`] for baseline measurement by the perf harness.

pub mod codec;
pub mod gf256;
pub mod matrix;
pub mod shares;

pub use codec::{CodecError, ReedSolomon};
pub use shares::{
    decode_value, decode_value_reference, encode_value, encode_value_reference, shard_len, Shard,
};
