//! From-scratch Reed–Solomon erasure coding over GF(2^8).
//!
//! The CAS protocol stores, at each of `n` data centers, one *codeword symbol* of size
//! `ceil(|value| / k)` such that the original value can be reconstructed from any `k`
//! symbols. This is exactly an `(n, k)` maximum-distance-separable (MDS) code; the paper's
//! prototype uses liberasurecode's Reed–Solomon backend, which we re-implement here so that
//! the repository has no native or external coding dependency.
//!
//! Layout of the crate:
//!
//! * [`gf256`] — arithmetic in the finite field GF(2^8) with the polynomial `0x11D`
//!   (the field used by most storage RS implementations), backed by log/antilog tables.
//! * [`matrix`] — small dense matrices over GF(2^8) with Gauss–Jordan inversion.
//! * [`codec`] — the systematic Reed–Solomon encoder/decoder ([`ReedSolomon`]).
//! * [`shares`] — conversion between application values and fixed-size shards, including
//!   the length header and padding handling ([`encode_value`], [`decode_value`]).

pub mod codec;
pub mod gf256;
pub mod matrix;
pub mod shares;

pub use codec::{CodecError, ReedSolomon};
pub use shares::{decode_value, encode_value, shard_len, Shard};
