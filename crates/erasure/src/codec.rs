//! Systematic `(n, k)` Reed–Solomon codec.
//!
//! The encoding matrix is `V · V_top^{-1}` where `V` is an `n x k` Vandermonde matrix with
//! distinct evaluation points; this makes the first `k` codeword symbols equal to the data
//! shards (systematic) while preserving the MDS property that *any* `k` symbols suffice to
//! reconstruct the data.

use crate::gf256;
use crate::matrix::Matrix;

/// Errors returned by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Invalid code parameters (`k == 0`, `n < k`, or `n > 255`).
    InvalidParameters { n: usize, k: usize },
    /// Fewer than `k` distinct symbols were supplied to the decoder.
    NotEnoughShards { have: usize, need: usize },
    /// Supplied shards disagree in length.
    ShardLengthMismatch,
    /// A shard index was out of range or repeated.
    BadShardIndex(usize),
    /// The wrong number of data shards was supplied to `encode`.
    WrongDataShardCount { have: usize, need: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::InvalidParameters { n, k } => write!(f, "invalid RS parameters n={n} k={k}"),
            CodecError::NotEnoughShards { have, need } => {
                write!(f, "not enough shards: have {have}, need {need}")
            }
            CodecError::ShardLengthMismatch => write!(f, "shards have differing lengths"),
            CodecError::BadShardIndex(i) => write!(f, "bad shard index {i}"),
            CodecError::WrongDataShardCount { have, need } => {
                write!(f, "expected {need} data shards, got {have}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A systematic Reed–Solomon code with length `n` and dimension `k`.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// `n x k` encoding matrix whose top `k x k` block is the identity.
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Creates an `(n, k)` code. `1 <= k <= n <= 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, CodecError> {
        if k == 0 || n < k || n > 255 {
            return Err(CodecError::InvalidParameters { n, k });
        }
        let vander = Matrix::vandermonde(n, k);
        let top = vander.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverse()
            .expect("top Vandermonde block is always invertible");
        let encode_matrix = vander.mul(&top_inv);
        Ok(ReedSolomon { n, k, encode_matrix })
    }

    /// Code length (total number of codeword symbols).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Code dimension (number of data shards).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Row of the encoding matrix used to produce symbol `i`.
    pub fn encode_row(&self, i: usize) -> &[u8] {
        self.encode_matrix.row(i)
    }

    /// Encodes `k` equal-length data shards into `n` codeword symbols.
    ///
    /// The first `k` output symbols are byte-identical to the inputs (systematic code); the
    /// remaining `n - k` are parity.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodecError> {
        if data.len() != self.k {
            return Err(CodecError::WrongDataShardCount {
                have: data.len(),
                need: self.k,
            });
        }
        let len = data.first().map(|d| d.len()).unwrap_or(0);
        if data.iter().any(|d| d.len() != len) {
            return Err(CodecError::ShardLengthMismatch);
        }
        let mut out = Vec::with_capacity(self.n);
        for row in 0..self.n {
            if row < self.k {
                out.push(data[row].clone());
                continue;
            }
            let mut shard = vec![0u8; len];
            let coeffs = self.encode_matrix.row(row);
            for (j, d) in data.iter().enumerate() {
                gf256::mul_acc_slice(&mut shard, d, coeffs[j]);
            }
            out.push(shard);
        }
        Ok(out)
    }

    /// Encodes only the single codeword symbol with index `index` (0-based).
    ///
    /// Useful when a server needs to regenerate its own symbol without materializing all
    /// `n` symbols.
    pub fn encode_single(&self, data: &[Vec<u8>], index: usize) -> Result<Vec<u8>, CodecError> {
        if data.len() != self.k {
            return Err(CodecError::WrongDataShardCount {
                have: data.len(),
                need: self.k,
            });
        }
        if index >= self.n {
            return Err(CodecError::BadShardIndex(index));
        }
        let len = data.first().map(|d| d.len()).unwrap_or(0);
        if data.iter().any(|d| d.len() != len) {
            return Err(CodecError::ShardLengthMismatch);
        }
        if index < self.k {
            return Ok(data[index].clone());
        }
        let mut shard = vec![0u8; len];
        let coeffs = self.encode_matrix.row(index);
        for (j, d) in data.iter().enumerate() {
            gf256::mul_acc_slice(&mut shard, d, coeffs[j]);
        }
        Ok(shard)
    }

    /// Recovers the `k` data shards from any `k` (or more) codeword symbols.
    ///
    /// `shards` maps codeword index → shard bytes; extra shards beyond `k` are ignored.
    pub fn decode_data(&self, shards: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>, CodecError> {
        // Deduplicate and validate indices.
        let mut seen = std::collections::BTreeSet::new();
        let mut chosen: Vec<(usize, &Vec<u8>)> = Vec::new();
        for (idx, data) in shards {
            if *idx >= self.n {
                return Err(CodecError::BadShardIndex(*idx));
            }
            if seen.insert(*idx) {
                chosen.push((*idx, data));
            }
            if chosen.len() == self.k {
                break;
            }
        }
        if chosen.len() < self.k {
            return Err(CodecError::NotEnoughShards {
                have: chosen.len(),
                need: self.k,
            });
        }
        let len = chosen[0].1.len();
        if chosen.iter().any(|(_, d)| d.len() != len) {
            return Err(CodecError::ShardLengthMismatch);
        }
        // Fast path: all k data shards present.
        if chosen.iter().all(|(i, _)| *i < self.k) {
            let mut out: Vec<Option<Vec<u8>>> = vec![None; self.k];
            for (i, d) in &chosen {
                out[*i] = Some((*d).clone());
            }
            if out.iter().all(|o| o.is_some()) {
                return Ok(out.into_iter().map(|o| o.unwrap()).collect());
            }
        }
        // General path: invert the sub-matrix of encode rows for the chosen symbols.
        let rows: Vec<usize> = chosen.iter().map(|(i, _)| *i).collect();
        let sub = self.encode_matrix.select_rows(&rows);
        let inv = sub
            .inverse()
            .expect("any k rows of an MDS encode matrix are invertible");
        let mut out = vec![vec![0u8; len]; self.k];
        for (data_idx, out_shard) in out.iter_mut().enumerate() {
            for (col, (_, sym)) in chosen.iter().enumerate() {
                gf256::mul_acc_slice(out_shard, sym, inv.get(data_idx, col));
            }
        }
        Ok(out)
    }

    /// Reconstructs *all* `n` codeword symbols from any `k` of them.
    pub fn reconstruct_all(&self, shards: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>, CodecError> {
        let data = self.decode_data(shards)?;
        self.encode(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen::<u8>()).collect())
            .collect()
    }

    #[test]
    fn parameters_validated() {
        assert!(ReedSolomon::new(5, 0).is_err());
        assert!(ReedSolomon::new(3, 5).is_err());
        assert!(ReedSolomon::new(300, 3).is_err());
        assert!(ReedSolomon::new(5, 3).is_ok());
        assert!(ReedSolomon::new(1, 1).is_ok());
    }

    #[test]
    fn systematic_prefix_is_the_data() {
        let rs = ReedSolomon::new(6, 3).unwrap();
        let data = random_data(3, 100, 1);
        let shards = rs.encode(&data).unwrap();
        assert_eq!(shards.len(), 6);
        assert_eq!(&shards[..3], &data[..]);
    }

    #[test]
    fn encode_single_matches_full_encode() {
        let rs = ReedSolomon::new(7, 4).unwrap();
        let data = random_data(4, 53, 2);
        let all = rs.encode(&data).unwrap();
        for (i, symbol) in all.iter().enumerate() {
            assert_eq!(&rs.encode_single(&data, i).unwrap(), symbol, "symbol {i}");
        }
        assert!(rs.encode_single(&data, 7).is_err());
    }

    #[test]
    fn decode_from_any_k_symbols() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = random_data(3, 64, 3);
        let shards = rs.encode(&data).unwrap();
        // Try every 3-subset of the 5 symbols.
        for a in 0..5 {
            for b in (a + 1)..5 {
                for c in (b + 1)..5 {
                    let subset = vec![
                        (a, shards[a].clone()),
                        (b, shards[b].clone()),
                        (c, shards[c].clone()),
                    ];
                    let decoded = rs.decode_data(&subset).unwrap();
                    assert_eq!(decoded, data, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn decode_fails_with_fewer_than_k() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = random_data(3, 16, 4);
        let shards = rs.encode(&data).unwrap();
        let subset = vec![(0usize, shards[0].clone()), (4, shards[4].clone())];
        assert_eq!(
            rs.decode_data(&subset),
            Err(CodecError::NotEnoughShards { have: 2, need: 3 })
        );
    }

    #[test]
    fn duplicate_shards_do_not_count_twice() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = random_data(3, 16, 5);
        let shards = rs.encode(&data).unwrap();
        let subset = vec![
            (0usize, shards[0].clone()),
            (0, shards[0].clone()),
            (1, shards[1].clone()),
        ];
        assert!(matches!(
            rs.decode_data(&subset),
            Err(CodecError::NotEnoughShards { .. })
        ));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = vec![vec![1u8; 8], vec![2u8; 9]];
        assert_eq!(rs.encode(&data), Err(CodecError::ShardLengthMismatch));
    }

    #[test]
    fn reconstruct_all_round_trips() {
        let rs = ReedSolomon::new(6, 4).unwrap();
        let data = random_data(4, 40, 6);
        let shards = rs.encode(&data).unwrap();
        let subset: Vec<(usize, Vec<u8>)> =
            [1usize, 3, 4, 5].iter().map(|&i| (i, shards[i].clone())).collect();
        let rebuilt = rs.reconstruct_all(&subset).unwrap();
        assert_eq!(rebuilt, shards);
    }

    #[test]
    fn replication_degenerate_case_k1() {
        // k = 1 means every symbol equals the data; CAS(k=1) is "replication via CAS".
        let rs = ReedSolomon::new(4, 1).unwrap();
        let data = vec![vec![7u8, 8, 9]];
        let shards = rs.encode(&data).unwrap();
        for s in &shards {
            assert_eq!(*s, data[0]);
        }
        let decoded = rs.decode_data(&[(3, shards[3].clone())]).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn empty_shards_round_trip() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = vec![vec![], vec![], vec![]];
        let shards = rs.encode(&data).unwrap();
        assert!(shards.iter().all(|s| s.is_empty()));
        let decoded = rs
            .decode_data(&[(2, vec![]), (3, vec![]), (4, vec![])])
            .unwrap();
        assert_eq!(decoded, data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_erasures_round_trip(
            k in 1usize..6,
            extra in 1usize..5,
            len in 0usize..200,
            seed: u64,
        ) {
            let n = k + extra;
            let rs = ReedSolomon::new(n, k).unwrap();
            let data = random_data(k, len, seed);
            let shards = rs.encode(&data).unwrap();
            // Pick a pseudo-random k-subset determined by the seed.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDEADBEEF);
            let mut indices: Vec<usize> = (0..n).collect();
            indices.shuffle(&mut rng);
            let subset: Vec<(usize, Vec<u8>)> =
                indices[..k].iter().map(|&i| (i, shards[i].clone())).collect();
            let decoded = rs.decode_data(&subset).unwrap();
            prop_assert_eq!(decoded, data);
        }
    }
}
