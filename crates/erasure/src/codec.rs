//! Systematic `(n, k)` Reed–Solomon codec.
//!
//! The encoding matrix is `V · V_top^{-1}` where `V` is an `n x k` Vandermonde matrix with
//! distinct evaluation points; this makes the first `k` codeword symbols equal to the data
//! shards (systematic) while preserving the MDS property that *any* `k` symbols suffice to
//! reconstruct the data.
//!
//! # Codec lifecycle
//!
//! Building a codec runs the Vandermonde construction plus a `k x k` matrix inversion, and
//! decoding from a symbol set that includes parity inverts another `k x k` sub-matrix.
//! Neither belongs on the per-operation hot path, so:
//!
//! * [`ReedSolomon::cached`] returns a process-wide shared codec per `(n, k)` — the CAS
//!   quorum loops hit the same handful of codes for every PUT/GET.
//! * Each codec memoizes decode sub-matrix inverses keyed on the chosen row set
//!   ([`ReedSolomon::decode_into`]), so steady-state decoding performs zero matrix math.

use crate::gf256;
use crate::matrix::Matrix;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Errors returned by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Invalid code parameters (`k == 0`, `n < k`, or `n > 255`).
    InvalidParameters {
        /// Requested code length.
        n: usize,
        /// Requested code dimension.
        k: usize,
    },
    /// Fewer than `k` distinct symbols were supplied to the decoder.
    NotEnoughShards {
        /// Distinct symbols supplied.
        have: usize,
        /// Symbols required (`k`).
        need: usize,
    },
    /// Supplied shards disagree in length.
    ShardLengthMismatch,
    /// A shard index was out of range or repeated.
    BadShardIndex(usize),
    /// The wrong number of data shards was supplied to `encode`.
    WrongDataShardCount {
        /// Data shards supplied.
        have: usize,
        /// Data shards required (`k`).
        need: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::InvalidParameters { n, k } => write!(f, "invalid RS parameters n={n} k={k}"),
            CodecError::NotEnoughShards { have, need } => {
                write!(f, "not enough shards: have {have}, need {need}")
            }
            CodecError::ShardLengthMismatch => write!(f, "shards have differing lengths"),
            CodecError::BadShardIndex(i) => write!(f, "bad shard index {i}"),
            CodecError::WrongDataShardCount { have, need } => {
                write!(f, "expected {need} data shards, got {have}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Process-wide `(n, k)` → codec cache behind [`ReedSolomon::cached`].
type CodecMap = HashMap<(usize, usize), Arc<ReedSolomon>>;
static CODECS: OnceLock<Mutex<CodecMap>> = OnceLock::new();

/// Decode sub-matrix inverses are memoized per codec; the cache is bounded so an
/// adversarial sequence of row sets cannot grow it without limit (`C(n, k)` can be large).
const MAX_CACHED_INVERSES: usize = 128;

/// A systematic Reed–Solomon code with length `n` and dimension `k`.
#[derive(Debug)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// `n x k` encoding matrix whose top `k x k` block is the identity.
    encode_matrix: Matrix,
    /// Chosen-row-set → inverse of the corresponding encode sub-matrix. Shared across
    /// clones of this codec (an inverse is a pure function of the row set).
    inverse_cache: Arc<Mutex<HashMap<Vec<u8>, Arc<Matrix>>>>,
}

impl Clone for ReedSolomon {
    fn clone(&self) -> Self {
        ReedSolomon {
            n: self.n,
            k: self.k,
            encode_matrix: self.encode_matrix.clone(),
            inverse_cache: Arc::clone(&self.inverse_cache),
        }
    }
}

impl ReedSolomon {
    /// Creates an `(n, k)` code. `1 <= k <= n <= 255`.
    ///
    /// Construction is comparatively expensive (Vandermonde build + matrix inversion);
    /// per-operation callers should prefer [`ReedSolomon::cached`].
    pub fn new(n: usize, k: usize) -> Result<Self, CodecError> {
        if k == 0 || n < k || n > 255 {
            return Err(CodecError::InvalidParameters { n, k });
        }
        let vander = Matrix::vandermonde(n, k);
        let top = vander.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverse()
            .expect("top Vandermonde block is always invertible");
        let encode_matrix = vander.mul(&top_inv);
        Ok(ReedSolomon {
            n,
            k,
            encode_matrix,
            inverse_cache: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Returns the process-wide shared `(n, k)` codec, constructing it on first use.
    ///
    /// This is the per-operation entry point: every encode/decode of the same code reuses
    /// one codec (and its memoized decode inverses) instead of re-running the Vandermonde
    /// construction and matrix inversion per call.
    pub fn cached(n: usize, k: usize) -> Result<Arc<ReedSolomon>, CodecError> {
        let cache = CODECS.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(rs) = cache.lock().expect("codec cache poisoned").get(&(n, k)) {
            return Ok(Arc::clone(rs));
        }
        // Construct outside the lock; a racing construction of the same code is harmless
        // (last insert wins, both are identical).
        let rs = Arc::new(ReedSolomon::new(n, k)?);
        cache
            .lock()
            .expect("codec cache poisoned")
            .insert((n, k), Arc::clone(&rs));
        Ok(rs)
    }

    /// Code length (total number of codeword symbols).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Code dimension (number of data shards).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Row of the encoding matrix used to produce symbol `i`.
    pub fn encode_row(&self, i: usize) -> &[u8] {
        self.encode_matrix.row(i)
    }

    /// Computes the `n - k` parity symbols for `k` equal-length data shards, writing them
    /// into `parity` (which must hold `n - k` slices of the data shard length).
    ///
    /// This is the allocation-free encode primitive: callers that lay out the codeword in
    /// one contiguous buffer (see `shares::encode_value`) pass borrowed sub-slices and no
    /// intermediate shard vectors exist.
    pub fn encode_parity(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
    ) -> Result<(), CodecError> {
        if data.len() != self.k {
            return Err(CodecError::WrongDataShardCount {
                have: data.len(),
                need: self.k,
            });
        }
        if parity.len() != self.n - self.k {
            return Err(CodecError::WrongDataShardCount {
                have: parity.len(),
                need: self.n - self.k,
            });
        }
        let len = data.first().map(|d| d.len()).unwrap_or(0);
        if data.iter().any(|d| d.len() != len) || parity.iter().any(|p| p.len() != len) {
            return Err(CodecError::ShardLengthMismatch);
        }
        for (p, out) in parity.iter_mut().enumerate() {
            let coeffs = self.encode_matrix.row(self.k + p);
            out.fill(0);
            for (j, d) in data.iter().enumerate() {
                gf256::mul_acc_slice(out, d, coeffs[j]);
            }
        }
        Ok(())
    }

    /// Encodes `k` equal-length data shards into `n` codeword symbols.
    ///
    /// The first `k` output symbols are byte-identical to the inputs (systematic code); the
    /// remaining `n - k` are parity.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodecError> {
        if data.len() != self.k {
            return Err(CodecError::WrongDataShardCount {
                have: data.len(),
                need: self.k,
            });
        }
        let len = data.first().map(|d| d.len()).unwrap_or(0);
        let mut out: Vec<Vec<u8>> = data.to_vec();
        out.resize(self.n, Vec::new());
        let (_, parity_part) = out.split_at_mut(self.k);
        for p in parity_part.iter_mut() {
            p.resize(len, 0);
        }
        let data_refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parity_refs: Vec<&mut [u8]> =
            parity_part.iter_mut().map(|p| p.as_mut_slice()).collect();
        self.encode_parity(&data_refs, &mut parity_refs)?;
        Ok(out)
    }

    /// Encodes only the single codeword symbol with index `index` (0-based).
    ///
    /// Useful when a server needs to regenerate its own symbol without materializing all
    /// `n` symbols.
    pub fn encode_single(&self, data: &[Vec<u8>], index: usize) -> Result<Vec<u8>, CodecError> {
        if data.len() != self.k {
            return Err(CodecError::WrongDataShardCount {
                have: data.len(),
                need: self.k,
            });
        }
        if index >= self.n {
            return Err(CodecError::BadShardIndex(index));
        }
        let len = data.first().map(|d| d.len()).unwrap_or(0);
        if data.iter().any(|d| d.len() != len) {
            return Err(CodecError::ShardLengthMismatch);
        }
        if index < self.k {
            return Ok(data[index].clone());
        }
        let mut shard = vec![0u8; len];
        let coeffs = self.encode_matrix.row(index);
        for (j, d) in data.iter().enumerate() {
            gf256::mul_acc_slice(&mut shard, d, coeffs[j]);
        }
        Ok(shard)
    }

    /// Validates `shards`, picking the first `k` distinct in-range symbols. Returns the
    /// chosen `(index, bytes)` pairs and the common shard length.
    #[allow(clippy::type_complexity)]
    fn choose<'a>(
        &self,
        shards: &[(usize, &'a [u8])],
    ) -> Result<(Vec<(usize, &'a [u8])>, usize), CodecError> {
        let mut chosen: Vec<(usize, &[u8])> = Vec::with_capacity(self.k);
        for &(idx, data) in shards {
            if idx >= self.n {
                return Err(CodecError::BadShardIndex(idx));
            }
            if !chosen.iter().any(|(i, _)| *i == idx) {
                chosen.push((idx, data));
            }
            if chosen.len() == self.k {
                break;
            }
        }
        if chosen.len() < self.k {
            return Err(CodecError::NotEnoughShards {
                have: chosen.len(),
                need: self.k,
            });
        }
        let len = chosen[0].1.len();
        if chosen.iter().any(|(_, d)| d.len() != len) {
            return Err(CodecError::ShardLengthMismatch);
        }
        Ok((chosen, len))
    }

    /// Returns the (memoized) inverse of the encode sub-matrix for the given row set.
    fn decode_inverse(&self, rows: &[usize]) -> Arc<Matrix> {
        let key: Vec<u8> = rows.iter().map(|&r| r as u8).collect();
        {
            let cache = self.inverse_cache.lock().expect("inverse cache poisoned");
            if let Some(inv) = cache.get(&key) {
                return Arc::clone(inv);
            }
        }
        let sub = self.encode_matrix.select_rows(rows);
        let inv = Arc::new(
            sub.inverse()
                .expect("any k rows of an MDS encode matrix are invertible"),
        );
        let mut cache = self.inverse_cache.lock().expect("inverse cache poisoned");
        if cache.len() >= MAX_CACHED_INVERSES {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&inv));
        inv
    }

    /// Recovers the `k` data shards from any `k` (or more) codeword symbols, appending
    /// them (in data order, concatenated) to `out`.
    ///
    /// `shards` maps codeword index → shard bytes; extra shards beyond `k` are ignored.
    /// This is the allocation-free decode primitive: when all `k` data shards are present
    /// the bytes are copied straight into `out` with no matrix math; otherwise the
    /// memoized sub-matrix inverse drives `k` multiply-accumulate passes per data shard.
    /// `out` is typically a pooled buffer (see `shares::decode_value`).
    pub fn decode_into(
        &self,
        shards: &[(usize, &[u8])],
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let (mut chosen, len) = self.choose(shards)?;
        let base = out.len();
        // Fast path: all k data shards present — place each at its slot, no coding.
        if chosen.iter().all(|(i, _)| *i < self.k) {
            chosen.sort_unstable_by_key(|(i, _)| *i);
            for (_, d) in &chosen {
                out.extend_from_slice(d);
            }
            return Ok(());
        }
        // General path: invert the sub-matrix of encode rows for the chosen symbols.
        let rows: Vec<usize> = chosen.iter().map(|(i, _)| *i).collect();
        let inv = self.decode_inverse(&rows);
        out.resize(base + self.k * len, 0);
        let recovered = &mut out[base..];
        for (data_idx, out_shard) in recovered.chunks_exact_mut(len.max(1)).enumerate() {
            for (col, (_, sym)) in chosen.iter().enumerate() {
                gf256::mul_acc_slice(out_shard, sym, inv.get(data_idx, col));
            }
        }
        Ok(())
    }

    /// Recovers the `k` data shards from any `k` (or more) codeword symbols.
    ///
    /// Compatibility wrapper over [`ReedSolomon::decode_into`] returning owned shards.
    pub fn decode_data(&self, shards: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>, CodecError> {
        let borrowed: Vec<(usize, &[u8])> =
            shards.iter().map(|(i, d)| (*i, d.as_slice())).collect();
        let (_, len) = self.choose(&borrowed)?;
        let mut joined = Vec::with_capacity(self.k * len);
        self.decode_into(&borrowed, &mut joined)?;
        if len == 0 {
            return Ok(vec![Vec::new(); self.k]);
        }
        Ok(joined.chunks_exact(len).map(|c| c.to_vec()).collect())
    }

    /// Reconstructs *all* `n` codeword symbols from any `k` of them.
    pub fn reconstruct_all(&self, shards: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>, CodecError> {
        let data = self.decode_data(shards)?;
        self.encode(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen::<u8>()).collect())
            .collect()
    }

    #[test]
    fn parameters_validated() {
        assert!(ReedSolomon::new(5, 0).is_err());
        assert!(ReedSolomon::new(3, 5).is_err());
        assert!(ReedSolomon::new(300, 3).is_err());
        assert!(ReedSolomon::new(5, 3).is_ok());
        assert!(ReedSolomon::new(1, 1).is_ok());
        assert!(ReedSolomon::cached(5, 0).is_err());
    }

    #[test]
    fn cached_codecs_are_shared() {
        let a = ReedSolomon::cached(5, 3).unwrap();
        let b = ReedSolomon::cached(5, 3).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = ReedSolomon::cached(4, 2).unwrap();
        assert_eq!(c.n(), 4);
        assert_eq!(c.k(), 2);
        // The cached codec encodes identically to a fresh one.
        let data = random_data(3, 64, 9);
        assert_eq!(
            a.encode(&data).unwrap(),
            ReedSolomon::new(5, 3).unwrap().encode(&data).unwrap()
        );
    }

    #[test]
    fn systematic_prefix_is_the_data() {
        let rs = ReedSolomon::new(6, 3).unwrap();
        let data = random_data(3, 100, 1);
        let shards = rs.encode(&data).unwrap();
        assert_eq!(shards.len(), 6);
        assert_eq!(&shards[..3], &data[..]);
    }

    #[test]
    fn encode_parity_matches_encode() {
        let rs = ReedSolomon::new(7, 4).unwrap();
        let data = random_data(4, 53, 8);
        let all = rs.encode(&data).unwrap();
        let data_refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parity = vec![vec![0xFFu8; 53]; 3];
        let mut parity_refs: Vec<&mut [u8]> =
            parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        rs.encode_parity(&data_refs, &mut parity_refs).unwrap();
        drop(parity_refs);
        assert_eq!(&parity[..], &all[4..]);
        // Shape errors.
        let mut parity_refs: Vec<&mut [u8]> =
            parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        assert!(rs.encode_parity(&data_refs[..3], &mut parity_refs).is_err());
        let mut short = vec![vec![0u8; 10]; 3];
        let mut short_refs: Vec<&mut [u8]> = short.iter_mut().map(|p| p.as_mut_slice()).collect();
        assert_eq!(
            rs.encode_parity(&data_refs, &mut short_refs),
            Err(CodecError::ShardLengthMismatch)
        );
    }

    #[test]
    fn encode_single_matches_full_encode() {
        let rs = ReedSolomon::new(7, 4).unwrap();
        let data = random_data(4, 53, 2);
        let all = rs.encode(&data).unwrap();
        for (i, symbol) in all.iter().enumerate() {
            assert_eq!(&rs.encode_single(&data, i).unwrap(), symbol, "symbol {i}");
        }
        assert!(rs.encode_single(&data, 7).is_err());
    }

    #[test]
    fn decode_from_any_k_symbols() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = random_data(3, 64, 3);
        let shards = rs.encode(&data).unwrap();
        // Try every 3-subset of the 5 symbols.
        for a in 0..5 {
            for b in (a + 1)..5 {
                for c in (b + 1)..5 {
                    let subset = vec![
                        (a, shards[a].clone()),
                        (b, shards[b].clone()),
                        (c, shards[c].clone()),
                    ];
                    let decoded = rs.decode_data(&subset).unwrap();
                    assert_eq!(decoded, data, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn repeated_decodes_hit_the_inverse_cache() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = random_data(3, 32, 11);
        let shards = rs.encode(&data).unwrap();
        let subset: Vec<(usize, Vec<u8>)> =
            [2usize, 3, 4].iter().map(|&i| (i, shards[i].clone())).collect();
        for _ in 0..3 {
            assert_eq!(rs.decode_data(&subset).unwrap(), data);
        }
        assert_eq!(rs.inverse_cache.lock().unwrap().len(), 1);
        // A clone shares the cache.
        let clone = rs.clone();
        let other: Vec<(usize, Vec<u8>)> =
            [0usize, 3, 4].iter().map(|&i| (i, shards[i].clone())).collect();
        assert_eq!(clone.decode_data(&other).unwrap(), data);
        assert_eq!(rs.inverse_cache.lock().unwrap().len(), 2);
    }

    #[test]
    fn decode_fails_with_fewer_than_k() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = random_data(3, 16, 4);
        let shards = rs.encode(&data).unwrap();
        let subset = vec![(0usize, shards[0].clone()), (4, shards[4].clone())];
        assert_eq!(
            rs.decode_data(&subset),
            Err(CodecError::NotEnoughShards { have: 2, need: 3 })
        );
    }

    #[test]
    fn duplicate_shards_do_not_count_twice() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = random_data(3, 16, 5);
        let shards = rs.encode(&data).unwrap();
        let subset = vec![
            (0usize, shards[0].clone()),
            (0, shards[0].clone()),
            (1, shards[1].clone()),
        ];
        assert!(matches!(
            rs.decode_data(&subset),
            Err(CodecError::NotEnoughShards { .. })
        ));
    }

    #[test]
    fn data_shards_out_of_order_fast_path() {
        // The all-data fast path must reorder by index, not by arrival.
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = random_data(3, 24, 12);
        let shards = rs.encode(&data).unwrap();
        let subset = vec![
            (2usize, shards[2].clone()),
            (0, shards[0].clone()),
            (1, shards[1].clone()),
        ];
        assert_eq!(rs.decode_data(&subset).unwrap(), data);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = vec![vec![1u8; 8], vec![2u8; 9]];
        assert_eq!(rs.encode(&data), Err(CodecError::ShardLengthMismatch));
    }

    #[test]
    fn reconstruct_all_round_trips() {
        let rs = ReedSolomon::new(6, 4).unwrap();
        let data = random_data(4, 40, 6);
        let shards = rs.encode(&data).unwrap();
        let subset: Vec<(usize, Vec<u8>)> =
            [1usize, 3, 4, 5].iter().map(|&i| (i, shards[i].clone())).collect();
        let rebuilt = rs.reconstruct_all(&subset).unwrap();
        assert_eq!(rebuilt, shards);
    }

    #[test]
    fn replication_degenerate_case_k1() {
        // k = 1 means every symbol equals the data; CAS(k=1) is "replication via CAS".
        let rs = ReedSolomon::new(4, 1).unwrap();
        let data = vec![vec![7u8, 8, 9]];
        let shards = rs.encode(&data).unwrap();
        for s in &shards {
            assert_eq!(*s, data[0]);
        }
        let decoded = rs.decode_data(&[(3, shards[3].clone())]).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn empty_shards_round_trip() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = vec![vec![], vec![], vec![]];
        let shards = rs.encode(&data).unwrap();
        assert!(shards.iter().all(|s| s.is_empty()));
        let decoded = rs
            .decode_data(&[(2, vec![]), (3, vec![]), (4, vec![])])
            .unwrap();
        assert_eq!(decoded, data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_erasures_round_trip(
            k in 1usize..6,
            extra in 1usize..5,
            len in 0usize..200,
            seed: u64,
        ) {
            let n = k + extra;
            let rs = ReedSolomon::new(n, k).unwrap();
            let data = random_data(k, len, seed);
            let shards = rs.encode(&data).unwrap();
            // Pick a pseudo-random k-subset determined by the seed.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDEADBEEF);
            let mut indices: Vec<usize> = (0..n).collect();
            indices.shuffle(&mut rng);
            let subset: Vec<(usize, Vec<u8>)> =
                indices[..k].iter().map(|&i| (i, shards[i].clone())).collect();
            let decoded = rs.decode_data(&subset).unwrap();
            prop_assert_eq!(decoded, data);
        }
    }
}
