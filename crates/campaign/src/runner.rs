//! Cell execution: one virtual-time simulation per cell, fanned across a bounded
//! thread pool.
//!
//! Every cell is a self-contained, seeded simulation — no shared mutable state — so
//! the pool is embarrassingly parallel and the *set* of outcomes is independent of
//! scheduling: workers pull cell indices from an atomic counter and results are
//! re-ordered by index before aggregation. A panicking cell is caught and reported as
//! an aborted (failing) outcome rather than taking the campaign down.

use crate::outcome::{outcome_from_report, ExpectedProperty, RunOutcome};
use crate::spec::{flip_epoch2_workload, CellSpec, ScenarioFamily, SweepSpec, CAMPAIGN_F};
use legostore_cloud::{CloudModel, GcpLocation};
use legostore_obs::{Obs, ObsConfig};
use legostore_optimizer::{Optimizer, ReconfigTrigger, TriggerThresholds, WorkloadMonitor};
use legostore_sim::{SimOptions, SimReport, Simulation};
use legostore_types::{Configuration, DcId, FaultPlan, ProtocolKind, Value};
use legostore_workload::{
    correlated_outage_plan, diurnal_schedule, flash_crowd_schedule, generate_fault_plan,
    pick_outage_region, reconfig_storm_plan, reconfig_storm_times, FaultPlanSpec, Request,
    TraceGenerator,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Minimum availability a baseline cell must sustain *during* its within-`f` fault
/// windows (after the heal it must be perfect; see
/// [`ExpectedProperty::safe_with_recovery`]).
pub const BASELINE_MIN_AVAILABILITY: f64 = 0.9;

/// Availability floor for a region outage: low enough that losing a whole region's
/// clients for a third of the run still passes. Within-`f` outages are *allowed* to
/// keep availability at 1.0 (clients retry through the window); the vacuity guard is
/// the timeout-widen floor in the expected property, not an availability cap.
pub const OUTAGE_MIN_AVAILABILITY: f64 = 0.5;

fn sim_options() -> SimOptions {
    SimOptions {
        // Tighter than the 1.5 s default so faulted cells converge quickly, with more
        // retries so within-`f` faults exhaust patience, not correctness.
        op_timeout_ms: 1_000.0,
        max_timeout_retries: 4,
        ..SimOptions::default()
    }
}

fn key_name(i: usize) -> String {
    format!("key-{i}")
}

fn protocol_label(p: ProtocolKind) -> &'static str {
    match p {
        ProtocolKind::Abd => "abd",
        ProtocolKind::Cas => "cas",
    }
}

/// Runs one prepared simulation: keys installed, trace + optional fault plan applied,
/// history always recorded.
fn simulate(
    cell: &CellSpec,
    config: &Configuration,
    trace: &[Request],
    fault_plan: Option<&FaultPlan>,
) -> SimReport {
    let mut sim = Simulation::with_options(CloudModel::gcp9(), sim_options());
    sim.enable_history_recording();
    let initial = Value::filler(cell.workload.object_size as usize);
    for i in 0..cell.keys() {
        sim.create_key(key_name(i), config.clone(), &initial);
    }
    if let Some(plan) = fault_plan {
        sim.set_fault_plan(plan);
    }
    sim.schedule_trace(trace, 0.0, key_name);
    sim.run()
}

fn run_baseline(cell: &CellSpec) -> RunOutcome {
    let config = cell.placement.config(cell.protocol);
    let spec = FaultPlanSpec::for_placement(config.dcs.clone(), CAMPAIGN_F, cell.duration_ms * 0.6);
    let plan = generate_fault_plan(&spec, cell.seed);
    let heal_ms = plan.events.iter().map(|e| e.at_ms).fold(0.0, f64::max);
    let trace = TraceGenerator::new(cell.workload.clone(), cell.keys(), cell.seed)
        .generate(cell.duration_ms);
    let report = simulate(cell, &config, &trace, Some(&plan));
    let expected = ExpectedProperty::safe_with_recovery(BASELINE_MIN_AVAILABILITY, heal_ms + 1.0);
    outcome_from_report(cell, protocol_label(cell.protocol).into(), &report, &expected)
}

fn run_diurnal(cell: &CellSpec) -> RunOutcome {
    let config = cell.placement.config(cell.protocol);
    let trace = diurnal_schedule(
        &cell.workload,
        cell.keys(),
        cell.seed,
        cell.duration_ms,
        2,   // two day/night cycles
        0.8, // peaks at 1.8× the mean rate
    );
    let report = simulate(cell, &config, &trace, None);
    outcome_from_report(
        cell,
        protocol_label(cell.protocol).into(),
        &report,
        &ExpectedProperty::always_live(),
    )
}

fn run_flash_crowd(cell: &CellSpec) -> RunOutcome {
    let config = cell.placement.config(cell.protocol);
    let trace = flash_crowd_schedule(
        &cell.workload,
        cell.keys(),
        cell.seed,
        cell.duration_ms,
        GcpLocation::Sydney.dc(),
        0.40 * cell.duration_ms,
        0.60 * cell.duration_ms,
        0.6, // 60% of all requests land in the surge window
        0.9, // and 90% of those pile onto Sydney
    );
    let report = simulate(cell, &config, &trace, None);
    outcome_from_report(
        cell,
        protocol_label(cell.protocol).into(),
        &report,
        &ExpectedProperty::always_live(),
    )
}

fn run_region_outage(cell: &CellSpec) -> RunOutcome {
    let config = cell.placement.config(cell.protocol);
    let Some(region) = pick_outage_region(&config.dcs, CAMPAIGN_F, cell.seed) else {
        return RunOutcome::aborted(cell, "no region survivable by this placement".into());
    };
    let start_ms = 0.25 * cell.duration_ms;
    let end_ms = 0.55 * cell.duration_ms;
    let plan = correlated_outage_plan(region, &config.dcs, CAMPAIGN_F, start_ms, end_ms, cell.seed)
        .expect("picked region is within tolerance");
    let trace = TraceGenerator::new(cell.workload.clone(), cell.keys(), cell.seed)
        .generate(cell.duration_ms);
    let report = simulate(cell, &config, &trace, Some(&plan));
    let expected = ExpectedProperty {
        min_availability: OUTAGE_MIN_AVAILABILITY,
        max_availability: None,
        live_after_ms: Some(end_ms + 1.0),
        min_reconfigs: 0,
        // The crashed region hosts clients (the outage workload spreads them across
        // every DC), so a real outage must force at least one timeout widen.
        min_timeout_widens: 1,
    };
    outcome_from_report(cell, protocol_label(cell.protocol).into(), &report, &expected)
}

/// The ABD↔CAS flip scenario, end to end through the PR 8 live-monitor path:
///
/// 1. plan epoch 1 with the optimizer (a read-heavy 1 KB Tokyo mix ⇒ ABD);
/// 2. run a pilot carrying both epochs under that plan, export its ops into an
///    [`Obs`] stream, and feed the epoch-2 window through [`WorkloadMonitor`];
/// 3. require a [`ReconfigTrigger::WorkloadDrift`] and re-plan from the monitor's
///    *estimated* (not scripted) workload;
/// 4. re-run the same schedule live, reconfiguring every key to the new plan at the
///    epoch boundary, and judge the run with `min_reconfigs ≥ 1`.
///
/// If the monitor misses the drift or the optimizer keeps the old protocol, no
/// reconfiguration is scheduled and the expected property fails the cell — the
/// scenario proves the adaptation loop, not just the reconfig primitive.
fn run_protocol_flip(cell: &CellSpec) -> RunOutcome {
    let model = CloudModel::gcp9();
    let optimizer = Optimizer::new(model.clone());
    let epoch1 = &cell.workload;
    let epoch2 = flip_epoch2_workload(&model);
    let Some(plan1) = optimizer.optimize(epoch1) else {
        return RunOutcome::aborted(cell, "no feasible epoch-1 plan".into());
    };
    let half_ms = 0.5 * cell.duration_ms;
    let keys = cell.keys();
    let trace1 = TraceGenerator::new(epoch1.clone(), keys, cell.seed).generate(half_ms);
    let trace2 =
        TraceGenerator::new(epoch2.clone(), keys, cell.seed ^ 0x5eed_f11b).generate(half_ms);

    // Pilot: both epochs under the epoch-1 plan, watched by the monitor.
    let mut pilot = Simulation::with_options(model.clone(), sim_options());
    let initial = Value::filler(epoch1.object_size as usize);
    for i in 0..keys {
        pilot.create_key(key_name(i), plan1.config.clone(), &initial);
    }
    pilot.schedule_trace(&trace1, 0.0, key_name);
    pilot.schedule_trace(&trace2, half_ms, key_name);
    let pilot_report = pilot.run();

    let obs = Obs::new(ObsConfig::Metrics);
    pilot_report.export_ops(&obs);
    let mut monitor = WorkloadMonitor::new(half_ms, epoch1.slo_get_ms, epoch1.slo_put_ms);
    let epoch2_start_ns = (half_ms * 1e6) as u64;
    for rec in obs.drain_ops() {
        if rec.started_ns >= epoch2_start_ns {
            monitor.ingest(&rec, 1.0);
        }
    }
    let triggers = monitor.triggers(
        epoch1,
        &plan1.cost,
        plan1.total_cost(),
        &TriggerThresholds::default(),
    );
    let drifted = triggers
        .iter()
        .any(|t| matches!(t, ReconfigTrigger::WorkloadDrift { .. }));
    let observed = monitor.estimate(epoch1);
    let plan2 = optimizer.optimize(&observed);
    let flips = plan2
        .as_ref()
        .map(|p| p.config.protocol != plan1.config.protocol || p.config.dcs != plan1.config.dcs)
        .unwrap_or(false);

    // Live run: same schedule, with the reconfiguration the monitor earned (if any).
    let mut sim = Simulation::with_options(model, sim_options());
    sim.enable_history_recording();
    for i in 0..keys {
        sim.create_key(key_name(i), plan1.config.clone(), &initial);
    }
    sim.schedule_trace(&trace1, 0.0, key_name);
    sim.schedule_trace(&trace2, half_ms, key_name);
    let label = if let (true, true, Some(plan2)) = (drifted, flips, plan2.as_ref()) {
        for i in 0..keys {
            sim.schedule_reconfig(half_ms + 200.0, key_name(i), plan2.config.clone());
        }
        format!(
            "{}->{}",
            protocol_label(plan1.config.protocol),
            protocol_label(plan2.config.protocol)
        )
    } else {
        format!("{}->none", protocol_label(plan1.config.protocol))
    };
    let report = sim.run();
    let expected = ExpectedProperty {
        min_availability: 0.995,
        max_availability: None,
        live_after_ms: None,
        min_reconfigs: 1,
        min_timeout_widens: 0,
    };
    outcome_from_report(cell, label, &report, &expected)
}

/// The reconfiguration-storm scenario: the transfer path itself under fire. The cell's
/// protocol picks the starting configuration; the storm flips every key to the *other*
/// protocol's placement mid-run and back again, while a seeded within-`f` fault plan —
/// drawn over the union of both placements, so crash/partition windows land on the
/// transfer's source and destination alike — races the controller rounds and the
/// client traffic. Judged with `min_reconfigs ≥ 1` (the storm must actually move the
/// keys) on top of the usual linearizability verdict; a cell whose history double-
/// applies a redirected PUT across the epoch boundary fails here.
fn run_reconfig_storm(cell: &CellSpec) -> RunOutcome {
    let model = CloudModel::gcp9();
    let start_config = cell.placement.config(cell.protocol);
    let other = match cell.protocol {
        ProtocolKind::Abd => ProtocolKind::Cas,
        ProtocolKind::Cas => ProtocolKind::Abd,
    };
    let flip_config = cell.placement.config(other);
    let universe: Vec<DcId> = (0..model.num_dcs()).map(DcId::from).collect();
    let plan = reconfig_storm_plan(
        &[start_config.dcs.clone(), flip_config.dcs.clone()],
        universe,
        CAMPAIGN_F,
        cell.duration_ms,
        cell.seed,
    );
    let heal_ms = plan.events.iter().map(|e| e.at_ms).fold(0.0, f64::max);
    let trace = TraceGenerator::new(cell.workload.clone(), cell.keys(), cell.seed)
        .generate(cell.duration_ms);

    let mut sim = Simulation::with_options(model, sim_options());
    sim.enable_history_recording();
    let initial = Value::filler(cell.workload.object_size as usize);
    for i in 0..cell.keys() {
        sim.create_key(key_name(i), start_config.clone(), &initial);
    }
    sim.set_fault_plan(&plan);
    sim.schedule_trace(&trace, 0.0, key_name);
    for (flip, at_ms) in reconfig_storm_times(cell.duration_ms, 2).into_iter().enumerate() {
        let target = if flip % 2 == 0 { &flip_config } else { &start_config };
        for i in 0..cell.keys() {
            sim.schedule_reconfig(at_ms, key_name(i), target.clone());
        }
    }
    let report = sim.run();
    let expected = ExpectedProperty {
        min_availability: BASELINE_MIN_AVAILABILITY,
        max_availability: None,
        live_after_ms: Some(heal_ms + 1.0),
        min_reconfigs: 1,
        min_timeout_widens: 0,
    };
    let label = format!(
        "{}<->{}",
        protocol_label(cell.protocol),
        protocol_label(other)
    );
    outcome_from_report(cell, label, &report, &expected)
}

/// Executes one cell (synchronously, on the calling thread).
pub fn run_cell(cell: &CellSpec) -> RunOutcome {
    match cell.family {
        ScenarioFamily::Baseline => run_baseline(cell),
        ScenarioFamily::Diurnal => run_diurnal(cell),
        ScenarioFamily::FlashCrowd => run_flash_crowd(cell),
        ScenarioFamily::RegionOutage => run_region_outage(cell),
        ScenarioFamily::ProtocolFlip => run_protocol_flip(cell),
        ScenarioFamily::ReconfigStorm => run_reconfig_storm(cell),
    }
}

/// Expands `spec` and runs every cell across `threads` workers (0 ⇒ all cores, capped
/// at 8). Returns outcomes in cell order regardless of completion order, so downstream
/// reports are deterministic.
pub fn run_campaign(spec: &SweepSpec, threads: usize) -> Vec<RunOutcome> {
    run_cells(&spec.cells(), threads, false)
}

/// Runs an explicit cell list (the engine behind [`run_campaign`]; also what
/// `legostore-campaign --only` filters down to). With `verbose`, each completed cell
/// logs its wall time to stderr — stderr only, so reports stay byte-deterministic.
pub fn run_cells(cells: &[CellSpec], threads: usize, verbose: bool) -> Vec<RunOutcome> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
    } else {
        threads
    }
    .max(1)
    .min(cells.len().max(1));

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, RunOutcome)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let started = std::time::Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| run_cell(cell)))
                    .unwrap_or_else(|p| {
                        let reason = p
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "panic".into());
                        RunOutcome::aborted(cell, format!("panic: {reason}"))
                    });
                if verbose {
                    eprintln!("  [{:>6.1}s] {}", started.elapsed().as_secs_f64(), cell.id);
                }
                // The receiver outlives the scope; a send can only fail if the main
                // thread panicked, in which case the campaign is already dead.
                let _ = tx.send((i, outcome));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<RunOutcome>> = vec![None; cells.len()];
        for (i, outcome) in rx {
            slots[i] = Some(outcome);
        }
        slots.into_iter().map(|s| s.expect("every cell reports")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SweepSpec, Tier};

    #[test]
    fn a_fault_free_scenario_cell_passes() {
        let cells = SweepSpec::for_tier(Tier::Smoke).cells();
        let cell = cells
            .iter()
            .find(|c| c.family == ScenarioFamily::Diurnal && c.protocol == ProtocolKind::Abd)
            .expect("smoke tier has a diurnal cell");
        let out = run_cell(cell);
        assert!(out.passed(), "diurnal ABD cell failed: {:?}", out.violations);
        assert_eq!(out.linearizable, Some(true));
        assert_eq!(out.failures, 0);
        assert!(out.ops > 100);
    }

    #[test]
    fn cells_rerun_to_identical_outcomes() {
        let cells = SweepSpec::for_tier(Tier::Smoke).cells();
        let cell = cells
            .iter()
            .find(|c| c.family == ScenarioFamily::Baseline)
            .unwrap();
        assert_eq!(run_cell(cell), run_cell(cell));
    }
}
