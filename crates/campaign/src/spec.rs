//! Declarative sweep specifications and tier budgets.
//!
//! A campaign is described, not scripted: a [`SweepSpec`] names a [`Tier`] and a base
//! seed, and [`SweepSpec::cells`] expands it into the concrete list of [`CellSpec`]s —
//! (workload × fault seed × protocol × placement × scenario family) points — that the
//! runner executes. Expansion is pure: the same spec always yields the same cells in
//! the same order with the same per-cell seeds, which is what makes whole campaign
//! reports byte-reproducible.

use legostore_cloud::{CloudModel, GcpLocation};
use legostore_types::{Configuration, DcId, ProtocolKind};
use legostore_workload::grid::ClientDistribution;
use legostore_workload::{basic_workloads, client_distribution, WorkloadSpec};

/// Default SLOs used for campaign workloads (ms). Generous enough that a healthy
/// placement meets them; the monitor still sees violations under stress scenarios.
pub const SLO_GET_MS: f64 = 1_000.0;
pub const SLO_PUT_MS: f64 = 1_000.0;

/// Fault tolerance every campaign placement is built for.
pub const CAMPAIGN_F: usize = 1;

/// Minimum number of keys each cell's trace is spread over; [`CellSpec::keys`] scales
/// the actual count with the cell's arrival rate. Per-key concurrency is
/// `rate × latency / keys`, and the linearizability checker's search is exponential in
/// the number of *concurrent* operations on one register — under a fault plan a
/// retried op can span the full 5 s timeout budget, so a 500 req/s cell on 16 keys
/// piles up ~75 concurrent writes per key and the DFS runs for a minute. Capping the
/// per-key rate keeps every history inside the checker's tractable envelope while the
/// cell still exercises full aggregate load.
pub const KEYS_PER_CELL: usize = 16;

/// Per-key offered load ceiling (req/s) used by [`CellSpec::keys`].
pub const MAX_RATE_PER_KEY: f64 = 4.0;

/// A CI-style budget tier: how much of the grid, how many seeds, how long each run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Seconds: a handful of cells, enough to catch wiring rot in every family.
    Smoke,
    /// Per-PR budget: ≥ 200 cells sampled across the grid, all scenario families.
    Ci,
    /// Scheduled: a dense grid slice, more seeds, both placements.
    Nightly,
    /// Everything: all 567 grid workloads, full seed matrix.
    Full,
}

impl Tier {
    /// All tiers, smallest first.
    pub const ALL: [Tier; 4] = [Tier::Smoke, Tier::Ci, Tier::Nightly, Tier::Full];

    /// Parses a tier name as accepted by `legostore-campaign --tier`.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "smoke" => Some(Tier::Smoke),
            "ci" => Some(Tier::Ci),
            "nightly" => Some(Tier::Nightly),
            "full" => Some(Tier::Full),
            _ => None,
        }
    }

    /// Canonical lower-case name.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Smoke => "smoke",
            Tier::Ci => "ci",
            Tier::Nightly => "nightly",
            Tier::Full => "full",
        }
    }

    /// The budget this tier expands with.
    pub fn budget(self) -> TierBudget {
        match self {
            Tier::Smoke => TierBudget {
                grid_stride: 81,
                seeds_per_cell: 1,
                scenario_reps: 1,
                duration_ms: 4_000.0,
                placements: vec![PlacementChoice::Paper],
            },
            Tier::Ci => TierBudget {
                grid_stride: 11,
                seeds_per_cell: 2,
                scenario_reps: 2,
                duration_ms: 6_000.0,
                placements: vec![PlacementChoice::Paper],
            },
            Tier::Nightly => TierBudget {
                grid_stride: 8,
                seeds_per_cell: 3,
                scenario_reps: 4,
                duration_ms: 10_000.0,
                placements: vec![PlacementChoice::Paper, PlacementChoice::Spread],
            },
            Tier::Full => TierBudget {
                grid_stride: 1,
                seeds_per_cell: 3,
                scenario_reps: 6,
                duration_ms: 10_000.0,
                placements: vec![PlacementChoice::Paper, PlacementChoice::Spread],
            },
        }
    }
}

/// The knobs a [`Tier`] turns.
#[derive(Debug, Clone, PartialEq)]
pub struct TierBudget {
    /// Take every `grid_stride`-th workload of the 567-cell basic grid.
    pub grid_stride: usize,
    /// Seeds per (workload, protocol, placement) baseline cell; each seed drives both
    /// the Poisson trace and the fault plan.
    pub seeds_per_cell: usize,
    /// Seeded repetitions per scenario-family cell.
    pub scenario_reps: usize,
    /// Virtual duration of each run (ms).
    pub duration_ms: f64,
    /// Placements swept.
    pub placements: Vec<PlacementChoice>,
}

/// A named placement family; combined with a protocol it yields a concrete
/// [`Configuration`] (always built for [`CAMPAIGN_F`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementChoice {
    /// The paper's running examples: ABD over {Tokyo, LA, Oregon}, CAS(5,3) over
    /// {Singapore, Frankfurt, Virginia, LA, Oregon} (Figure 4 / §4.2).
    Paper,
    /// A deliberately spread alternative touching every region, so correlated-region
    /// outages and flash crowds land differently than on the paper placement.
    Spread,
}

impl PlacementChoice {
    /// Short label for cell ids and reports.
    pub fn label(self) -> &'static str {
        match self {
            PlacementChoice::Paper => "paper",
            PlacementChoice::Spread => "spread",
        }
    }

    /// The DCs hosting the key under `protocol`.
    pub fn dcs(self, protocol: ProtocolKind) -> Vec<DcId> {
        let loc = |l: GcpLocation| l.dc();
        match (self, protocol) {
            (PlacementChoice::Paper, ProtocolKind::Abd) => vec![
                loc(GcpLocation::Tokyo),
                loc(GcpLocation::LosAngeles),
                loc(GcpLocation::Oregon),
            ],
            (PlacementChoice::Paper, ProtocolKind::Cas) => vec![
                loc(GcpLocation::Singapore),
                loc(GcpLocation::Frankfurt),
                loc(GcpLocation::Virginia),
                loc(GcpLocation::LosAngeles),
                loc(GcpLocation::Oregon),
            ],
            (PlacementChoice::Spread, ProtocolKind::Abd) => vec![
                loc(GcpLocation::Tokyo),
                loc(GcpLocation::Frankfurt),
                loc(GcpLocation::Virginia),
            ],
            (PlacementChoice::Spread, ProtocolKind::Cas) => vec![
                loc(GcpLocation::Tokyo),
                loc(GcpLocation::Sydney),
                loc(GcpLocation::Frankfurt),
                loc(GcpLocation::Virginia),
                loc(GcpLocation::Oregon),
            ],
        }
    }

    /// The concrete configuration for `protocol` (ABD majority / CAS(5,3), f = 1).
    pub fn config(self, protocol: ProtocolKind) -> Configuration {
        let dcs = self.dcs(protocol);
        match protocol {
            ProtocolKind::Abd => Configuration::abd_majority(dcs, CAMPAIGN_F),
            ProtocolKind::Cas => Configuration::cas_default(dcs, 3, CAMPAIGN_F),
        }
    }
}

/// The five scenario families a campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScenarioFamily {
    /// A stationary grid workload under a seeded within-`f` fault plan.
    Baseline,
    /// Day/night sinusoidal load swing (no faults): §3.4's "workload changes" case.
    Diurnal,
    /// A surge window concentrating traffic onto one DC.
    FlashCrowd,
    /// A whole geographic region crashing and healing together.
    RegionOutage,
    /// A mid-run workload shift that the live monitor must answer with an ABD↔CAS /
    /// placement reconfiguration.
    ProtocolFlip,
    /// Seeded concurrent reconfigurations (ABD↔CAS epoch flips mid-traffic) under a
    /// within-`f` fault plan drawn over *both* placements: the transfer path itself
    /// under fire. Expected: at least one reconfiguration completes and every history
    /// stays linearizable.
    ReconfigStorm,
}

impl ScenarioFamily {
    /// The five non-baseline families, in sweep order.
    pub const SCENARIOS: [ScenarioFamily; 5] = [
        ScenarioFamily::Diurnal,
        ScenarioFamily::FlashCrowd,
        ScenarioFamily::RegionOutage,
        ScenarioFamily::ProtocolFlip,
        ScenarioFamily::ReconfigStorm,
    ];

    /// Short label for cell ids and reports.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioFamily::Baseline => "baseline",
            ScenarioFamily::Diurnal => "diurnal",
            ScenarioFamily::FlashCrowd => "flash-crowd",
            ScenarioFamily::RegionOutage => "region-outage",
            ScenarioFamily::ProtocolFlip => "protocol-flip",
            ScenarioFamily::ReconfigStorm => "reconfig-storm",
        }
    }
}

/// One run the campaign engine will execute.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Stable, unique id: `family/workload/protocol/placement/s<seed-index>`.
    pub id: String,
    /// Scenario family this cell belongs to.
    pub family: ScenarioFamily,
    /// The (stationary) workload the cell starts from; scenario families warp it.
    pub workload: WorkloadSpec,
    /// Protocol under test (ignored by [`ScenarioFamily::ProtocolFlip`], whose
    /// configurations come from the optimizer).
    pub protocol: ProtocolKind,
    /// Placement family under test.
    pub placement: PlacementChoice,
    /// Seed driving the trace, the fault plan and any scenario coin flips.
    pub seed: u64,
    /// Virtual duration of the run (ms).
    pub duration_ms: f64,
}

impl CellSpec {
    /// Number of keys the cell's trace is spread over: at least [`KEYS_PER_CELL`],
    /// widened so no key sees more than [`MAX_RATE_PER_KEY`] req/s. Higher-rate
    /// workloads naturally touch more keys, and the cap bounds per-key concurrency —
    /// the quantity the linearizability checker's search is exponential in.
    pub fn keys(&self) -> usize {
        let by_rate = (self.workload.arrival_rate / MAX_RATE_PER_KEY).ceil() as usize;
        by_rate.max(KEYS_PER_CELL)
    }
}

/// A declarative campaign: a tier plus a base seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Budget tier.
    pub tier: Tier,
    /// Base seed; every cell's seed is `seed_base + <stable offset>`.
    pub seed_base: u64,
}

impl SweepSpec {
    /// The default campaign for `tier` (seed base 42, the repo-wide convention).
    pub fn for_tier(tier: Tier) -> SweepSpec {
        SweepSpec { tier, seed_base: 42 }
    }

    /// Expands the spec into the concrete cell list. Pure: same spec ⇒ same cells,
    /// same order, same seeds.
    pub fn cells(&self) -> Vec<CellSpec> {
        let budget = self.tier.budget();
        let model = CloudModel::gcp9();
        let grid = basic_workloads(&model, SLO_GET_MS, SLO_PUT_MS, CAMPAIGN_F);
        let mut out = Vec::new();
        let mut offset: u64 = 0;
        let mut push = |out: &mut Vec<CellSpec>,
                        family: ScenarioFamily,
                        workload: &WorkloadSpec,
                        protocol: ProtocolKind,
                        placement: PlacementChoice,
                        rep: usize| {
            let proto_label = match protocol {
                ProtocolKind::Abd => "abd",
                ProtocolKind::Cas => "cas",
            };
            let id = format!(
                "{}/{}/{}/{}/s{}",
                family.label(),
                workload.name,
                proto_label,
                placement.label(),
                rep
            );
            out.push(CellSpec {
                id,
                family,
                workload: workload.clone(),
                protocol,
                placement,
                seed: self.seed_base + offset,
                duration_ms: budget.duration_ms,
            });
            offset += 1;
        };

        // Baseline grid slice: workload × protocol × placement × seed.
        for workload in grid.iter().step_by(budget.grid_stride.max(1)) {
            for &placement in &budget.placements {
                for protocol in [ProtocolKind::Abd, ProtocolKind::Cas] {
                    for rep in 0..budget.seeds_per_cell {
                        push(&mut out, ScenarioFamily::Baseline, workload, protocol, placement, rep);
                    }
                }
            }
        }

        // Scenario families: family × protocol × placement × rep (ProtocolFlip picks
        // its own configurations, so it sweeps only reps × placements).
        for family in ScenarioFamily::SCENARIOS {
            let workload = scenario_workload(family, &model);
            for &placement in &budget.placements {
                if family == ScenarioFamily::ProtocolFlip {
                    for rep in 0..budget.scenario_reps {
                        push(&mut out, family, &workload, ProtocolKind::Abd, placement, rep);
                    }
                } else {
                    for protocol in [ProtocolKind::Abd, ProtocolKind::Cas] {
                        for rep in 0..budget.scenario_reps {
                            push(&mut out, family, &workload, protocol, placement, rep);
                        }
                    }
                }
            }
        }
        out
    }
}

/// The stationary workload each scenario family starts from. Scenario cells do not
/// sweep the grid (the baseline slice covers it); they pin one representative spec and
/// vary seeds instead.
pub fn scenario_workload(family: ScenarioFamily, model: &CloudModel) -> WorkloadSpec {
    let mut spec = WorkloadSpec::example();
    spec.metadata_size = legostore_cloud::METADATA_BYTES;
    spec.slo_get_ms = SLO_GET_MS;
    spec.slo_put_ms = SLO_PUT_MS;
    spec.fault_tolerance = CAMPAIGN_F;
    spec.total_data_bytes = 100 * 1_000_000_000;
    match family {
        ScenarioFamily::Baseline => {
            spec.name = "baseline".into();
        }
        ScenarioFamily::Diurnal => {
            spec.name = "diurnal-10k-RW".into();
            spec.object_size = 10 * 1024;
            spec.read_ratio = 0.5;
            spec.arrival_rate = 240.0;
            spec.client_distribution = vec![
                (GcpLocation::Tokyo.dc(), 0.5),
                (GcpLocation::Frankfurt.dc(), 0.5),
            ];
        }
        ScenarioFamily::FlashCrowd => {
            spec.name = "flash-10k-HR".into();
            spec.object_size = 10 * 1024;
            spec.read_ratio = 30.0 / 31.0;
            spec.arrival_rate = 300.0;
            spec.client_distribution = vec![
                (GcpLocation::LosAngeles.dc(), 0.5),
                (GcpLocation::Oregon.dc(), 0.5),
            ];
        }
        ScenarioFamily::RegionOutage => {
            spec.name = "outage-10k-RW".into();
            spec.object_size = 10 * 1024;
            spec.read_ratio = 0.5;
            spec.arrival_rate = 240.0;
            spec.client_distribution = client_distribution(ClientDistribution::Uniform, model);
        }
        ScenarioFamily::ProtocolFlip => {
            // Epoch 1 of the flip scenario: 1 KB mixed traffic split between Sydney
            // and Frankfurt under a 300 ms SLO. CAS's 3-phase PUT cannot fit that
            // budget from clients this spread out, so the optimizer answers ABD.
            // Epoch 2 (see [`flip_epoch2_workload`]) collapses onto read-heavy
            // Tokyo-only traffic, where CAS fits the same SLO and is cheaper.
            spec.name = "flip-1k-RW-to-HR".into();
            spec.slo_get_ms = 300.0;
            spec.slo_put_ms = 300.0;
            spec.object_size = 1024;
            spec.read_ratio = 0.5;
            spec.arrival_rate = 150.0;
            spec.client_distribution = vec![
                (GcpLocation::Sydney.dc(), 0.5),
                (GcpLocation::Frankfurt.dc(), 0.5),
            ];
        }
        ScenarioFamily::ReconfigStorm => {
            // Write-heavy enough that PUTs are always in flight when an epoch flips
            // (the cross-epoch double-apply needs a redirected write), from clients
            // near the old placement, the new placement, and a third-party region.
            spec.name = "storm-1k-RW".into();
            spec.object_size = 1024;
            spec.read_ratio = 0.5;
            spec.arrival_rate = 150.0;
            spec.client_distribution = vec![
                (GcpLocation::Tokyo.dc(), 0.4),
                (GcpLocation::Oregon.dc(), 0.3),
                (GcpLocation::Frankfurt.dc(), 0.3),
            ];
        }
    }
    spec
}

/// The epoch-2 workload of the ABD↔CAS flip scenario: the drifted mix the monitor
/// should detect and the optimizer should answer with a different protocol/placement.
pub fn flip_epoch2_workload(model: &CloudModel) -> WorkloadSpec {
    let mut spec = scenario_workload(ScenarioFamily::ProtocolFlip, model);
    spec.name = "flip-epoch2-1k-HR-Tokyo".into();
    spec.read_ratio = 30.0 / 31.0;
    spec.client_distribution = vec![(GcpLocation::Tokyo.dc(), 1.0)];
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_parsing_round_trips() {
        for tier in Tier::ALL {
            assert_eq!(Tier::parse(tier.label()), Some(tier));
        }
        assert_eq!(Tier::parse("bogus"), None);
    }

    #[test]
    fn ci_tier_sweeps_at_least_200_cells_and_every_family() {
        let cells = SweepSpec::for_tier(Tier::Ci).cells();
        assert!(cells.len() >= 200, "ci tier must sweep ≥ 200 cells, got {}", cells.len());
        for family in [
            ScenarioFamily::Baseline,
            ScenarioFamily::Diurnal,
            ScenarioFamily::FlashCrowd,
            ScenarioFamily::RegionOutage,
            ScenarioFamily::ProtocolFlip,
            ScenarioFamily::ReconfigStorm,
        ] {
            assert!(
                cells.iter().any(|c| c.family == family),
                "ci tier misses {family:?}"
            );
        }
    }

    #[test]
    fn cell_ids_are_unique_and_seeds_stable() {
        let a = SweepSpec::for_tier(Tier::Smoke).cells();
        let b = SweepSpec::for_tier(Tier::Smoke).cells();
        let mut ids: Vec<&str> = a.iter().map(|c| c.id.as_str()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), a.len(), "cell ids must be unique");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.seed, y.seed);
        }
    }

    #[test]
    fn full_tier_covers_the_whole_grid() {
        let budget = Tier::Full.budget();
        assert_eq!(budget.grid_stride, 1);
        let baseline: Vec<_> = SweepSpec::for_tier(Tier::Full)
            .cells()
            .into_iter()
            .filter(|c| c.family == ScenarioFamily::Baseline)
            .collect();
        // 567 workloads × 2 protocols × placements × seeds.
        assert_eq!(
            baseline.len(),
            567 * 2 * budget.placements.len() * budget.seeds_per_cell
        );
    }

    #[test]
    fn placements_build_valid_configs() {
        for placement in [PlacementChoice::Paper, PlacementChoice::Spread] {
            let abd = placement.config(ProtocolKind::Abd);
            assert_eq!(abd.protocol, ProtocolKind::Abd);
            assert_eq!(abd.n, 3);
            let cas = placement.config(ProtocolKind::Cas);
            assert_eq!(cas.protocol, ProtocolKind::Cas);
            assert_eq!((cas.n, cas.k), (5, 3));
        }
    }

    #[test]
    fn scenario_workloads_validate() {
        let model = CloudModel::gcp9();
        for family in ScenarioFamily::SCENARIOS {
            scenario_workload(family, &model).validate().expect("valid spec");
        }
        flip_epoch2_workload(&model).validate().expect("valid epoch-2 spec");
    }
}
