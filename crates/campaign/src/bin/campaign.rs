//! `legostore-campaign` — run a tiered scenario campaign and write its reports.
//!
//! ```text
//! legostore-campaign --tier smoke|ci|nightly|full [--out-dir DIR] [--threads N]
//!                    [--seed-base N] [--list]
//! ```
//!
//! Writes `campaign_<tier>.csv` (per-cell rows) and `campaign_<tier>.json` (summary)
//! into `--out-dir` (default `target/campaign`), prints the group rollup, and exits
//! non-zero if any cell violated its expected property. Everything runs on virtual
//! time; two identical invocations produce byte-identical reports.

use legostore_campaign::runner::run_cells;
use legostore_campaign::{Aggregator, SweepSpec, Tier};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    tier: Tier,
    out_dir: PathBuf,
    threads: usize,
    seed_base: u64,
    list: bool,
    only: Option<String>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tier: Tier::Smoke,
        out_dir: PathBuf::from("target/campaign"),
        threads: 0,
        seed_base: 42,
        list: false,
        only: None,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--tier" => {
                let v = value("--tier")?;
                args.tier = Tier::parse(&v)
                    .ok_or_else(|| format!("unknown tier `{v}` (smoke|ci|nightly|full)"))?;
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")?),
            "--threads" => {
                args.threads =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--seed-base" => {
                args.seed_base =
                    value("--seed-base")?.parse().map_err(|e| format!("--seed-base: {e}"))?;
            }
            "--list" => args.list = true,
            "--only" => args.only = Some(value("--only")?),
            "--verbose" => args.verbose = true,
            "--help" | "-h" => {
                println!(
                    "usage: legostore-campaign --tier smoke|ci|nightly|full \
                     [--out-dir DIR] [--threads N] [--seed-base N] [--only SUBSTR] \
                     [--list] [--verbose]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let spec = SweepSpec { tier: args.tier, seed_base: args.seed_base };
    let mut cells = spec.cells();
    if let Some(filter) = &args.only {
        cells.retain(|c| c.id.contains(filter.as_str()));
    }
    if args.list {
        for cell in &cells {
            println!("{}", cell.id);
        }
        println!("{} cells", cells.len());
        return ExitCode::SUCCESS;
    }

    println!(
        "campaign tier={} cells={} seed_base={}",
        args.tier.label(),
        cells.len(),
        args.seed_base
    );
    let outcomes = run_cells(&cells, args.threads, args.verbose);
    let mut agg = Aggregator::new(args.tier.label());
    for outcome in outcomes {
        agg.ingest(outcome);
    }
    let report = agg.finish();

    println!(
        "{:<14} {:<10} {:<8} {:>5} {:>6} {:>9} {:>9} {:>9} {:>8}",
        "family", "protocol", "place", "cells", "failed", "p50_ms", "p99_ms", "ops/s", "avail"
    );
    for g in &report.groups {
        println!(
            "{:<14} {:<10} {:<8} {:>5} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>8.4}",
            g.family,
            g.protocol,
            g.placement,
            g.cells,
            g.failed,
            g.median_p50_ms,
            g.median_p99_ms,
            g.median_ops_per_sec,
            g.mean_availability,
        );
    }
    for failure in report.failures() {
        eprintln!("FAIL {}: {}", failure.cell_id, failure.violations.join("; "));
    }

    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("error: creating {}: {e}", args.out_dir.display());
        return ExitCode::from(2);
    }
    let csv_path = args.out_dir.join(format!("campaign_{}.csv", args.tier.label()));
    let json_path = args.out_dir.join(format!("campaign_{}.json", args.tier.label()));
    for (path, body) in [(&csv_path, report.to_csv()), (&json_path, report.to_json())] {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let failed = report.failures().len();
    println!(
        "{} cells, {} failed, fingerprint {:016x} -> {}, {}",
        report.rows.len(),
        failed,
        report.fingerprint,
        csv_path.display(),
        json_path.display()
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
