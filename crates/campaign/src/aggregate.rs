//! Streaming aggregation of [`RunOutcome`]s into deterministic CSV / JSON reports.
//!
//! The aggregator is order-insensitive: outcomes may arrive in any completion order
//! (the thread pool races), but [`Aggregator::finish`] sorts rows by cell id and
//! derives every summary from that sorted list, so two runs of the same campaign emit
//! byte-identical reports. No wall-clock time, hostnames or paths appear anywhere in
//! the output — the report's identity is its [`CampaignReport::fingerprint`], an
//! FNV-1a digest of the CSV body that regression tooling can pin.

use crate::outcome::{fnv1a, RunOutcome};
use std::collections::BTreeMap;

/// Version of the report schema; bumped whenever a column or JSON field changes
/// meaning, so downstream tooling can refuse reports it does not understand.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Per-(family, protocol, placement) rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Scenario family label.
    pub family: String,
    /// Protocol label (including flip labels like `abd->cas`).
    pub protocol: String,
    /// Placement label.
    pub placement: String,
    /// Cells in the group.
    pub cells: usize,
    /// Cells that violated their expected property.
    pub failed: usize,
    /// Median of the cells' p50 latencies (ms).
    pub median_p50_ms: f64,
    /// Median of the cells' p99 latencies (ms).
    pub median_p99_ms: f64,
    /// Median of the cells' throughputs (ops/s).
    pub median_ops_per_sec: f64,
    /// Mean availability across cells.
    pub mean_availability: f64,
    /// Summed network dollars across cells.
    pub total_cost_usd: f64,
    /// Summed completed reconfigurations across cells.
    pub reconfigs: usize,
}

/// A finished campaign: sorted per-cell rows, group rollups, the failure list and the
/// regression fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Tier label the campaign ran under.
    pub tier: String,
    /// All outcomes, sorted by cell id.
    pub rows: Vec<RunOutcome>,
    /// Group rollups, sorted by (family, protocol, placement).
    pub groups: Vec<GroupSummary>,
    /// FNV-1a digest of the CSV body.
    pub fingerprint: u64,
}

/// Ingests outcomes as they complete and reduces them on [`Aggregator::finish`].
#[derive(Debug)]
pub struct Aggregator {
    tier: String,
    outcomes: Vec<RunOutcome>,
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

fn median_of(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    median(&v)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Aggregator {
    /// A fresh aggregator for a campaign running under `tier`.
    pub fn new(tier: &str) -> Aggregator {
        Aggregator { tier: tier.to_string(), outcomes: Vec::new() }
    }

    /// Adds one finished cell; call order does not matter.
    pub fn ingest(&mut self, outcome: RunOutcome) {
        self.outcomes.push(outcome);
    }

    /// Reduces everything ingested so far into a deterministic report.
    pub fn finish(mut self) -> CampaignReport {
        self.outcomes.sort_by(|a, b| a.cell_id.cmp(&b.cell_id));
        let rows = self.outcomes;

        let mut grouped: BTreeMap<(String, String, String), Vec<&RunOutcome>> = BTreeMap::new();
        for row in &rows {
            grouped
                .entry((row.family.clone(), row.protocol.clone(), row.placement.clone()))
                .or_default()
                .push(row);
        }
        let groups = grouped
            .into_iter()
            .map(|((family, protocol, placement), members)| GroupSummary {
                family,
                protocol,
                placement,
                cells: members.len(),
                failed: members.iter().filter(|m| !m.passed()).count(),
                median_p50_ms: median_of(members.iter().map(|m| m.p50_ms)),
                median_p99_ms: median_of(members.iter().map(|m| m.p99_ms)),
                median_ops_per_sec: median_of(members.iter().map(|m| m.ops_per_sec)),
                mean_availability: members.iter().map(|m| m.availability).sum::<f64>()
                    / members.len() as f64,
                total_cost_usd: members.iter().map(|m| m.cost_usd).sum(),
                reconfigs: members.iter().map(|m| m.reconfigs).sum(),
            })
            .collect();

        let mut report =
            CampaignReport { tier: self.tier, rows, groups, fingerprint: 0 };
        report.fingerprint = fnv1a(report.to_csv().as_bytes());
        report
    }
}

impl CampaignReport {
    /// Cells that violated their expected property, in cell-id order.
    pub fn failures(&self) -> Vec<&RunOutcome> {
        self.rows.iter().filter(|r| !r.passed()).collect()
    }

    /// True when every cell passed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.passed())
    }

    /// The per-cell CSV table (one row per cell, sorted by cell id).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "cell,family,workload,protocol,placement,seed,ops,failures,availability,\
             linearizable,p50_ms,p99_ms,mean_ms,ops_per_sec,cost_usd,reconfigs,\
             timeout_widens,sim_fingerprint,obs_digest,pass,violations\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{:.6},{},{:.3},{:.3},{:.3},{:.3},{:.9},{},{},\
                 {:016x},{:016x},{},{}\n",
                r.cell_id,
                r.family,
                r.workload,
                r.protocol,
                r.placement,
                r.seed,
                r.ops,
                r.failures,
                r.availability,
                match r.linearizable {
                    Some(true) => "true",
                    Some(false) => "false",
                    None => "skipped",
                },
                r.p50_ms,
                r.p99_ms,
                r.mean_ms,
                r.ops_per_sec,
                r.cost_usd,
                r.reconfigs,
                r.timeout_widens,
                r.sim_fingerprint,
                r.obs_digest,
                if r.passed() { "pass" } else { "FAIL" },
                r.violations.join("|").replace(',', ";"),
            ));
        }
        out
    }

    /// The summary JSON document (schema, totals, group rollups, failure list,
    /// fingerprint). Deterministic: keys and rows are in fixed order, floats in fixed
    /// precision, and no timestamps appear.
    pub fn to_json(&self) -> String {
        let failed = self.failures();
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {REPORT_SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"tier\": \"{}\",\n", json_escape(&self.tier)));
        out.push_str(&format!("  \"cells\": {},\n", self.rows.len()));
        out.push_str(&format!("  \"passed\": {},\n", self.rows.len() - failed.len()));
        out.push_str(&format!("  \"failed\": {},\n", failed.len()));
        out.push_str(&format!("  \"fingerprint\": \"{:016x}\",\n", self.fingerprint));
        out.push_str("  \"groups\": [\n");
        for (i, g) in self.groups.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"family\": \"{}\", \"protocol\": \"{}\", \"placement\": \"{}\", \
                 \"cells\": {}, \"failed\": {}, \"median_p50_ms\": {:.3}, \
                 \"median_p99_ms\": {:.3}, \"median_ops_per_sec\": {:.3}, \
                 \"mean_availability\": {:.6}, \"total_cost_usd\": {:.9}, \
                 \"reconfigs\": {}}}{}\n",
                json_escape(&g.family),
                json_escape(&g.protocol),
                json_escape(&g.placement),
                g.cells,
                g.failed,
                g.median_p50_ms,
                g.median_p99_ms,
                g.median_ops_per_sec,
                g.mean_availability,
                g.total_cost_usd,
                g.reconfigs,
                if i + 1 < self.groups.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"failures\": [\n");
        for (i, r) in failed.iter().enumerate() {
            let violations: Vec<String> =
                r.violations.iter().map(|v| format!("\"{}\"", json_escape(v))).collect();
            out.push_str(&format!(
                "    {{\"cell\": \"{}\", \"violations\": [{}]}}{}\n",
                json_escape(&r.cell_id),
                violations.join(", "),
                if i + 1 < failed.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: &str, family: &str, pass: bool) -> RunOutcome {
        RunOutcome {
            cell_id: id.into(),
            family: family.into(),
            workload: "w".into(),
            protocol: "abd".into(),
            placement: "paper".into(),
            seed: 1,
            ops: 100,
            failures: usize::from(!pass),
            availability: if pass { 1.0 } else { 0.5 },
            linearizable: Some(true),
            p50_ms: 100.0,
            p99_ms: 300.0,
            mean_ms: 120.0,
            ops_per_sec: 50.0,
            cost_usd: 0.001,
            reconfigs: 0,
            timeout_widens: 0,
            sim_fingerprint: 0xabc,
            obs_digest: 0xdef,
            violations: if pass { vec![] } else { vec!["availability 0.5 below 0.9".into()] },
        }
    }

    #[test]
    fn ingest_order_does_not_change_the_report() {
        let mut a = Aggregator::new("smoke");
        a.ingest(outcome("b/cell", "baseline", true));
        a.ingest(outcome("a/cell", "baseline", false));
        let mut b = Aggregator::new("smoke");
        b.ingest(outcome("a/cell", "baseline", false));
        b.ingest(outcome("b/cell", "baseline", true));
        let (ra, rb) = (a.finish(), b.finish());
        assert_eq!(ra.to_csv(), rb.to_csv());
        assert_eq!(ra.to_json(), rb.to_json());
        assert_eq!(ra.fingerprint, rb.fingerprint);
    }

    #[test]
    fn failures_are_listed_not_swallowed() {
        let mut agg = Aggregator::new("smoke");
        agg.ingest(outcome("x/bad", "baseline", false));
        agg.ingest(outcome("x/good", "baseline", true));
        let report = agg.finish();
        assert!(!report.passed());
        assert_eq!(report.failures().len(), 1);
        let json = report.to_json();
        assert!(json.contains("\"failed\": 1"));
        assert!(json.contains("x/bad"));
        assert!(json.contains("availability 0.5 below 0.9"));
        let csv = report.to_csv();
        assert!(csv.contains("FAIL"));
    }

    #[test]
    fn groups_roll_up_medians() {
        let mut agg = Aggregator::new("smoke");
        for (i, p50) in [10.0, 20.0, 30.0].iter().enumerate() {
            let mut o = outcome(&format!("g/{i}"), "diurnal", true);
            o.p50_ms = *p50;
            agg.ingest(o);
        }
        let report = agg.finish();
        assert_eq!(report.groups.len(), 1);
        let g = &report.groups[0];
        assert_eq!(g.cells, 3);
        assert_eq!(g.median_p50_ms, 20.0);
        assert_eq!(g.failed, 0);
    }

    #[test]
    fn csv_never_embeds_raw_commas_from_violations() {
        let mut o = outcome("v/cell", "baseline", false);
        o.violations = vec!["a, b".into()];
        let mut agg = Aggregator::new("smoke");
        agg.ingest(o);
        let csv = agg.finish().to_csv();
        let data_line = csv.lines().nth(1).unwrap();
        let header_cols = csv.lines().next().unwrap().split(',').count();
        assert_eq!(data_line.split(',').count(), header_cols);
    }
}
