//! Per-run results and the per-scenario "what does pass mean" contract.

use crate::spec::CellSpec;
use legostore_obs::{Obs, ObsConfig};
use legostore_sim::SimReport;

/// Per-key step budget for the linearizability search. Deciding without backtracking
/// costs ~2 steps per operation, so a campaign-sized history (tens of ops per key)
/// normally finishes in well under a thousand steps; two million only trips on
/// adversarial interleavings whose DFS would otherwise run for minutes. Budget
/// exhaustion is deterministic (a pure function of the history), so reports stay
/// byte-reproducible.
const CHECK_STEP_BUDGET: u64 = 2_000_000;

/// What a scenario promises: the checker side of the (schedule, fault plan,
/// expected-property) triple. Linearizability is always required; the rest varies by
/// family (a region outage *should* fail some ops, a fault-free diurnal run none).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedProperty {
    /// Minimum fraction of operations that must succeed.
    pub min_availability: f64,
    /// Maximum fraction allowed to succeed — `Some` for scenarios that are vacuous
    /// unless something actually failed (e.g. a region outage that never bit).
    pub max_availability: Option<f64>,
    /// If set, no operation *started* at or after this instant may fail: liveness must
    /// return once the faults heal.
    pub live_after_ms: Option<f64>,
    /// Minimum number of completed reconfigurations (the flip scenario's teeth).
    pub min_reconfigs: usize,
    /// Minimum total timeout-widen retries — evidence that a fault scenario actually
    /// stressed the run. Within-`f` faults are *supposed* to leave availability at
    /// 1.0 (ops retry and complete), so failed ops cannot prove the faults bit;
    /// retries can.
    pub min_timeout_widens: u64,
}

impl ExpectedProperty {
    /// Fault-free schedule: every operation must succeed.
    pub fn always_live() -> ExpectedProperty {
        ExpectedProperty {
            min_availability: 1.0,
            max_availability: None,
            live_after_ms: None,
            min_reconfigs: 0,
            min_timeout_widens: 0,
        }
    }

    /// Within-`f` faults: high availability, and full liveness after `heal_ms`.
    pub fn safe_with_recovery(min_availability: f64, heal_ms: f64) -> ExpectedProperty {
        ExpectedProperty {
            min_availability,
            max_availability: None,
            live_after_ms: Some(heal_ms),
            min_reconfigs: 0,
            min_timeout_widens: 0,
        }
    }
}

/// The outcome of one campaign cell — everything the aggregator needs, nothing it
/// must recompute.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The cell's stable id.
    pub cell_id: String,
    /// Scenario family label.
    pub family: String,
    /// Workload name.
    pub workload: String,
    /// Protocol label — `abd`, `cas`, or e.g. `abd->cas` for a flip cell.
    pub protocol: String,
    /// Placement label.
    pub placement: String,
    /// Cell seed.
    pub seed: u64,
    /// Total operations issued.
    pub ops: usize,
    /// Operations that failed.
    pub failures: usize,
    /// Fraction of operations that succeeded.
    pub availability: f64,
    /// Whether every per-key history linearized; `None` when the run's history was
    /// unverifiable (no recording, or a failed PUT whose effect is unknowable — the
    /// success-only recorder cannot express "may or may not have been applied").
    pub linearizable: Option<bool>,
    /// Median latency over successful ops (ms).
    pub p50_ms: f64,
    /// 99th-percentile latency over successful ops (ms).
    pub p99_ms: f64,
    /// Mean latency over successful ops (ms).
    pub mean_ms: f64,
    /// Throughput over the virtual duration (ops/s).
    pub ops_per_sec: f64,
    /// Network dollars metered by the simulator.
    pub cost_usd: f64,
    /// Completed reconfigurations.
    pub reconfigs: usize,
    /// Total timeout-widen retries across all ops.
    pub timeout_widens: u64,
    /// The simulation report's FNV-1a fingerprint.
    pub sim_fingerprint: u64,
    /// FNV-1a digest of the run's exported obs metrics snapshot (JSON form).
    pub obs_digest: u64,
    /// Expected-property violations; empty ⇒ the cell passed.
    pub violations: Vec<String>,
}

impl RunOutcome {
    /// True when the cell met its expected property (and linearized).
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// A synthetic outcome for a cell whose runner panicked or could not be set up —
    /// reported as a failure, never swallowed.
    pub fn aborted(cell: &CellSpec, reason: String) -> RunOutcome {
        RunOutcome {
            cell_id: cell.id.clone(),
            family: cell.family.label().into(),
            workload: cell.workload.name.clone(),
            protocol: "n/a".into(),
            placement: cell.placement.label().into(),
            seed: cell.seed,
            ops: 0,
            failures: 0,
            availability: 0.0,
            linearizable: None,
            p50_ms: 0.0,
            p99_ms: 0.0,
            mean_ms: 0.0,
            ops_per_sec: 0.0,
            cost_usd: 0.0,
            reconfigs: 0,
            timeout_widens: 0,
            sim_fingerprint: 0,
            obs_digest: 0,
            violations: vec![format!("aborted: {reason}")],
        }
    }
}

/// FNV-1a over a byte string (the same constants the rest of the repo uses).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Reduces a finished simulation into a [`RunOutcome`], judging it against `expected`.
///
/// The obs digest is produced by exporting the report's metrics into a fresh
/// [`Obs`] registry and hashing the deterministic JSON snapshot — the same bytes a
/// live deployment would scrape, so simulated and real runs are diffable.
pub fn outcome_from_report(
    cell: &CellSpec,
    protocol_label: String,
    report: &SimReport,
    expected: &ExpectedProperty,
) -> RunOutcome {
    let ops = report.operations.len();
    let failures = report.failures();
    let availability = report.availability();
    let timeout_widens: u64 = report
        .operations
        .iter()
        .map(|o| u64::from(o.timeout_retries))
        .sum();
    let lat = report.latency(None, None, None, None);
    let reconfigs = report.reconfig_durations_ms.len();

    // A failed PUT may or may not have been applied; the recorder only keeps
    // successes, so a later read of the phantom value would (wrongly, and at
    // exponential search cost) be flagged. Such histories are unverifiable with a
    // success-only register checker — report them as skipped, never as passed.
    let failed_puts = report
        .operations
        .iter()
        .filter(|o| !o.ok && o.kind == legostore_types::OpKind::Put)
        .count();
    let (linearizable, lin_failures): (Option<bool>, Vec<String>) = match &report.histories {
        Some(recorder) if failed_puts == 0 => {
            let (fails, undecided) = recorder.check_all_within(CHECK_STEP_BUDGET);
            let fails: Vec<String> = fails.into_iter().map(|(k, _)| k).collect();
            if fails.is_empty() && !undecided.is_empty() {
                // No key failed, but some key's search ran out of budget: the run is
                // undecided, reported as skipped — never as passed.
                (None, fails)
            } else {
                (Some(fails.is_empty()), fails)
            }
        }
        Some(_) => (None, Vec::new()),
        None => (None, Vec::new()),
    };

    let obs = Obs::new(ObsConfig::Metrics);
    report.export_metrics(&obs);
    let obs_digest = fnv1a(obs.snapshot().to_json().as_bytes());

    let mut violations = Vec::new();
    if report.histories.is_none() {
        violations.push("no history recorded; linearizability unverified".to_string());
    }
    for key in &lin_failures {
        violations.push(format!("non-linearizable history for {key}"));
    }
    if availability < expected.min_availability {
        violations.push(format!(
            "availability {availability:.4} below required {:.4}",
            expected.min_availability
        ));
    }
    if let Some(max) = expected.max_availability {
        if availability > max {
            violations.push(format!(
                "availability {availability:.4} above {max:.4}: the scenario's stress never bit"
            ));
        }
    }
    if let Some(after) = expected.live_after_ms {
        let late = report.failures_after(after);
        if late > 0 {
            violations.push(format!("{late} op(s) started after heal ({after:.0} ms) failed"));
        }
    }
    if reconfigs < expected.min_reconfigs {
        violations.push(format!(
            "{reconfigs} reconfiguration(s) completed, expected ≥ {}",
            expected.min_reconfigs
        ));
    }
    if timeout_widens < expected.min_timeout_widens {
        violations.push(format!(
            "{timeout_widens} timeout widen(s), expected ≥ {}: the scenario's stress never bit",
            expected.min_timeout_widens
        ));
    }

    RunOutcome {
        cell_id: cell.id.clone(),
        family: cell.family.label().into(),
        workload: cell.workload.name.clone(),
        protocol: protocol_label,
        placement: cell.placement.label().into(),
        seed: cell.seed,
        ops,
        failures,
        availability,
        linearizable,
        p50_ms: lat.p50_ms,
        p99_ms: lat.p99_ms,
        mean_ms: lat.mean_ms,
        ops_per_sec: ops as f64 / (cell.duration_ms / 1_000.0),
        cost_usd: report.cost.total(),
        reconfigs,
        timeout_widens,
        sim_fingerprint: report.fingerprint(),
        obs_digest,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ScenarioFamily, SweepSpec, Tier};
    use legostore_sim::OpRecord;
    use legostore_types::{DcId, OpKind};

    fn any_cell() -> CellSpec {
        SweepSpec::for_tier(Tier::Smoke)
            .cells()
            .into_iter()
            .find(|c| c.family == ScenarioFamily::Baseline)
            .unwrap()
    }

    fn ok_op(start: f64, end: f64) -> OpRecord {
        OpRecord {
            origin: DcId(0),
            kind: OpKind::Get,
            key: "key-0".into(),
            start_ms: start,
            end_ms: end,
            ok: true,
            one_phase: false,
            reconfig_retries: 0,
            timeout_retries: 0,
            object_bytes: 1024,
        }
    }

    #[test]
    fn unrecorded_history_is_a_violation_not_a_pass() {
        let cell = any_cell();
        let mut report = SimReport::default();
        report.operations.push(ok_op(0.0, 10.0));
        let out =
            outcome_from_report(&cell, "abd".into(), &report, &ExpectedProperty::always_live());
        assert_eq!(out.linearizable, None);
        assert!(!out.passed());
        assert!(out.violations[0].contains("unverified"));
    }

    #[test]
    fn expected_property_violations_are_reported() {
        let cell = any_cell();
        let mut report = SimReport::default();
        report.operations.push(ok_op(0.0, 10.0));
        let mut failed = ok_op(5_000.0, 5_010.0);
        failed.ok = false;
        report.operations.push(failed);
        let expected = ExpectedProperty::safe_with_recovery(0.9, 4_000.0);
        let out = outcome_from_report(&cell, "abd".into(), &report, &expected);
        // availability 0.5 < 0.9 and a post-heal failure: both violations present.
        assert!(out.violations.iter().any(|v| v.contains("availability")));
        assert!(out.violations.iter().any(|v| v.contains("after heal")));
    }

    #[test]
    fn aborted_outcome_always_fails() {
        let cell = any_cell();
        let out = RunOutcome::aborted(&cell, "panic: boom".into());
        assert!(!out.passed());
        assert_eq!(out.cell_id, cell.id);
    }
}
