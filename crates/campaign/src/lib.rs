//! Campaign engine: massive seeded scenario sweeps over the simulator.
//!
//! The paper's evaluation is a grid study; this crate turns the repo's simulator,
//! workload grid, fault plans and live-monitor machinery into a repeatable evidence
//! pipeline. A campaign is a declarative [`SweepSpec`] — (workload grid slice ×
//! fault-plan seed range × protocol × placement × scenario family) under a budget
//! [`Tier`] — expanded into seeded cells, fanned across a bounded thread pool on
//! virtual time, and reduced by a streaming [`Aggregator`] into deterministic CSV /
//! JSON reports with regression-friendly fingerprints.
//!
//! ```
//! use legostore_campaign::{run_campaign, Aggregator, SweepSpec, Tier};
//!
//! let spec = SweepSpec::for_tier(Tier::Smoke);
//! let mut agg = Aggregator::new(spec.tier.label());
//! for outcome in run_campaign(&spec, 0) {
//!     agg.ingest(outcome);
//! }
//! let report = agg.finish();
//! assert!(report.rows.len() >= 20);
//! ```
//!
//! The `legostore-campaign` binary wraps exactly this loop behind
//! `--tier smoke|ci|nightly|full`.

pub mod aggregate;
pub mod outcome;
pub mod runner;
pub mod spec;

pub use aggregate::{Aggregator, CampaignReport, GroupSummary, REPORT_SCHEMA_VERSION};
pub use outcome::{outcome_from_report, ExpectedProperty, RunOutcome};
pub use runner::{run_campaign, run_cell};
pub use spec::{
    scenario_workload, CellSpec, PlacementChoice, ScenarioFamily, SweepSpec, Tier, TierBudget,
};
