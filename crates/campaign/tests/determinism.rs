//! Campaign determinism and the negative control.
//!
//! The whole value of a regression campaign is that its reports are *diffable*: the
//! same sweep spec and seed base must produce byte-identical CSV and JSON no matter
//! how the cells were scheduled across workers. And a checker that can never fail is
//! worthless, so the negative control injects a known-stale history and asserts the
//! linearizability failure survives all the way into the reports.

use legostore_campaign::runner::run_campaign;
use legostore_campaign::{
    outcome_from_report, Aggregator, ExpectedProperty, ScenarioFamily, SweepSpec, Tier,
};
use legostore_lincheck::HistoryRecorder;
use legostore_sim::{OpRecord, SimReport};
use legostore_types::{DcId, OpKind};
use std::sync::Arc;

fn aggregate(tier: Tier, threads: usize) -> (String, String) {
    let spec = SweepSpec::for_tier(tier);
    let mut agg = Aggregator::new(tier.label());
    for outcome in run_campaign(&spec, threads) {
        agg.ingest(outcome);
    }
    let report = agg.finish();
    (report.to_csv(), report.to_json())
}

#[test]
fn smoke_reports_are_byte_identical_across_runs_and_thread_counts() {
    // Different worker counts force different completion interleavings; the reports
    // must not care.
    let (csv_a, json_a) = aggregate(Tier::Smoke, 2);
    let (csv_b, json_b) = aggregate(Tier::Smoke, 4);
    assert_eq!(csv_a, csv_b, "CSV must be byte-identical across reruns");
    assert_eq!(json_a, json_b, "JSON must be byte-identical across reruns");
    assert!(csv_a.lines().count() > 20, "smoke tier writes one row per cell");
}

/// Negative control: a run whose history contains a stale read (a value read *after*
/// a later write completed) must be reported as a linearizability failure — by the
/// outcome, by the CSV row, and by the campaign's failure list. A checker pipeline
/// that swallows this is broken.
#[test]
fn injected_stale_read_is_reported_not_swallowed() {
    let cell = SweepSpec::for_tier(Tier::Smoke)
        .cells()
        .into_iter()
        .find(|c| c.family == ScenarioFamily::Baseline)
        .unwrap();

    let recorder = HistoryRecorder::new();
    recorder.register_key("key-0", 0);
    recorder.record_put("key-0", 1, 0xAAAA, 100, 200);
    recorder.record_put("key-0", 2, 0xBBBB, 300, 400);
    // Stale: reads the first value strictly after the second write returned.
    recorder.record_get("key-0", 3, 0xAAAA, 500, 600);

    let mut report = SimReport::default();
    for i in 0..3u32 {
        report.operations.push(OpRecord {
            origin: DcId(0),
            kind: if i < 2 { OpKind::Put } else { OpKind::Get },
            key: "key-0".into(),
            start_ms: f64::from(i) * 10.0,
            end_ms: f64::from(i) * 10.0 + 5.0,
            ok: true,
            one_phase: false,
            reconfig_retries: 0,
            timeout_retries: 0,
            object_bytes: 1024,
        });
    }
    report.histories = Some(Arc::new(recorder));

    let outcome =
        outcome_from_report(&cell, "abd".into(), &report, &ExpectedProperty::always_live());
    assert_eq!(outcome.linearizable, Some(false));
    assert!(
        outcome.violations.iter().any(|v| v.contains("non-linearizable")),
        "stale read must surface as a violation: {:?}",
        outcome.violations
    );

    let mut agg = Aggregator::new("negative-control");
    agg.ingest(outcome);
    let campaign = agg.finish();
    assert_eq!(campaign.failures().len(), 1, "the failing cell must be listed");
    let csv = campaign.to_csv();
    let row = csv.lines().nth(1).expect("one data row");
    assert!(row.contains(",false,"), "CSV must mark the cell non-linearizable: {row}");
    assert!(campaign.to_json().contains("non-linearizable"));
}
