//! End-to-end scenario-family checks on real simulations.
//!
//! The headline case is the seeded ABD↔CAS flip: the optimizer must answer ABD for
//! the spread-out epoch-1 mix, the PR 8 live-monitor path must detect the drift to
//! Tokyo-only read-heavy traffic, and the resulting re-plan must actually reconfigure
//! every key to CAS mid-run — proven by the run's own reconfiguration count.

use legostore_campaign::runner::run_cell;
use legostore_campaign::{ScenarioFamily, SweepSpec, Tier};
use legostore_types::ProtocolKind;

fn smoke_cell(family: ScenarioFamily, protocol: ProtocolKind) -> legostore_campaign::CellSpec {
    SweepSpec::for_tier(Tier::Smoke)
        .cells()
        .into_iter()
        .find(|c| c.family == family && c.protocol == protocol)
        .expect("smoke tier covers every family")
}

#[test]
fn seeded_flip_cell_reconfigures_abd_to_cas_via_the_live_monitor() {
    let cell = smoke_cell(ScenarioFamily::ProtocolFlip, ProtocolKind::Abd);
    let out = run_cell(&cell);
    assert_eq!(
        out.protocol, "abd->cas",
        "epoch 1 must plan ABD and the monitor-driven re-plan must answer CAS \
         (violations: {:?})",
        out.violations
    );
    assert!(out.reconfigs >= 1, "the flip must complete at least one reconfiguration");
    assert!(out.passed(), "flip cell failed: {:?}", out.violations);
    assert_eq!(out.linearizable, Some(true), "the flip run must stay linearizable");
}

#[test]
fn region_outage_cell_shows_stress_and_recovers() {
    let cell = smoke_cell(ScenarioFamily::RegionOutage, ProtocolKind::Abd);
    let out = run_cell(&cell);
    assert!(out.passed(), "outage cell failed: {:?}", out.violations);
    assert!(
        out.timeout_widens >= 1,
        "a region outage with clients in every DC must force timeout widens"
    );
    assert!(out.availability >= 0.5);
}

#[test]
fn reconfig_storm_cell_moves_the_keys_and_stays_linearizable() {
    // Both flip directions: the ABD cell storms ABD→CAS→ABD, the CAS cell the reverse.
    for protocol in [ProtocolKind::Abd, ProtocolKind::Cas] {
        let cell = smoke_cell(ScenarioFamily::ReconfigStorm, protocol);
        let out = run_cell(&cell);
        assert!(out.passed(), "storm cell {} failed: {:?}", out.cell_id, out.violations);
        assert!(
            out.reconfigs >= 1,
            "the storm must complete at least one reconfiguration ({})",
            out.cell_id
        );
        assert_eq!(
            out.linearizable,
            Some(true),
            "a reconfig storm must stay linearizable ({})",
            out.cell_id
        );
    }
}

#[test]
fn flash_crowd_cell_survives_the_surge() {
    let cell = smoke_cell(ScenarioFamily::FlashCrowd, ProtocolKind::Cas);
    let out = run_cell(&cell);
    assert!(out.passed(), "flash crowd cell failed: {:?}", out.violations);
    assert_eq!(out.failures, 0, "a fault-free surge must not fail operations");
    assert_eq!(out.linearizable, Some(true));
}
