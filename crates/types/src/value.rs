//! Values stored in LEGOStore.
//!
//! Values are opaque byte strings. They are reference-counted ([`bytes::Bytes`]) so that the
//! many copies handled by quorum protocols (one message per replica / per codeword symbol)
//! share a single allocation on the client side.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// An opaque, immutable value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Value(#[serde(with = "serde_bytes_compat")] pub Bytes);

impl Value {
    /// An empty value (what CREATE installs by default when no initial value is supplied).
    pub fn empty() -> Self {
        Value(Bytes::new())
    }

    /// Creates a value from any byte-like input.
    pub fn new(data: impl Into<Bytes>) -> Self {
        Value(data.into())
    }

    /// Creates a deterministic filler value of `len` bytes; useful for workload generators
    /// where only the size matters.
    pub fn filler(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        for i in 0..len {
            v.push((i % 251) as u8);
        }
        Value(Bytes::from(v))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the value has no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Clone the underlying `Bytes` handle (cheap).
    pub fn bytes(&self) -> Bytes {
        self.0.clone()
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value(Bytes::from(v))
    }
}

impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value(Bytes::copy_from_slice(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value(Bytes::copy_from_slice(v.as_bytes()))
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// `Bytes` does not implement serde traits without an extra feature, so we (de)serialize
/// through `Vec<u8>`. Serialization of values is only used by tooling (dumps, experiment
/// records), never on the protocol hot path.
// The offline shim derives don't invoke `with =` helpers, so these are only
// type-checked until the real serde is swapped in (see shims/README.md).
#[allow(dead_code)]
mod serde_bytes_compat {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        b.as_ref().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        Ok(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_value() {
        let v = Value::empty();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn filler_has_requested_length_and_is_deterministic() {
        let a = Value::filler(1024);
        let b = Value::filler(1024);
        assert_eq!(a.len(), 1024);
        assert_eq!(a, b);
        assert_ne!(a, Value::filler(1023));
    }

    #[test]
    fn conversions() {
        let v: Value = "hello".into();
        assert_eq!(v.as_bytes(), b"hello");
        let v2: Value = vec![1u8, 2, 3].into();
        assert_eq!(v2.len(), 3);
        assert_eq!(v2.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn bytes_handle_is_shared() {
        let v: Value = Value::filler(64);
        let b = v.bytes();
        assert_eq!(b.len(), 64);
        assert_eq!(&b[..], v.as_bytes());
    }
}
