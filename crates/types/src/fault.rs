//! Deterministic fault plans: the shared vocabulary both runtimes use to inject
//! network and data-center faults.
//!
//! A [`FaultPlan`] is a pure description — a time-ordered schedule of
//! [`FaultEvent`]s plus a seed for the per-message coin flips — with no opinion
//! about who interprets it. The threaded deployment (`legostore-core`) and the
//! discrete-event simulator (`legostore-sim`) both feed the plan into a
//! [`FaultState`] and consult [`FaultState::verdict`] at their transport
//! interposition points, so one plan drives adversarial conditions identically
//! (up to per-message randomness) in both runtimes.
//!
//! Time domain: event times are **model milliseconds**, the simulator's native
//! clock. The threaded deployment multiplies them by its `latency_scale` —
//! exactly as it scales the cloud model's RTTs — so a plan means the same thing
//! at any scale. Extra link/DC delays apply on the *reply* leg only in both
//! runtimes (the threaded deployment models the whole round trip on the reply
//! side; the simulator mirrors that so latency distributions stay comparable).
//!
//! What can be injected:
//!
//! * whole-DC crash + restart ([`FaultKind::CrashDc`] / [`FaultKind::RestartDc`]):
//!   every message to or from the DC is dropped while crashed;
//! * DC partitions, symmetric or asymmetric ([`FaultKind::Partition`] /
//!   [`FaultKind::Heal`]): traffic between the two sides is cut (one direction
//!   only for asymmetric partitions), and healing restores exactly the links
//!   that partition cut — overlapping partitions compose via per-link counts;
//! * slow-DC degradation ([`FaultKind::SlowDc`] / [`FaultKind::RestoreDc`]):
//!   extra delay on every message touching the DC;
//! * per-link drop / delay / duplication ([`FaultKind::LinkFault`] /
//!   [`FaultKind::ClearLink`]): seeded probabilistic loss and duplication.

use crate::DcId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One kind of injected fault (or its repair).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The data center stops sending and receiving: every message to or from it is
    /// dropped until a matching [`FaultKind::RestartDc`].
    CrashDc {
        /// The crashed data center.
        dc: DcId,
    },
    /// Recovers a crashed data center (its stored state was never lost — the paper's
    /// fault model is unavailability, not disk loss).
    RestartDc {
        /// The recovering data center.
        dc: DcId,
    },
    /// Cuts the links between `left` and `right`. Symmetric partitions drop traffic in
    /// both directions; asymmetric ones only `left → right` (messages the other way
    /// still flow, modeling one-way route loss).
    Partition {
        /// Identifier matched by the healing [`FaultKind::Heal`] event.
        id: u32,
        /// One side of the cut.
        left: Vec<DcId>,
        /// The other side of the cut.
        right: Vec<DcId>,
        /// Cut both directions (`true`) or only `left → right` (`false`).
        symmetric: bool,
    },
    /// Heals the partition installed with the same `id`, restoring exactly the links it
    /// cut (links also cut by another still-active partition stay cut).
    Heal {
        /// Identifier of the partition to heal.
        id: u32,
    },
    /// Degrades a data center: every message to or from it gains `extra_ms` of delay.
    SlowDc {
        /// The degraded data center.
        dc: DcId,
        /// Extra one-way delay in model milliseconds (applied on the reply leg).
        extra_ms: f64,
    },
    /// Removes a [`FaultKind::SlowDc`] degradation.
    RestoreDc {
        /// The restored data center.
        dc: DcId,
    },
    /// Installs a lossy link `from → to`: each message is dropped with probability
    /// `drop_prob`, duplicated with probability `dup_prob`, and delayed by `extra_ms`.
    /// Coin flips come from the plan's seeded PRNG and are consumed in
    /// [`FaultState::verdict`] call order: fully reproducible in the single-threaded
    /// simulator, but in the threaded deployment concurrent clients race for draw
    /// order, so *which* messages a lossy link drops can differ between runs (the same
    /// caveat as the virtual clock's concurrent interleavings — crash, partition and
    /// slow-DC effects are draw-free and stay exact).
    LinkFault {
        /// Sending data center.
        from: DcId,
        /// Receiving data center.
        to: DcId,
        /// Per-message drop probability in `[0, 1]`.
        drop_prob: f64,
        /// Per-message duplication probability in `[0, 1]` (checked after drop).
        dup_prob: f64,
        /// Extra delay in model milliseconds for every delivered message.
        extra_ms: f64,
    },
    /// Removes the [`FaultKind::LinkFault`] on `from → to`.
    ClearLink {
        /// Sending data center.
        from: DcId,
        /// Receiving data center.
        to: DcId,
    },
}

/// A fault (or repair) scheduled at a point in model time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault takes effect, in model milliseconds from the start of the run.
    pub at_ms: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, seed-driven schedule of fault events.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-message drop/duplication coin flips.
    pub seed: u64,
    /// The schedule. [`FaultState`] applies events in `at_ms` order regardless of the
    /// order here; [`FaultPlan::sorted`] normalizes it.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults ever).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns the plan with events sorted by time (stable, so simultaneous events keep
    /// their authored order).
    pub fn sorted(mut self) -> FaultPlan {
        self.events
            .sort_by(|a, b| a.at_ms.partial_cmp(&b.at_ms).unwrap_or(std::cmp::Ordering::Equal));
        self
    }

    /// The largest number of data centers that are simultaneously *faulted* — crashed,
    /// on the minority side of an active partition, or slowed — at any instant of the
    /// schedule. Lossy links ([`FaultKind::LinkFault`]) do not count: random loss delays
    /// operations but cannot permanently detach a DC.
    ///
    /// The stress suites compare this against a configuration's fault tolerance `f`:
    /// plans with `max_concurrent_faulted() <= f` must leave the store linearizable
    /// *and* live.
    pub fn max_concurrent_faulted(&self) -> usize {
        let plan = self.clone().sorted();
        let mut crashed: BTreeSet<DcId> = BTreeSet::new();
        let mut slow: BTreeSet<DcId> = BTreeSet::new();
        // partition id → the DCs its minority side detaches.
        let mut partitioned: BTreeMap<u32, Vec<DcId>> = BTreeMap::new();
        let mut max = 0usize;
        for ev in &plan.events {
            match &ev.kind {
                FaultKind::CrashDc { dc } => {
                    crashed.insert(*dc);
                }
                FaultKind::RestartDc { dc } => {
                    crashed.remove(dc);
                }
                FaultKind::SlowDc { dc, .. } => {
                    slow.insert(*dc);
                }
                FaultKind::RestoreDc { dc } => {
                    slow.remove(dc);
                }
                FaultKind::Partition { id, left, right, .. } => {
                    let minority = if left.len() <= right.len() { left } else { right };
                    partitioned.insert(*id, minority.clone());
                }
                FaultKind::Heal { id } => {
                    partitioned.remove(id);
                }
                FaultKind::LinkFault { .. } | FaultKind::ClearLink { .. } => {}
            }
            let mut faulted: BTreeSet<DcId> = crashed.union(&slow).copied().collect();
            for dcs in partitioned.values() {
                faulted.extend(dcs.iter().copied());
            }
            max = max.max(faulted.len());
        }
        max
    }
}

/// What the transport should do with one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkVerdict {
    /// Silently discard the message.
    Drop,
    /// Deliver `copies` copies (1 = normal, 2 = duplicated), each `extra_delay_ms` of
    /// model time later than the fault-free delivery instant.
    Deliver {
        /// Number of copies to deliver.
        copies: u32,
        /// Extra model-milliseconds of delay per copy.
        extra_delay_ms: f64,
    },
}

impl LinkVerdict {
    /// Normal, fault-free delivery.
    pub const CLEAN: LinkVerdict = LinkVerdict::Deliver { copies: 1, extra_delay_ms: 0.0 };

    /// Collapses the verdict into the shape every transport loop wants: `None` to drop the
    /// message, `Some((copies, extra_delay_ms))` to deliver. Keeps the per-copy iteration
    /// identical across the in-process, TCP, and simulator seams.
    pub fn deliveries(self) -> Option<(u32, f64)> {
        match self {
            LinkVerdict::Drop => None,
            LinkVerdict::Deliver { copies, extra_delay_ms } => Some((copies, extra_delay_ms)),
        }
    }
}

/// Active per-link fault parameters (see [`FaultKind::LinkFault`]).
#[derive(Debug, Clone, Copy, PartialEq)]
struct LinkFaultParams {
    drop_prob: f64,
    dup_prob: f64,
    extra_ms: f64,
}

/// The runtime interpreter of a [`FaultPlan`]: tracks which faults are active as model
/// time advances and issues per-message [`LinkVerdict`]s.
///
/// Both runtimes advance the state lazily — [`FaultState::advance_to`] applies every
/// event scheduled at or before the queried instant — so no dedicated fault thread or
/// event type is needed, and a virtual clock that jumps over an entire fault window
/// still observes its effects at the first message sent inside it.
#[derive(Debug, Clone)]
pub struct FaultState {
    /// Remaining schedule, sorted by time.
    events: Vec<FaultEvent>,
    /// Index of the next unapplied event.
    next: usize,
    /// Crashed data centers.
    crashed: BTreeSet<DcId>,
    /// Directed link → number of active partitions cutting it.
    blocked: BTreeMap<(DcId, DcId), u32>,
    /// Active partitions: id → the directed links it cut.
    partitions: BTreeMap<u32, Vec<(DcId, DcId)>>,
    /// Slowed data centers → extra model-ms per message.
    slow: BTreeMap<DcId, f64>,
    /// Active lossy links.
    links: BTreeMap<(DcId, DcId), LinkFaultParams>,
    /// SplitMix64 state for the per-message coin flips.
    rng: u64,
}

impl FaultState {
    /// Builds the interpreter for `plan` with every event still pending.
    pub fn new(plan: &FaultPlan) -> FaultState {
        let sorted = plan.clone().sorted();
        FaultState {
            events: sorted.events,
            next: 0,
            crashed: BTreeSet::new(),
            blocked: BTreeMap::new(),
            partitions: BTreeMap::new(),
            slow: BTreeMap::new(),
            links: BTreeMap::new(),
            // Mix the seed so seed 0 still produces a useful stream.
            rng: plan.seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Applies every event scheduled at or before `now_ms`. Monotonic: earlier instants
    /// are a no-op once passed.
    pub fn advance_to(&mut self, now_ms: f64) {
        while self.next < self.events.len() && self.events[self.next].at_ms <= now_ms {
            let kind = self.events[self.next].kind.clone();
            self.next += 1;
            self.apply(&kind);
        }
    }

    /// Applies one fault immediately, outside the schedule (tests and ad-hoc drivers).
    pub fn apply(&mut self, kind: &FaultKind) {
        match kind {
            FaultKind::CrashDc { dc } => {
                self.crashed.insert(*dc);
            }
            FaultKind::RestartDc { dc } => {
                self.crashed.remove(dc);
            }
            FaultKind::Partition { id, left, right, symmetric } => {
                if self.partitions.contains_key(id) {
                    return; // duplicate install of the same partition: ignore
                }
                let mut cut = Vec::new();
                for l in left {
                    for r in right {
                        cut.push((*l, *r));
                        if *symmetric {
                            cut.push((*r, *l));
                        }
                    }
                }
                for link in &cut {
                    *self.blocked.entry(*link).or_insert(0) += 1;
                }
                self.partitions.insert(*id, cut);
            }
            FaultKind::Heal { id } => {
                if let Some(cut) = self.partitions.remove(id) {
                    for link in cut {
                        if let Some(count) = self.blocked.get_mut(&link) {
                            *count -= 1;
                            if *count == 0 {
                                self.blocked.remove(&link);
                            }
                        }
                    }
                }
            }
            FaultKind::SlowDc { dc, extra_ms } => {
                self.slow.insert(*dc, *extra_ms);
            }
            FaultKind::RestoreDc { dc } => {
                self.slow.remove(dc);
            }
            FaultKind::LinkFault { from, to, drop_prob, dup_prob, extra_ms } => {
                self.links.insert(
                    (*from, *to),
                    LinkFaultParams {
                        drop_prob: *drop_prob,
                        dup_prob: *dup_prob,
                        extra_ms: *extra_ms,
                    },
                );
            }
            FaultKind::ClearLink { from, to } => {
                self.links.remove(&(*from, *to));
            }
        }
    }

    /// Decides the fate of one message on the `from → to` link under the currently
    /// active faults. Consumes PRNG draws only when a lossy link is installed on that
    /// exact directed pair, so fault-free traffic stays deterministic regardless of
    /// query order.
    pub fn verdict(&mut self, from: DcId, to: DcId) -> LinkVerdict {
        if self.crashed.contains(&from) || self.crashed.contains(&to) {
            return LinkVerdict::Drop;
        }
        if self.blocked.get(&(from, to)).copied().unwrap_or(0) > 0 {
            return LinkVerdict::Drop;
        }
        let mut extra = self.slow.get(&from).copied().unwrap_or(0.0)
            + self.slow.get(&to).copied().unwrap_or(0.0);
        let mut copies = 1;
        if let Some(params) = self.links.get(&(from, to)).copied() {
            if self.next_unit() < params.drop_prob {
                return LinkVerdict::Drop;
            }
            if self.next_unit() < params.dup_prob {
                copies = 2;
            }
            extra += params.extra_ms;
        }
        LinkVerdict::Deliver { copies, extra_delay_ms: extra }
    }

    /// True if any fault is currently active (cheap gate for the hot path).
    pub fn any_active(&self) -> bool {
        !self.crashed.is_empty()
            || !self.blocked.is_empty()
            || !self.slow.is_empty()
            || !self.links.is_empty()
    }

    /// True while `dc` is crashed.
    pub fn is_crashed(&self, dc: DcId) -> bool {
        self.crashed.contains(&dc)
    }

    /// True if messages `from → to` are currently cut by a crash or partition
    /// (probabilistic link loss doesn't count: it is not a guaranteed drop).
    pub fn is_blocked(&self, from: DcId, to: DcId) -> bool {
        self.crashed.contains(&from)
            || self.crashed.contains(&to)
            || self.blocked.get(&(from, to)).copied().unwrap_or(0) > 0
    }

    /// Number of events not yet applied.
    pub fn pending_events(&self) -> usize {
        self.events.len() - self.next
    }

    /// Next SplitMix64 draw mapped to `[0, 1)`.
    fn next_unit(&mut self) -> f64 {
        // SplitMix64 (Steele et al.); also what the offline `rand` shim's StdRng uses,
        // so fault coin flips and workload generation share one PRNG family.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dc(i: u16) -> DcId {
        DcId(i)
    }

    #[test]
    fn deliveries_collapses_verdicts() {
        assert_eq!(LinkVerdict::Drop.deliveries(), None);
        assert_eq!(LinkVerdict::CLEAN.deliveries(), Some((1, 0.0)));
        let dup = LinkVerdict::Deliver { copies: 2, extra_delay_ms: 7.5 };
        assert_eq!(dup.deliveries(), Some((2, 7.5)));
    }

    #[test]
    fn crash_drops_both_directions_until_restart() {
        let mut s = FaultState::new(&FaultPlan::none());
        s.apply(&FaultKind::CrashDc { dc: dc(1) });
        assert_eq!(s.verdict(dc(0), dc(1)), LinkVerdict::Drop);
        assert_eq!(s.verdict(dc(1), dc(0)), LinkVerdict::Drop);
        assert_eq!(s.verdict(dc(0), dc(2)), LinkVerdict::CLEAN);
        assert!(s.is_crashed(dc(1)));
        s.apply(&FaultKind::RestartDc { dc: dc(1) });
        assert_eq!(s.verdict(dc(0), dc(1)), LinkVerdict::CLEAN);
        assert!(!s.any_active());
    }

    #[test]
    fn symmetric_partition_cuts_both_ways_and_heals_exactly() {
        let mut s = FaultState::new(&FaultPlan::none());
        s.apply(&FaultKind::Partition {
            id: 1,
            left: vec![dc(0)],
            right: vec![dc(1), dc(2)],
            symmetric: true,
        });
        assert!(s.is_blocked(dc(0), dc(1)));
        assert!(s.is_blocked(dc(2), dc(0)));
        assert!(!s.is_blocked(dc(1), dc(2)), "links within one side stay up");
        s.apply(&FaultKind::Heal { id: 1 });
        assert!(!s.is_blocked(dc(0), dc(1)));
        assert!(!s.any_active());
    }

    #[test]
    fn asymmetric_partition_cuts_one_direction() {
        let mut s = FaultState::new(&FaultPlan::none());
        s.apply(&FaultKind::Partition {
            id: 7,
            left: vec![dc(3)],
            right: vec![dc(4)],
            symmetric: false,
        });
        assert!(s.is_blocked(dc(3), dc(4)));
        assert!(!s.is_blocked(dc(4), dc(3)), "reverse direction must still flow");
    }

    #[test]
    fn overlapping_partitions_compose_via_counts() {
        let mut s = FaultState::new(&FaultPlan::none());
        let cut = |id| FaultKind::Partition {
            id,
            left: vec![dc(0)],
            right: vec![dc(1)],
            symmetric: true,
        };
        s.apply(&cut(1));
        s.apply(&cut(2));
        s.apply(&FaultKind::Heal { id: 1 });
        assert!(s.is_blocked(dc(0), dc(1)), "second partition still cuts the link");
        s.apply(&FaultKind::Heal { id: 2 });
        assert!(!s.is_blocked(dc(0), dc(1)));
    }

    #[test]
    fn slow_dc_adds_delay_on_both_endpoints() {
        let mut s = FaultState::new(&FaultPlan::none());
        s.apply(&FaultKind::SlowDc { dc: dc(2), extra_ms: 40.0 });
        assert_eq!(
            s.verdict(dc(0), dc(2)),
            LinkVerdict::Deliver { copies: 1, extra_delay_ms: 40.0 }
        );
        assert_eq!(
            s.verdict(dc(2), dc(0)),
            LinkVerdict::Deliver { copies: 1, extra_delay_ms: 40.0 }
        );
        assert_eq!(s.verdict(dc(0), dc(1)), LinkVerdict::CLEAN);
        s.apply(&FaultKind::RestoreDc { dc: dc(2) });
        assert_eq!(s.verdict(dc(0), dc(2)), LinkVerdict::CLEAN);
    }

    #[test]
    fn link_fault_drops_duplicates_and_delays_deterministically() {
        let plan = FaultPlan { seed: 42, events: vec![] };
        let run = || {
            let mut s = FaultState::new(&plan);
            s.apply(&FaultKind::LinkFault {
                from: dc(0),
                to: dc(1),
                drop_prob: 0.3,
                dup_prob: 0.3,
                extra_ms: 5.0,
            });
            (0..200).map(|_| s.verdict(dc(0), dc(1))).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed must flip the same coins");
        let drops = a.iter().filter(|v| **v == LinkVerdict::Drop).count();
        let dups = a
            .iter()
            .filter(|v| matches!(v, LinkVerdict::Deliver { copies: 2, .. }))
            .count();
        assert!(drops > 20 && drops < 120, "≈30% of 200 messages drop, got {drops}");
        assert!(dups > 10, "duplications must occur, got {dups}");
        assert!(a
            .iter()
            .all(|v| !matches!(v, LinkVerdict::Deliver { extra_delay_ms, .. } if *extra_delay_ms != 5.0)));
        // The reverse direction is unaffected and consumes no randomness.
        let mut s = FaultState::new(&plan);
        s.apply(&FaultKind::ClearLink { from: dc(0), to: dc(1) });
        assert_eq!(s.verdict(dc(1), dc(0)), LinkVerdict::CLEAN);
    }

    #[test]
    fn advance_applies_events_in_time_order() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent { at_ms: 200.0, kind: FaultKind::RestartDc { dc: dc(5) } },
                FaultEvent { at_ms: 100.0, kind: FaultKind::CrashDc { dc: dc(5) } },
            ],
        };
        let mut s = FaultState::new(&plan);
        assert_eq!(s.pending_events(), 2);
        s.advance_to(50.0);
        assert!(!s.is_crashed(dc(5)));
        s.advance_to(150.0);
        assert!(s.is_crashed(dc(5)));
        s.advance_to(100.0); // going "back" is a no-op
        assert!(s.is_crashed(dc(5)));
        s.advance_to(1_000.0);
        assert!(!s.is_crashed(dc(5)));
        assert_eq!(s.pending_events(), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(128))]
        #[test]
        fn healing_every_partition_restores_full_connectivity(
            n in 2u16..9,
            cuts in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..6),
        ) {
            // Apply a random pile of (possibly overlapping, possibly asymmetric)
            // partitions, then heal them in a different order than they were applied:
            // the link-count algebra must leave the topology exactly as it started.
            let mut s = FaultState::new(&FaultPlan::none());
            for (id, raw) in cuts.iter().enumerate() {
                let victim = dc((raw % n as u64) as u16);
                let rest: Vec<DcId> = (0..n).map(dc).filter(|d| *d != victim).collect();
                s.apply(&FaultKind::Partition {
                    id: id as u32,
                    left: vec![victim],
                    right: rest,
                    symmetric: raw & 1 == 0,
                });
            }
            // Heal odd ids first, then even: order independence is part of the algebra.
            for (id, _) in cuts.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
                s.apply(&FaultKind::Heal { id: id as u32 });
            }
            for (id, _) in cuts.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
                s.apply(&FaultKind::Heal { id: id as u32 });
            }
            for a in 0..n {
                for b in 0..n {
                    prop_assert!(!s.is_blocked(dc(a), dc(b)), "{a}->{b} still cut");
                    prop_assert_eq!(s.verdict(dc(a), dc(b)), LinkVerdict::CLEAN);
                }
            }
            prop_assert!(!s.any_active());
        }
    }

    #[test]
    fn max_concurrent_faulted_tracks_overlap() {
        let crash = |at_ms, i| FaultEvent { at_ms, kind: FaultKind::CrashDc { dc: dc(i) } };
        let restart = |at_ms, i| FaultEvent { at_ms, kind: FaultKind::RestartDc { dc: dc(i) } };
        let sequential = FaultPlan {
            seed: 0,
            events: vec![crash(0.0, 1), restart(100.0, 1), crash(200.0, 2), restart(300.0, 2)],
        };
        assert_eq!(sequential.max_concurrent_faulted(), 1);
        let overlapping = FaultPlan {
            seed: 0,
            events: vec![crash(0.0, 1), crash(50.0, 2), restart(100.0, 1), restart(300.0, 2)],
        };
        assert_eq!(overlapping.max_concurrent_faulted(), 2);
        // A partition isolating one DC counts its minority side.
        let partition = FaultPlan {
            seed: 0,
            events: vec![FaultEvent {
                at_ms: 0.0,
                kind: FaultKind::Partition {
                    id: 1,
                    left: vec![dc(3)],
                    right: vec![dc(0), dc(1), dc(2)],
                    symmetric: true,
                },
            }],
        };
        assert_eq!(partition.max_concurrent_faulted(), 1);
        assert_eq!(FaultPlan::none().max_concurrent_faulted(), 0);
    }
}
