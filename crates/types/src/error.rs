//! Errors surfaced by the LEGOStore public API.

use crate::{ConfigEpoch, DcId, Key};
use serde::{Deserialize, Serialize};

/// Result alias used across the store crates.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors returned by store operations (CREATE / GET / PUT / DELETE), the protocols and the
/// reconfiguration machinery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreError {
    /// CREATE on a key that already exists.
    KeyAlreadyExists(Key),
    /// GET / PUT / DELETE on a key that does not exist.
    KeyNotFound(Key),
    /// The operation could not gather a quorum of responses before its deadline; the number
    /// of responses received is attached.
    QuorumTimeout {
        /// Responses required to complete the protocol phase.
        needed: usize,
        /// Responses actually received before the deadline.
        received: usize,
    },
    /// The operation exhausted every retry attempt without ever assembling a quorum —
    /// more than `f` hosting data centers stayed unreachable (crashed, partitioned away
    /// or silent) across all attempts. Unlike [`StoreError::QuorumTimeout`] (one attempt
    /// missed its deadline; retrying may succeed), this is the client's terminal verdict.
    QuorumUnreachable {
        /// Operation attempts made before giving up (initial + retries).
        attempts: u32,
        /// The error of the final attempt.
        last: Box<StoreError>,
    },
    /// More than `f` hosting data centers are unavailable; the operation cannot terminate.
    TooManyFailures {
        /// Data centers observed as unavailable.
        failed: usize,
        /// Failures the configuration tolerates (`f`).
        tolerated: usize,
    },
    /// The contacted server is running a newer configuration epoch; the client must refresh
    /// its metadata and retry.
    StaleConfiguration {
        /// Epoch the client's request carried.
        observed: ConfigEpoch,
        /// Epoch the server is actually running.
        current: ConfigEpoch,
    },
    /// The operation was aborted by a concurrent reconfiguration and must be retried against
    /// the new configuration.
    OperationFailedByReconfig {
        /// Epoch of the configuration the key moved to.
        new_epoch: ConfigEpoch,
    },
    /// The configuration being installed is invalid.
    InvalidConfiguration(String),
    /// Erasure decoding failed (not enough codeword symbols for the target tag).
    DecodeFailed {
        /// Codeword symbols available for the target tag.
        have: usize,
        /// Code dimension `k`: symbols required to decode.
        need: usize,
    },
    /// A message was addressed to a data center that does not host the key.
    NotAHost {
        /// The wrongly addressed data center.
        dc: DcId,
        /// The key the message was about.
        key: Key,
    },
    /// The local metadata service has no record of the key's configuration and remote
    /// lookups also failed.
    MetadataUnavailable(Key),
    /// Transport-level failure (channel closed, node shut down).
    Transport(String),
    /// A reconfiguration could not complete: one of the controller's rounds failed to
    /// assemble a quorum across every retry (more than `f` data centers of the old or
    /// new placement stayed unreachable). The transfer is parked, not half-applied —
    /// old-configuration servers stay authoritative until their epoch lease expires,
    /// and a later `reconfigure` call may finish the move.
    ReconfigStalled {
        /// Epoch of the configuration that was being installed.
        epoch: ConfigEpoch,
        /// Controller round that stalled: 1 = query, 2 = collect, 3 = write-new,
        /// 4 = finish.
        round: u8,
    },
    /// An internal invariant was violated; indicates a bug.
    Internal(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::KeyAlreadyExists(k) => write!(f, "key {k} already exists"),
            StoreError::KeyNotFound(k) => write!(f, "key {k} not found"),
            StoreError::QuorumTimeout { needed, received } => {
                write!(f, "quorum timeout: needed {needed} responses, got {received}")
            }
            StoreError::QuorumUnreachable { attempts, last } => {
                write!(f, "quorum unreachable after {attempts} attempts (last: {last})")
            }
            StoreError::TooManyFailures { failed, tolerated } => {
                write!(f, "{failed} data centers failed, configuration tolerates {tolerated}")
            }
            StoreError::StaleConfiguration { observed, current } => {
                write!(f, "stale configuration: observed {observed}, current {current}")
            }
            StoreError::OperationFailedByReconfig { new_epoch } => {
                write!(f, "operation failed by reconfiguration; retry in {new_epoch}")
            }
            StoreError::InvalidConfiguration(msg) => write!(f, "invalid configuration: {msg}"),
            StoreError::DecodeFailed { have, need } => {
                write!(f, "decode failed: have {have} symbols, need {need}")
            }
            StoreError::NotAHost { dc, key } => write!(f, "{dc} does not host key {key}"),
            StoreError::MetadataUnavailable(k) => write!(f, "metadata unavailable for key {k}"),
            StoreError::Transport(msg) => write!(f, "transport error: {msg}"),
            StoreError::ReconfigStalled { epoch, round } => {
                let name = match round {
                    1 => "query",
                    2 => "collect",
                    3 => "write-new",
                    4 => "finish",
                    _ => "unknown",
                };
                write!(f, "reconfiguration to {epoch} stalled in {name} round (round {round})")
            }
            StoreError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// True if retrying the operation (possibly after refreshing metadata) may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            StoreError::QuorumTimeout { .. }
                | StoreError::StaleConfiguration { .. }
                | StoreError::OperationFailedByReconfig { .. }
                | StoreError::Transport(_)
                // Transient under faults: a finalized tag guarantees `k` coded elements
                // exist at some quorum, so a read that gathered too few symbols (drops,
                // crashed hosts inside its preferred quorum) succeeds on a widened retry.
                | StoreError::DecodeFailed { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StoreError::KeyNotFound(Key::from("a"));
        assert!(e.to_string().contains('a'));
        let e = StoreError::QuorumTimeout { needed: 3, received: 1 };
        assert!(e.to_string().contains('3'));
        let e = StoreError::DecodeFailed { have: 1, need: 2 };
        assert!(e.to_string().contains("decode"));
    }

    #[test]
    fn retryability_classification() {
        assert!(StoreError::QuorumTimeout { needed: 2, received: 0 }.is_retryable());
        assert!(StoreError::OperationFailedByReconfig { new_epoch: ConfigEpoch(3) }.is_retryable());
        assert!(StoreError::StaleConfiguration {
            observed: ConfigEpoch(1),
            current: ConfigEpoch(2)
        }
        .is_retryable());
        assert!(StoreError::DecodeFailed { have: 1, need: 3 }.is_retryable());
        assert!(!StoreError::KeyNotFound(Key::from("x")).is_retryable());
        assert!(!StoreError::Internal("bug".into()).is_retryable());
        // The terminal verdict after exhausting retries is, by definition, not retryable.
        let terminal = StoreError::QuorumUnreachable {
            attempts: 4,
            last: Box::new(StoreError::QuorumTimeout { needed: 2, received: 1 }),
        };
        assert!(!terminal.is_retryable());
        assert!(terminal.to_string().contains("4 attempts"));
        // A stalled transfer is the controller's terminal verdict for this call; the
        // caller decides whether to re-run `reconfigure`, so it is not auto-retryable.
        let stalled = StoreError::ReconfigStalled { epoch: ConfigEpoch(5), round: 2 };
        assert!(!stalled.is_retryable());
        assert!(stalled.to_string().contains("collect"));
    }
}
