//! Per-key configurations.
//!
//! The *configuration* of a key (paper §1, footnote 1) captures: (i) whether replication
//! (ABD) or erasure coding (CAS) is used; (ii) the code length `n` / dimension `k` (or the
//! replication degree, `k = 1`); (iii) the quorum sizes; and (iv) the data centers that host
//! the key. The optimizer additionally recommends, per client location, which hosting DCs
//! each quorum should contact; that recommendation is carried here as well so that clients
//! in the common case only message their preferred quorum.

use crate::{ConfigEpoch, DcId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which consistency protocol a configuration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Attiya–Bar-Noy–Dolev replication (2-phase PUT, 2-phase GET).
    Abd,
    /// Coded Atomic Storage (3-phase PUT, 2-phase GET, Reed–Solomon codeword symbols).
    Cas,
}

impl ProtocolKind {
    /// Number of quorums the protocol defines (ABD: 2, CAS: 4).
    pub fn quorum_count(self) -> usize {
        match self {
            ProtocolKind::Abd => 2,
            ProtocolKind::Cas => 4,
        }
    }

    /// Number of client→server round trips for a PUT (ignoring the optimized fast path).
    pub fn put_phases(self) -> usize {
        match self {
            ProtocolKind::Abd => 2,
            ProtocolKind::Cas => 3,
        }
    }

    /// Number of client→server round trips for a GET (ignoring the optimized fast path).
    pub fn get_phases(self) -> usize {
        2
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolKind::Abd => write!(f, "ABD"),
            ProtocolKind::Cas => write!(f, "CAS"),
        }
    }
}

/// Index of a quorum within a configuration.
///
/// ABD uses `Q1` (query) and `Q2` (propagate). CAS uses `Q1` (query), `Q2` (pre-write),
/// `Q3` (finalize from writes) and `Q4` (finalize/collect from reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QuorumId {
    /// Query quorum (phase 1 of both GET and PUT, both protocols).
    Q1,
    /// ABD: value-propagation quorum; CAS: pre-write quorum.
    Q2,
    /// CAS only: write-finalize quorum.
    Q3,
    /// CAS only: read-finalize (symbol collection) quorum.
    Q4,
}

impl QuorumId {
    /// All quorum identifiers in order.
    pub const ALL: [QuorumId; 4] = [QuorumId::Q1, QuorumId::Q2, QuorumId::Q3, QuorumId::Q4];

    /// Zero-based index.
    pub fn index(self) -> usize {
        match self {
            QuorumId::Q1 => 0,
            QuorumId::Q2 => 1,
            QuorumId::Q3 => 2,
            QuorumId::Q4 => 3,
        }
    }

    /// Quorum identifier from a zero-based index.
    pub fn from_index(i: usize) -> Option<QuorumId> {
        QuorumId::ALL.get(i).copied()
    }
}

/// Quorum sizes `q1..q4`. For ABD only the first two are meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuorumSpec {
    sizes: [usize; 4],
}

impl QuorumSpec {
    /// Quorum spec for ABD with sizes `q1`, `q2` (the remaining entries are zero).
    pub fn abd(q1: usize, q2: usize) -> Self {
        QuorumSpec {
            sizes: [q1, q2, 0, 0],
        }
    }

    /// Quorum spec for CAS with sizes `q1..q4`.
    pub fn cas(q1: usize, q2: usize, q3: usize, q4: usize) -> Self {
        QuorumSpec {
            sizes: [q1, q2, q3, q4],
        }
    }

    /// Size of quorum `q`.
    pub fn size(&self, q: QuorumId) -> usize {
        self.sizes[q.index()]
    }

    /// All four sizes.
    pub fn sizes(&self) -> [usize; 4] {
        self.sizes
    }

    /// Largest quorum size that is actually used by `protocol`.
    pub fn max_used(&self, protocol: ProtocolKind) -> usize {
        self.sizes[..protocol.quorum_count()]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// Errors produced when validating a [`Configuration`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigurationError {
    /// The list of hosting data centers does not have `n` distinct entries.
    PlacementSize {
        /// The configured `n`.
        expected: usize,
        /// Distinct data centers actually listed.
        actual: usize,
    },
    /// A data center appears more than once in the placement.
    DuplicateDc(DcId),
    /// The code dimension is invalid for the protocol (`k != 1` for ABD, `k == 0`, `k > n`).
    InvalidDimension {
        /// Placement size.
        n: usize,
        /// Offending code dimension.
        k: usize,
    },
    /// A quorum size exceeds `n` or is zero.
    QuorumSizeOutOfRange {
        /// Which quorum is out of range.
        quorum: QuorumId,
        /// Its configured size.
        size: usize,
        /// Placement size bounding it.
        n: usize,
    },
    /// A liveness constraint `q_i <= n - f` is violated.
    LivenessViolated {
        /// Which quorum violates liveness.
        quorum: QuorumId,
        /// Its configured size.
        size: usize,
        /// Placement size.
        n: usize,
        /// Fault-tolerance target.
        f: usize,
    },
    /// A safety (intersection) constraint is violated.
    SafetyViolated(&'static str),
    /// The fault-tolerance bound `n - k >= 2f` (CAS) or `n >= f + 1` (ABD) is violated.
    FaultToleranceViolated {
        /// Placement size.
        n: usize,
        /// Code dimension.
        k: usize,
        /// Fault-tolerance target.
        f: usize,
    },
    /// A preferred quorum references a DC outside the placement.
    PreferredQuorumOutsidePlacement {
        /// Client the preferred quorum belongs to.
        client: DcId,
        /// The out-of-placement data center it references.
        dc: DcId,
    },
    /// A preferred quorum has the wrong number of members.
    PreferredQuorumWrongSize {
        /// Client the preferred quorum belongs to.
        client: DcId,
        /// Which quorum has the wrong size.
        quorum: QuorumId,
        /// The configured size for that quorum.
        expected: usize,
        /// Members actually listed.
        actual: usize,
    },
}

impl std::fmt::Display for ConfigurationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigurationError::PlacementSize { expected, actual } => {
                write!(f, "placement must list n={expected} data centers, got {actual}")
            }
            ConfigurationError::DuplicateDc(dc) => write!(f, "data center {dc} listed twice"),
            ConfigurationError::InvalidDimension { n, k } => {
                write!(f, "invalid code dimension k={k} for n={n}")
            }
            ConfigurationError::QuorumSizeOutOfRange { quorum, size, n } => {
                write!(f, "quorum {quorum:?} size {size} out of range for n={n}")
            }
            ConfigurationError::LivenessViolated { quorum, size, n, f: ff } => {
                write!(f, "quorum {quorum:?} size {size} violates q <= n - f ({n} - {ff})")
            }
            ConfigurationError::SafetyViolated(c) => write!(f, "safety constraint violated: {c}"),
            ConfigurationError::FaultToleranceViolated { n, k, f: ff } => {
                write!(f, "fault tolerance violated for n={n}, k={k}, f={ff}")
            }
            ConfigurationError::PreferredQuorumOutsidePlacement { client, dc } => {
                write!(f, "preferred quorum for client at {client} references non-member {dc}")
            }
            ConfigurationError::PreferredQuorumWrongSize { client, quorum, expected, actual } => {
                write!(
                    f,
                    "preferred quorum {quorum:?} for client at {client} has {actual} members, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigurationError {}

/// A complete per-key configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Configuration {
    /// Protocol used for the key.
    pub protocol: ProtocolKind,
    /// Code length: the number of data centers hosting the key (replication degree for ABD).
    pub n: usize,
    /// Code dimension (1 for ABD / plain replication; `1..=n-2f` for CAS).
    pub k: usize,
    /// Quorum sizes.
    pub quorums: QuorumSpec,
    /// The `n` data centers hosting replicas / codeword symbols, in symbol order
    /// (DC `dcs[i]` stores codeword symbol `i` under CAS).
    pub dcs: Vec<DcId>,
    /// Fault tolerance this configuration was designed for.
    pub f: usize,
    /// Configuration epoch; bumped by every reconfiguration.
    pub epoch: ConfigEpoch,
    /// Optimizer-recommended quorum membership per client location. Clients not listed fall
    /// back to contacting all of `dcs` and taking the first responders.
    pub preferred_quorums: BTreeMap<DcId, Vec<Vec<DcId>>>,
}

impl Configuration {
    /// Builds a majority-quorum ABD configuration over `dcs` tolerating `f` failures.
    ///
    /// Quorum sizes are the canonical `ceil((n+1)/2)` majorities, matching the paper's
    /// coarse analysis (Table 3).
    pub fn abd_majority(dcs: Vec<DcId>, f: usize) -> Self {
        let n = dcs.len();
        let q = n / 2 + 1;
        Configuration {
            protocol: ProtocolKind::Abd,
            n,
            k: 1,
            quorums: QuorumSpec::abd(q, q),
            dcs,
            f,
            epoch: ConfigEpoch::INITIAL,
            preferred_quorums: BTreeMap::new(),
        }
    }

    /// Builds a CAS configuration with dimension `k` over `dcs` tolerating `f` failures,
    /// using the smallest quorums that satisfy constraints (5)–(9) of the paper.
    pub fn cas_default(dcs: Vec<DcId>, k: usize, f: usize) -> Self {
        let n = dcs.len();
        // Smallest sizes satisfying q1+q3 > n, q1+q4 > n, q2+q4 >= n+k, q4 >= k, qi <= n-f.
        let q4 = ((n + k) / 2).max(k).min(n - f.min(n.saturating_sub(1)));
        let q2 = (n + k).saturating_sub(q4).max(1);
        let q1 = n + 1 - q4.min(n);
        let q3 = n + 1 - q1;
        Configuration {
            protocol: ProtocolKind::Cas,
            n,
            k,
            quorums: QuorumSpec::cas(q1, q2, q3, q4),
            dcs,
            f,
            epoch: ConfigEpoch::INITIAL,
            preferred_quorums: BTreeMap::new(),
        }
    }

    /// True if this configuration hosts data at `dc`.
    pub fn hosts(&self, dc: DcId) -> bool {
        self.dcs.contains(&dc)
    }

    /// Index of `dc` within the placement (the codeword-symbol index under CAS).
    pub fn symbol_index(&self, dc: DcId) -> Option<usize> {
        self.dcs.iter().position(|d| *d == dc)
    }

    /// Returns the members of quorum `q` preferred for a client at `client`.
    ///
    /// If the optimizer recorded a preference for this client location it is used;
    /// otherwise the first `q_i` data centers of the placement are contacted (the paper's
    /// protocols only message a quorum's worth of servers in the common case and widen to
    /// the remaining hosts on timeout, which is the hosting runtime's job).
    pub fn quorum_for(&self, client: DcId, q: QuorumId) -> &[DcId] {
        if let Some(qs) = self.preferred_quorums.get(&client) {
            if let Some(members) = qs.get(q.index()) {
                if !members.is_empty() {
                    return members;
                }
            }
        }
        let size = self.quorums.size(q).min(self.dcs.len()).max(1);
        &self.dcs[..size]
    }

    /// Effective storage blow-up of this configuration: `n` for ABD, `n / k` for CAS.
    pub fn storage_overhead(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    /// Validates the structural, safety and liveness constraints of the configuration
    /// (paper Appendix B constraints (5)–(10) for CAS and `q1 + q2 > n` for ABD).
    pub fn validate(&self) -> Result<(), ConfigurationError> {
        let n = self.n;
        let k = self.k;
        let f = self.f;
        if self.dcs.len() != n {
            return Err(ConfigurationError::PlacementSize {
                expected: n,
                actual: self.dcs.len(),
            });
        }
        let mut seen = std::collections::BTreeSet::new();
        for dc in &self.dcs {
            if !seen.insert(*dc) {
                return Err(ConfigurationError::DuplicateDc(*dc));
            }
        }
        match self.protocol {
            ProtocolKind::Abd => {
                if k != 1 {
                    return Err(ConfigurationError::InvalidDimension { n, k });
                }
                if n < f + 1 {
                    return Err(ConfigurationError::FaultToleranceViolated { n, k, f });
                }
                let q1 = self.quorums.size(QuorumId::Q1);
                let q2 = self.quorums.size(QuorumId::Q2);
                for (q, size) in [(QuorumId::Q1, q1), (QuorumId::Q2, q2)] {
                    if size == 0 || size > n {
                        return Err(ConfigurationError::QuorumSizeOutOfRange { quorum: q, size, n });
                    }
                    if size > n - f {
                        return Err(ConfigurationError::LivenessViolated { quorum: q, size, n, f });
                    }
                }
                if q1 + q2 <= n {
                    return Err(ConfigurationError::SafetyViolated("ABD requires q1 + q2 > n"));
                }
            }
            ProtocolKind::Cas => {
                if k == 0 || k > n {
                    return Err(ConfigurationError::InvalidDimension { n, k });
                }
                if n < k + 2 * f {
                    return Err(ConfigurationError::FaultToleranceViolated { n, k, f });
                }
                let q = |id: QuorumId| self.quorums.size(id);
                for id in QuorumId::ALL {
                    let size = q(id);
                    if size == 0 || size > n {
                        return Err(ConfigurationError::QuorumSizeOutOfRange { quorum: id, size, n });
                    }
                    if size > n - f {
                        return Err(ConfigurationError::LivenessViolated { quorum: id, size, n, f });
                    }
                }
                if q(QuorumId::Q1) + q(QuorumId::Q3) <= n {
                    return Err(ConfigurationError::SafetyViolated("CAS requires q1 + q3 > n"));
                }
                if q(QuorumId::Q1) + q(QuorumId::Q4) <= n {
                    return Err(ConfigurationError::SafetyViolated("CAS requires q1 + q4 > n"));
                }
                if q(QuorumId::Q2) + q(QuorumId::Q4) < n + k {
                    return Err(ConfigurationError::SafetyViolated("CAS requires q2 + q4 >= n + k"));
                }
                if q(QuorumId::Q4) < k {
                    return Err(ConfigurationError::SafetyViolated("CAS requires q4 >= k"));
                }
            }
        }
        // Preferred quorum sanity.
        for (client, quorums) in &self.preferred_quorums {
            for (idx, members) in quorums.iter().enumerate() {
                if members.is_empty() {
                    continue;
                }
                let Some(qid) = QuorumId::from_index(idx) else { continue };
                if idx >= self.protocol.quorum_count() {
                    continue;
                }
                let expected = self.quorums.size(qid);
                if members.len() != expected {
                    return Err(ConfigurationError::PreferredQuorumWrongSize {
                        client: *client,
                        quorum: qid,
                        expected,
                        actual: members.len(),
                    });
                }
                for dc in members {
                    if !self.hosts(*dc) {
                        return Err(ConfigurationError::PreferredQuorumOutsidePlacement {
                            client: *client,
                            dc: *dc,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Short human-readable description, e.g. `ABD(3)` or `CAS(5,3)`.
    pub fn describe(&self) -> String {
        match self.protocol {
            ProtocolKind::Abd => format!("ABD({})", self.n),
            ProtocolKind::Cas => format!("CAS({},{})", self.n, self.k),
        }
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on {:?} @{}", self.describe(), self.dcs, self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcs(n: usize) -> Vec<DcId> {
        (0..n).map(DcId::from).collect()
    }

    #[test]
    fn abd_majority_is_valid() {
        let c = Configuration::abd_majority(dcs(3), 1);
        assert_eq!(c.describe(), "ABD(3)");
        assert_eq!(c.quorums.size(QuorumId::Q1), 2);
        assert_eq!(c.quorums.size(QuorumId::Q2), 2);
        c.validate().expect("majority ABD must validate");
    }

    #[test]
    fn cas_default_is_valid_for_paper_parameters() {
        // CAS(5,3) with f=1 is the paper's most common choice.
        let c = Configuration::cas_default(dcs(5), 3, 1);
        assert_eq!(c.describe(), "CAS(5,3)");
        c.validate().expect("CAS(5,3) f=1 must validate");
        // CAS(4,2), f=1: used in Figures 5 and 11.
        let c = Configuration::cas_default(dcs(4), 2, 1);
        c.validate().expect("CAS(4,2) f=1 must validate");
        // CAS(8,1), f=1: chosen in Figure 6 for the Wikipedia key.
        let c = Configuration::cas_default(dcs(8), 1, 1);
        c.validate().expect("CAS(8,1) f=1 must validate");
    }

    #[test]
    fn abd_rejects_non_intersecting_quorums() {
        let mut c = Configuration::abd_majority(dcs(3), 1);
        c.quorums = QuorumSpec::abd(1, 2);
        assert_eq!(
            c.validate(),
            Err(ConfigurationError::SafetyViolated("ABD requires q1 + q2 > n"))
        );
    }

    #[test]
    fn abd_rejects_liveness_violation() {
        let mut c = Configuration::abd_majority(dcs(3), 1);
        c.quorums = QuorumSpec::abd(3, 3);
        assert!(matches!(
            c.validate(),
            Err(ConfigurationError::LivenessViolated { .. })
        ));
    }

    #[test]
    fn cas_rejects_insufficient_fault_tolerance() {
        // n - k >= 2f fails: n=4, k=3, f=1.
        let c = Configuration::cas_default(dcs(4), 3, 1);
        assert!(matches!(
            c.validate(),
            Err(ConfigurationError::FaultToleranceViolated { .. })
        ));
    }

    #[test]
    fn cas_rejects_k_larger_than_n() {
        let mut c = Configuration::cas_default(dcs(5), 3, 1);
        c.k = 9;
        assert!(matches!(c.validate(), Err(ConfigurationError::InvalidDimension { .. })));
    }

    #[test]
    fn duplicate_dc_detected() {
        let mut c = Configuration::abd_majority(dcs(3), 1);
        c.dcs[2] = c.dcs[0];
        assert_eq!(c.validate(), Err(ConfigurationError::DuplicateDc(DcId(0))));
    }

    #[test]
    fn quorum_for_falls_back_to_quorum_sized_prefix() {
        let c = Configuration::abd_majority(dcs(3), 1);
        assert_eq!(c.quorum_for(DcId(7), QuorumId::Q1), vec![DcId(0), DcId(1)]);
        let cas = Configuration::cas_default(dcs(5), 3, 1);
        assert_eq!(
            cas.quorum_for(DcId(7), QuorumId::Q4).len(),
            cas.quorums.size(QuorumId::Q4)
        );
    }

    #[test]
    fn preferred_quorum_used_when_present() {
        let mut c = Configuration::abd_majority(dcs(3), 1);
        c.preferred_quorums
            .insert(DcId(0), vec![vec![DcId(0), DcId(1)], vec![DcId(1), DcId(2)]]);
        c.validate().expect("valid preferred quorums");
        assert_eq!(c.quorum_for(DcId(0), QuorumId::Q2), vec![DcId(1), DcId(2)]);
    }

    #[test]
    fn preferred_quorum_wrong_size_rejected() {
        let mut c = Configuration::abd_majority(dcs(3), 1);
        c.preferred_quorums.insert(DcId(0), vec![vec![DcId(0)]]);
        assert!(matches!(
            c.validate(),
            Err(ConfigurationError::PreferredQuorumWrongSize { .. })
        ));
    }

    #[test]
    fn preferred_quorum_outside_placement_rejected() {
        let mut c = Configuration::abd_majority(dcs(3), 1);
        c.preferred_quorums
            .insert(DcId(0), vec![vec![DcId(0), DcId(8)], vec![DcId(1), DcId(2)]]);
        assert!(matches!(
            c.validate(),
            Err(ConfigurationError::PreferredQuorumOutsidePlacement { .. })
        ));
    }

    #[test]
    fn storage_overhead() {
        assert!((Configuration::abd_majority(dcs(3), 1).storage_overhead() - 3.0).abs() < 1e-9);
        assert!((Configuration::cas_default(dcs(6), 3, 1).storage_overhead() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn symbol_index_matches_placement_order() {
        let c = Configuration::cas_default(vec![DcId(4), DcId(2), DcId(7)], 1, 1);
        assert_eq!(c.symbol_index(DcId(2)), Some(1));
        assert_eq!(c.symbol_index(DcId(9)), None);
        assert!(c.hosts(DcId(7)));
        assert!(!c.hosts(DcId(0)));
    }

    #[test]
    fn quorum_id_round_trip() {
        for (i, q) in QuorumId::ALL.iter().enumerate() {
            assert_eq!(QuorumId::from_index(i), Some(*q));
            assert_eq!(q.index(), i);
        }
        assert_eq!(QuorumId::from_index(4), None);
    }

    #[test]
    fn protocol_phase_counts_match_paper() {
        assert_eq!(ProtocolKind::Abd.put_phases(), 2);
        assert_eq!(ProtocolKind::Cas.put_phases(), 3);
        assert_eq!(ProtocolKind::Abd.get_phases(), 2);
        assert_eq!(ProtocolKind::Cas.get_phases(), 2);
        assert_eq!(ProtocolKind::Abd.quorum_count(), 2);
        assert_eq!(ProtocolKind::Cas.quorum_count(), 4);
    }

    #[test]
    fn max_used_quorum() {
        let c = Configuration::cas_default(dcs(5), 3, 1);
        assert_eq!(c.quorums.max_used(ProtocolKind::Cas), c.quorums.sizes()[..4].iter().copied().max().unwrap());
        let a = Configuration::abd_majority(dcs(5), 1);
        assert_eq!(a.quorums.max_used(ProtocolKind::Abd), 3);
    }
}
