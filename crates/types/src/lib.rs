//! Core vocabulary types shared by every LEGOStore crate.
//!
//! LEGOStore (VLDB 2022) is a linearizable geo-distributed key-value store that, per key,
//! chooses between a replication-based protocol (ABD) and an erasure-coding-based protocol
//! (CAS), and places quorums across a set of public-cloud data centers to minimize cost
//! subject to latency SLOs and a fault-tolerance target `f`.
//!
//! This crate defines the types that describe *what* is stored and *how* it is configured:
//! data-center identifiers, logical tags, values, protocol configurations and the errors
//! that the public API surfaces. It deliberately contains no protocol logic.

#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod fault;
pub mod tag;
pub mod value;

pub use config::{Configuration, ConfigurationError, ProtocolKind, QuorumId, QuorumSpec};
pub use error::{StoreError, StoreResult};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultState, LinkVerdict};
pub use tag::{ClientId, Tag};
pub use value::Value;

use serde::{Deserialize, Serialize};

/// Identifier of a data center participating in the store.
///
/// Data centers are numbered `0..D`. The paper uses nine Google Cloud Platform locations;
/// the [`legostore-cloud`](https://docs.rs) crate provides that concrete catalog, but the
/// protocols work with any numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DcId(pub u16);

impl DcId {
    /// Returns the raw index of this data center.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dc{}", self.0)
    }
}

impl From<usize> for DcId {
    fn from(v: usize) -> Self {
        DcId(v as u16)
    }
}

/// A key in the store. Keys are arbitrary UTF-8 strings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key(pub String);

impl Key {
    /// Creates a key from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        Key(s.into())
    }

    /// Borrow the key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key(s.to_owned())
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key(s)
    }
}

/// Kind of a user-facing operation, used by workload generators, statistics and the
/// linearizability checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A linearizable read (GET).
    Get,
    /// A linearizable write (PUT).
    Put,
}

impl OpKind {
    /// True if this is a GET.
    pub fn is_get(self) -> bool {
        matches!(self, OpKind::Get)
    }

    /// True if this is a PUT.
    pub fn is_put(self) -> bool {
        matches!(self, OpKind::Put)
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpKind::Get => write!(f, "GET"),
            OpKind::Put => write!(f, "PUT"),
        }
    }
}

/// Monotonically increasing identifier for a configuration epoch of a key.
///
/// Every reconfiguration bumps the epoch; servers and clients use it to recognize stale
/// configuration information.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ConfigEpoch(pub u64);

impl ConfigEpoch {
    /// The initial epoch assigned by CREATE.
    pub const INITIAL: ConfigEpoch = ConfigEpoch(0);

    /// Returns the next epoch.
    pub fn next(self) -> ConfigEpoch {
        ConfigEpoch(self.0 + 1)
    }
}

impl std::fmt::Display for ConfigEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epoch{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_id_roundtrip() {
        let dc = DcId::from(7usize);
        assert_eq!(dc.index(), 7);
        assert_eq!(dc.to_string(), "dc7");
    }

    #[test]
    fn key_display_and_from() {
        let k: Key = "user:42".into();
        assert_eq!(k.as_str(), "user:42");
        assert_eq!(k.to_string(), "user:42");
        assert_eq!(Key::new(String::from("a")), Key::from("a"));
    }

    #[test]
    fn op_kind_predicates() {
        assert!(OpKind::Get.is_get());
        assert!(!OpKind::Get.is_put());
        assert!(OpKind::Put.is_put());
        assert_eq!(OpKind::Put.to_string(), "PUT");
    }

    #[test]
    fn config_epoch_next_is_monotonic() {
        let e = ConfigEpoch::INITIAL;
        assert!(e.next() > e);
        assert_eq!(e.next().next(), ConfigEpoch(2));
    }
}
