//! Logical tags used by both ABD and CAS.
//!
//! A tag is a `(logical timestamp, client id)` pair. Tags are totally ordered first by the
//! integer timestamp and then by the client identifier, which breaks ties between writers
//! that picked the same timestamp concurrently. Both protocols rely on this total order for
//! linearizability.

use serde::{Deserialize, Serialize};

/// Unique identifier of a LEGOStore client (the protocol endpoint co-located with users).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u32);

impl ClientId {
    /// Client id used for values installed by CREATE and by the reconfiguration controller.
    pub const SYSTEM: ClientId = ClientId(0);
}

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A logical tag `(z, client)`: the version identifier attached to every stored value.
///
/// The ordering is lexicographic: timestamps dominate, client ids break ties.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tag {
    /// Logical timestamp (the integer component `z`).
    pub seq: u64,
    /// The writer that produced this version.
    pub client: ClientId,
}

impl Tag {
    /// The tag associated with the initial value written by CREATE.
    pub const INITIAL: Tag = Tag {
        seq: 0,
        client: ClientId::SYSTEM,
    };

    /// Creates a tag.
    pub fn new(seq: u64, client: ClientId) -> Self {
        Tag { seq, client }
    }

    /// Returns the tag a writer forms after observing `self` as the highest existing tag:
    /// `(z + 1, writer)`.
    pub fn successor(self, writer: ClientId) -> Tag {
        Tag {
            seq: self.seq + 1,
            client: writer,
        }
    }

    /// Returns the larger of two tags.
    pub fn max(self, other: Tag) -> Tag {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.seq, self.client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_is_timestamp_then_client() {
        let a = Tag::new(1, ClientId(9));
        let b = Tag::new(2, ClientId(1));
        let c = Tag::new(2, ClientId(3));
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.max(b), b);
        assert_eq!(c.max(b), c);
    }

    #[test]
    fn successor_dominates_and_records_writer() {
        let seen = Tag::new(41, ClientId(7));
        let next = seen.successor(ClientId(2));
        assert!(next > seen);
        assert_eq!(next.seq, 42);
        assert_eq!(next.client, ClientId(2));
    }

    #[test]
    fn initial_is_minimal_among_writes() {
        // Any write formed as a successor of anything is strictly larger than INITIAL.
        let w = Tag::INITIAL.successor(ClientId(1));
        assert!(w > Tag::INITIAL);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Tag::new(3, ClientId(4)).to_string(), "(3,c4)");
    }

    proptest! {
        #[test]
        fn successor_is_strictly_increasing(seq in 0u64..u64::MAX / 2, c1 in 0u32..100, c2 in 0u32..100) {
            let t = Tag::new(seq, ClientId(c1));
            prop_assert!(t.successor(ClientId(c2)) > t);
        }

        #[test]
        fn max_is_commutative_and_idempotent(s1 in 0u64..1000, c1 in 0u32..10, s2 in 0u64..1000, c2 in 0u32..10) {
            let a = Tag::new(s1, ClientId(c1));
            let b = Tag::new(s2, ClientId(c2));
            prop_assert_eq!(a.max(b), b.max(a));
            prop_assert_eq!(a.max(a), a);
        }

        #[test]
        fn order_is_total_and_antisymmetric(s1 in 0u64..1000, c1 in 0u32..10, s2 in 0u64..1000, c2 in 0u32..10) {
            let a = Tag::new(s1, ClientId(c1));
            let b = Tag::new(s2, ClientId(c2));
            if a <= b && b <= a {
                prop_assert_eq!(a, b);
            }
            prop_assert!(a <= b || b <= a);
        }
    }
}
