//! Simulation outputs: per-operation records, latency summaries and cost metering.

use legostore_lincheck::HistoryRecorder;
use legostore_types::{DcId, OpKind};
use std::sync::Arc;

/// One completed (or abandoned) client operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRecord {
    /// Data center the issuing user resides in.
    pub origin: DcId,
    /// GET or PUT.
    pub kind: OpKind,
    /// Key index within the experiment (opaque).
    pub key: String,
    /// Virtual time the user issued the operation (ms).
    pub start_ms: f64,
    /// Virtual time the operation completed (ms).
    pub end_ms: f64,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// True if a GET completed in one phase (optimized GET).
    pub one_phase: bool,
    /// Number of times the operation was restarted because of a reconfiguration.
    pub reconfig_retries: u32,
    /// Number of times the operation was restarted after a timeout (e.g. a failed DC).
    pub timeout_retries: u32,
    /// Object bytes carried (PUT payload / GET response size as requested).
    pub object_bytes: u64,
}

impl OpRecord {
    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// Aggregate latency statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of operations aggregated.
    pub count: usize,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Maximum latency (ms).
    pub max_ms: f64,
}

impl LatencySummary {
    /// Builds a summary from raw latencies.
    pub fn from_latencies(mut lat: Vec<f64>) -> LatencySummary {
        if lat.is_empty() {
            return LatencySummary::default();
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let count = lat.len();
        let mean = lat.iter().sum::<f64>() / count as f64;
        let pick = |q: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * q).round() as usize;
            lat[idx.min(count - 1)]
        };
        LatencySummary {
            count,
            mean_ms: mean,
            p50_ms: pick(0.50),
            p99_ms: pick(0.99),
            max_ms: lat[count - 1],
        }
    }
}

/// Network-cost meter, in dollars, attributed per traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostMeter {
    /// Dollars spent on GET traffic.
    pub get_network: f64,
    /// Dollars spent on PUT traffic.
    pub put_network: f64,
    /// Dollars spent on reconfiguration traffic.
    pub reconfig_network: f64,
    /// Bytes moved in total.
    pub bytes_moved: u64,
}

impl CostMeter {
    /// Total dollars spent on the network.
    pub fn total(&self) -> f64 {
        self.get_network + self.put_network + self.reconfig_network
    }
}

/// The result of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// All completed operations.
    pub operations: Vec<OpRecord>,
    /// Network-cost meter.
    pub cost: CostMeter,
    /// Virtual time at which the simulation stopped (ms).
    pub end_time_ms: f64,
    /// Durations (ms) of each completed reconfiguration, in completion order.
    pub reconfig_durations_ms: Vec<f64>,
    /// Per-key operation histories for linearizability checking; present only when
    /// [`Simulation::enable_history_recording`](crate::Simulation::enable_history_recording)
    /// was called before the run.
    pub histories: Option<Arc<HistoryRecorder>>,
}

impl SimReport {
    /// Latency summary over operations matching the filters (`None` matches everything).
    pub fn latency(
        &self,
        kind: Option<OpKind>,
        origin: Option<DcId>,
        from_ms: Option<f64>,
        to_ms: Option<f64>,
    ) -> LatencySummary {
        let lats: Vec<f64> = self
            .operations
            .iter()
            .filter(|o| o.ok)
            .filter(|o| kind.map(|k| o.kind == k).unwrap_or(true))
            .filter(|o| origin.map(|d| o.origin == d).unwrap_or(true))
            .filter(|o| from_ms.map(|t| o.start_ms >= t).unwrap_or(true))
            .filter(|o| to_ms.map(|t| o.start_ms < t).unwrap_or(true))
            .map(|o| o.latency_ms())
            .collect();
        LatencySummary::from_latencies(lats)
    }

    /// Fraction of successful GETs that completed in one phase.
    pub fn optimized_get_fraction(&self) -> f64 {
        let gets: Vec<&OpRecord> = self
            .operations
            .iter()
            .filter(|o| o.ok && o.kind == OpKind::Get)
            .collect();
        if gets.is_empty() {
            return 0.0;
        }
        gets.iter().filter(|o| o.one_phase).count() as f64 / gets.len() as f64
    }

    /// Number of operations that violated `slo_ms`, optionally restricted to one kind.
    pub fn slo_violations(&self, slo_ms: f64, kind: Option<OpKind>) -> usize {
        self.operations
            .iter()
            .filter(|o| o.ok)
            .filter(|o| kind.map(|k| o.kind == k).unwrap_or(true))
            .filter(|o| o.latency_ms() > slo_ms)
            .count()
    }

    /// Number of failed operations.
    pub fn failures(&self) -> usize {
        self.operations.iter().filter(|o| !o.ok).count()
    }

    /// Fraction of operations that succeeded (1.0 for an empty report: an idle run
    /// failed nothing).
    pub fn availability(&self) -> f64 {
        if self.operations.is_empty() {
            return 1.0;
        }
        1.0 - self.failures() as f64 / self.operations.len() as f64
    }

    /// Number of failed operations that *started* after `after_ms` — the campaign
    /// engine's "liveness returns after the faults heal" check.
    pub fn failures_after(&self, after_ms: f64) -> usize {
        self.operations
            .iter()
            .filter(|o| !o.ok && o.start_ms >= after_ms)
            .count()
    }

    /// A deterministic FNV-1a digest of the report's observable outcome — every
    /// operation record (latency quantized to nanoseconds), the cost meter and the
    /// reconfiguration durations. Two runs of the same seeded simulation produce the
    /// same fingerprint; campaign reports use it as a regression-friendly identity
    /// for a run without storing the run.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for op in &self.operations {
            eat(op.key.as_bytes());
            eat(&[op.kind as u8, u8::from(op.ok), u8::from(op.one_phase)]);
            eat(&op.origin.0.to_le_bytes());
            eat(&((op.start_ms * 1e6) as u64).to_le_bytes());
            eat(&((op.end_ms * 1e6) as u64).to_le_bytes());
            eat(&op.reconfig_retries.to_le_bytes());
            eat(&op.timeout_retries.to_le_bytes());
            eat(&op.object_bytes.to_le_bytes());
        }
        eat(&self.cost.bytes_moved.to_le_bytes());
        eat(&self.cost.total().to_bits().to_le_bytes());
        for d in &self.reconfig_durations_ms {
            eat(&d.to_bits().to_le_bytes());
        }
        h
    }

    /// Pushes every operation into `obs`'s op-record stream — the same stream the
    /// threaded runtime's spans feed — so `Obs::drain_ops` →
    /// `WorkloadMonitor::ingest` works identically on simulated traffic (the campaign
    /// engine's live-monitor path for scenario runs). Model milliseconds are converted
    /// to clock nanoseconds (`latency_scale` 1.0). No-op when `obs` is disabled.
    pub fn export_ops(&self, obs: &legostore_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        for op in &self.operations {
            obs.push_op(legostore_obs::OpRecord {
                op_id: obs.next_op_id(),
                kind: op.kind,
                key: op.key.clone(),
                origin: op.origin,
                started_ns: (op.start_ms * 1e6) as u64,
                completed_ns: (op.end_ms * 1e6) as u64,
                object_bytes: op.object_bytes,
                ok: op.ok,
            });
        }
    }

    /// Exports the report into `obs`'s metrics registry under the same names the
    /// threaded runtime publishes (`client.{get,put}.ops`, `client.{get,put}.latency_ns`,
    /// `client.ops_failed`, `client.get.one_phase`, retry counters), so simulated and
    /// live snapshots can be diffed with the same tooling. Model milliseconds are
    /// converted to nanoseconds. No-op when `obs` is disabled.
    pub fn export_metrics(&self, obs: &legostore_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        let r = obs.registry();
        let ops = [r.counter("client.get.ops"), r.counter("client.put.ops")];
        let latency =
            [r.histogram("client.get.latency_ns"), r.histogram("client.put.latency_ns")];
        let failed = r.counter("client.ops_failed");
        let one_phase = r.counter("client.get.one_phase");
        let widens = r.counter("client.retries.timeout_widen");
        let reconfigs = r.counter("client.retries.reconfig");
        for op in &self.operations {
            let slot = usize::from(op.kind == OpKind::Put);
            ops[slot].inc();
            if op.ok {
                latency[slot].record((op.latency_ms() * 1e6) as u64);
            } else {
                failed.inc();
            }
            if op.one_phase {
                one_phase.inc();
            }
            widens.add(u64::from(op.timeout_retries));
            reconfigs.add(u64::from(op.reconfig_retries));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: OpKind, start: f64, end: f64, origin: u16) -> OpRecord {
        OpRecord {
            origin: DcId(origin),
            kind,
            key: "k".into(),
            start_ms: start,
            end_ms: end,
            ok: true,
            one_phase: false,
            reconfig_retries: 0,
            timeout_retries: 0,
            object_bytes: 1024,
        }
    }

    #[test]
    fn latency_summary_percentiles() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_latencies(lat);
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert_eq!(s.p50_ms, 51.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert_eq!(LatencySummary::from_latencies(vec![]).count, 0);
    }

    #[test]
    fn report_filters_by_kind_origin_and_time() {
        let mut report = SimReport::default();
        report.operations.push(rec(OpKind::Get, 0.0, 100.0, 0));
        report.operations.push(rec(OpKind::Put, 0.0, 300.0, 0));
        report.operations.push(rec(OpKind::Get, 500.0, 550.0, 1));
        let all = report.latency(None, None, None, None);
        assert_eq!(all.count, 3);
        let gets = report.latency(Some(OpKind::Get), None, None, None);
        assert_eq!(gets.count, 2);
        let dc1 = report.latency(None, Some(DcId(1)), None, None);
        assert_eq!(dc1.count, 1);
        assert_eq!(dc1.mean_ms, 50.0);
        let early = report.latency(None, None, Some(0.0), Some(400.0));
        assert_eq!(early.count, 2);
        assert_eq!(report.slo_violations(200.0, None), 1);
        assert_eq!(report.slo_violations(200.0, Some(OpKind::Get)), 0);
    }

    #[test]
    fn optimized_fraction_and_failures() {
        let mut report = SimReport::default();
        let mut a = rec(OpKind::Get, 0.0, 10.0, 0);
        a.one_phase = true;
        report.operations.push(a);
        report.operations.push(rec(OpKind::Get, 0.0, 10.0, 0));
        let mut failed = rec(OpKind::Put, 0.0, 10.0, 0);
        failed.ok = false;
        report.operations.push(failed);
        assert!((report.optimized_get_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(report.failures(), 1);
    }

    #[test]
    fn export_metrics_mirrors_runtime_taxonomy() {
        let mut report = SimReport::default();
        let mut fast = rec(OpKind::Get, 0.0, 10.0, 0);
        fast.one_phase = true;
        report.operations.push(fast);
        report.operations.push(rec(OpKind::Put, 0.0, 250.0, 1));
        let mut failed = rec(OpKind::Put, 0.0, 10.0, 0);
        failed.ok = false;
        failed.timeout_retries = 2;
        report.operations.push(failed);

        let obs = legostore_obs::Obs::new(legostore_obs::ObsConfig::Metrics);
        report.export_metrics(&obs);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("client.get.ops"), 1);
        assert_eq!(snap.counter("client.put.ops"), 2);
        assert_eq!(snap.counter("client.ops_failed"), 1);
        assert_eq!(snap.counter("client.get.one_phase"), 1);
        assert_eq!(snap.counter("client.retries.timeout_widen"), 2);
        let put_lat = snap.histogram("client.put.latency_ns").unwrap();
        assert_eq!(put_lat.count, 1, "failed ops carry no latency sample");
        assert_eq!(put_lat.sum, 250_000_000);

        // Disabled obs stays empty: the export is a no-op, not a partial write.
        let off = legostore_obs::Obs::off();
        report.export_metrics(&off);
        assert_eq!(off.snapshot().counter("client.get.ops"), 0);
    }

    #[test]
    fn availability_and_post_fault_failures() {
        let mut report = SimReport::default();
        assert_eq!(report.availability(), 1.0);
        report.operations.push(rec(OpKind::Get, 0.0, 10.0, 0));
        let mut failed = rec(OpKind::Put, 100.0, 400.0, 0);
        failed.ok = false;
        report.operations.push(failed);
        assert!((report.availability() - 0.5).abs() < 1e-12);
        assert_eq!(report.failures_after(50.0), 1);
        assert_eq!(report.failures_after(150.0), 0);
    }

    #[test]
    fn fingerprint_is_deterministic_and_sensitive() {
        let mut a = SimReport::default();
        a.operations.push(rec(OpKind::Get, 0.0, 10.0, 0));
        let mut b = SimReport::default();
        b.operations.push(rec(OpKind::Get, 0.0, 10.0, 0));
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.operations[0].end_ms = 11.0;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn export_ops_feeds_the_monitor_stream() {
        let mut report = SimReport::default();
        report.operations.push(rec(OpKind::Get, 0.0, 10.0, 2));
        let mut failed = rec(OpKind::Put, 5.0, 20.0, 3);
        failed.ok = false;
        report.operations.push(failed);
        let obs = legostore_obs::Obs::new(legostore_obs::ObsConfig::Metrics);
        report.export_ops(&obs);
        let drained = obs.drain_ops();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].origin, DcId(2));
        assert_eq!(drained[0].latency_ns(), 10_000_000);
        assert!(!drained[1].ok);
        assert_eq!(drained[1].object_bytes, 1024);
        // Disabled obs: nothing exported.
        let off = legostore_obs::Obs::off();
        report.export_ops(&off);
        assert!(off.drain_ops().is_empty());
    }

    #[test]
    fn cost_meter_totals() {
        let m = CostMeter {
            get_network: 1.0,
            put_network: 2.0,
            reconfig_network: 0.5,
            bytes_moved: 100,
        };
        assert!((m.total() - 3.5).abs() < 1e-12);
    }
}
