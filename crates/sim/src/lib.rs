//! Deterministic discrete-event simulation of a geo-distributed LEGOStore deployment.
//!
//! The paper evaluates its prototype on nine real GCP data centers. This crate substitutes
//! that testbed: it runs the *same* protocol state machines (`legostore-proto`) over a
//! virtual clock, delivering every message after the measured inter-DC round-trip time plus
//! the transfer time of its payload, and metering every byte against the paper's network
//! price tables. Because inter-DC RTTs dominate operation latency (paper §4.3, §G.1), the
//! simulated latencies reproduce the shape of the prototype's measurements, and the metered
//! costs follow the same accounting as the optimizer's cost model — which is exactly what
//! the evaluation figures need.
//!
//! The simulator supports the scenarios of the evaluation section: open-loop Poisson
//! workloads over many keys (Figures 4, 6, 11), mid-run reconfigurations driven by the
//! controller protocol (Figure 5), data-center failures and recoveries (Figures 5, 11), and
//! client-side metadata staleness (the "type (ii)" degradations of Figure 5).
//!
//! Beyond the paper's scenarios, a run can inject a deterministic
//! [`FaultPlan`](legostore_types::fault::FaultPlan) — crashes, partitions, slow DCs,
//! lossy links — via [`Simulation::set_fault_plan`], and record per-key operation
//! histories for linearizability checking via [`Simulation::enable_history_recording`];
//! the same plan drives the threaded deployment in
//! `tests/cross_runtime_conformance.rs`, holding the two runtimes to each other.

pub mod net;
pub mod report;
pub mod simulation;

pub use net::SimNet;
pub use report::{CostMeter, LatencySummary, OpRecord, SimReport};
pub use simulation::{SimOptions, Simulation};
