//! The simulator's transport seam: the per-message delivery decision.
//!
//! The deployment runtimes (`legostore-core`) hide message delivery behind a `Transport`
//! trait; the simulator is single-threaded and event-driven, so its seam is smaller — a
//! [`SimNet`] that answers one question per message: *how many copies arrive, and how much
//! extra delay do they incur?* Both the request leg (`send_outbound`) and the reply leg
//! (reply scheduling in the event handler) consult it, which keeps the simulator's fault
//! interposition points aligned with the deployment transports': the same
//! [`FaultPlan`] produces the same per-link verdict
//! sequence everywhere.

use legostore_types::{DcId, FaultPlan, FaultState};

/// The simulated network: link-fault interpretation for an event-driven runtime.
///
/// Fault events are applied lazily — every event scheduled at or before the caller's
/// current virtual instant takes effect before a verdict is drawn — and the per-message
/// coin flips are derived from the plan's seed, so a faulty run is exactly as
/// reproducible as a fault-free one.
#[derive(Debug, Default)]
pub struct SimNet {
    /// Interpreter of the injected fault plan; `None` when no plan is set, making the
    /// fault-free delivery decision free.
    faults: Option<FaultState>,
}

impl SimNet {
    /// A fault-free network.
    pub fn new() -> Self {
        SimNet::default()
    }

    /// Installs (or, with an empty plan, clears) the deterministic fault plan.
    pub fn set_plan(&mut self, plan: &FaultPlan) {
        self.faults = (!plan.is_empty()).then(|| FaultState::new(plan));
    }

    /// The delivery decision for one message on the `from → to` link at virtual time
    /// `now_ms`: `None` if it is dropped, otherwise `(copies, extra_delay_ms)`.
    pub fn deliveries(&mut self, now_ms: f64, from: DcId, to: DcId) -> Option<(u32, f64)> {
        let Some(state) = &mut self.faults else {
            return Some((1, 0.0));
        };
        state.advance_to(now_ms);
        state.verdict(from, to).deliveries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_types::{FaultEvent, FaultKind};

    #[test]
    fn clean_network_delivers_single_copies_with_no_delay() {
        let mut net = SimNet::new();
        assert_eq!(net.deliveries(0.0, DcId(0), DcId(1)), Some((1, 0.0)));
        net.set_plan(&FaultPlan::none());
        assert_eq!(net.deliveries(1e9, DcId(3), DcId(3)), Some((1, 0.0)));
    }

    #[test]
    fn crashed_dc_drops_everything_once_time_passes_the_event() {
        let mut net = SimNet::new();
        net.set_plan(&FaultPlan {
            seed: 7,
            events: vec![FaultEvent { at_ms: 100.0, kind: FaultKind::CrashDc { dc: DcId(1) } }],
        });
        // Before the crash instant the link is clean...
        assert_eq!(net.deliveries(50.0, DcId(0), DcId(1)), Some((1, 0.0)));
        // ...and after it every message to (or from) the crashed DC is dropped.
        assert_eq!(net.deliveries(150.0, DcId(0), DcId(1)), None);
        assert_eq!(net.deliveries(150.0, DcId(1), DcId(0)), None);
        // Unrelated links stay clean.
        assert_eq!(net.deliveries(150.0, DcId(0), DcId(2)), Some((1, 0.0)));
    }

    #[test]
    fn slow_dc_adds_delay_without_dropping() {
        let mut net = SimNet::new();
        net.set_plan(&FaultPlan {
            seed: 7,
            events: vec![FaultEvent {
                at_ms: 0.0,
                kind: FaultKind::SlowDc { dc: DcId(2), extra_ms: 40.0 },
            }],
        });
        let (copies, extra) = net.deliveries(1.0, DcId(0), DcId(2)).expect("delivered");
        assert_eq!(copies, 1);
        assert_eq!(extra, 40.0);
    }
}
