//! The discrete-event simulation engine.

use crate::net::SimNet;
use crate::report::{CostMeter, OpRecord, SimReport};
use legostore_cloud::CloudModel;
use legostore_lincheck::{recorder::fingerprint, HistoryRecorder};
use legostore_proto::msg::{OpOutcome, OpProgress, Outbound, ProtoReply};
use legostore_proto::reconfig::{ControllerProgress, ReconfigController};
use legostore_proto::server::{DcServer, Inbound};
use legostore_proto::{AbdGet, AbdPut, CasGet, CasPut};
use legostore_types::{
    ClientId, ConfigEpoch, Configuration, DcId, FaultPlan, Key, OpKind, ProtocolKind,
    Tag, Value,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Tunables of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Metadata bytes per protocol message (`o_m`).
    pub metadata_bytes: u64,
    /// Whether ABD GETs use the optimized one-phase fast path.
    pub optimized_get: bool,
    /// Whether CAS GETs use the client-side cache fast path.
    pub cas_get_cache: bool,
    /// Per-attempt operation timeout (virtual ms) before the client widens its quorum to the
    /// full placement and retries.
    pub op_timeout_ms: f64,
    /// Maximum number of timeout-driven retries before an operation is reported failed.
    pub max_timeout_retries: u32,
    /// Data center hosting the reconfiguration controller and the authoritative metadata
    /// (the paper places it in Los Angeles).
    pub controller_dc: DcId,
    /// Hard stop for the virtual clock (ms); events beyond it are not processed.
    pub max_time_ms: f64,
    /// Epoch lease (virtual ms): how long a server keeps requests parked for a
    /// reconfiguration whose `FinishReconfig` never arrives before re-activating the
    /// old epoch and draining them there. `None` derives 16 × `op_timeout_ms` — twice
    /// the controller's own give-up horizon of 8 resends, so a live controller always
    /// finishes or abandons the transfer before any server gives up on it.
    pub epoch_lease_ms: Option<f64>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            metadata_bytes: legostore_cloud::METADATA_BYTES,
            optimized_get: true,
            cas_get_cache: true,
            op_timeout_ms: 1500.0,
            max_timeout_retries: 2,
            controller_dc: DcId(7), // Los Angeles in the gcp9 model
            max_time_ms: f64::INFINITY,
            epoch_lease_ms: None,
        }
    }
}

/// Traffic class used for cost attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrafficClass {
    Get,
    Put,
    Reconfig,
}

/// Client-side operation state machine (one of the four protocol operations).
#[derive(Debug, Clone)]
enum ClientOp {
    AbdPut(AbdPut),
    AbdGet(AbdGet),
    CasPut(CasPut),
    CasGet(CasGet),
}

impl ClientOp {
    fn start(&self) -> Vec<Outbound> {
        match self {
            ClientOp::AbdPut(o) => o.start(),
            ClientOp::AbdGet(o) => o.start(),
            ClientOp::CasPut(o) => o.start(),
            ClientOp::CasGet(o) => o.start(),
        }
    }

    /// Re-sends the current phase to every placement DC (§4.5 timeout handling): the
    /// operation resumes with its chosen tag pinned — a restarted PUT would take effect
    /// twice (see `AbdPut::resend_widened`).
    fn resend_widened(&mut self) -> Vec<Outbound> {
        match self {
            ClientOp::AbdPut(o) => o.resend_widened(),
            ClientOp::AbdGet(o) => o.resend_widened(),
            ClientOp::CasPut(o) => o.resend_widened(),
            ClientOp::CasGet(o) => o.resend_widened(),
        }
    }

    fn on_reply(&mut self, from: DcId, phase: u8, reply: ProtoReply) -> OpProgress {
        match self {
            ClientOp::AbdPut(o) => o.on_reply(from, phase, reply),
            ClientOp::AbdGet(o) => o.on_reply(from, phase, reply),
            ClientOp::CasPut(o) => o.on_reply(from, phase, reply),
            ClientOp::CasGet(o) => o.on_reply(from, phase, reply),
        }
    }

    /// The tag this PUT committed to in its query phase, if it got that far (`None` for
    /// GETs). A restart that crosses an epoch must pin it — see [`Simulation::retry_op`].
    fn chosen_tag(&self) -> Option<Tag> {
        match self {
            ClientOp::AbdPut(o) => o.chosen_tag(),
            ClientOp::CasPut(o) => o.chosen_tag(),
            ClientOp::AbdGet(_) | ClientOp::CasGet(_) => None,
        }
    }
}

#[derive(Debug, Clone)]
struct PendingOp {
    op: ClientOp,
    origin: DcId,
    kind: OpKind,
    key: Key,
    start_ms: f64,
    value: Option<Value>,
    object_bytes: u64,
    config: Configuration,
    reconfig_retries: u32,
    timeout_retries: u32,
    attempt: u32,
    /// True while a retry has been scheduled but not yet started; replies and timeouts from
    /// the abandoned attempt are ignored in the meantime.
    awaiting_retry: bool,
}

#[derive(Debug, Clone)]
struct PendingReconfig {
    controller: ReconfigController,
    key: Key,
    start_ms: f64,
}

#[derive(Debug, Clone)]
enum Event {
    StartRequest {
        origin: DcId,
        kind: OpKind,
        key: Key,
        value_size: u64,
    },
    DeliverToServer {
        to: DcId,
        inbound: Inbound,
    },
    DeliverReply {
        token: u64,
        from: DcId,
        phase: u8,
        epoch: ConfigEpoch,
        reply: ProtoReply,
    },
    OpTimeout {
        token: u64,
        attempt: u32,
    },
    ReconfigTimeout {
        token: u64,
        resends: u32,
    },
    StartReconfig {
        key: Key,
        new_config: Configuration,
    },
    RetryOp {
        token: u64,
    },
    SetDcFailed {
        dc: DcId,
        failed: bool,
    },
}

/// The simulator.
pub struct Simulation {
    model: CloudModel,
    options: SimOptions,
    now_us: u64,
    seq: u64,
    events: BinaryHeap<Reverse<(u64, u64, usize)>>,
    event_payloads: HashMap<usize, Event>,
    next_event_id: usize,
    servers: HashMap<DcId, DcServer>,
    ops: HashMap<u64, PendingOp>,
    reconfigs: HashMap<u64, PendingReconfig>,
    next_token: u64,
    next_client_id: u32,
    metadata: HashMap<Key, Configuration>,
    client_views: HashMap<(DcId, Key), Configuration>,
    get_cache: HashMap<(DcId, Key), (Tag, Value)>,
    records: Vec<OpRecord>,
    cost: CostMeter,
    reconfig_durations: Vec<f64>,
    /// The simulated network's delivery-decision seam (see [`Simulation::set_fault_plan`]).
    net: SimNet,
    /// Per-key operation histories, recorded only when
    /// [`Simulation::enable_history_recording`] was called.
    recorder: Option<Arc<HistoryRecorder>>,
}

impl Simulation {
    /// Creates a simulator over `model` with default options.
    pub fn new(model: CloudModel) -> Self {
        Self::with_options(model, SimOptions::default())
    }

    /// Creates a simulator with explicit options.
    pub fn with_options(model: CloudModel, options: SimOptions) -> Self {
        let lease_ns =
            (options.epoch_lease_ms.unwrap_or(options.op_timeout_ms * 16.0) * 1e6) as u64;
        let servers = model
            .dc_ids()
            .into_iter()
            .map(|d| {
                let mut server = DcServer::new(d);
                server.set_epoch_lease_ns(lease_ns);
                (d, server)
            })
            .collect();
        Simulation {
            model,
            options,
            now_us: 0,
            seq: 0,
            events: BinaryHeap::new(),
            event_payloads: HashMap::new(),
            next_event_id: 0,
            servers,
            ops: HashMap::new(),
            reconfigs: HashMap::new(),
            next_token: 1,
            next_client_id: 1,
            metadata: HashMap::new(),
            client_views: HashMap::new(),
            get_cache: HashMap::new(),
            records: Vec::new(),
            cost: CostMeter::default(),
            reconfig_durations: Vec::new(),
            net: SimNet::new(),
            recorder: None,
        }
    }

    /// Injects a deterministic fault plan (see [`legostore_types::fault`]). The plan's
    /// events are applied lazily as virtual time passes their instants; per-message
    /// drop/duplication coin flips come from the plan's seed, so a faulty run is exactly
    /// as reproducible as a fault-free one. The same plan fed to a virtual-time
    /// `legostore-core` deployment injects the same schedule there.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.net.set_plan(plan);
    }

    /// Starts recording per-key operation histories for linearizability checking.
    ///
    /// Must be called before any key is created. While recording, PUT payloads are
    /// stamped with the operation token (same size as requested, so latency and cost
    /// accounting are unchanged) — otherwise every PUT of a size would write identical
    /// filler bytes and the checker could not tell writes apart. Payloads shorter than
    /// 8 bytes truncate the stamp and can alias once tokens exceed `256^len`; use
    /// ≥ 8-byte objects when the linearizability verdict matters.
    pub fn enable_history_recording(&mut self) {
        if self.recorder.is_none() {
            self.recorder = Some(Arc::new(HistoryRecorder::new()));
        }
    }

    /// The history recorder, if [`Simulation::enable_history_recording`] was called
    /// (also carried into [`SimReport::histories`] by [`Simulation::run`]).
    pub fn recorder(&self) -> Option<Arc<HistoryRecorder>> {
        self.recorder.clone()
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.now_us as f64 / 1000.0
    }

    /// Installs `key` with `config` and `initial_value` at its hosting servers and registers
    /// it in the metadata service (the CREATE operation, performed before the run starts).
    pub fn create_key(&mut self, key: impl Into<Key>, config: Configuration, initial_value: &Value) {
        let key = key.into();
        for (dc, payload) in DcServer::initial_payloads(&config, initial_value) {
            self.servers
                .get_mut(&dc)
                .expect("dc exists")
                .install_key(key.clone(), config.clone(), Tag::INITIAL, payload);
        }
        if let Some(recorder) = &self.recorder {
            recorder.register_key(key.as_str(), fingerprint(initial_value.as_bytes()));
        }
        self.metadata.insert(key, config);
    }

    /// Schedules a single client request at virtual time `at_ms`.
    pub fn schedule_request(
        &mut self,
        at_ms: f64,
        origin: DcId,
        kind: OpKind,
        key: impl Into<Key>,
        value_size: u64,
    ) {
        self.push_event(
            at_ms,
            Event::StartRequest {
                origin,
                kind,
                key: key.into(),
                value_size,
            },
        );
    }

    /// Schedules every request of a workload trace; `key_of` maps the trace's key index to a
    /// key name.
    pub fn schedule_trace<F: Fn(usize) -> String>(
        &mut self,
        trace: &[legostore_workload::Request],
        offset_ms: f64,
        key_of: F,
    ) {
        for r in trace {
            self.schedule_request(
                offset_ms + r.time_ms,
                r.origin,
                r.kind,
                key_of(r.key_index),
                r.object_size,
            );
        }
    }

    /// Schedules a reconfiguration of `key` to `new_config` at `at_ms` (the controller reads
    /// the old configuration from the metadata service when the event fires).
    pub fn schedule_reconfig(&mut self, at_ms: f64, key: impl Into<Key>, new_config: Configuration) {
        self.push_event(
            at_ms,
            Event::StartReconfig {
                key: key.into(),
                new_config,
            },
        );
    }

    /// Schedules a whole-DC failure at `at_ms`.
    pub fn schedule_failure(&mut self, at_ms: f64, dc: DcId) {
        self.push_event(at_ms, Event::SetDcFailed { dc, failed: true });
    }

    /// Schedules a DC recovery at `at_ms`.
    pub fn schedule_recovery(&mut self, at_ms: f64, dc: DcId) {
        self.push_event(at_ms, Event::SetDcFailed { dc, failed: false });
    }

    /// Runs the simulation to completion (or to `max_time_ms`) and returns the report.
    pub fn run(mut self) -> SimReport {
        while let Some(Reverse((t_us, _, id))) = self.events.pop() {
            if t_us as f64 / 1000.0 > self.options.max_time_ms {
                break;
            }
            self.now_us = t_us;
            let event = self.event_payloads.remove(&id).expect("payload exists");
            self.handle_event(event);
        }
        SimReport {
            operations: self.records,
            cost: self.cost,
            end_time_ms: self.now_us as f64 / 1000.0,
            reconfig_durations_ms: self.reconfig_durations,
            histories: self.recorder,
        }
    }

    // ---- internals ----

    fn push_event(&mut self, at_ms: f64, event: Event) {
        let at_us = (at_ms.max(0.0) * 1000.0).round() as u64;
        let id = self.next_event_id;
        self.next_event_id += 1;
        self.seq += 1;
        self.event_payloads.insert(id, event);
        self.events.push(Reverse((at_us, self.seq, id)));
    }

    fn class_of(&self, token: u64) -> TrafficClass {
        if self.reconfigs.contains_key(&token) {
            TrafficClass::Reconfig
        } else if let Some(op) = self.ops.get(&token) {
            match op.kind {
                OpKind::Get => TrafficClass::Get,
                OpKind::Put => TrafficClass::Put,
            }
        } else {
            TrafficClass::Reconfig
        }
    }

    fn meter(&mut self, from: DcId, to: DcId, bytes: u64, class: TrafficClass) {
        let dollars = self.model.transfer_cost(from, to, bytes);
        self.cost.bytes_moved += bytes;
        match class {
            TrafficClass::Get => self.cost.get_network += dollars,
            TrafficClass::Put => self.cost.put_network += dollars,
            TrafficClass::Reconfig => self.cost.reconfig_network += dollars,
        }
    }

    /// Sends protocol messages from `origin` on behalf of endpoint `token`.
    ///
    /// Request-leg fault interposition. Cost is metered once per *logical* send: the
    /// sender pays for its egress exactly once, and both dropping and duplication
    /// happen downstream of that billed egress (a dropped message was still sent; a
    /// network-duplicated one was not sent twice). Extra fault delay is applied on the
    /// reply leg only, mirroring `legostore-core`, which models the whole round trip
    /// on the reply side.
    fn send_outbound(&mut self, token: u64, origin: DcId, msgs: Vec<Outbound>) {
        let class = self.class_of(token);
        for out in msgs {
            let bytes = out.msg.wire_size(self.options.metadata_bytes);
            self.meter(origin, out.to, bytes, class);
            let now_ms = self.now_us as f64 / 1000.0;
            let Some((copies, _)) = self.net.deliveries(now_ms, origin, out.to) else {
                continue;
            };
            let delay_ms = self.model.latency_ms(origin, out.to)
                + self.model.transfer_time_ms(origin, out.to, bytes);
            let inbound = Inbound {
                from: token,
                msg_id: self.seq,
                phase: out.phase,
                key: out.key,
                epoch: out.epoch,
                msg: out.msg,
            };
            for _ in 1..copies {
                self.push_event(
                    self.now_ms() + delay_ms,
                    Event::DeliverToServer { to: out.to, inbound: inbound.clone() },
                );
            }
            self.push_event(
                self.now_ms() + delay_ms,
                Event::DeliverToServer { to: out.to, inbound },
            );
        }
    }

    fn endpoint_dc(&self, token: u64) -> DcId {
        if let Some(op) = self.ops.get(&token) {
            op.origin
        } else {
            self.options.controller_dc
        }
    }

    fn handle_event(&mut self, event: Event) {
        match event {
            Event::StartRequest {
                origin,
                kind,
                key,
                value_size,
            } => self.start_request(origin, kind, key, value_size),
            Event::DeliverToServer { to, inbound } => {
                let Some(server) = self.servers.get_mut(&to) else { return };
                let replies = server.handle_at(inbound, self.now_us * 1000);
                for reply in replies {
                    let dest_dc = self.endpoint_dc(reply.to);
                    let bytes = reply.reply.wire_size(self.options.metadata_bytes);
                    let class = self.class_of(reply.to);
                    self.meter(to, dest_dc, bytes, class);
                    // Reply-leg fault interposition (this is where slow-DC / lossy-link
                    // extra delay lands; see `send_outbound`).
                    let now_ms = self.now_us as f64 / 1000.0;
                    let Some((copies, extra_ms)) = self.net.deliveries(now_ms, to, dest_dc)
                    else {
                        continue;
                    };
                    let delay_ms = self.model.latency_ms(to, dest_dc)
                        + self.model.transfer_time_ms(to, dest_dc, bytes)
                        + extra_ms;
                    // Clone only for duplicated deliveries; the common single-copy case
                    // moves the reply (CAS shards carry real payloads).
                    for _ in 1..copies {
                        self.push_event(
                            self.now_ms() + delay_ms,
                            Event::DeliverReply {
                                token: reply.to,
                                from: to,
                                phase: reply.phase,
                                epoch: reply.epoch,
                                reply: reply.reply.clone(),
                            },
                        );
                    }
                    self.push_event(
                        self.now_ms() + delay_ms,
                        Event::DeliverReply {
                            token: reply.to,
                            from: to,
                            phase: reply.phase,
                            epoch: reply.epoch,
                            reply: reply.reply,
                        },
                    );
                }
            }
            Event::DeliverReply {
                token,
                from,
                phase,
                epoch,
                reply,
            } => {
                if self.ops.contains_key(&token) {
                    self.op_reply(token, from, phase, epoch, reply);
                } else if self.reconfigs.contains_key(&token) {
                    self.reconfig_reply(token, from, phase, reply);
                }
            }
            Event::OpTimeout { token, attempt } => self.op_timeout(token, attempt),
            Event::ReconfigTimeout { token, resends } => self.reconfig_timeout(token, resends),
            Event::StartReconfig { key, new_config } => self.start_reconfig(key, new_config),
            Event::RetryOp { token } => self.retry_op(token),
            Event::SetDcFailed { dc, failed } => {
                if let Some(s) = self.servers.get_mut(&dc) {
                    s.set_failed(failed);
                }
            }
        }
    }

    fn config_for_client(&mut self, origin: DcId, key: &Key) -> Option<Configuration> {
        if let Some(c) = self.client_views.get(&(origin, key.clone())) {
            return Some(c.clone());
        }
        let c = self.metadata.get(key)?.clone();
        self.client_views.insert((origin, key.clone()), c.clone());
        Some(c)
    }

    fn build_op(
        &mut self,
        origin: DcId,
        kind: OpKind,
        key: &Key,
        config: &Configuration,
        value: Option<&Value>,
    ) -> ClientOp {
        let client_id = ClientId(self.next_client_id);
        self.next_client_id += 1;
        match (config.protocol, kind) {
            (ProtocolKind::Abd, OpKind::Put) => ClientOp::AbdPut(AbdPut::new(
                key.clone(),
                config.clone(),
                origin,
                client_id,
                value.cloned().unwrap_or_else(Value::empty),
            )),
            (ProtocolKind::Abd, OpKind::Get) => ClientOp::AbdGet(AbdGet::new(
                key.clone(),
                config.clone(),
                origin,
                self.options.optimized_get,
            )),
            (ProtocolKind::Cas, OpKind::Put) => ClientOp::CasPut(CasPut::new(
                key.clone(),
                config.clone(),
                origin,
                client_id,
                value.cloned().unwrap_or_else(Value::empty),
            )),
            (ProtocolKind::Cas, OpKind::Get) => {
                let cache = if self.options.cas_get_cache {
                    self.get_cache.get(&(origin, key.clone())).cloned()
                } else {
                    None
                };
                ClientOp::CasGet(CasGet::new(key.clone(), config.clone(), origin, cache))
            }
        }
    }

    /// Builds a PUT resumed at its write phase with `tag` pinned (cross-epoch restart).
    fn build_resumed_put(
        &mut self,
        origin: DcId,
        key: &Key,
        config: &Configuration,
        tag: Tag,
        value: &Value,
    ) -> ClientOp {
        let client_id = ClientId(self.next_client_id);
        self.next_client_id += 1;
        match config.protocol {
            ProtocolKind::Abd => ClientOp::AbdPut(AbdPut::resume_write(
                key.clone(),
                config.clone(),
                origin,
                client_id,
                tag,
                value.clone(),
            )),
            ProtocolKind::Cas => ClientOp::CasPut(CasPut::resume_write(
                key.clone(),
                config.clone(),
                origin,
                client_id,
                tag,
                value.clone(),
            )),
        }
    }

    fn start_request(&mut self, origin: DcId, kind: OpKind, key: Key, value_size: u64) {
        let Some(config) = self.config_for_client(origin, &key) else {
            // Key unknown anywhere: record an immediate failure.
            self.records.push(OpRecord {
                origin,
                kind,
                key: key.0,
                start_ms: self.now_ms(),
                end_ms: self.now_ms(),
                ok: false,
                one_phase: false,
                reconfig_retries: 0,
                timeout_retries: 0,
                object_bytes: value_size,
            });
            return;
        };
        let token = self.next_token;
        self.next_token += 1;
        let value = match kind {
            // While recording histories, stamp the payload with the operation token
            // (same length — truncating the stamp for tiny payloads — so latency and
            // cost accounting are identical with recording on or off): distinct writes
            // must have distinct fingerprints or the linearizability check is vacuous.
            OpKind::Put if self.recorder.is_some() => {
                let mut bytes = vec![0xABu8; value_size as usize];
                let stamp = (value_size as usize).min(8);
                bytes[..stamp].copy_from_slice(&token.to_le_bytes()[..stamp]);
                Some(Value::from(bytes))
            }
            OpKind::Put => Some(Value::filler(value_size as usize)),
            OpKind::Get => None,
        };
        let op = self.build_op(origin, kind, &key, &config, value.as_ref());
        let pending = PendingOp {
            op,
            origin,
            kind,
            key,
            start_ms: self.now_ms(),
            value,
            object_bytes: value_size,
            config,
            reconfig_retries: 0,
            timeout_retries: 0,
            attempt: 0,
            awaiting_retry: false,
        };
        let msgs = pending.op.start();
        self.ops.insert(token, pending);
        self.send_outbound(token, origin, msgs);
        self.push_event(
            self.now_ms() + self.options.op_timeout_ms,
            Event::OpTimeout { token, attempt: 0 },
        );
    }

    /// Records one successful operation into the history recorder (no-op unless
    /// [`Simulation::enable_history_recording`] was called). Failed operations are never
    /// recorded, matching the threaded runtime: an operation without a response has no
    /// place in a completed-operation history.
    fn record_history(&mut self, token: u64, key: &Key, kind: OpKind, value_bytes: &[u8]) {
        let Some(recorder) = &self.recorder else { return };
        let Some(op) = self.ops.get(&token) else { return };
        let invoke_us = (op.start_ms * 1000.0).round() as u64;
        let ret_us = self.now_us.max(invoke_us);
        let fp = fingerprint(value_bytes);
        match kind {
            OpKind::Get => recorder.record_get(key.as_str(), token as u32, fp, invoke_us, ret_us),
            OpKind::Put => recorder.record_put(key.as_str(), token as u32, fp, invoke_us, ret_us),
        }
    }

    fn finish_op(&mut self, token: u64, ok: bool, one_phase: bool) {
        let Some(op) = self.ops.remove(&token) else { return };
        self.records.push(OpRecord {
            origin: op.origin,
            kind: op.kind,
            key: op.key.0.clone(),
            start_ms: op.start_ms,
            end_ms: self.now_ms(),
            ok,
            one_phase,
            reconfig_retries: op.reconfig_retries,
            timeout_retries: op.timeout_retries,
            object_bytes: op.object_bytes,
        });
    }

    fn op_reply(&mut self, token: u64, from: DcId, phase: u8, epoch: ConfigEpoch, reply: ProtoReply) {
        let Some(op) = self.ops.get_mut(&token) else { return };
        // Servers stamp every reply with the epoch of the request it answers, so a reply
        // from another epoch is a straggler of an abandoned attempt — the attempt counter
        // alone can't catch it, because a resumed PUT keeps its phase numbers across the
        // restart. Redirects still pass: they echo the (then-current) request epoch.
        if op.awaiting_retry || op.config.epoch != epoch {
            return;
        }
        let origin = op.origin;
        let progress = op.op.on_reply(from, phase, reply);
        match progress {
            OpProgress::Pending => {}
            OpProgress::Send(msgs) => self.send_outbound(token, origin, msgs),
            OpProgress::Done(outcome) => match outcome {
                OpOutcome::PutOk { tag } => {
                    let (key, value) = {
                        let op = self.ops.get(&token).expect("still present");
                        (op.key.clone(), op.value.clone())
                    };
                    if let Some(v) = value {
                        self.record_history(token, &key, OpKind::Put, v.as_bytes());
                        self.get_cache.insert((origin, key), (tag, v));
                    }
                    self.finish_op(token, true, false);
                }
                OpOutcome::GetOk {
                    tag,
                    value,
                    one_phase,
                } => {
                    let key = self.ops.get(&token).expect("present").key.clone();
                    self.record_history(token, &key, OpKind::Get, value.as_bytes());
                    self.get_cache.insert((origin, key), (tag, value));
                    self.finish_op(token, true, one_phase);
                }
                OpOutcome::Reconfigured { new_config } => {
                    // The client must learn the new configuration (modeled as one RTT to the
                    // controller's metadata service) and then restart the operation.
                    let delay =
                        self.model.rtt_ms(origin, self.options.controller_dc).max(1.0);
                    if let Some(op) = self.ops.get_mut(&token) {
                        op.reconfig_retries += 1;
                        op.awaiting_retry = true;
                        op.config = (*new_config).clone();
                        self.client_views
                            .insert((origin, op.key.clone()), (*new_config).clone());
                    }
                    self.push_event(self.now_ms() + delay, Event::RetryOp { token });
                }
                OpOutcome::Failed(err) => {
                    if err.is_retryable() {
                        let op_exists = self.ops.get_mut(&token).map(|op| {
                            op.reconfig_retries += 1;
                            op.awaiting_retry = true;
                        });
                        if op_exists.is_some() {
                            self.push_event(self.now_ms() + 10.0, Event::RetryOp { token });
                        }
                    } else {
                        self.finish_op(token, false, false);
                    }
                }
            },
        }
    }

    /// Restarts a pending operation against its (possibly refreshed) configuration.
    ///
    /// A PUT that already chose its tag does not restart from scratch: rebuilding the
    /// state machine would re-query and install the same value under a fresh tag — one
    /// write with two linearization points, visible as new→old→new to concurrent
    /// readers once the old-tagged copy was transferred by a reconfiguration. Instead
    /// the new attempt resumes at the write phase with the tag pinned; servers at or
    /// below their transfer floor absorb the replay as a no-op.
    fn retry_op(&mut self, token: u64) {
        let Some(op) = self.ops.get(&token) else { return };
        if op.reconfig_retries + op.timeout_retries > 8 {
            self.finish_op(token, false, false);
            return;
        }
        let (origin, kind, key, config, value) = (
            op.origin,
            op.kind,
            op.key.clone(),
            op.config.clone(),
            op.value.clone(),
        );
        let new_op = match (op.op.chosen_tag(), value.as_ref()) {
            (Some(tag), Some(v)) => self.build_resumed_put(origin, &key, &config, tag, v),
            _ => self.build_op(origin, kind, &key, &config, value.as_ref()),
        };
        let msgs = new_op.start();
        if let Some(op) = self.ops.get_mut(&token) {
            op.op = new_op;
            op.attempt += 1;
            op.awaiting_retry = false;
        }
        let attempt = self.ops.get(&token).map(|o| o.attempt).unwrap_or(0);
        self.send_outbound(token, origin, msgs);
        self.push_event(
            self.now_ms() + self.options.op_timeout_ms,
            Event::OpTimeout { token, attempt },
        );
    }

    fn op_timeout(&mut self, token: u64, attempt: u32) {
        let Some(op) = self.ops.get_mut(&token) else { return };
        if op.attempt != attempt || op.awaiting_retry {
            return; // a newer attempt is in flight or a retry is already scheduled
        }
        if op.timeout_retries >= self.options.max_timeout_retries {
            self.finish_op(token, false, false);
            return;
        }
        // The paper's failure handling (§4.5): *resume* the operation, re-sending its
        // current phase to every DC of the placement. Resuming — not restarting — is
        // what keeps a partially-applied PUT's tag pinned; a rebuilt state machine
        // would re-query and install the same value under a fresh tag, i.e. one write
        // with two linearization points.
        op.timeout_retries += 1;
        op.attempt += 1;
        let origin = op.origin;
        let next_attempt = op.attempt;
        let msgs = op.op.resend_widened();
        self.send_outbound(token, origin, msgs);
        self.push_event(
            self.now_ms() + self.options.op_timeout_ms,
            Event::OpTimeout { token, attempt: next_attempt },
        );
    }

    fn start_reconfig(&mut self, key: Key, new_config: Configuration) {
        let Some(old) = self.metadata.get(&key).cloned() else { return };
        let controller = ReconfigController::new(key.clone(), old, new_config);
        let msgs = controller.start();
        let token = self.next_token;
        self.next_token += 1;
        self.reconfigs.insert(
            token,
            PendingReconfig {
                controller,
                key,
                start_ms: self.now_ms(),
            },
        );
        self.send_outbound(token, self.options.controller_dc, msgs);
        self.push_event(
            self.now_ms() + self.options.op_timeout_ms,
            Event::ReconfigTimeout { token, resends: 0 },
        );
    }

    /// Controller fault handling, mirroring `Cluster::reconfigure`: every round is
    /// idempotent at the servers, so an op-timeout without completion re-sends the
    /// current round in full. After 8 resends the controller gives up (the threaded
    /// runtime's `ReconfigStalled`); the metadata still points at the old
    /// configuration, and the blocked servers re-activate on their epoch lease.
    fn reconfig_timeout(&mut self, token: u64, resends: u32) {
        let Some(rc) = self.reconfigs.get_mut(&token) else { return };
        if resends >= 8 {
            self.reconfigs.remove(&token);
            return;
        }
        let msgs = rc.controller.resend_current_round();
        self.send_outbound(token, self.options.controller_dc, msgs);
        self.push_event(
            self.now_ms() + self.options.op_timeout_ms,
            Event::ReconfigTimeout { token, resends: resends + 1 },
        );
    }

    fn reconfig_reply(&mut self, token: u64, from: DcId, phase: u8, reply: ProtoReply) {
        let Some(rc) = self.reconfigs.get_mut(&token) else { return };
        match rc.controller.on_reply(from, phase, reply) {
            ControllerProgress::Pending => {}
            ControllerProgress::Send(msgs) => {
                self.send_outbound(token, self.options.controller_dc, msgs)
            }
            ControllerProgress::Done(outcome) => {
                let rc = self.reconfigs.get(&token).expect("present");
                let start_ms = rc.start_ms;
                let key = rc.key.clone();
                // Metadata update happens at the controller; then the finish messages go out.
                self.metadata.insert(key, outcome.new_config.clone());
                self.reconfig_durations.push(self.now_ms() - start_ms);
                let finish = outcome.finish_messages.clone();
                self.send_outbound(token, self.options.controller_dc, finish);
                self.reconfigs.remove(&token);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_cloud::{CloudModel, GcpLocation};
    use legostore_types::ConfigEpoch;

    fn gcp() -> CloudModel {
        CloudModel::gcp9()
    }

    fn abd3_config() -> Configuration {
        Configuration::abd_majority(
            vec![
                GcpLocation::Tokyo.dc(),
                GcpLocation::LosAngeles.dc(),
                GcpLocation::Oregon.dc(),
            ],
            1,
        )
    }

    fn cas53_config() -> Configuration {
        Configuration::cas_default(
            vec![
                GcpLocation::Singapore.dc(),
                GcpLocation::Frankfurt.dc(),
                GcpLocation::Virginia.dc(),
                GcpLocation::LosAngeles.dc(),
                GcpLocation::Oregon.dc(),
            ],
            3,
            1,
        )
    }

    #[test]
    fn single_put_and_get_latencies_match_rtt_expectations() {
        let mut sim = Simulation::new(gcp());
        sim.create_key("k", abd3_config(), &Value::filler(1024));
        let tokyo = GcpLocation::Tokyo.dc();
        sim.schedule_request(0.0, tokyo, OpKind::Put, "k", 1024);
        sim.schedule_request(1000.0, tokyo, OpKind::Get, "k", 1024);
        let report = sim.run();
        assert_eq!(report.operations.len(), 2);
        assert!(report.operations.iter().all(|o| o.ok));
        let put = &report.operations[0];
        // ABD PUT = 2 phases; each phase waits for the majority quorum {Tokyo, LA}: ~100 ms
        // RTT each -> ~200 ms total (plus negligible transfer time).
        assert!(put.latency_ms() > 150.0 && put.latency_ms() < 300.0, "{}", put.latency_ms());
        let get = &report.operations[1];
        // Optimized GET completes in one phase after the PUT stabilized the value.
        assert!(get.one_phase);
        assert!(get.latency_ms() < 150.0, "{}", get.latency_ms());
        assert!(report.cost.total() > 0.0);
        assert!(report.cost.put_network > report.cost.get_network);
    }

    #[test]
    fn cas_workload_runs_and_meters_cost() {
        let mut sim = Simulation::new(gcp());
        sim.create_key("k", cas53_config(), &Value::filler(4096));
        let tokyo = GcpLocation::Tokyo.dc();
        for i in 0..20 {
            let kind = if i % 2 == 0 { OpKind::Put } else { OpKind::Get };
            sim.schedule_request(i as f64 * 200.0, tokyo, kind, "k", 4096);
        }
        let report = sim.run();
        assert_eq!(report.operations.len(), 20);
        assert_eq!(report.failures(), 0);
        // 3-phase CAS PUTs are slower than 2-phase GETs on average.
        let puts = report.latency(Some(OpKind::Put), None, None, None);
        let gets = report.latency(Some(OpKind::Get), None, None, None);
        assert!(puts.mean_ms > gets.mean_ms);
        assert!(report.cost.bytes_moved > 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let build = || {
            let mut sim = Simulation::new(gcp());
            sim.create_key("k", cas53_config(), &Value::filler(1024));
            for i in 0..10 {
                sim.schedule_request(
                    i as f64 * 50.0,
                    GcpLocation::Sydney.dc(),
                    if i % 3 == 0 { OpKind::Put } else { OpKind::Get },
                    "k",
                    1024,
                );
            }
            sim.run()
        };
        let a = build();
        let b = build();
        assert_eq!(a.operations.len(), b.operations.len());
        for (x, y) in a.operations.iter().zip(b.operations.iter()) {
            assert_eq!(x.latency_ms(), y.latency_ms());
        }
        assert_eq!(a.cost.total(), b.cost.total());
    }

    #[test]
    fn reconfiguration_completes_quickly_and_redirects_clients() {
        let mut sim = Simulation::new(gcp());
        sim.create_key("k", cas53_config(), &Value::filler(1024));
        let sydney = GcpLocation::Sydney.dc();
        // Steady trickle of requests before, during and after the reconfiguration.
        for i in 0..40 {
            let kind = if i % 2 == 0 { OpKind::Get } else { OpKind::Put };
            sim.schedule_request(i as f64 * 100.0, sydney, kind, "k", 1024);
        }
        // At t=2s, switch to ABD(3) on Tokyo/Sydney/Singapore.
        let new_config = Configuration::abd_majority(
            vec![
                GcpLocation::Tokyo.dc(),
                GcpLocation::Sydney.dc(),
                GcpLocation::Singapore.dc(),
            ],
            1,
        );
        sim.schedule_reconfig(2000.0, "k", new_config);
        let report = sim.run();
        assert_eq!(report.reconfig_durations_ms.len(), 1);
        // The controller completes within ~4 inter-DC RTTs (< 1.5 s for these distances).
        assert!(
            report.reconfig_durations_ms[0] < 1500.0,
            "reconfig took {} ms",
            report.reconfig_durations_ms[0]
        );
        // All operations eventually succeed, and at least one was failed over to the new
        // configuration (client-visible reconfig retry).
        assert_eq!(report.failures(), 0);
        assert!(report.operations.iter().any(|o| o.reconfig_retries > 0));
        assert!(report.cost.reconfig_network > 0.0);
        // Operations issued well after the reconfiguration hit the new ABD config directly.
        let late = report.latency(None, None, Some(3500.0), None);
        assert!(late.count > 0);
    }

    #[test]
    fn dc_failure_triggers_timeouts_but_operations_survive() {
        let mut sim = Simulation::with_options(
            gcp(),
            SimOptions {
                op_timeout_ms: 800.0,
                ..Default::default()
            },
        );
        let config = cas53_config();
        sim.create_key("k", config.clone(), &Value::filler(1024));
        // Fail Los Angeles (a quorum member) before the requests arrive.
        sim.schedule_failure(0.0, GcpLocation::LosAngeles.dc());
        let virginia = GcpLocation::Virginia.dc();
        for i in 0..10 {
            sim.schedule_request(10.0 + i as f64 * 100.0, virginia, OpKind::Get, "k", 1024);
        }
        let report = sim.run();
        assert_eq!(report.operations.len(), 10);
        // With f=1 tolerance the operations must still succeed, via timeout + widened quorum.
        assert_eq!(report.failures(), 0, "{:?}", report.operations);
        let with_retry = report.operations.iter().filter(|o| o.timeout_retries > 0).count();
        assert!(with_retry > 0, "the failed DC must have forced retries");
        // And their latency is inflated by at least the timeout.
        let slow = report.latency(None, None, None, None);
        assert!(slow.max_ms >= 800.0);
    }

    #[test]
    fn fault_plan_crash_window_is_ridden_out_by_retries() {
        use legostore_types::{FaultEvent, FaultKind};
        let la = GcpLocation::LosAngeles.dc();
        let mut sim = Simulation::with_options(
            gcp(),
            SimOptions {
                op_timeout_ms: 800.0,
                ..Default::default()
            },
        );
        sim.enable_history_recording();
        sim.set_fault_plan(&legostore_types::FaultPlan {
            seed: 9,
            events: vec![
                FaultEvent { at_ms: 100.0, kind: FaultKind::CrashDc { dc: la } },
                FaultEvent { at_ms: 2_500.0, kind: FaultKind::RestartDc { dc: la } },
            ],
        });
        sim.create_key("k", abd3_config(), &Value::filler(512));
        let tokyo = GcpLocation::Tokyo.dc();
        for i in 0..12 {
            let kind = if i % 3 == 0 { OpKind::Put } else { OpKind::Get };
            sim.schedule_request(i as f64 * 400.0, tokyo, kind, "k", 512);
        }
        let report = sim.run();
        assert_eq!(report.operations.len(), 12);
        // f = 1 and one DC crashed: every operation must still complete (liveness)...
        assert_eq!(report.failures(), 0, "{:?}", report.operations);
        // ...some of them only after a timeout-driven widened retry...
        assert!(report.operations.iter().any(|o| o.timeout_retries > 0));
        // ...and the recorded history must be linearizable (safety).
        let histories = report.histories.as_ref().expect("recording enabled");
        assert!(histories.len("k") > 0);
        assert!(histories.check_all().is_empty());
    }

    #[test]
    fn fault_plan_slow_dc_inflates_latency_without_failures() {
        use legostore_types::{FaultEvent, FaultKind};
        let run = |extra_ms: f64| {
            let mut sim = Simulation::new(gcp());
            sim.set_fault_plan(&legostore_types::FaultPlan {
                seed: 1,
                events: vec![FaultEvent {
                    at_ms: 0.0,
                    kind: FaultKind::SlowDc { dc: GcpLocation::LosAngeles.dc(), extra_ms },
                }],
            });
            sim.create_key("k", abd3_config(), &Value::filler(256));
            for i in 0..6 {
                sim.schedule_request(i as f64 * 500.0, GcpLocation::Tokyo.dc(), OpKind::Get, "k", 256);
            }
            sim.run()
        };
        let slow = run(120.0);
        let clean = run(0.0);
        assert_eq!(slow.failures(), 0);
        // LA is in the majority quorum for Tokyo, so its replies gate every phase.
        let slow_mean = slow.latency(None, None, None, None).mean_ms;
        let clean_mean = clean.latency(None, None, None, None).mean_ms;
        assert!(
            slow_mean >= clean_mean + 100.0,
            "slow-DC delay must surface in latency: {slow_mean} vs {clean_mean}"
        );
    }

    #[test]
    fn unknown_key_fails_immediately() {
        let mut sim = Simulation::new(gcp());
        sim.schedule_request(0.0, GcpLocation::Tokyo.dc(), OpKind::Get, "missing", 100);
        let report = sim.run();
        assert_eq!(report.operations.len(), 1);
        assert!(!report.operations[0].ok);
    }

    #[test]
    fn trace_scheduling_and_epoch_bumps() {
        let model = gcp();
        let mut spec = legostore_workload::WorkloadSpec::example();
        spec.arrival_rate = 20.0;
        spec.client_distribution = vec![(GcpLocation::Tokyo.dc(), 1.0)];
        let mut gen = legostore_workload::TraceGenerator::new(spec, 2, 99);
        let trace = gen.generate(2_000.0);
        let mut sim = Simulation::new(model);
        sim.create_key("key-0", abd3_config(), &Value::filler(512));
        sim.create_key("key-1", abd3_config(), &Value::filler(512));
        sim.schedule_trace(&trace, 0.0, |i| format!("key-{i}"));
        let report = sim.run();
        assert_eq!(report.operations.len(), trace.len());
        assert_eq!(report.failures(), 0);
        // Epoch of the created keys stays at the initial value (no reconfig scheduled).
        assert_eq!(abd3_config().epoch, ConfigEpoch::INITIAL);
    }
}
