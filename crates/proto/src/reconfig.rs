//! The reconfiguration controller — Algorithm 1 of the paper.
//!
//! The controller reads a consistent `(tag, value)` from the old configuration (blocking
//! concurrent operations at the servers it reaches), writes it into the new configuration
//! (re-encoding if the new configuration uses CAS), updates the metadata service, and then
//! releases the old configuration's servers with `FinishReconfig`. Operations that were
//! blocked either complete in the old configuration (if their tag is at or below the
//! transferred tag) or are failed over to the new configuration, where clients retry.
//!
//! The controller is a state machine like the client operations: [`ReconfigController::start`]
//! emits the first round of messages, [`ReconfigController::on_reply`] consumes replies and
//! emits follow-up rounds, and the final [`ReconfigOutcome`] carries the `FinishReconfig`
//! messages for the runtime to deliver after it has updated the metadata service.

use crate::msg::{Outbound, ProtoMsg, ProtoReply, ReconfigPayload};
use crate::quorum::QuorumTracker;
use legostore_erasure::{decode_value, encode_value, Shard};
use legostore_types::{
    Configuration, DcId, Key, ProtocolKind, QuorumId, StoreError, Tag, Value,
};

/// Message phase numbers used by the controller (echoed by servers; distinct from the client
/// protocols' 1–3 so that instrumentation can tell them apart).
pub const PHASE_QUERY: u8 = 11;
/// Phase number of the CAS collection round.
pub const PHASE_COLLECT: u8 = 12;
/// Phase number of the write-to-new-configuration round.
pub const PHASE_WRITE: u8 = 13;
/// Phase number of the final `FinishReconfig` round (fire-and-forget).
pub const PHASE_FINISH: u8 = 14;

/// Which stage the controller is currently in (exposed for instrumentation; Figure 5's
/// breakdown reports the duration of each stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerPhase {
    /// Waiting for `ReconfigQuery` responses from the old configuration.
    Query,
    /// Waiting for codeword symbols from the old configuration (CAS only).
    Collect,
    /// Waiting for write acknowledgements from the new configuration.
    WriteNew,
    /// Finished.
    Done,
}

/// Progress report from feeding one reply into the controller.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerProgress {
    /// Keep waiting.
    Pending,
    /// Send these messages and keep waiting.
    Send(Vec<Outbound>),
    /// Reconfiguration transfer complete.
    Done(Box<ReconfigOutcome>),
}

/// Result of a completed reconfiguration transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigOutcome {
    /// Key that was reconfigured.
    pub key: Key,
    /// The new configuration (epoch already bumped).
    pub new_config: Configuration,
    /// Highest tag transferred from the old configuration.
    pub highest_tag: Tag,
    /// The transferred value.
    pub value: Value,
    /// `FinishReconfig` messages to deliver to the old configuration's servers *after*
    /// updating the metadata service.
    pub finish_messages: Vec<Outbound>,
}

/// Errors the controller can hit.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerError {
    /// The old configuration's symbols could not be decoded.
    Decode(StoreError),
}

/// The reconfiguration controller state machine.
#[derive(Debug, Clone)]
pub struct ReconfigController {
    key: Key,
    old: Configuration,
    new: Configuration,
    phase: ControllerPhase,
    query_quorum: QuorumTracker,
    collect_quorum: QuorumTracker,
    write_quorum: QuorumTracker,
    highest_tag: Tag,
    /// Value read from an ABD old configuration (directly from query replies).
    abd_value: Option<Value>,
    /// Shards collected from a CAS old configuration.
    shards: Vec<Shard>,
    collect_targets: usize,
    collect_responses: usize,
    value: Option<Value>,
    error: Option<ControllerError>,
}

impl ReconfigController {
    /// Creates a controller that moves `key` from `old` to `new`. The new configuration's
    /// epoch is forced to be the successor of the old one.
    pub fn new(key: Key, old: Configuration, mut new: Configuration) -> Self {
        new.epoch = old.epoch.next();
        let n_old = old.n;
        let query_needed = match old.protocol {
            ProtocolKind::Abd => n_old - old.quorums.size(QuorumId::Q2) + 1,
            ProtocolKind::Cas => {
                let q3 = old.quorums.size(QuorumId::Q3);
                let q4 = old.quorums.size(QuorumId::Q4);
                (n_old - q3 + 1).max(n_old - q4 + 1)
            }
        };
        let collect_needed = match old.protocol {
            ProtocolKind::Abd => 0,
            ProtocolKind::Cas => old.quorums.size(QuorumId::Q4),
        };
        let write_needed = match new.protocol {
            ProtocolKind::Abd => new.quorums.size(QuorumId::Q2),
            ProtocolKind::Cas => new
                .quorums
                .size(QuorumId::Q2)
                .max(new.quorums.size(QuorumId::Q3)),
        };
        ReconfigController {
            key,
            old,
            new,
            phase: ControllerPhase::Query,
            query_quorum: QuorumTracker::new(query_needed),
            collect_quorum: QuorumTracker::new(collect_needed),
            write_quorum: QuorumTracker::new(write_needed),
            highest_tag: Tag::INITIAL,
            abd_value: None,
            shards: Vec::new(),
            collect_targets: 0,
            collect_responses: 0,
            value: None,
            error: None,
        }
    }

    /// The new configuration (with its bumped epoch).
    pub fn new_config(&self) -> &Configuration {
        &self.new
    }

    /// Current stage, for instrumentation.
    pub fn phase(&self) -> ControllerPhase {
        self.phase
    }

    /// Error encountered, if any.
    pub fn error(&self) -> Option<&ControllerError> {
        self.error.as_ref()
    }

    /// First round: `ReconfigQuery` to every server of the old configuration.
    pub fn start(&self) -> Vec<Outbound> {
        self.old
            .dcs
            .iter()
            .map(|dc| Outbound {
                to: *dc,
                phase: PHASE_QUERY,
                key: self.key.clone(),
                epoch: self.old.epoch,
                msg: ProtoMsg::ReconfigQuery {
                    new_config: Box::new(self.new.clone()),
                },
            })
            .collect()
    }

    /// Re-emits the messages of the round currently awaited, for timeout-driven
    /// resends. Replies are deduplicated per data center by the quorum trackers and
    /// servers handle every round idempotently (duplicate queries re-answer, duplicate
    /// installs merge by tag), so re-driving a round is always safe.
    pub fn resend_current_round(&mut self) -> Vec<Outbound> {
        match self.phase {
            ControllerPhase::Query => self.start(),
            ControllerPhase::Collect => self.collect_messages(),
            ControllerPhase::WriteNew => self.write_messages(),
            ControllerPhase::Done => Vec::new(),
        }
    }

    /// 1-based number of the round currently awaited, matching the `round` field of
    /// [`StoreError::ReconfigStalled`]: 1 = query, 2 = collect, 3 = write-new,
    /// 4 = finish.
    pub fn round_number(&self) -> u8 {
        match self.phase {
            ControllerPhase::Query => 1,
            ControllerPhase::Collect => 2,
            ControllerPhase::WriteNew => 3,
            ControllerPhase::Done => 4,
        }
    }

    fn collect_messages(&mut self) -> Vec<Outbound> {
        // Accumulates across resends: "every collect response is in" is judged
        // against all collect messages ever sent, not just the first round's.
        self.collect_targets += self.old.dcs.len();
        self.old
            .dcs
            .iter()
            .map(|dc| Outbound {
                to: *dc,
                phase: PHASE_COLLECT,
                key: self.key.clone(),
                epoch: self.old.epoch,
                msg: ProtoMsg::ReconfigGet {
                    tag: self.highest_tag,
                },
            })
            .collect()
    }

    fn write_messages(&self) -> Vec<Outbound> {
        let value = self.value.as_ref().expect("value available before write");
        match self.new.protocol {
            ProtocolKind::Abd => self
                .new
                .dcs
                .iter()
                .map(|dc| Outbound {
                    to: *dc,
                    phase: PHASE_WRITE,
                    key: self.key.clone(),
                    epoch: self.new.epoch,
                    msg: ProtoMsg::ReconfigWrite {
                        tag: self.highest_tag,
                        data: ReconfigPayload::Value(value.clone()),
                        config: Box::new(self.new.clone()),
                    },
                })
                .collect(),
            ProtocolKind::Cas => {
                let shards = encode_value(value.as_bytes(), self.new.n, self.new.k)
                    .expect("validated configuration");
                self.new
                    .dcs
                    .iter()
                    .map(|dc| {
                        let idx = self.new.symbol_index(*dc).expect("host");
                        Outbound {
                            to: *dc,
                            phase: PHASE_WRITE,
                            key: self.key.clone(),
                            epoch: self.new.epoch,
                            msg: ProtoMsg::ReconfigWrite {
                                tag: self.highest_tag,
                                data: ReconfigPayload::Shard(shards[idx].data.clone()),
                                config: Box::new(self.new.clone()),
                            },
                        }
                    })
                    .collect()
            }
        }
    }

    fn finish_messages(&self) -> Vec<Outbound> {
        self.old
            .dcs
            .iter()
            .map(|dc| Outbound {
                to: *dc,
                phase: PHASE_FINISH,
                key: self.key.clone(),
                epoch: self.old.epoch,
                msg: ProtoMsg::FinishReconfig {
                    highest_tag: self.highest_tag,
                    new_config: Box::new(self.new.clone()),
                },
            })
            .collect()
    }

    fn done(&self) -> ControllerProgress {
        ControllerProgress::Done(Box::new(ReconfigOutcome {
            key: self.key.clone(),
            new_config: self.new.clone(),
            highest_tag: self.highest_tag,
            value: self.value.clone().expect("value transferred"),
            finish_messages: self.finish_messages(),
        }))
    }

    /// Feeds one reply into the controller.
    pub fn on_reply(&mut self, from: DcId, phase: u8, reply: ProtoReply) -> ControllerProgress {
        match (self.phase, phase) {
            (ControllerPhase::Query, PHASE_QUERY) => {
                match reply {
                    ProtoReply::AbdTagValue { tag, value } => {
                        if tag >= self.highest_tag || self.abd_value.is_none() {
                            self.highest_tag = self.highest_tag.max(tag);
                            if tag == self.highest_tag {
                                self.abd_value = Some(value);
                            }
                        }
                    }
                    ProtoReply::TagOnly { tag } => {
                        self.highest_tag = self.highest_tag.max(tag);
                    }
                    _ => return ControllerProgress::Pending,
                }
                if self.query_quorum.record(from) {
                    match self.old.protocol {
                        ProtocolKind::Abd => {
                            self.value = self.abd_value.clone();
                            self.phase = ControllerPhase::WriteNew;
                            ControllerProgress::Send(self.write_messages())
                        }
                        ProtocolKind::Cas => {
                            self.phase = ControllerPhase::Collect;
                            ControllerProgress::Send(self.collect_messages())
                        }
                    }
                } else {
                    ControllerProgress::Pending
                }
            }
            (ControllerPhase::Collect, PHASE_COLLECT) => {
                self.collect_responses += 1;
                if let ProtoReply::CasShard { tag, shard } = reply {
                    if tag == self.highest_tag {
                        if let Some(data) = shard {
                            if let Some(idx) = self.old.symbol_index(from) {
                                // Resent rounds can produce duplicate replies; a
                                // repeated symbol index must not count toward `k`.
                                if !self.shards.iter().any(|s| s.index == idx) {
                                    self.shards.push(Shard::new(idx, data));
                                }
                            }
                        }
                    }
                }
                self.collect_quorum.record(from);
                let enough_shards = self.shards.len() >= self.old.k;
                if self.collect_quorum.reached() && enough_shards {
                    match decode_value(&self.shards, self.old.n, self.old.k) {
                        Ok(bytes) => {
                            // A transiently-set decode error (all responses in, too few
                            // shards) is cleared once a resend gathered enough.
                            self.error = None;
                            self.value = Some(Value::from(bytes));
                            self.phase = ControllerPhase::WriteNew;
                            ControllerProgress::Send(self.write_messages())
                        }
                        Err(_) => {
                            self.error = Some(ControllerError::Decode(StoreError::DecodeFailed {
                                have: self.shards.len(),
                                need: self.old.k,
                            }));
                            ControllerProgress::Pending
                        }
                    }
                } else if self.collect_responses >= self.collect_targets && !enough_shards {
                    self.error = Some(ControllerError::Decode(StoreError::DecodeFailed {
                        have: self.shards.len(),
                        need: self.old.k,
                    }));
                    ControllerProgress::Pending
                } else {
                    ControllerProgress::Pending
                }
            }
            (ControllerPhase::WriteNew, PHASE_WRITE) => {
                if matches!(reply, ProtoReply::Ack) && self.write_quorum.record(from) {
                    self.phase = ControllerPhase::Done;
                    self.done()
                } else {
                    ControllerProgress::Pending
                }
            }
            _ => ControllerProgress::Pending,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ProtoMsg;
    use crate::server::{DcServer, Inbound};
    use legostore_types::{ClientId, ConfigEpoch};
    use std::collections::BTreeMap;

    fn dcs(ids: &[u16]) -> Vec<DcId> {
        ids.iter().map(|i| DcId(*i)).collect()
    }

    /// Builds one DcServer per DC in 0..n and installs `key` under `config` with `value`.
    fn deploy(config: &Configuration, value: &Value, n: usize) -> BTreeMap<DcId, DcServer> {
        let mut servers: BTreeMap<DcId, DcServer> =
            (0..n).map(|i| (DcId::from(i), DcServer::new(DcId::from(i)))).collect();
        for (dc, payload) in DcServer::initial_payloads(config, value) {
            servers
                .get_mut(&dc)
                .unwrap()
                .install_key(Key::from("k"), config.clone(), Tag::new(3, ClientId(1)), payload);
        }
        servers
    }

    /// Runs a full reconfiguration against in-memory servers, returning the outcome.
    fn run_reconfig(
        servers: &mut BTreeMap<DcId, DcServer>,
        old: &Configuration,
        new: &Configuration,
    ) -> ReconfigOutcome {
        let mut controller = ReconfigController::new(Key::from("k"), old.clone(), new.clone());
        let mut inflight = controller.start();
        let mut msg_id = 100;
        let outcome = loop {
            assert!(!inflight.is_empty(), "controller stalled in {:?}", controller.phase());
            let out = inflight.remove(0);
            msg_id += 1;
            let replies = servers.get_mut(&out.to).unwrap().handle(Inbound {
                from: 0,
                msg_id,
                phase: out.phase,
                key: out.key.clone(),
                epoch: out.epoch,
                msg: out.msg.clone(),
            });
            let mut done = None;
            for r in replies {
                match controller.on_reply(out.to, r.phase, r.reply) {
                    ControllerProgress::Pending => {}
                    ControllerProgress::Send(more) => inflight.extend(more),
                    ControllerProgress::Done(o) => done = Some(*o),
                }
            }
            if let Some(o) = done {
                // Let any still-in-flight write messages land (the real runtime does not
                // cancel them either) before moving on.
                for out in inflight {
                    msg_id += 1;
                    servers.get_mut(&out.to).unwrap().handle(Inbound {
                        from: 0,
                        msg_id,
                        phase: out.phase,
                        key: out.key.clone(),
                        epoch: out.epoch,
                        msg: out.msg.clone(),
                    });
                }
                break o;
            }
        };
        // Deliver the finish messages (the runtime would update metadata first).
        for out in &outcome.finish_messages {
            msg_id += 1;
            servers.get_mut(&out.to).unwrap().handle(Inbound {
                from: 0,
                msg_id,
                phase: out.phase,
                key: out.key.clone(),
                epoch: out.epoch,
                msg: out.msg.clone(),
            });
        }
        outcome
    }

    #[test]
    fn abd_to_cas_reconfiguration_transfers_value() {
        let old = Configuration::abd_majority(dcs(&[0, 1, 2]), 1);
        let mut new = Configuration::cas_default(dcs(&[3, 4, 5, 6]), 2, 1);
        new.epoch = ConfigEpoch(0); // controller bumps it
        let value = Value::filler(2000);
        let mut servers = deploy(&old, &value, 7);
        let outcome = run_reconfig(&mut servers, &old, &new);
        assert_eq!(outcome.highest_tag, Tag::new(3, ClientId(1)));
        assert_eq!(outcome.value, value);
        assert_eq!(outcome.new_config.epoch, ConfigEpoch(1));
        // New configuration servers now host the key at the new epoch with the CAS shards.
        for dc in &outcome.new_config.dcs {
            let s = servers.get(dc).unwrap();
            assert_eq!(s.latest_epoch(&Key::from("k")), Some(ConfigEpoch(1)));
        }
        // Old servers are retired: a client op with the old epoch is redirected.
        let replies = servers.get_mut(&DcId(0)).unwrap().handle(Inbound {
            from: 9,
            msg_id: 999,
            phase: 1,
            key: Key::from("k"),
            epoch: old.epoch,
            msg: ProtoMsg::AbdReadQuery,
        });
        assert!(matches!(replies[0].reply, ProtoReply::OperationFail { .. }));
    }

    #[test]
    fn cas_to_abd_reconfiguration_decodes_and_rereplicates() {
        let old = Configuration::cas_default(dcs(&[0, 1, 2, 3, 4]), 3, 1);
        let new = Configuration::abd_majority(dcs(&[5, 6, 7]), 1);
        let value = Value::filler(3333);
        let mut servers = deploy(&old, &value, 8);
        let outcome = run_reconfig(&mut servers, &old, &new);
        assert_eq!(outcome.value, value);
        // The new ABD servers hold the full value.
        for dc in &outcome.new_config.dcs {
            let s = servers.get(dc).unwrap();
            let state = s
                .key_state(&Key::from("k"), ConfigEpoch(1))
                .expect("installed");
            assert_eq!(state.storage_bytes(), 3333);
        }
    }

    #[test]
    fn cas_to_cas_changes_code_parameters() {
        let old = Configuration::cas_default(dcs(&[0, 1, 2, 3, 4]), 3, 1);
        let new = Configuration::cas_default(dcs(&[0, 1, 2, 5]), 2, 1);
        let value = Value::filler(1024);
        let mut servers = deploy(&old, &value, 6);
        let outcome = run_reconfig(&mut servers, &old, &new);
        assert_eq!(outcome.value, value);
        let expected_shard = legostore_erasure::shard_len(1024, 2) as u64;
        for dc in &outcome.new_config.dcs {
            let s = servers.get(dc).unwrap();
            let state = s.key_state(&Key::from("k"), ConfigEpoch(1)).unwrap();
            assert_eq!(state.storage_bytes(), expected_shard);
        }
    }

    #[test]
    fn quorum_sizes_follow_the_paper() {
        // ABD old: wait for N - q2 + 1 responses.
        let old = Configuration::abd_majority(dcs(&[0, 1, 2, 3, 4]), 1);
        let new = Configuration::abd_majority(dcs(&[0, 1, 2]), 1);
        let c = ReconfigController::new(Key::from("k"), old.clone(), new.clone());
        assert_eq!(c.query_quorum.needed(), 5 - 3 + 1);
        assert_eq!(c.write_quorum.needed(), 2);
        // CAS old: wait for max(N-q3+1, N-q4+1).
        let old = Configuration::cas_default(dcs(&[0, 1, 2, 3, 4]), 3, 1);
        let new_cas = Configuration::cas_default(dcs(&[5, 6, 7, 8]), 2, 1);
        let c = ReconfigController::new(Key::from("k"), old.clone(), new_cas.clone());
        let q3 = old.quorums.size(QuorumId::Q3);
        let q4 = old.quorums.size(QuorumId::Q4);
        assert_eq!(c.query_quorum.needed(), (5 - q3 + 1).max(5 - q4 + 1));
        assert_eq!(c.collect_quorum.needed(), q4);
        assert_eq!(
            c.write_quorum.needed(),
            new_cas.quorums.size(QuorumId::Q2).max(new_cas.quorums.size(QuorumId::Q3))
        );
    }

    #[test]
    fn epoch_is_bumped_exactly_once() {
        let old = Configuration::abd_majority(dcs(&[0, 1, 2]), 1);
        let mut old2 = old.clone();
        old2.epoch = ConfigEpoch(7);
        let new = Configuration::abd_majority(dcs(&[3, 4, 5]), 1);
        let c = ReconfigController::new(Key::from("k"), old2, new);
        assert_eq!(c.new_config().epoch, ConfigEpoch(8));
    }

    #[test]
    fn finish_messages_target_all_old_servers() {
        let old = Configuration::cas_default(dcs(&[0, 1, 2, 3, 4]), 3, 1);
        let new = Configuration::abd_majority(dcs(&[5, 6, 7]), 1);
        let value = Value::filler(100);
        let mut servers = deploy(&old, &value, 8);
        let outcome = run_reconfig(&mut servers, &old, &new);
        assert_eq!(outcome.finish_messages.len(), 5);
        assert!(outcome
            .finish_messages
            .iter()
            .all(|o| matches!(o.msg, ProtoMsg::FinishReconfig { .. }) && o.phase == PHASE_FINISH));
    }

    #[test]
    fn blocked_client_op_is_failed_over_during_reconfig() {
        let old = Configuration::abd_majority(dcs(&[0, 1, 2]), 1);
        let new = Configuration::abd_majority(dcs(&[0, 1, 2]), 1);
        let value = Value::from("v");
        let mut servers = deploy(&old, &value, 3);
        // Start the controller and deliver only the query to DC 0 so it blocks.
        let controller = ReconfigController::new(Key::from("k"), old.clone(), new.clone());
        let queries = controller.start();
        let q0 = queries.iter().find(|o| o.to == DcId(0)).unwrap();
        servers.get_mut(&DcId(0)).unwrap().handle(Inbound {
            from: 0,
            msg_id: 1,
            phase: q0.phase,
            key: q0.key.clone(),
            epoch: q0.epoch,
            msg: q0.msg.clone(),
        });
        // A client read query to DC 0 is now deferred (no reply).
        let deferred = servers.get_mut(&DcId(0)).unwrap().handle(Inbound {
            from: 42,
            msg_id: 2,
            phase: 1,
            key: Key::from("k"),
            epoch: old.epoch,
            msg: ProtoMsg::AbdReadQuery,
        });
        assert!(deferred.is_empty());
        // Finish the reconfiguration at DC 0: the deferred query is answered with
        // OperationFail carrying the new configuration.
        let mut bumped = new.clone();
        bumped.epoch = old.epoch.next();
        let replies = servers.get_mut(&DcId(0)).unwrap().handle(Inbound {
            from: 0,
            msg_id: 3,
            phase: PHASE_FINISH,
            key: Key::from("k"),
            epoch: old.epoch,
            msg: ProtoMsg::FinishReconfig {
                highest_tag: Tag::new(3, ClientId(1)),
                new_config: Box::new(bumped.clone()),
            },
        });
        let client_reply = replies.iter().find(|r| r.to == 42).unwrap();
        let ProtoReply::OperationFail { new_config } = &client_reply.reply else { panic!() };
        assert_eq!(new_config.epoch, bumped.epoch);
    }
}
