//! Wire messages exchanged between clients, servers and the reconfiguration controller.
//!
//! Every request/reply also knows how many bytes it would occupy on the wire
//! ([`ProtoMsg::wire_size`] / [`ProtoReply::wire_size`]); the simulator uses this to meter
//! network cost exactly as the paper's cost model does (metadata-only messages count
//! `o_m` bytes, value-carrying messages additionally count the value or codeword-symbol
//! size).

use bytes::Bytes;
use legostore_types::{ConfigEpoch, Configuration, DcId, Key, StoreError, Tag, Value};

/// A request sent to a server, addressed to one key and one configuration epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoMsg {
    // ---- ABD ----
    /// ABD GET phase 1: ask for the locally stored `(tag, value)`.
    AbdReadQuery,
    /// ABD PUT phase 1: ask for the locally stored tag only.
    AbdWriteQuery,
    /// ABD PUT phase 2 (write-value) or GET phase 2 (read-writeback).
    AbdWrite {
        /// Tag of the propagated version.
        tag: Tag,
        /// Full value (ABD always ships whole values).
        value: Value,
    },

    // ---- CAS ----
    /// CAS phase 1 (both GET and PUT): ask for the highest tag labeled `fin`.
    CasQuery,
    /// CAS PUT phase 2: store a codeword symbol with label `pre`.
    CasPreWrite {
        /// Tag of the new version.
        tag: Tag,
        /// This server's codeword symbol (shared handle — fanning one encode out to `n`
        /// servers clones refcounts, not bytes).
        shard: Bytes,
    },
    /// CAS PUT phase 3: upgrade the label of `tag` to `fin`.
    CasFinalizeWrite {
        /// Tag being finalized.
        tag: Tag,
    },
    /// CAS GET phase 2: request the codeword symbol stored for `tag` (and finalize it).
    CasFinalizeRead {
        /// Tag whose symbol is requested.
        tag: Tag,
    },

    // ---- Reconfiguration (controller → old/new configuration servers) ----
    /// Signals a reconfiguration and doubles as the controller's internal read request.
    ///
    /// Carries the full target configuration (not just its epoch) so a server that
    /// blocks on this query can still fail its deferred clients over to the new
    /// placement if the controller crashes before `FinishReconfig` arrives — the
    /// epoch-lease expiry path needs a concrete configuration to hand out.
    ReconfigQuery {
        /// The configuration being installed.
        new_config: Box<Configuration>,
    },
    /// CAS-only: ask for the codeword symbol of `tag` (controller collection phase).
    ReconfigGet {
        /// Tag selected by the controller.
        tag: Tag,
    },
    /// Install `(tag, data)` at a server of the new configuration (also used by CREATE to
    /// seed a fresh key).
    ReconfigWrite {
        /// Tag carried over from the old configuration.
        tag: Tag,
        /// Replica value (ABD) or this server's codeword symbol (CAS).
        data: ReconfigPayload,
        /// The configuration being installed at the receiving server.
        config: Box<Configuration>,
    },
    /// Tells old-configuration servers that the transfer is complete.
    FinishReconfig {
        /// Highest tag read by the controller; operations at or below it may complete in the
        /// old configuration.
        highest_tag: Tag,
        /// The new configuration clients should retry against.
        new_config: Box<Configuration>,
    },
}

/// Payload installed into the new configuration by a reconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub enum ReconfigPayload {
    /// Full value (new configuration runs ABD).
    Value(Value),
    /// One codeword symbol (new configuration runs CAS).
    Shard(Bytes),
}

/// A reply from a server.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoReply {
    /// ABD: the locally stored `(tag, value)` pair.
    AbdTagValue {
        /// Stored tag.
        tag: Tag,
        /// Stored value.
        value: Value,
    },
    /// ABD/CAS: a bare tag (ABD write-query response, CAS query response).
    TagOnly {
        /// The requested tag.
        tag: Tag,
    },
    /// Generic acknowledgement.
    Ack,
    /// CAS finalize-read response carrying the codeword symbol if the server has it.
    CasShard {
        /// Tag the symbol belongs to.
        tag: Tag,
        /// The stored symbol, or `None` if the server only has the metadata.
        shard: Option<Bytes>,
    },
    /// The key was reconfigured; the client must retry against the attached configuration.
    OperationFail {
        /// The configuration to retry against.
        new_config: Box<Configuration>,
    },
    /// The server rejected the request (unknown key, not a host, internal error).
    Error(StoreError),
}

/// A message the client-side state machines want the runtime to deliver.
#[derive(Debug, Clone, PartialEq)]
pub struct Outbound {
    /// Destination data center.
    pub to: DcId,
    /// Which protocol phase this message belongs to (echoed back with the reply so the
    /// client can discard stale replies from earlier phases).
    pub phase: u8,
    /// Key the message concerns.
    pub key: Key,
    /// Configuration epoch the sender believes is current.
    pub epoch: ConfigEpoch,
    /// The request body.
    pub msg: ProtoMsg,
}

/// Progress report from feeding one reply into a client-side state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum OpProgress {
    /// Keep waiting for more replies.
    Pending,
    /// Send these additional messages (next phase) and keep waiting.
    Send(Vec<Outbound>),
    /// The operation finished.
    Done(OpOutcome),
}

/// Final result of a client operation.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutcome {
    /// PUT committed with this tag.
    PutOk {
        /// Tag assigned to the written version.
        tag: Tag,
    },
    /// GET returned this value.
    GetOk {
        /// Tag of the returned version.
        tag: Tag,
        /// The value read.
        value: Value,
        /// True if the GET completed in one phase (the "optimized GET" fast path).
        one_phase: bool,
    },
    /// The key was reconfigured; retry against the new configuration.
    Reconfigured {
        /// Configuration to retry against.
        new_config: Box<Configuration>,
    },
    /// The operation failed.
    Failed(StoreError),
}

/// Snake-case names for every [`ProtoMsg`] variant, index-aligned with
/// [`ProtoMsg::kind_index`]. Servers use these to label per-message-kind metrics
/// without the telemetry crate depending on this one.
pub const MSG_KIND_NAMES: [&str; 11] = [
    "abd_read_query",
    "abd_write_query",
    "abd_write",
    "cas_query",
    "cas_pre_write",
    "cas_finalize_write",
    "cas_finalize_read",
    "reconfig_query",
    "reconfig_get",
    "reconfig_write",
    "finish_reconfig",
];

impl ProtoMsg {
    /// Position of this variant in [`MSG_KIND_NAMES`] (and in the wire encoding's
    /// kind-byte ordering).
    pub fn kind_index(&self) -> usize {
        match self {
            ProtoMsg::AbdReadQuery => 0,
            ProtoMsg::AbdWriteQuery => 1,
            ProtoMsg::AbdWrite { .. } => 2,
            ProtoMsg::CasQuery => 3,
            ProtoMsg::CasPreWrite { .. } => 4,
            ProtoMsg::CasFinalizeWrite { .. } => 5,
            ProtoMsg::CasFinalizeRead { .. } => 6,
            ProtoMsg::ReconfigQuery { .. } => 7,
            ProtoMsg::ReconfigGet { .. } => 8,
            ProtoMsg::ReconfigWrite { .. } => 9,
            ProtoMsg::FinishReconfig { .. } => 10,
        }
    }

    /// Snake-case name of this variant (see [`MSG_KIND_NAMES`]).
    pub fn kind_name(&self) -> &'static str {
        MSG_KIND_NAMES[self.kind_index()]
    }

    /// Approximate number of bytes this request occupies on the wire: the metadata size
    /// `o_m` plus any value / codeword-symbol payload. This mirrors how the paper's cost
    /// model charges network traffic.
    pub fn wire_size(&self, metadata_bytes: u64) -> u64 {
        match self {
            ProtoMsg::AbdReadQuery
            | ProtoMsg::AbdWriteQuery
            | ProtoMsg::CasQuery
            | ProtoMsg::CasFinalizeWrite { .. }
            | ProtoMsg::CasFinalizeRead { .. }
            | ProtoMsg::ReconfigQuery { .. }
            | ProtoMsg::ReconfigGet { .. } => metadata_bytes,
            ProtoMsg::AbdWrite { value, .. } => metadata_bytes + value.len() as u64,
            ProtoMsg::CasPreWrite { shard, .. } => metadata_bytes + shard.len() as u64,
            ProtoMsg::ReconfigWrite { data, .. } => {
                // The configuration descriptor itself is metadata-sized.
                metadata_bytes
                    + match data {
                        ReconfigPayload::Value(v) => v.len() as u64,
                        ReconfigPayload::Shard(s) => s.len() as u64,
                    }
            }
            ProtoMsg::FinishReconfig { .. } => metadata_bytes,
        }
    }
}

impl ProtoReply {
    /// Approximate number of bytes this reply occupies on the wire.
    pub fn wire_size(&self, metadata_bytes: u64) -> u64 {
        match self {
            ProtoReply::AbdTagValue { value, .. } => metadata_bytes + value.len() as u64,
            ProtoReply::TagOnly { .. } | ProtoReply::Ack | ProtoReply::Error(_) => metadata_bytes,
            ProtoReply::CasShard { shard, .. } => {
                metadata_bytes + shard.as_ref().map(|s| s.len() as u64).unwrap_or(0)
            }
            ProtoReply::OperationFail { .. } => metadata_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_types::ClientId;

    #[test]
    fn metadata_only_messages_cost_metadata() {
        let m = ProtoMsg::CasQuery;
        assert_eq!(m.wire_size(100), 100);
        let m = ProtoMsg::CasFinalizeWrite { tag: Tag::INITIAL };
        assert_eq!(m.wire_size(100), 100);
        let m = ProtoMsg::ReconfigQuery {
            new_config: Box::new(Configuration::abd_majority(
                vec![DcId(0), DcId(1), DcId(2)],
                1,
            )),
        };
        assert_eq!(m.wire_size(64), 64);
    }

    #[test]
    fn value_messages_add_payload() {
        let v = Value::filler(1024);
        let m = ProtoMsg::AbdWrite { tag: Tag::INITIAL, value: v.clone() };
        assert_eq!(m.wire_size(100), 1124);
        let m = ProtoMsg::CasPreWrite { tag: Tag::INITIAL, shard: vec![0u8; 344].into() };
        assert_eq!(m.wire_size(100), 444);
        let config = Configuration::abd_majority(vec![DcId(0), DcId(1), DcId(2)], 1);
        let m = ProtoMsg::ReconfigWrite {
            tag: Tag::INITIAL,
            data: ReconfigPayload::Value(v),
            config: Box::new(config.clone()),
        };
        assert_eq!(m.wire_size(100), 1124);
        let m = ProtoMsg::ReconfigWrite {
            tag: Tag::INITIAL,
            data: ReconfigPayload::Shard(vec![0u8; 10].into()),
            config: Box::new(config),
        };
        assert_eq!(m.wire_size(100), 110);
    }

    #[test]
    fn kind_names_align_with_variant_order() {
        assert_eq!(ProtoMsg::AbdReadQuery.kind_index(), 0);
        assert_eq!(ProtoMsg::AbdReadQuery.kind_name(), "abd_read_query");
        assert_eq!(ProtoMsg::CasQuery.kind_name(), "cas_query");
        let m = ProtoMsg::FinishReconfig {
            highest_tag: Tag::INITIAL,
            new_config: Box::new(Configuration::abd_majority(
                vec![DcId(0), DcId(1), DcId(2)],
                1,
            )),
        };
        assert_eq!(m.kind_index(), MSG_KIND_NAMES.len() - 1);
        assert_eq!(m.kind_name(), "finish_reconfig");
    }

    #[test]
    fn reply_sizes() {
        let v = Value::filler(500);
        assert_eq!(ProtoReply::AbdTagValue { tag: Tag::INITIAL, value: v }.wire_size(100), 600);
        assert_eq!(ProtoReply::TagOnly { tag: Tag::new(3, ClientId(1)) }.wire_size(100), 100);
        assert_eq!(ProtoReply::Ack.wire_size(100), 100);
        assert_eq!(
            ProtoReply::CasShard { tag: Tag::INITIAL, shard: Some(vec![0u8; 50].into()) }.wire_size(100),
            150
        );
        assert_eq!(ProtoReply::CasShard { tag: Tag::INITIAL, shard: None }.wire_size(100), 100);
    }
}
