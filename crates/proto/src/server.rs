//! The per-data-center server: hosts per-key, per-epoch protocol state, dispatches protocol
//! messages, and implements the server side of the reconfiguration protocol (Algorithm 2).
//!
//! The server is transport-agnostic: the hosting runtime wraps every request in an
//! [`Inbound`] envelope (carrying an opaque endpoint id, a message id and the sender's view
//! of the configuration epoch) and delivers the returned [`Reply`] envelopes. One inbound
//! message may produce zero replies (the request was deferred because a reconfiguration is
//! in progress) or many (a `FinishReconfig` flushes all deferred requests).

use crate::abd::AbdKeyState;
use crate::cas::CasKeyState;
use crate::msg::{ProtoMsg, ProtoReply, ReconfigPayload};
use legostore_erasure::Shard;
use legostore_types::{ConfigEpoch, Configuration, DcId, Key, ProtocolKind, StoreError, Tag, Value};
use std::collections::{BTreeMap, HashMap};

/// Opaque identifier of the endpoint (client, controller, …) that sent a request; the
/// runtime uses it to route the reply.
pub type EndpointId = u64;

/// A request envelope delivered to a [`DcServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct Inbound {
    /// Reply routing handle.
    pub from: EndpointId,
    /// Unique message id, echoed in the reply.
    pub msg_id: u64,
    /// Client-side phase number, echoed in the reply.
    pub phase: u8,
    /// Key the request concerns.
    pub key: Key,
    /// Configuration epoch the sender believes is current.
    pub epoch: ConfigEpoch,
    /// Request body.
    pub msg: ProtoMsg,
}

/// An out-of-band server administration command.
///
/// Controls are not part of the quorum protocols: they model the operations a deployment
/// driver performs against individual servers (installing a freshly created key, deleting a
/// key, failing or recovering a DC, triggering CAS garbage collection). Every transport
/// carries them next to [`Inbound`] requests — the in-process runtime as a channel message,
/// the TCP runtime as a dedicated wire frame — and applies them via
/// [`DcServer::apply_control`].
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// Install `key` under `config` with the given tag and per-DC payload (CREATE).
    InstallKey {
        /// Key to install.
        key: Key,
        /// Configuration the key is served under.
        config: Configuration,
        /// Initial tag.
        tag: Tag,
        /// This server's replica value (ABD) or codeword symbol (CAS).
        payload: ReconfigPayload,
    },
    /// Remove every epoch of the key (DELETE).
    RemoveKey(Key),
    /// Mark the server failed (drops all traffic) or recovered.
    SetFailed(bool),
    /// Run CAS garbage collection keeping this many old versions.
    GarbageCollect(usize),
}

/// A reply envelope produced by a [`DcServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Endpoint the reply is addressed to.
    pub to: EndpointId,
    /// Echo of [`Inbound::msg_id`].
    pub msg_id: u64,
    /// Echo of [`Inbound::phase`].
    pub phase: u8,
    /// Key the reply concerns.
    pub key: Key,
    /// Echo of [`Inbound::epoch`] — the epoch the *request* was addressed to. Clients
    /// that were redirected to a newer configuration use this to discard stragglers
    /// from the epoch they abandoned; attempt ids alone cannot tell a slow same-epoch
    /// reply from a reply minted under a retired configuration.
    pub epoch: ConfigEpoch,
    /// Reply body.
    pub reply: ProtoReply,
}

/// Protocol-specific per-key state.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoState {
    /// Replication state.
    Abd(AbdKeyState),
    /// Erasure-coded state.
    Cas(CasKeyState),
}

impl ProtoState {
    fn handle(&mut self, msg: &ProtoMsg) -> ProtoReply {
        match self {
            ProtoState::Abd(s) => s.handle(msg),
            ProtoState::Cas(s) => s.handle(msg),
        }
    }

    /// Bytes of payload storage used by this key at this server.
    pub fn storage_bytes(&self) -> u64 {
        match self {
            ProtoState::Abd(s) => s.storage_bytes(),
            ProtoState::Cas(s) => s.storage_bytes(),
        }
    }
}

/// Whether the key is serving normally, blocked by an in-flight reconfiguration, or retired.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyStatus {
    /// Serving client operations.
    Active,
    /// A `ReconfigQuery` was received; client operations are deferred until
    /// `FinishReconfig` — or until the epoch lease expires (controller crash), at
    /// which point the key re-activates in the old epoch and serves the parked
    /// requests (see [`DcServer::set_epoch_lease_ns`]).
    Blocked {
        /// Requests deferred while blocked.
        deferred: Vec<Inbound>,
        /// Server-clock nanoseconds when the key blocked (the lease starts here; a
        /// duplicate `ReconfigQuery` from a controller retry re-arms it).
        since_ns: u64,
        /// Target configuration carried by the blocking `ReconfigQuery`.
        new_config: Box<Configuration>,
    },
    /// The key moved to a new configuration; clients are redirected.
    Retired {
        /// Configuration clients should use instead.
        new_config: Box<Configuration>,
    },
}

/// Per-key, per-epoch state hosted at one data center.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyServerState {
    /// The configuration this state belongs to.
    pub config: Configuration,
    /// Protocol-specific state.
    pub proto: ProtoState,
    /// Serving status.
    pub status: KeyStatus,
    /// Target epoch of a reconfiguration attempt whose lease expired here. A late
    /// `FinishReconfig` for this epoch is rejected (its controller's view of our tags
    /// is stale — writes were accepted after the lease expired), unless a fresh
    /// `ReconfigQuery` re-arms the attempt first.
    pub aborted_target: Option<ConfigEpoch>,
}

impl KeyServerState {
    /// Bytes of storage used by this key state.
    pub fn storage_bytes(&self) -> u64 {
        self.proto.storage_bytes()
    }
}

/// The server process of one data center.
#[derive(Debug, Clone)]
pub struct DcServer {
    dc: DcId,
    /// key → epoch → state. Multiple epochs coexist transiently during a reconfiguration.
    keys: HashMap<Key, BTreeMap<ConfigEpoch, KeyServerState>>,
    /// When true the server drops every message (models a DC failure).
    failed: bool,
    /// Epoch lease: how long a key may stay `Blocked` awaiting `FinishReconfig` before
    /// the server gives up on the controller and re-activates the old epoch.
    /// `u64::MAX` disables expiry (the default — hosting runtimes opt in with a lease
    /// derived from their clock and the controller's deadline).
    lease_ns: u64,
}

impl DcServer {
    /// Creates the server for data center `dc`.
    pub fn new(dc: DcId) -> Self {
        DcServer {
            dc,
            keys: HashMap::new(),
            failed: false,
            lease_ns: u64::MAX,
        }
    }

    /// Sets the epoch lease (nanoseconds on the hosting runtime's clock, the same
    /// clock whose readings are passed to [`DcServer::handle_at`]).
    ///
    /// Safety requirement: the lease must be **no shorter than the controller's
    /// overall `reconfigure` deadline**. A server's lease starts when the controller's
    /// query arrives — after the controller started its own timer — so with
    /// `lease ≥ deadline` a lease can only expire once that controller has given up,
    /// and the late-`FinishReconfig` rejection below can never fire against a
    /// still-live single controller.
    pub fn set_epoch_lease_ns(&mut self, lease_ns: u64) {
        self.lease_ns = lease_ns;
    }

    /// The data center this server runs in.
    pub fn dc(&self) -> DcId {
        self.dc
    }

    /// Marks the server failed (drops all traffic) or recovered.
    pub fn set_failed(&mut self, failed: bool) {
        self.failed = failed;
    }

    /// True if the server is currently failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Number of keys hosted (any epoch).
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Total bytes of payload storage across all keys and epochs.
    pub fn storage_bytes(&self) -> u64 {
        self.keys
            .values()
            .flat_map(|epochs| epochs.values())
            .map(|s| s.storage_bytes())
            .sum()
    }

    /// Direct (non-networked) installation of a key, used by CREATE and by tests.
    ///
    /// `payload` must already be this server's replica value (ABD) or codeword symbol (CAS).
    pub fn install_key(&mut self, key: Key, config: Configuration, tag: Tag, payload: ReconfigPayload) {
        let proto = match (config.protocol, payload) {
            (ProtocolKind::Abd, ReconfigPayload::Value(v)) => ProtoState::Abd(AbdKeyState::new(tag, v)),
            (ProtocolKind::Cas, ReconfigPayload::Shard(s)) => {
                ProtoState::Cas(CasKeyState::new(tag, Some(s)))
            }
            // Mismatched payloads are coerced: a value installed under CAS is treated as the
            // degenerate k=1 symbol, a shard under ABD as an opaque value.
            (ProtocolKind::Abd, ReconfigPayload::Shard(s)) => {
                ProtoState::Abd(AbdKeyState::new(tag, Value::new(s)))
            }
            (ProtocolKind::Cas, ReconfigPayload::Value(v)) => {
                ProtoState::Cas(CasKeyState::new(tag, Some(v.bytes())))
            }
        };
        self.keys.entry(key).or_default().insert(
            config.epoch,
            KeyServerState {
                config,
                proto,
                status: KeyStatus::Active,
                aborted_target: None,
            },
        );
    }

    /// Removes every epoch of `key` (DELETE).
    pub fn remove_key(&mut self, key: &Key) -> bool {
        self.keys.remove(key).is_some()
    }

    /// Read-only access to a key's state at a specific epoch (tests, metrics).
    pub fn key_state(&self, key: &Key, epoch: ConfigEpoch) -> Option<&KeyServerState> {
        self.keys.get(key).and_then(|m| m.get(&epoch))
    }

    /// Latest epoch hosted for `key`.
    pub fn latest_epoch(&self, key: &Key) -> Option<ConfigEpoch> {
        self.keys
            .get(key)
            .and_then(|m| m.keys().next_back().copied())
    }

    /// Runs CAS garbage collection on every hosted key, returning the number of removed
    /// versions.
    pub fn garbage_collect(&mut self, keep_recent: usize) -> usize {
        let mut removed = 0;
        for epochs in self.keys.values_mut() {
            for state in epochs.values_mut() {
                if let ProtoState::Cas(cas) = &mut state.proto {
                    removed += cas.garbage_collect(keep_recent);
                }
            }
        }
        removed
    }

    /// Applies one administration command (see [`ControlMsg`]).
    pub fn apply_control(&mut self, ctrl: ControlMsg) {
        match ctrl {
            ControlMsg::InstallKey { key, config, tag, payload } => {
                self.install_key(key, config, tag, payload)
            }
            ControlMsg::RemoveKey(key) => {
                self.remove_key(&key);
            }
            ControlMsg::SetFailed(failed) => self.set_failed(failed),
            ControlMsg::GarbageCollect(keep) => {
                self.garbage_collect(keep);
            }
        }
    }

    /// Handles one inbound request, producing zero or more replies.
    ///
    /// Time-free convenience wrapper around [`DcServer::handle_at`]: the server clock
    /// reads 0 forever, so epoch leases never expire. Unit tests and callers that do
    /// not model controller crashes use this.
    pub fn handle(&mut self, inbound: Inbound) -> Vec<Reply> {
        self.handle_at(inbound, 0)
    }

    /// Handles one inbound request at server-clock time `now_ns`, producing zero or
    /// more replies.
    ///
    /// Before dispatching, expired epoch leases across *all* hosted keys are
    /// collected: any key still `Blocked` past the lease re-activates in its old
    /// epoch and its deferred requests are served (their replies are returned
    /// alongside the current request's). Expiry is driven by message arrival, which
    /// is sufficient: a deferred client's own timeout resend is itself a message.
    pub fn handle_at(&mut self, inbound: Inbound, now_ns: u64) -> Vec<Reply> {
        if self.failed {
            return Vec::new();
        }
        let mut replies = self.expire_leases(now_ns);
        let key = inbound.key.clone();
        // ReconfigWrite installs a brand-new epoch (possibly for a key this DC did not host
        // before), so treat it before the existence checks.
        if let ProtoMsg::ReconfigWrite { tag, data, config } = &inbound.msg {
            // Idempotent install: if this epoch already exists here (controller round
            // resend, or a second controller attempt racing client traffic that has
            // already started writing in the new epoch), merge by tag through the
            // protocol state machine instead of clobbering — ABD ignores a transferred
            // tag at or below its current one, CAS inserts the version only if absent.
            let existing = self
                .keys
                .get_mut(&key)
                .and_then(|epochs| epochs.get_mut(&config.epoch))
                .filter(|state| state.config.protocol == config.protocol);
            match (existing, data) {
                (Some(state), ReconfigPayload::Value(v)) => {
                    state.proto.handle(&ProtoMsg::AbdWrite { tag: *tag, value: v.clone() });
                }
                (Some(state), ReconfigPayload::Shard(s)) => {
                    state.proto.handle(&ProtoMsg::CasPreWrite { tag: *tag, shard: s.clone() });
                    state.proto.handle(&ProtoMsg::CasFinalizeWrite { tag: *tag });
                }
                (None, _) => {
                    self.install_key(key.clone(), (**config).clone(), *tag, data.clone());
                }
            }
            replies.push(Reply {
                to: inbound.from,
                msg_id: inbound.msg_id,
                phase: inbound.phase,
                key,
                epoch: inbound.epoch,
                reply: ProtoReply::Ack,
            });
            return replies;
        }
        let Some(epochs) = self.keys.get_mut(&key) else {
            replies.push(Reply {
                to: inbound.from,
                msg_id: inbound.msg_id,
                phase: inbound.phase,
                key: key.clone(),
                epoch: inbound.epoch,
                reply: ProtoReply::Error(StoreError::KeyNotFound(key)),
            });
            return replies;
        };
        let latest_epoch = *epochs.keys().next_back().expect("non-empty epoch map");
        // A client using an older epoch than anything we host is redirected to the newest
        // configuration we know about.
        if inbound.epoch < *epochs.keys().next().expect("non-empty") {
            let newest = epochs.get(&latest_epoch).expect("present");
            replies.push(Reply {
                to: inbound.from,
                msg_id: inbound.msg_id,
                phase: inbound.phase,
                key,
                epoch: inbound.epoch,
                reply: ProtoReply::OperationFail {
                    new_config: Box::new(newest.config.clone()),
                },
            });
            return replies;
        }
        let Some(state) = epochs.get_mut(&inbound.epoch) else {
            // The sender is ahead of us (it knows a newer epoch than we host). This can only
            // happen for client traffic racing a reconfiguration; ask it to refresh.
            replies.push(Reply {
                to: inbound.from,
                msg_id: inbound.msg_id,
                phase: inbound.phase,
                key,
                epoch: inbound.epoch,
                reply: ProtoReply::Error(StoreError::StaleConfiguration {
                    observed: inbound.epoch,
                    current: latest_epoch,
                }),
            });
            return replies;
        };
        let finished = matches!(inbound.msg, ProtoMsg::FinishReconfig { .. });
        replies.extend(Self::handle_at_state(self.dc, state, inbound, now_ns));
        if finished {
            Self::prune_retired(epochs);
        }
        replies
    }

    /// Sweeps every hosted key for an expired epoch lease, re-activating the old
    /// epoch and serving the parked requests. Returns the replies for those requests.
    pub fn expire_leases(&mut self, now_ns: u64) -> Vec<Reply> {
        if self.lease_ns == u64::MAX {
            return Vec::new();
        }
        let mut replies = Vec::new();
        for epochs in self.keys.values_mut() {
            for state in epochs.values_mut() {
                let KeyStatus::Blocked { since_ns, new_config, .. } = &state.status else {
                    continue;
                };
                if now_ns.saturating_sub(*since_ns) < self.lease_ns {
                    continue;
                }
                // The controller went silent past the lease: its FinishReconfig (if it
                // ever arrives) is now rejected via `aborted_target`, so re-activating
                // the old epoch and accepting writes again is safe — the new placement
                // was never announced to any client (metadata updates only on finish).
                let target = new_config.epoch;
                let deferred = match std::mem::replace(&mut state.status, KeyStatus::Active) {
                    KeyStatus::Blocked { deferred, .. } => deferred,
                    _ => Vec::new(),
                };
                state.aborted_target = Some(target);
                for parked in deferred {
                    replies.extend(Self::handle_at_state(self.dc, state, parked, now_ns));
                }
            }
        }
        replies
    }

    /// Bounds per-key epoch history: once a `FinishReconfig` retires an epoch, drop
    /// every *retired* epoch older than the most recent retired one. At most two
    /// epochs per key survive steady state (the active one and its predecessor, kept
    /// so a controller retry can still re-read a half-finished transfer).
    fn prune_retired(epochs: &mut BTreeMap<ConfigEpoch, KeyServerState>) {
        while epochs.len() > 2 {
            let oldest = *epochs.keys().next().expect("non-empty");
            if matches!(epochs[&oldest].status, KeyStatus::Retired { .. }) {
                epochs.remove(&oldest);
            } else {
                break;
            }
        }
    }

    fn reply_of(inbound: &Inbound, reply: ProtoReply) -> Reply {
        Reply {
            to: inbound.from,
            msg_id: inbound.msg_id,
            phase: inbound.phase,
            key: inbound.key.clone(),
            epoch: inbound.epoch,
            reply,
        }
    }

    fn handle_at_state(
        _dc: DcId,
        state: &mut KeyServerState,
        inbound: Inbound,
        now_ns: u64,
    ) -> Vec<Reply> {
        match &mut state.status {
            KeyStatus::Retired { new_config } => match &inbound.msg {
                // A retired epoch still answers the controller's transfer reads: its
                // state is frozen (no writes after retirement), so a second controller
                // attempt can re-read a half-finished move through the servers the
                // first attempt already retired.
                ProtoMsg::ReconfigQuery { .. } => {
                    let reply = Self::reconfig_query_reply(state);
                    vec![Self::reply_of(&inbound, reply)]
                }
                ProtoMsg::ReconfigGet { tag } => {
                    let tag = *tag;
                    let reply = state.proto.handle(&ProtoMsg::CasFinalizeRead { tag });
                    vec![Self::reply_of(&inbound, reply)]
                }
                // Duplicate finish (controller resend): idempotent acknowledgement.
                ProtoMsg::FinishReconfig { .. } => {
                    vec![Self::reply_of(&inbound, ProtoReply::Ack)]
                }
                _ => {
                    vec![Self::reply_of(
                        &inbound,
                        ProtoReply::OperationFail {
                            new_config: new_config.clone(),
                        },
                    )]
                }
            },
            KeyStatus::Active => match &inbound.msg {
                ProtoMsg::ReconfigQuery { new_config } => {
                    let new_config = new_config.clone();
                    let reply = Self::reconfig_query_reply(state);
                    // A fresh query re-arms an attempt whose lease expired here.
                    state.aborted_target = None;
                    state.status = KeyStatus::Blocked {
                        deferred: Vec::new(),
                        since_ns: now_ns,
                        new_config,
                    };
                    vec![Self::reply_of(&inbound, reply)]
                }
                ProtoMsg::ReconfigGet { tag } => {
                    let reply = state.proto.handle(&ProtoMsg::CasFinalizeRead { tag: *tag });
                    vec![Self::reply_of(&inbound, reply)]
                }
                ProtoMsg::FinishReconfig { highest_tag, new_config } => {
                    if state.aborted_target == Some(new_config.epoch) {
                        // The lease for this attempt expired and writes were accepted
                        // since; the controller's transferred snapshot is stale.
                        // Retiring now could lose those writes, so refuse.
                        return vec![Self::reply_of(
                            &inbound,
                            ProtoReply::Error(StoreError::ReconfigStalled {
                                epoch: new_config.epoch,
                                round: 4,
                            }),
                        )];
                    }
                    let (ht, nc) = (*highest_tag, new_config.clone());
                    Self::finish_reconfig(state, ht, nc, &inbound)
                }
                _ => {
                    let reply = state.proto.handle(&inbound.msg);
                    vec![Self::reply_of(&inbound, reply)]
                }
            },
            KeyStatus::Blocked { deferred, since_ns, new_config } => match &inbound.msg {
                ProtoMsg::ReconfigGet { tag } => {
                    let tag = *tag;
                    let reply = state.proto.handle(&ProtoMsg::CasFinalizeRead { tag });
                    vec![Self::reply_of(&inbound, reply)]
                }
                ProtoMsg::ReconfigQuery { new_config: target } => {
                    // Duplicate query (controller retry): answer it again and re-arm
                    // the lease — the controller is demonstrably alive.
                    *since_ns = now_ns;
                    *new_config = target.clone();
                    let reply = Self::reconfig_query_reply(state);
                    vec![Self::reply_of(&inbound, reply)]
                }
                ProtoMsg::FinishReconfig { highest_tag, new_config } => {
                    let (ht, nc) = (*highest_tag, new_config.clone());
                    Self::finish_reconfig(state, ht, nc, &inbound)
                }
                _ => {
                    deferred.push(inbound);
                    Vec::new()
                }
            },
        }
    }

    fn reconfig_query_reply(state: &mut KeyServerState) -> ProtoReply {
        match &mut state.proto {
            ProtoState::Abd(abd) => ProtoReply::AbdTagValue {
                tag: abd.tag,
                value: abd.value.clone(),
            },
            ProtoState::Cas(cas) => ProtoReply::TagOnly {
                tag: cas.highest_fin().unwrap_or(Tag::INITIAL),
            },
        }
    }

    /// Implements the `FinishReconfig` handling of Algorithm 2: complete deferred operations
    /// whose tag is at or below the controller's tag, fail the rest (and all queries) with
    /// the new configuration, and retire this epoch.
    fn finish_reconfig(
        state: &mut KeyServerState,
        highest_tag: Tag,
        new_config: Box<Configuration>,
        finish_inbound: &Inbound,
    ) -> Vec<Reply> {
        let deferred = match std::mem::replace(
            &mut state.status,
            KeyStatus::Retired {
                new_config: new_config.clone(),
            },
        ) {
            KeyStatus::Blocked { deferred, .. } => deferred,
            _ => Vec::new(),
        };
        let mut replies = Vec::with_capacity(deferred.len() + 1);
        for pending in deferred {
            let reply = match &pending.msg {
                // Tag queries are restarted in the new configuration.
                ProtoMsg::AbdReadQuery | ProtoMsg::AbdWriteQuery | ProtoMsg::CasQuery => {
                    ProtoReply::OperationFail {
                        new_config: new_config.clone(),
                    }
                }
                // Value-carrying operations with tags at or below the transferred tag can
                // complete in the old configuration (their effect is already captured).
                ProtoMsg::AbdWrite { tag, .. }
                | ProtoMsg::CasPreWrite { tag, .. }
                | ProtoMsg::CasFinalizeWrite { tag }
                | ProtoMsg::CasFinalizeRead { tag } => {
                    if *tag <= highest_tag {
                        state.proto.handle(&pending.msg)
                    } else {
                        ProtoReply::OperationFail {
                            new_config: new_config.clone(),
                        }
                    }
                }
                _ => ProtoReply::OperationFail {
                    new_config: new_config.clone(),
                },
            };
            replies.push(Self::reply_of(&pending, reply));
        }
        replies.push(Self::reply_of(finish_inbound, ProtoReply::Ack));
        replies
    }

    /// Helper used by CREATE: builds the per-DC payloads for installing `value` under
    /// `config` (whole value for ABD, per-DC codeword symbol for CAS).
    pub fn initial_payloads(
        config: &Configuration,
        value: &Value,
    ) -> Vec<(DcId, ReconfigPayload)> {
        match config.protocol {
            ProtocolKind::Abd => config
                .dcs
                .iter()
                .map(|dc| (*dc, ReconfigPayload::Value(value.clone())))
                .collect(),
            ProtocolKind::Cas => {
                let shards: Vec<Shard> =
                    legostore_erasure::encode_value(value.as_bytes(), config.n, config.k)
                        .expect("validated configuration");
                config
                    .dcs
                    .iter()
                    .map(|dc| {
                        let idx = config.symbol_index(*dc).expect("host");
                        (*dc, ReconfigPayload::Shard(shards[idx].data.clone()))
                    })
                    .collect()
            }
        }
    }
}

/// Default upper bound on a server's reply-routing table; crossing it should trigger an
/// eviction of the least-recently-seen half via [`evict_stale_routes`].
pub const MAX_REPLY_ROUTES: usize = 100_000;

/// Drops the least-recently-seen reply routes until only `keep` remain.
///
/// `routes` maps an endpoint id to its reply handle (a channel for the in-process runtime,
/// a connection id for the TCP server) plus the per-server message counter value at which
/// the endpoint last sent a request. Endpoints with recent activity are the ones that may
/// still receive (possibly deferred) replies; evicting only the stale tail — instead of
/// clearing the whole table — keeps live operations routable.
pub fn evict_stale_routes<T>(routes: &mut HashMap<u64, (T, u64)>, keep: usize) {
    if routes.len() <= keep {
        return;
    }
    let mut stamps: Vec<u64> = routes.values().map(|(_, seen)| *seen).collect();
    stamps.sort_unstable();
    // Stamps are unique (one per inserted request), so this keeps exactly `keep` entries.
    let cutoff = stamps[stamps.len() - keep];
    routes.retain(|_, (_, seen)| *seen >= cutoff);
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_types::ClientId;

    fn dcs(n: usize) -> Vec<DcId> {
        (0..n).map(DcId::from).collect()
    }

    fn inbound(msg_id: u64, epoch: ConfigEpoch, msg: ProtoMsg) -> Inbound {
        Inbound {
            from: 7,
            msg_id,
            phase: 1,
            key: Key::from("k"),
            epoch,
            msg,
        }
    }

    fn abd_server_with_key() -> DcServer {
        let config = Configuration::abd_majority(dcs(3), 1);
        let mut s = DcServer::new(DcId(0));
        s.install_key(
            Key::from("k"),
            config,
            Tag::INITIAL,
            ReconfigPayload::Value(Value::from("init")),
        );
        s
    }

    /// A `ReconfigQuery` announcing a move to an ABD configuration at `epoch`.
    fn reconfig_query(epoch: u64) -> ProtoMsg {
        let mut c = Configuration::abd_majority(dcs(3), 1);
        c.epoch = ConfigEpoch(epoch);
        ProtoMsg::ReconfigQuery { new_config: Box::new(c) }
    }

    #[test]
    fn unknown_key_returns_not_found() {
        let mut s = DcServer::new(DcId(0));
        let replies = s.handle(inbound(1, ConfigEpoch(0), ProtoMsg::AbdReadQuery));
        assert_eq!(replies.len(), 1);
        assert!(matches!(replies[0].reply, ProtoReply::Error(StoreError::KeyNotFound(_))));
    }

    #[test]
    fn basic_abd_dispatch_and_metadata_echo() {
        let mut s = abd_server_with_key();
        let mut req = inbound(42, ConfigEpoch(0), ProtoMsg::AbdReadQuery);
        req.phase = 3;
        let replies = s.handle(req);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].msg_id, 42);
        assert_eq!(replies[0].phase, 3);
        assert_eq!(replies[0].to, 7);
        assert!(matches!(replies[0].reply, ProtoReply::AbdTagValue { .. }));
    }

    #[test]
    fn failed_server_drops_messages() {
        let mut s = abd_server_with_key();
        s.set_failed(true);
        assert!(s.is_failed());
        assert!(s.handle(inbound(1, ConfigEpoch(0), ProtoMsg::AbdReadQuery)).is_empty());
        s.set_failed(false);
        assert_eq!(s.handle(inbound(2, ConfigEpoch(0), ProtoMsg::AbdReadQuery)).len(), 1);
    }

    #[test]
    fn stale_epoch_is_redirected() {
        let mut s = abd_server_with_key();
        // Install a newer epoch directly (as a reconfiguration write would).
        let mut new_config = Configuration::abd_majority(dcs(3), 1);
        new_config.epoch = ConfigEpoch(2);
        s.install_key(
            Key::from("k"),
            new_config.clone(),
            Tag::new(5, ClientId(1)),
            ReconfigPayload::Value(Value::from("v5")),
        );
        // Remove the old epoch the way finish_reconfig would retire it: here we just query
        // with the old epoch and expect a redirect only when the old epoch no longer exists.
        let replies = s.handle(inbound(1, ConfigEpoch(1), ProtoMsg::AbdReadQuery));
        assert_eq!(replies.len(), 1);
        assert!(matches!(
            replies[0].reply,
            ProtoReply::Error(StoreError::StaleConfiguration { .. })
        ));
        // An epoch older than everything hosted gets an OperationFail redirect. First drop
        // the epoch-0 state by deleting and reinstalling only epoch 2.
        let mut s2 = DcServer::new(DcId(0));
        s2.install_key(
            Key::from("k"),
            new_config.clone(),
            Tag::new(5, ClientId(1)),
            ReconfigPayload::Value(Value::from("v5")),
        );
        let replies = s2.handle(inbound(1, ConfigEpoch(0), ProtoMsg::AbdReadQuery));
        let ProtoReply::OperationFail { new_config: got } = &replies[0].reply else {
            panic!("{replies:?}")
        };
        assert_eq!(got.epoch, ConfigEpoch(2));
    }

    #[test]
    fn reconfig_query_blocks_and_finish_flushes() {
        let mut s = abd_server_with_key();
        // Controller announces a reconfiguration.
        let replies = s.handle(inbound(1, ConfigEpoch(0), reconfig_query(1)));
        assert_eq!(replies.len(), 1);
        assert!(matches!(replies[0].reply, ProtoReply::AbdTagValue { .. }));

        // A client write arrives while blocked: no reply yet.
        let deferred_write = inbound(
            2,
            ConfigEpoch(0),
            ProtoMsg::AbdWrite { tag: Tag::new(1, ClientId(3)), value: Value::from("during") },
        );
        assert!(s.handle(deferred_write).is_empty());
        // A client query arrives while blocked: also deferred.
        assert!(s.handle(inbound(3, ConfigEpoch(0), ProtoMsg::AbdReadQuery)).is_empty());

        // Controller finishes the reconfiguration having read tag (1, c3).
        let mut new_config = Configuration::abd_majority(dcs(3), 1);
        new_config.epoch = ConfigEpoch(1);
        let replies = s.handle(inbound(
            4,
            ConfigEpoch(0),
            ProtoMsg::FinishReconfig {
                highest_tag: Tag::new(1, ClientId(3)),
                new_config: Box::new(new_config.clone()),
            },
        ));
        // Three replies: the deferred write (completed, tag <= highest), the deferred query
        // (failed over to the new configuration) and the ack for the finish message itself.
        assert_eq!(replies.len(), 3);
        let write_reply = replies.iter().find(|r| r.msg_id == 2).unwrap();
        assert_eq!(write_reply.reply, ProtoReply::Ack);
        let query_reply = replies.iter().find(|r| r.msg_id == 3).unwrap();
        assert!(matches!(query_reply.reply, ProtoReply::OperationFail { .. }));
        let finish_ack = replies.iter().find(|r| r.msg_id == 4).unwrap();
        assert_eq!(finish_ack.reply, ProtoReply::Ack);

        // Afterwards the old epoch is retired: further old-epoch traffic is redirected.
        let replies = s.handle(inbound(5, ConfigEpoch(0), ProtoMsg::AbdReadQuery));
        assert!(matches!(replies[0].reply, ProtoReply::OperationFail { .. }));
    }

    #[test]
    fn deferred_write_with_higher_tag_is_failed_over() {
        let mut s = abd_server_with_key();
        s.handle(inbound(1, ConfigEpoch(0), reconfig_query(1)));
        s.handle(inbound(
            2,
            ConfigEpoch(0),
            ProtoMsg::AbdWrite { tag: Tag::new(9, ClientId(3)), value: Value::from("late") },
        ));
        let mut new_config = Configuration::abd_majority(dcs(3), 1);
        new_config.epoch = ConfigEpoch(1);
        let replies = s.handle(inbound(
            3,
            ConfigEpoch(0),
            ProtoMsg::FinishReconfig { highest_tag: Tag::new(2, ClientId(0)), new_config: Box::new(new_config) },
        ));
        let write_reply = replies.iter().find(|r| r.msg_id == 2).unwrap();
        assert!(matches!(write_reply.reply, ProtoReply::OperationFail { .. }));
    }

    #[test]
    fn epoch_lease_expiry_reactivates_and_serves_deferred() {
        let mut s = abd_server_with_key();
        s.set_epoch_lease_ns(1_000_000);
        s.handle_at(inbound(1, ConfigEpoch(0), reconfig_query(1)), 0);
        let write = inbound(
            2,
            ConfigEpoch(0),
            ProtoMsg::AbdWrite { tag: Tag::new(1, ClientId(3)), value: Value::from("during") },
        );
        assert!(s.handle_at(write, 10).is_empty(), "deferred while blocked");
        // The next message past the lease unparks the write; it completes in the old
        // epoch, and the piggy-backed read sees normal service again.
        let replies = s.handle_at(inbound(3, ConfigEpoch(0), ProtoMsg::AbdReadQuery), 2_000_000);
        assert_eq!(replies.len(), 2);
        assert_eq!(replies.iter().find(|r| r.msg_id == 2).unwrap().reply, ProtoReply::Ack);
        assert!(matches!(
            replies.iter().find(|r| r.msg_id == 3).unwrap().reply,
            ProtoReply::AbdTagValue { .. }
        ));
        // A late finish from the silent controller is refused: its snapshot predates
        // the write accepted after expiry.
        let mut new_config = Configuration::abd_majority(dcs(3), 1);
        new_config.epoch = ConfigEpoch(1);
        let finish = ProtoMsg::FinishReconfig {
            highest_tag: Tag::INITIAL,
            new_config: Box::new(new_config.clone()),
        };
        let replies = s.handle_at(inbound(4, ConfigEpoch(0), finish.clone()), 3_000_000);
        assert!(matches!(
            replies[0].reply,
            ProtoReply::Error(StoreError::ReconfigStalled { epoch: ConfigEpoch(1), round: 4 })
        ));
        // A fresh query re-arms the attempt; its finish is then accepted.
        s.handle_at(inbound(5, ConfigEpoch(0), reconfig_query(1)), 3_000_000);
        let replies = s.handle_at(inbound(6, ConfigEpoch(0), finish), 3_100_000);
        assert!(replies.iter().any(|r| r.msg_id == 6 && r.reply == ProtoReply::Ack));
        let state = s.key_state(&Key::from("k"), ConfigEpoch(0)).unwrap();
        assert!(matches!(state.status, KeyStatus::Retired { .. }));
    }

    #[test]
    fn duplicate_reconfig_query_rearms_the_lease() {
        let mut s = abd_server_with_key();
        s.set_epoch_lease_ns(1_000_000);
        s.handle_at(inbound(1, ConfigEpoch(0), reconfig_query(1)), 0);
        // A controller retry at t=900µs pushes the expiry out to t=1.9ms.
        s.handle_at(inbound(2, ConfigEpoch(0), reconfig_query(1)), 900_000);
        let replies = s.handle_at(inbound(3, ConfigEpoch(0), ProtoMsg::AbdReadQuery), 1_500_000);
        assert!(replies.is_empty(), "lease re-armed; still blocked and deferring");
    }

    #[test]
    fn retired_epoch_still_answers_controller_reads() {
        let mut s = abd_server_with_key();
        s.handle(inbound(1, ConfigEpoch(0), reconfig_query(1)));
        let mut new_config = Configuration::abd_majority(dcs(3), 1);
        new_config.epoch = ConfigEpoch(1);
        s.handle(inbound(
            2,
            ConfigEpoch(0),
            ProtoMsg::FinishReconfig {
                highest_tag: Tag::INITIAL,
                new_config: Box::new(new_config.clone()),
            },
        ));
        // Client traffic against the retired epoch is redirected…
        let replies = s.handle(inbound(3, ConfigEpoch(0), ProtoMsg::AbdReadQuery));
        assert!(matches!(replies[0].reply, ProtoReply::OperationFail { .. }));
        // …but a second controller attempt can still re-read the frozen state and
        // re-finish idempotently.
        let replies = s.handle(inbound(4, ConfigEpoch(0), reconfig_query(1)));
        assert!(matches!(replies[0].reply, ProtoReply::AbdTagValue { .. }));
        let replies = s.handle(inbound(
            5,
            ConfigEpoch(0),
            ProtoMsg::FinishReconfig {
                highest_tag: Tag::INITIAL,
                new_config: Box::new(new_config),
            },
        ));
        assert_eq!(replies[0].reply, ProtoReply::Ack);
    }

    #[test]
    fn replies_echo_the_request_epoch() {
        let mut s = abd_server_with_key();
        let replies = s.handle(inbound(1, ConfigEpoch(0), ProtoMsg::AbdReadQuery));
        assert_eq!(replies[0].epoch, ConfigEpoch(0));
    }

    #[test]
    fn retired_epochs_are_pruned_to_a_bounded_tail() {
        let mut s = abd_server_with_key();
        // Walk the key through three reconfigurations, epoch 0 → 1 → 2 → 3.
        for e in 0u64..3 {
            let mut next = Configuration::abd_majority(dcs(3), 1);
            next.epoch = ConfigEpoch(e + 1);
            s.handle(inbound(10 + e, ConfigEpoch(e), reconfig_query(e + 1)));
            s.install_key(
                Key::from("k"),
                next.clone(),
                Tag::INITIAL,
                ReconfigPayload::Value(Value::from("moved")),
            );
            s.handle(inbound(
                20 + e,
                ConfigEpoch(e),
                ProtoMsg::FinishReconfig {
                    highest_tag: Tag::INITIAL,
                    new_config: Box::new(next),
                },
            ));
        }
        // Only the active epoch and the most recent retired one survive.
        assert!(s.key_state(&Key::from("k"), ConfigEpoch(0)).is_none());
        assert!(s.key_state(&Key::from("k"), ConfigEpoch(1)).is_none());
        assert!(s.key_state(&Key::from("k"), ConfigEpoch(2)).is_some());
        assert!(s.key_state(&Key::from("k"), ConfigEpoch(3)).is_some());
    }

    #[test]
    fn reconfig_write_installs_new_epoch() {
        let mut s = DcServer::new(DcId(1));
        let mut config = Configuration::cas_default(dcs(5), 3, 1);
        config.epoch = ConfigEpoch(4);
        let replies = s.handle(Inbound {
            from: 1,
            msg_id: 10,
            phase: 0,
            key: Key::from("moved"),
            epoch: ConfigEpoch(4),
            msg: ProtoMsg::ReconfigWrite {
                tag: Tag::new(8, ClientId(2)),
                data: ReconfigPayload::Shard(vec![1u8, 2, 3].into()),
                config: Box::new(config.clone()),
            },
        });
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].reply, ProtoReply::Ack);
        assert_eq!(s.latest_epoch(&Key::from("moved")), Some(ConfigEpoch(4)));
        let state = s.key_state(&Key::from("moved"), ConfigEpoch(4)).unwrap();
        assert_eq!(state.storage_bytes(), 3);
        // The new epoch serves CAS queries.
        let replies = s.handle(Inbound {
            from: 1,
            msg_id: 11,
            phase: 1,
            key: Key::from("moved"),
            epoch: ConfigEpoch(4),
            msg: ProtoMsg::CasQuery,
        });
        assert_eq!(replies[0].reply, ProtoReply::TagOnly { tag: Tag::new(8, ClientId(2)) });
    }

    #[test]
    fn cas_reconfig_query_reports_highest_fin() {
        let config = Configuration::cas_default(dcs(5), 3, 1);
        let mut s = DcServer::new(DcId(0));
        s.install_key(
            Key::from("k"),
            config,
            Tag::new(6, ClientId(4)),
            ReconfigPayload::Shard(vec![0u8; 16].into()),
        );
        let replies = s.handle(inbound(1, ConfigEpoch(0), reconfig_query(1)));
        assert_eq!(replies[0].reply, ProtoReply::TagOnly { tag: Tag::new(6, ClientId(4)) });
        // ReconfigGet returns the stored shard for that tag.
        let replies = s.handle(inbound(2, ConfigEpoch(0), ProtoMsg::ReconfigGet { tag: Tag::new(6, ClientId(4)) }));
        let ProtoReply::CasShard { shard, .. } = &replies[0].reply else { panic!() };
        assert_eq!(shard.as_ref().unwrap().len(), 16);
    }

    #[test]
    fn initial_payloads_shape() {
        let abd = Configuration::abd_majority(dcs(3), 1);
        let v = Value::filler(1000);
        let payloads = DcServer::initial_payloads(&abd, &v);
        assert_eq!(payloads.len(), 3);
        assert!(payloads
            .iter()
            .all(|(_, p)| matches!(p, ReconfigPayload::Value(val) if val.len() == 1000)));

        let cas = Configuration::cas_default(dcs(5), 3, 1);
        let payloads = DcServer::initial_payloads(&cas, &v);
        assert_eq!(payloads.len(), 5);
        for (_, p) in &payloads {
            let ReconfigPayload::Shard(s) = p else { panic!() };
            assert_eq!(s.len(), legostore_erasure::shard_len(1000, 3));
        }
    }

    #[test]
    fn delete_and_gc() {
        let mut s = abd_server_with_key();
        assert_eq!(s.key_count(), 1);
        assert!(s.storage_bytes() > 0);
        assert_eq!(s.garbage_collect(1), 0); // ABD has nothing to collect
        assert!(s.remove_key(&Key::from("k")));
        assert!(!s.remove_key(&Key::from("k")));
        assert_eq!(s.key_count(), 0);
    }

    #[test]
    fn apply_control_drives_the_same_paths_as_direct_calls() {
        let mut s = DcServer::new(DcId(0));
        s.apply_control(ControlMsg::InstallKey {
            key: Key::from("k"),
            config: Configuration::abd_majority(dcs(3), 1),
            tag: Tag::INITIAL,
            payload: ReconfigPayload::Value(Value::from("init")),
        });
        assert_eq!(s.key_count(), 1);
        s.apply_control(ControlMsg::SetFailed(true));
        assert!(s.is_failed());
        s.apply_control(ControlMsg::SetFailed(false));
        s.apply_control(ControlMsg::GarbageCollect(1));
        s.apply_control(ControlMsg::RemoveKey(Key::from("k")));
        assert_eq!(s.key_count(), 0);
    }

    #[test]
    fn stale_route_eviction_keeps_recent_endpoints() {
        let mut routes: HashMap<u64, ((), u64)> = HashMap::new();
        for endpoint in 0..100u64 {
            routes.insert(endpoint, ((), endpoint + 1)); // stamp = insertion order
        }
        // Endpoint 3 sends a fresh request much later: its stamp is refreshed.
        routes.insert(3, ((), 101));
        evict_stale_routes(&mut routes, 10);
        assert_eq!(routes.len(), 10);
        assert!(routes.contains_key(&3), "recently active endpoint must survive");
        for endpoint in 92..100u64 {
            assert!(routes.contains_key(&endpoint), "endpoint {endpoint} is recent");
        }
        assert!(!routes.contains_key(&0), "stale endpoint must be evicted");
        // Under the threshold nothing happens.
        let before: Vec<u64> = routes.keys().copied().collect();
        evict_stale_routes(&mut routes, 10);
        assert_eq!(routes.len(), before.len());
    }
}
