//! The CAS (Coded Atomic Storage) protocol — Figures 8 and 9 of the paper.
//!
//! Servers store a list of `(tag, codeword symbol?, label)` triples per key, where the label
//! is `pre` (value staged but not yet safe to expose) or `fin` (finalized). PUT runs three
//! phases (query, pre-write, finalize); GET runs two (query, finalize-read + decode). The
//! *optimized GET* uses a client-side cache of the last decoded `(tag, value)` to finish in
//! one phase when the highest finalized tag has not changed.
//!
//! Garbage collection (Appendix F) prunes triples older than the latest finalized version;
//! it never affects safety, only the ability of very slow concurrent readers to terminate,
//! and the paper sets the horizon orders of magnitude above operation latencies.

use crate::msg::{OpOutcome, OpProgress, Outbound, ProtoMsg, ProtoReply};
use crate::quorum::{widen_preferred_quorums, QuorumTracker};
use bytes::Bytes;
use legostore_erasure::{decode_value, encode_value, Shard};
use legostore_types::{
    ClientId, ConfigEpoch, Configuration, DcId, Key, QuorumId, StoreError, Tag, Value,
};
use std::collections::BTreeMap;

/// Label attached to every stored triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// Staged by a pre-write; not yet visible to queries.
    Pre,
    /// Finalized; visible to queries.
    Fin,
}

/// Per-key server state for CAS.
#[derive(Debug, Clone, PartialEq)]
pub struct CasKeyState {
    /// Version history: tag → (codeword symbol if stored locally, label). Symbols are
    /// shared [`Bytes`] handles, so storing a received shard never copies it.
    triples: BTreeMap<Tag, (Option<Bytes>, Label)>,
    /// The tag this state was installed with. For a state installed by a
    /// reconfiguration transfer this is the transferred `highest_tag`: every version
    /// strictly below it was already superseded in the *old* epoch, so requests about
    /// older tags (stragglers from before the move, or a stale second controller) are
    /// acknowledged without storing anything — the floor is the server-side half of the
    /// cross-epoch dedup invariant.
    transfer_floor: Tag,
}

impl CasKeyState {
    /// Initial state holding this server's codeword symbol of the initial value, finalized.
    pub fn new(tag: Tag, shard: Option<Bytes>) -> Self {
        let mut triples = BTreeMap::new();
        triples.insert(tag, (shard, Label::Fin));
        CasKeyState { triples, transfer_floor: tag }
    }

    /// Highest tag labeled `fin`, if any.
    pub fn highest_fin(&self) -> Option<Tag> {
        self.triples
            .iter()
            .rev()
            .find(|(_, (_, l))| *l == Label::Fin)
            .map(|(t, _)| *t)
    }

    /// Number of stored triples (used by GC tests and storage metering).
    pub fn version_count(&self) -> usize {
        self.triples.len()
    }

    /// Bytes of storage consumed by all stored symbols.
    pub fn storage_bytes(&self) -> u64 {
        self.triples
            .values()
            .map(|(s, _)| s.as_ref().map(|v| v.len() as u64).unwrap_or(0))
            .sum()
    }

    /// Handles a CAS request, returning the reply.
    pub fn handle(&mut self, msg: &ProtoMsg) -> ProtoReply {
        match msg {
            ProtoMsg::CasQuery => match self.highest_fin() {
                Some(tag) => ProtoReply::TagOnly { tag },
                None => ProtoReply::TagOnly { tag: Tag::INITIAL },
            },
            ProtoMsg::CasPreWrite { tag, shard } => {
                if *tag >= self.transfer_floor {
                    self.triples
                        .entry(*tag)
                        .or_insert_with(|| (Some(shard.clone()), Label::Pre));
                }
                ProtoReply::Ack
            }
            ProtoMsg::CasFinalizeWrite { tag } => {
                if *tag >= self.transfer_floor {
                    match self.triples.get_mut(tag) {
                        Some((_, label)) => *label = Label::Fin,
                        None => {
                            self.triples.insert(*tag, (None, Label::Fin));
                        }
                    }
                }
                ProtoReply::Ack
            }
            ProtoMsg::CasFinalizeRead { tag } => {
                if *tag < self.transfer_floor {
                    // A pre-floor version was superseded before the transfer; answer
                    // without resurrecting a metadata-only triple for it.
                    return ProtoReply::CasShard { tag: *tag, shard: None };
                }
                match self.triples.get_mut(tag) {
                    Some((shard, label)) => {
                        *label = Label::Fin;
                        ProtoReply::CasShard {
                            tag: *tag,
                            shard: shard.clone(),
                        }
                    }
                    None => {
                        self.triples.insert(*tag, (None, Label::Fin));
                        ProtoReply::CasShard { tag: *tag, shard: None }
                    }
                }
            }
            other => ProtoReply::Error(StoreError::Internal(format!(
                "CAS server cannot handle {other:?}"
            ))),
        }
    }

    /// Garbage-collects versions strictly older than the highest finalized tag.
    ///
    /// `keep_recent` additional most-recent older versions are retained as a safety margin
    /// for slow concurrent readers (the paper uses a time horizon; a version-count horizon
    /// is equivalent for bounded-latency operations). Returns the number of removed triples.
    pub fn garbage_collect(&mut self, keep_recent: usize) -> usize {
        let Some(highest_fin) = self.highest_fin() else {
            return 0;
        };
        let older: Vec<Tag> = self
            .triples
            .range(..highest_fin)
            .rev()
            .skip(keep_recent)
            .map(|(t, _)| *t)
            .collect();
        let removed = older.len();
        for t in older {
            self.triples.remove(&t);
        }
        removed
    }
}

/// Client-side state machine for a CAS PUT (3 phases).
#[derive(Debug, Clone)]
pub struct CasPut {
    key: Key,
    epoch: ConfigEpoch,
    config: Configuration,
    client_dc: DcId,
    client_id: ClientId,
    value: Value,
    phase: u8,
    q1: QuorumTracker,
    q2: QuorumTracker,
    q3: QuorumTracker,
    max_tag: Tag,
    new_tag: Option<Tag>,
    /// Distinct servers that answered `KeyNotFound` (see [`crate::AbdPut`]'s quorum rule).
    not_found: QuorumTracker,
    /// Memoized codeword of `value` (a pure function of `(value, n, k)`): computed at
    /// the first phase-2 send and reused by every timeout re-send.
    encoded: Option<Vec<Shard>>,
}

impl CasPut {
    /// Creates the state machine.
    pub fn new(
        key: Key,
        config: Configuration,
        client_dc: DcId,
        client_id: ClientId,
        value: Value,
    ) -> Self {
        let q1 = QuorumTracker::new(config.quorums.size(QuorumId::Q1));
        let q2 = QuorumTracker::new(config.quorums.size(QuorumId::Q2));
        let q3 = QuorumTracker::new(config.quorums.size(QuorumId::Q3));
        let not_found = QuorumTracker::new(config.quorums.size(QuorumId::Q1));
        CasPut {
            key,
            epoch: config.epoch,
            config,
            client_dc,
            client_id,
            value,
            phase: 1,
            q1,
            q2,
            q3,
            max_tag: Tag::INITIAL,
            new_tag: None,
            encoded: None,
            not_found,
        }
    }

    /// Rebuilds a PUT that already chose its tag in a *previous* configuration epoch so
    /// it re-enters the new epoch at the pre-write phase with that tag pinned.
    ///
    /// Cross-epoch analogue of [`CasPut::resend_widened`]'s tag pinning (see
    /// [`crate::AbdPut::resume_write`] for the full linearizability argument). The value
    /// is re-encoded under the *new* configuration's `(n, k)` code — the old epoch's
    /// symbols are useless in a placement with different hosts or code parameters — but
    /// the tag survives the move, so wherever the transfer already delivered this
    /// version the re-sent pre-write/finalize pair is absorbed idempotently.
    pub fn resume_write(
        key: Key,
        config: Configuration,
        client_dc: DcId,
        client_id: ClientId,
        tag: Tag,
        value: Value,
    ) -> Self {
        let encoded = encode_value(value.as_bytes(), config.n, config.k)
            .expect("configuration was validated");
        let mut put = CasPut::new(key, config, client_dc, client_id, value);
        put.phase = 2;
        put.new_tag = Some(tag);
        put.encoded = Some(encoded);
        put
    }

    /// The tag this PUT will install (available once phase 1 completes).
    pub fn chosen_tag(&self) -> Option<Tag> {
        self.new_tag
    }

    /// The 1-based protocol phase currently collecting replies.
    pub fn current_phase(&self) -> u8 {
        self.phase
    }

    /// `(needed, received)` of the current phase's quorum (timeout diagnostics).
    pub fn pending_quorum(&self) -> (usize, usize) {
        let q = match self.phase {
            1 => &self.q1,
            2 => &self.q2,
            _ => &self.q3,
        };
        (q.needed(), q.count())
    }

    /// Messages for the first phase this machine runs: the query for a fresh PUT, or
    /// the pinned-tag pre-write fan-out for a machine built by [`CasPut::resume_write`].
    pub fn start(&self) -> Vec<Outbound> {
        if self.phase >= 2 {
            let tag = self.new_tag.expect("a resumed PUT carries its pinned tag");
            let shards = self.encoded.as_deref().expect("resume_write pre-encodes");
            return self.pre_write_messages_to(tag, shards);
        }
        self.config
            .quorum_for(self.client_dc, QuorumId::Q1)
            .iter().copied()
            .map(|to| Outbound {
                to,
                phase: 1,
                key: self.key.clone(),
                epoch: self.epoch,
                msg: ProtoMsg::CasQuery,
            })
            .collect()
    }

    fn pre_write_messages_to(&self, tag: Tag, shards: &[Shard]) -> Vec<Outbound> {
        self.config
            .quorum_for(self.client_dc, QuorumId::Q2)
            .iter().copied()
            .filter_map(|to| {
                let idx = self.config.symbol_index(to)?;
                Some(Outbound {
                    to,
                    phase: 2,
                    key: self.key.clone(),
                    epoch: self.epoch,
                    msg: ProtoMsg::CasPreWrite {
                        tag,
                        shard: shards[idx].data.clone(),
                    },
                })
            })
            .collect()
    }

    fn pre_write_messages(&mut self, tag: Tag) -> Vec<Outbound> {
        if self.encoded.is_none() {
            self.encoded = Some(
                encode_value(self.value.as_bytes(), self.config.n, self.config.k)
                    .expect("configuration was validated"),
            );
        }
        let shards = self.encoded.as_deref().expect("filled above");
        self.pre_write_messages_to(tag, shards)
    }

    fn finalize_messages(&self, tag: Tag) -> Vec<Outbound> {
        self.config
            .quorum_for(self.client_dc, QuorumId::Q3)
            .iter().copied()
            .map(|to| Outbound {
                to,
                phase: 3,
                key: self.key.clone(),
                epoch: self.epoch,
                msg: ProtoMsg::CasFinalizeWrite { tag },
            })
            .collect()
    }

    /// Re-sends the current phase's messages to every DC of the placement — the paper's
    /// §4.5 timeout handling. As with [`crate::AbdPut::resend_widened`], resuming with
    /// the pinned [`CasPut::chosen_tag`] is a linearizability requirement: a restarted
    /// attempt would pick a fresh higher tag, and the partially-finalized old tag could
    /// surface to readers *before* an interleaved writer while the fresh tag surfaces
    /// *after* it — one PUT, two linearization points. The widening is sticky: later
    /// phases of the resumed operation also target the full placement.
    pub fn resend_widened(&mut self) -> Vec<Outbound> {
        // After widening, every quorum_for lookup resolves to the full placement, so the
        // ordinary phase builders produce the widened messages (phase 2 reuses the
        // memoized codeword instead of re-encoding).
        widen_preferred_quorums(&mut self.config, self.client_dc);
        match self.phase {
            1 => self.start(),
            2 => {
                let tag = self.new_tag.expect("phase 2 implies a chosen tag");
                self.pre_write_messages(tag)
            }
            _ => {
                let tag = self.new_tag.expect("phase 3 implies a chosen tag");
                self.finalize_messages(tag)
            }
        }
    }

    /// Feeds one reply into the state machine.
    pub fn on_reply(&mut self, from: DcId, phase: u8, reply: ProtoReply) -> OpProgress {
        if let ProtoReply::OperationFail { new_config } = reply {
            return OpProgress::Done(OpOutcome::Reconfigured { new_config });
        }
        if phase != self.phase {
            return OpProgress::Pending;
        }
        match (self.phase, reply) {
            (1, ProtoReply::TagOnly { tag }) => {
                self.max_tag = self.max_tag.max(tag);
                if self.q1.record(from) {
                    let new_tag = self.max_tag.successor(self.client_id);
                    self.new_tag = Some(new_tag);
                    self.phase = 2;
                    OpProgress::Send(self.pre_write_messages(new_tag))
                } else {
                    OpProgress::Pending
                }
            }
            (2, ProtoReply::Ack) => {
                if self.q2.record(from) {
                    self.phase = 3;
                    OpProgress::Send(self.finalize_messages(self.new_tag.expect("set in phase 1")))
                } else {
                    OpProgress::Pending
                }
            }
            (3, ProtoReply::Ack) => {
                if self.q3.record(from) {
                    OpProgress::Done(OpOutcome::PutOk {
                        tag: self.new_tag.expect("set in phase 1"),
                    })
                } else {
                    OpProgress::Pending
                }
            }
            (_, ProtoReply::Error(e)) if matches!(e, StoreError::KeyNotFound(_)) => {
                // Authoritative only from a read quorum; see [`crate::AbdPut::on_reply`].
                if self.not_found.record(from) {
                    OpProgress::Done(OpOutcome::Failed(e))
                } else {
                    OpProgress::Pending
                }
            }
            _ => OpProgress::Pending,
        }
    }
}

/// Client-side state machine for a CAS GET (2 phases, optional one-phase fast path).
#[derive(Debug, Clone)]
pub struct CasGet {
    key: Key,
    epoch: ConfigEpoch,
    config: Configuration,
    client_dc: DcId,
    phase: u8,
    q1: QuorumTracker,
    q4: QuorumTracker,
    max_fin_tag: Tag,
    target_tag: Option<Tag>,
    shards: Vec<Shard>,
    /// Targets of the finalize-read phase (needed to detect exhaustion; compared against
    /// `q4`'s *distinct* responder count, so duplicated replies cannot fake exhaustion).
    phase2_targets: usize,
    /// Client-side cache from a previous GET: `(tag, value)` (the optimized-GET fast path).
    cache: Option<(Tag, Value)>,
    /// Distinct servers that answered `KeyNotFound` (see [`crate::AbdPut`]'s quorum rule).
    not_found: QuorumTracker,
}

impl CasGet {
    /// Creates the state machine. `cache` carries the client's last decoded `(tag, value)`
    /// for this key; if the highest finalized tag is unchanged the GET finishes in one phase.
    pub fn new(
        key: Key,
        config: Configuration,
        client_dc: DcId,
        cache: Option<(Tag, Value)>,
    ) -> Self {
        let q1 = QuorumTracker::new(config.quorums.size(QuorumId::Q1));
        let q4 = QuorumTracker::new(config.quorums.size(QuorumId::Q4));
        let not_found = QuorumTracker::new(config.quorums.size(QuorumId::Q1));
        CasGet {
            key,
            epoch: config.epoch,
            config,
            client_dc,
            phase: 1,
            q1,
            q4,
            max_fin_tag: Tag::INITIAL,
            target_tag: None,
            shards: Vec::new(),
            phase2_targets: 0,
            cache,
            not_found,
        }
    }

    /// The 1-based protocol phase currently collecting replies.
    pub fn current_phase(&self) -> u8 {
        self.phase
    }

    /// `(needed, received)` of the current phase's quorum (timeout diagnostics).
    pub fn pending_quorum(&self) -> (usize, usize) {
        let q = if self.phase == 1 { &self.q1 } else { &self.q4 };
        (q.needed(), q.count())
    }

    /// Messages for phase 1 (query for the highest finalized tag).
    pub fn start(&self) -> Vec<Outbound> {
        self.config
            .quorum_for(self.client_dc, QuorumId::Q1)
            .iter().copied()
            .map(|to| Outbound {
                to,
                phase: 1,
                key: self.key.clone(),
                epoch: self.epoch,
                msg: ProtoMsg::CasQuery,
            })
            .collect()
    }

    fn finalize_read_messages(&mut self, tag: Tag) -> Vec<Outbound> {
        let targets = self.config.quorum_for(self.client_dc, QuorumId::Q4);
        self.phase2_targets = targets.len();
        targets
            .iter().copied()
            .map(|to| Outbound {
                to,
                phase: 2,
                key: self.key.clone(),
                epoch: self.epoch,
                msg: ProtoMsg::CasFinalizeRead { tag },
            })
            .collect()
    }

    /// Re-sends the current phase's messages to every DC of the placement (§4.5 timeout
    /// handling; see [`CasPut::resend_widened`]). The finalize-read targets widen to the
    /// whole placement, so the symbol hunt for the target tag gets every surviving coded
    /// element a chance to answer. The widening is sticky: a phase-1 resume that later
    /// advances to the finalize-read also targets the full placement.
    pub fn resend_widened(&mut self) -> Vec<Outbound> {
        widen_preferred_quorums(&mut self.config, self.client_dc);
        match self.phase {
            1 => self
                .config
                .dcs
                .iter()
                .copied()
                .map(|to| Outbound {
                    to,
                    phase: 1,
                    key: self.key.clone(),
                    epoch: self.epoch,
                    msg: ProtoMsg::CasQuery,
                })
                .collect(),
            _ => {
                let tag = self.target_tag.expect("phase 2 implies a target tag");
                self.phase2_targets = self.config.dcs.len();
                self.config
                    .dcs
                    .iter()
                    .copied()
                    .map(|to| Outbound {
                        to,
                        phase: 2,
                        key: self.key.clone(),
                        epoch: self.epoch,
                        msg: ProtoMsg::CasFinalizeRead { tag },
                    })
                    .collect()
            }
        }
    }

    /// Feeds one reply into the state machine.
    pub fn on_reply(&mut self, from: DcId, phase: u8, reply: ProtoReply) -> OpProgress {
        if let ProtoReply::OperationFail { new_config } = reply {
            return OpProgress::Done(OpOutcome::Reconfigured { new_config });
        }
        if phase != self.phase {
            return OpProgress::Pending;
        }
        match (self.phase, reply) {
            (1, ProtoReply::TagOnly { tag }) => {
                self.max_fin_tag = self.max_fin_tag.max(tag);
                if self.q1.record(from) {
                    let target = self.max_fin_tag;
                    // Optimized GET: the cached value is exactly the finalized version the
                    // second phase would decode.
                    if let Some((cached_tag, cached_value)) = &self.cache {
                        if *cached_tag == target {
                            return OpProgress::Done(OpOutcome::GetOk {
                                tag: target,
                                value: cached_value.clone(),
                                one_phase: true,
                            });
                        }
                    }
                    self.target_tag = Some(target);
                    self.phase = 2;
                    OpProgress::Send(self.finalize_read_messages(target))
                } else {
                    OpProgress::Pending
                }
            }
            (2, ProtoReply::CasShard { tag, shard }) => {
                let target = self.target_tag.expect("phase 2 implies target chosen");
                if tag == target {
                    if let Some(data) = shard {
                        if let Some(idx) = self.config.symbol_index(from) {
                            // Dedupe by symbol index: a widened re-send can elicit a
                            // second reply from a DC whose element is already collected.
                            if !self.shards.iter().any(|s| s.index == idx) {
                                self.shards.push(Shard::new(idx, data));
                            }
                        }
                    }
                }
                self.q4.record(from);
                let have_quorum = self.q4.reached();
                let have_symbols = self.shards.len() >= self.config.k;
                if have_quorum && have_symbols {
                    match decode_value(&self.shards, self.config.n, self.config.k) {
                        Ok(bytes) => OpProgress::Done(OpOutcome::GetOk {
                            tag: target,
                            value: Value::from(bytes),
                            one_phase: false,
                        }),
                        Err(_) => OpProgress::Done(OpOutcome::Failed(StoreError::DecodeFailed {
                            have: self.shards.len(),
                            need: self.config.k,
                        })),
                    }
                } else if self.q4.count() >= self.phase2_targets && !have_symbols {
                    // Every contacted server answered (distinct responders, so duplicated
                    // replies can't fake exhaustion) but too few had the symbol; the
                    // hosting runtime will widen the quorum / retry.
                    OpProgress::Done(OpOutcome::Failed(StoreError::DecodeFailed {
                        have: self.shards.len(),
                        need: self.config.k,
                    }))
                } else {
                    OpProgress::Pending
                }
            }
            (_, ProtoReply::Error(e)) if matches!(e, StoreError::KeyNotFound(_)) => {
                // Authoritative only from a read quorum; see [`crate::AbdPut::on_reply`].
                if self.not_found.record(from) {
                    OpProgress::Done(OpOutcome::Failed(e))
                } else {
                    OpProgress::Pending
                }
            }
            _ => OpProgress::Pending,
        }
    }
}

/// Builds the per-server initial CAS states for a fresh key: encodes `initial` under the
/// configuration's code and hands each hosting DC its own symbol with tag
/// [`Tag::INITIAL`].
pub fn initial_cas_states(
    config: &Configuration,
    initial: &Value,
) -> BTreeMap<DcId, CasKeyState> {
    let shards =
        encode_value(initial.as_bytes(), config.n, config.k).expect("validated configuration");
    config
        .dcs
        .iter()
        .map(|dc| {
            let idx = config.symbol_index(*dc).expect("dc in placement");
            (
                *dc,
                CasKeyState::new(Tag::INITIAL, Some(shards[idx].data.clone())),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcs(n: usize) -> Vec<DcId> {
        (0..n).map(DcId::from).collect()
    }

    fn config53() -> Configuration {
        Configuration::cas_default(dcs(5), 3, 1)
    }

    fn run_put(
        servers: &mut BTreeMap<DcId, CasKeyState>,
        config: &Configuration,
        client_id: u32,
        value: &Value,
    ) -> OpOutcome {
        let mut put = CasPut::new(
            Key::from("k"),
            config.clone(),
            DcId(0),
            ClientId(client_id),
            value.clone(),
        );
        let mut inflight = put.start();
        loop {
            let out = inflight.remove(0);
            let reply = servers.get_mut(&out.to).unwrap().handle(&out.msg);
            match put.on_reply(out.to, out.phase, reply) {
                OpProgress::Pending => {}
                OpProgress::Send(more) => inflight.extend(more),
                OpProgress::Done(outcome) => return outcome,
            }
            assert!(!inflight.is_empty(), "protocol stalled");
        }
    }

    fn run_get(
        servers: &mut BTreeMap<DcId, CasKeyState>,
        config: &Configuration,
        cache: Option<(Tag, Value)>,
    ) -> OpOutcome {
        let mut get = CasGet::new(Key::from("k"), config.clone(), DcId(0), cache);
        let mut inflight = get.start();
        loop {
            let out = inflight.remove(0);
            let reply = servers.get_mut(&out.to).unwrap().handle(&out.msg);
            match get.on_reply(out.to, out.phase, reply) {
                OpProgress::Pending => {}
                OpProgress::Send(more) => inflight.extend(more),
                OpProgress::Done(outcome) => return outcome,
            }
            assert!(!inflight.is_empty(), "protocol stalled");
        }
    }

    #[test]
    fn put_resend_pins_the_chosen_tag_across_phases() {
        let config = config53();
        let mut put = CasPut::new(
            Key::from("k"),
            config.clone(),
            DcId(0),
            ClientId(4),
            Value::filler(600),
        );
        put.start();
        // Complete phase 1 (q1 = 2 of 5 for CAS(5,3)): the tag is chosen.
        assert_eq!(
            put.on_reply(DcId(0), 1, ProtoReply::TagOnly { tag: Tag::INITIAL }),
            OpProgress::Pending
        );
        let OpProgress::Send(pre) = put.on_reply(DcId(1), 1, ProtoReply::TagOnly { tag: Tag::INITIAL })
        else {
            panic!()
        };
        assert!(pre.iter().all(|m| m.phase == 2));
        let tag = put.chosen_tag().expect("phase 1 done");
        // A timed-out attempt resumes phase 2 with the *same* tag on all 5 DCs (a
        // restarted machine would re-query and pick a fresh higher tag — the
        // double-effect hazard).
        let resent = put.resend_widened();
        assert_eq!(resent.len(), 5);
        for m in &resent {
            let ProtoMsg::CasPreWrite { tag: t, .. } = &m.msg else { panic!("{m:?}") };
            assert_eq!(*t, tag);
        }
        // Advance to phase 3 (q2 = 4 acks) and resend there too: still the same tag.
        for dc in 0..3 {
            assert_eq!(put.on_reply(DcId(dc), 2, ProtoReply::Ack), OpProgress::Pending);
        }
        let OpProgress::Send(fins) = put.on_reply(DcId(3), 2, ProtoReply::Ack) else { panic!() };
        assert!(fins.iter().all(|m| matches!(m.msg, ProtoMsg::CasFinalizeWrite { tag: t } if t == tag)));
        let refins = put.resend_widened();
        assert_eq!(refins.len(), 5);
        assert!(refins
            .iter()
            .all(|m| matches!(m.msg, ProtoMsg::CasFinalizeWrite { tag: t } if t == tag)));
    }

    #[test]
    fn resumed_put_starts_at_pre_write_with_pinned_tag_and_fresh_code() {
        // The old epoch ran CAS(5,3); the new placement runs CAS(4,1). The resumed PUT
        // must keep its old tag but encode under the new code.
        let new_config = Configuration::cas_default(dcs(4), 1, 1);
        let pinned = Tag::new(3, ClientId(2));
        let payload = Value::filler(700);
        let mut put = CasPut::resume_write(
            Key::from("k"),
            new_config.clone(),
            DcId(0),
            ClientId(2),
            pinned,
            payload.clone(),
        );
        let msgs = put.start();
        assert!(!msgs.is_empty());
        for m in &msgs {
            assert_eq!(m.phase, 2);
            let ProtoMsg::CasPreWrite { tag, shard } = &m.msg else { panic!("{m:?}") };
            assert_eq!(*tag, pinned);
            assert_eq!(shard.len(), legostore_erasure::shard_len(700, new_config.k));
        }
        // Drive it to completion against servers seeded by a transfer at the same tag:
        // the pre-write is absorbed idempotently and the PUT finishes under `pinned`.
        let mut servers: BTreeMap<DcId, CasKeyState> = new_config
            .dcs
            .iter()
            .map(|d| {
                let idx = new_config.symbol_index(*d).unwrap();
                let shards = encode_value(payload.as_bytes(), new_config.n, new_config.k).unwrap();
                (*d, CasKeyState::new(pinned, Some(shards[idx].data.clone())))
            })
            .collect();
        let mut inflight = msgs;
        let outcome = loop {
            let out = inflight.remove(0);
            let reply = servers.get_mut(&out.to).unwrap().handle(&out.msg);
            match put.on_reply(out.to, out.phase, reply) {
                OpProgress::Pending => {}
                OpProgress::Send(more) => inflight.extend(more),
                OpProgress::Done(outcome) => break outcome,
            }
            assert!(!inflight.is_empty(), "protocol stalled");
        };
        assert_eq!(outcome, OpOutcome::PutOk { tag: pinned });
        for s in servers.values() {
            assert_eq!(s.highest_fin(), Some(pinned));
            assert_eq!(s.version_count(), 1, "replay must not grow the history");
        }
    }

    #[test]
    fn transfer_floor_absorbs_pre_floor_stragglers() {
        // A transferred state starts at the moved `highest_tag`; requests about older
        // tags (old-epoch stragglers) are acknowledged but store nothing.
        let floor = Tag::new(5, ClientId(1));
        let mut s = CasKeyState::new(floor, Some(vec![1u8; 8].into()));
        let stale = Tag::new(3, ClientId(9));
        assert_eq!(
            s.handle(&ProtoMsg::CasPreWrite { tag: stale, shard: vec![2u8; 8].into() }),
            ProtoReply::Ack
        );
        assert_eq!(s.handle(&ProtoMsg::CasFinalizeWrite { tag: stale }), ProtoReply::Ack);
        assert_eq!(
            s.handle(&ProtoMsg::CasFinalizeRead { tag: stale }),
            ProtoReply::CasShard { tag: stale, shard: None }
        );
        assert_eq!(s.version_count(), 1, "pre-floor traffic must not grow the history");
        assert_eq!(s.highest_fin(), Some(floor));
        // At or above the floor everything behaves as before.
        let newer = Tag::new(6, ClientId(2));
        s.handle(&ProtoMsg::CasPreWrite { tag: newer, shard: vec![3u8; 8].into() });
        s.handle(&ProtoMsg::CasFinalizeWrite { tag: newer });
        assert_eq!(s.highest_fin(), Some(newer));
        assert_eq!(s.version_count(), 2);
    }

    #[test]
    fn get_resend_rehunts_symbols_and_dedupes_shards() {
        let config = config53();
        let mut servers = initial_cas_states(&config, &Value::from("init"));
        let payload = Value::filler(900);
        let OpOutcome::PutOk { tag } = run_put(&mut servers, &config, 1, &payload) else {
            panic!()
        };
        let mut get = CasGet::new(Key::from("k"), config.clone(), DcId(0), None);
        get.start();
        // q1 = 2 query replies pick the target tag.
        assert_eq!(get.on_reply(DcId(0), 1, ProtoReply::TagOnly { tag }), OpProgress::Pending);
        let OpProgress::Send(_) = get.on_reply(DcId(1), 1, ProtoReply::TagOnly { tag }) else {
            panic!()
        };
        // One shard arrives, then the attempt "times out" and resumes: the finalize-read
        // goes to every DC, and the already-collected element must not be double-counted
        // when its server answers again.
        let shard0 = servers.get_mut(&DcId(0)).unwrap().handle(&ProtoMsg::CasFinalizeRead { tag });
        assert_eq!(get.on_reply(DcId(0), 2, shard0.clone()), OpProgress::Pending);
        let resent = get.resend_widened();
        assert_eq!(resent.len(), 5);
        assert!(resent
            .iter()
            .all(|m| matches!(m.msg, ProtoMsg::CasFinalizeRead { tag: t } if t == tag)));
        assert_eq!(get.on_reply(DcId(0), 2, shard0), OpProgress::Pending, "duplicate element");
        // Distinct elements complete the decode once the quorum is met.
        let mut outcome = OpProgress::Pending;
        for dc in 1..5 {
            let reply = servers.get_mut(&DcId(dc)).unwrap().handle(&ProtoMsg::CasFinalizeRead { tag });
            outcome = get.on_reply(DcId(dc), 2, reply);
            if matches!(outcome, OpProgress::Done(_)) {
                break;
            }
        }
        let OpProgress::Done(OpOutcome::GetOk { value, .. }) = outcome else {
            panic!("{outcome:?}")
        };
        assert_eq!(value, payload);
    }

    #[test]
    fn put_then_get_round_trip() {
        let config = config53();
        let mut servers = initial_cas_states(&config, &Value::from("init"));
        let payload = Value::filler(1000);
        let OpOutcome::PutOk { tag } = run_put(&mut servers, &config, 1, &payload) else {
            panic!()
        };
        assert_eq!(tag.seq, 1);
        let OpOutcome::GetOk { value, one_phase, tag: read_tag } =
            run_get(&mut servers, &config, None)
        else {
            panic!()
        };
        assert_eq!(value, payload);
        assert_eq!(read_tag, tag);
        assert!(!one_phase);
    }

    #[test]
    fn get_of_initial_value() {
        let config = config53();
        let mut servers = initial_cas_states(&config, &Value::from("genesis"));
        let OpOutcome::GetOk { tag, value, .. } = run_get(&mut servers, &config, None) else {
            panic!()
        };
        assert_eq!(tag, Tag::INITIAL);
        assert_eq!(value, Value::from("genesis"));
    }

    #[test]
    fn cached_get_completes_in_one_phase() {
        let config = config53();
        let mut servers = initial_cas_states(&config, &Value::from("init"));
        let payload = Value::filler(512);
        let OpOutcome::PutOk { tag } = run_put(&mut servers, &config, 1, &payload) else {
            panic!()
        };
        // Second GET with the (tag, value) cache hits the fast path.
        let OpOutcome::GetOk { value, one_phase, .. } =
            run_get(&mut servers, &config, Some((tag, payload.clone())))
        else {
            panic!()
        };
        assert!(one_phase);
        assert_eq!(value, payload);
        // A stale cache (older tag) must not trigger the fast path.
        let newer = Value::filler(64);
        run_put(&mut servers, &config, 2, &newer);
        let OpOutcome::GetOk { value, one_phase, .. } =
            run_get(&mut servers, &config, Some((tag, payload)))
        else {
            panic!()
        };
        assert!(!one_phase);
        assert_eq!(value, newer);
    }

    #[test]
    fn unfinalized_prewrite_is_invisible_to_reads() {
        let config = config53();
        let mut servers = initial_cas_states(&config, &Value::from("init"));
        // Stage a pre-write at every server but never finalize it.
        let tag = Tag::new(7, ClientId(9));
        let shards = encode_value(b"hidden", config.n, config.k).unwrap();
        for (dc, state) in servers.iter_mut() {
            let idx = config.symbol_index(*dc).unwrap();
            state.handle(&ProtoMsg::CasPreWrite { tag, shard: shards[idx].data.clone() });
        }
        // A GET must still return the initial value.
        let OpOutcome::GetOk { tag: read_tag, value, .. } = run_get(&mut servers, &config, None)
        else {
            panic!()
        };
        assert_eq!(read_tag, Tag::INITIAL);
        assert_eq!(value, Value::from("init"));
    }

    #[test]
    fn finalize_read_propagates_fin_label() {
        // The GET's second phase acts as a write-back of the `fin` label.
        let config = config53();
        let mut servers = initial_cas_states(&config, &Value::from("init"));
        let payload = Value::filler(128);
        run_put(&mut servers, &config, 1, &payload);
        // After the PUT, finalize reached q3 servers; run a GET and then every server that
        // was contacted in phase 2 must have the tag finalized.
        run_get(&mut servers, &config, None);
        let fin_count = servers
            .values()
            .filter(|s| s.highest_fin().map(|t| t.seq) == Some(1))
            .count();
        assert!(fin_count >= config.quorums.size(QuorumId::Q4));
    }

    #[test]
    fn concurrent_puts_resolve_by_tag_order() {
        let config = config53();
        let mut servers = initial_cas_states(&config, &Value::from("init"));
        let a = Value::from("aaaa");
        let b = Value::from("bbbb");
        // Two sequential PUTs from different clients; the second sees the first's tag.
        run_put(&mut servers, &config, 1, &a);
        let OpOutcome::PutOk { tag: tb } = run_put(&mut servers, &config, 2, &b) else { panic!() };
        assert_eq!(tb.seq, 2);
        let OpOutcome::GetOk { value, .. } = run_get(&mut servers, &config, None) else { panic!() };
        assert_eq!(value, b);
    }

    #[test]
    fn cas_k1_behaves_like_replication() {
        let config = Configuration::cas_default(dcs(4), 1, 1);
        let mut servers = initial_cas_states(&config, &Value::from("init"));
        let v = Value::filler(257);
        run_put(&mut servers, &config, 1, &v);
        let OpOutcome::GetOk { value, .. } = run_get(&mut servers, &config, None) else { panic!() };
        assert_eq!(value, v);
    }

    #[test]
    fn garbage_collection_keeps_latest_fin_and_newer() {
        let config = config53();
        let mut servers = initial_cas_states(&config, &Value::from("init"));
        for i in 0..5 {
            run_put(&mut servers, &config, 1, &Value::filler(64 + i));
        }
        let s = servers.get_mut(&DcId(0)).unwrap();
        let before = s.version_count();
        assert!(before >= 3);
        let removed = s.garbage_collect(0);
        assert!(removed > 0);
        // The highest finalized version survives and still answers queries.
        let highest = s.highest_fin().unwrap();
        assert_eq!(highest.seq, 5);
        assert_eq!(s.version_count(), before - removed);
        // Storage shrank or stayed equal.
        let removed_again = s.garbage_collect(0);
        assert_eq!(removed_again, 0);
    }

    #[test]
    fn garbage_collection_respects_keep_recent() {
        let mut s = CasKeyState::new(Tag::INITIAL, Some(vec![0u8; 8].into()));
        for i in 1..=4u64 {
            let t = Tag::new(i, ClientId(1));
            s.handle(&ProtoMsg::CasPreWrite { tag: t, shard: vec![0u8; 8].into() });
            s.handle(&ProtoMsg::CasFinalizeWrite { tag: t });
        }
        assert_eq!(s.version_count(), 5);
        s.garbage_collect(2);
        // Latest fin (seq 4) plus two older kept => 3 versions remain.
        assert_eq!(s.version_count(), 3);
        assert_eq!(s.highest_fin().unwrap().seq, 4);
    }

    #[test]
    fn server_rejects_abd_messages() {
        let mut s = CasKeyState::new(Tag::INITIAL, None);
        assert!(matches!(
            s.handle(&ProtoMsg::AbdReadQuery),
            ProtoReply::Error(StoreError::Internal(_))
        ));
    }

    #[test]
    fn put_phases_target_the_right_quorums() {
        let config = config53();
        let put = CasPut::new(Key::from("k"), config.clone(), DcId(0), ClientId(1), Value::filler(300));
        let p1 = put.start();
        assert_eq!(p1.len(), config.quorums.size(QuorumId::Q1));
        assert!(p1.iter().all(|o| matches!(o.msg, ProtoMsg::CasQuery)));
        // Drive phase 1 manually to observe phase 2 fan-out and shard sizes.
        let mut put = put;
        let mut progress = OpProgress::Pending;
        for (i, o) in p1.iter().enumerate() {
            progress = put.on_reply(o.to, 1, ProtoReply::TagOnly { tag: Tag::INITIAL });
            if i + 1 < config.quorums.size(QuorumId::Q1) {
                assert_eq!(progress, OpProgress::Pending);
            }
        }
        let OpProgress::Send(p2) = progress else { panic!() };
        assert_eq!(p2.len(), config.quorums.size(QuorumId::Q2));
        for o in &p2 {
            let ProtoMsg::CasPreWrite { shard, .. } = &o.msg else { panic!() };
            assert_eq!(shard.len(), legostore_erasure::shard_len(300, config.k));
        }
    }

    #[test]
    fn get_fails_cleanly_when_symbols_unavailable() {
        // Servers know a fin tag but none has the symbol (e.g. GC'd beyond horizon plus a
        // writer that crashed after finalize metadata-only writes). The GET must not hang.
        let config = Configuration::cas_default(dcs(5), 3, 1);
        let mut servers: BTreeMap<DcId, CasKeyState> = config
            .dcs
            .iter()
            .map(|d| (*d, CasKeyState::new(Tag::new(3, ClientId(1)), None)))
            .collect();
        let outcome = run_get(&mut servers, &config, None);
        assert!(matches!(outcome, OpOutcome::Failed(StoreError::DecodeFailed { .. })));
    }

    #[test]
    fn initial_states_cover_all_hosts_with_distinct_symbols() {
        let config = config53();
        let servers = initial_cas_states(&config, &Value::filler(5000));
        assert_eq!(servers.len(), 5);
        let lens: Vec<u64> = servers.values().map(|s| s.storage_bytes()).collect();
        assert!(lens.iter().all(|l| *l == lens[0]));
        assert_eq!(lens[0], legostore_erasure::shard_len(5000, 3) as u64);
    }
}
