//! Length-prefixed binary wire codec for the protocol messages.
//!
//! This is the byte-level contract of the TCP transport (see ARCHITECTURE.md,
//! "Transport"). The format is deliberately boring so it can be implemented from the spec
//! alone:
//!
//! * A **frame** on the wire is `u32` little-endian payload length followed by that many
//!   payload bytes. The length covers the payload only (not itself) and is capped at
//!   [`MAX_FRAME_BYTES`].
//! * The payload starts with a one-byte frame kind ([`Frame`]), then the body.
//! * All integers are fixed-width little-endian. Booleans are one byte (0/1). There are no
//!   floats anywhere in the message types.
//! * Byte strings and UTF-8 strings are `u32` length-prefixed. `usize` fields travel as
//!   `u64` so the format is identical across platforms.
//! * `Option<T>` is a presence byte (0/1) followed by `T` when present.
//!
//! Decoding is **zero-copy for payloads**: every `Bytes` field (ABD values, CAS codeword
//! symbols) comes back as a [`Bytes::slice`] window into the single frame buffer, so a
//! decoded 1 MiB shard shares the frame's allocation instead of being copied out
//! (`shims/bytes` frame reuse). Everything else (keys, configurations) is small and owned.
//!
//! The golden-fingerprint tests in `crates/proto/tests/wire_goldens.rs` pin the encoding of
//! every variant: any byte-level change is a wire-format break and must be made
//! deliberately.

use crate::msg::{ProtoMsg, ProtoReply, ReconfigPayload};
use crate::server::{ControlMsg, Inbound};
use bytes::Bytes;
use legostore_obs::{HistogramSnapshot, MetricsSnapshot};
use legostore_types::{
    ClientId, ConfigEpoch, Configuration, DcId, Key, ProtocolKind, QuorumSpec, StoreError, Tag,
    Value,
};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Upper bound on a frame's payload length. Large enough for the biggest modeled object
/// (the paper's workloads top out at 10 MB values) with generous headroom; small enough
/// that a corrupt or hostile length prefix cannot trigger a huge allocation.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Errors produced while encoding to or decoding from the wire.
#[derive(Debug)]
pub enum WireError {
    /// The frame ended before the field being decoded.
    Truncated {
        /// Bytes the field needed.
        need: usize,
        /// Bytes remaining in the frame.
        have: usize,
    },
    /// An enum discriminant byte had no corresponding variant.
    UnknownTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending discriminant.
        tag: u8,
    },
    /// The frame decoded cleanly but bytes were left over.
    TrailingBytes {
        /// Number of undecoded bytes at the end of the frame.
        extra: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// The advertised payload length.
        len: usize,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// The underlying socket or stream failed.
    Io(io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated frame: field needs {need} bytes, {have} remain")
            }
            WireError::UnknownTag { what, tag } => {
                write!(f, "unknown discriminant {tag} while decoding {what}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete frame")
            }
            WireError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Result alias for wire operations.
pub type WireResult<T> = Result<T, WireError>;

/// Everything that travels on a transport connection, as one tagged union.
///
/// Requests flow client → server, replies flow server → client, controls flow
/// driver → server, `Shutdown` asks the receiving server process to exit cleanly, and
/// `StatsRequest`/`StatsReply` scrape a server's telemetry over the same connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A protocol request; `Inbound::from` is the reply-routing endpoint id.
    Request(Inbound),
    /// A protocol reply routed back to an endpoint.
    Reply {
        /// Endpoint (operation attempt) the reply is addressed to.
        endpoint: u64,
        /// Server data center that produced the reply.
        from: DcId,
        /// Sender-side clock reading when the reply was emitted. Clocks are not
        /// synchronized across processes, so receivers restamp on arrival; the field is
        /// carried for diagnostics only.
        sent_at_ns: u64,
        /// How long the server spent processing the request that produced this reply,
        /// in the server's clock nanoseconds. Durations (unlike instants) are
        /// meaningful across processes, so client-side spans subtract this from the
        /// observed round trip to split service time from network time.
        service_ns: u64,
        /// Echoed protocol phase.
        phase: u8,
        /// Configuration epoch the request carried (echoed back). Clients use this to
        /// discard stragglers from an epoch they have already abandoned after a
        /// reconfiguration redirect — attempt ids alone cannot distinguish "slow reply
        /// from this attempt" from "reply minted under a retired configuration".
        epoch: ConfigEpoch,
        /// Reply body.
        reply: ProtoReply,
    },
    /// An out-of-band server administration command.
    Control(ControlMsg),
    /// Asks the receiving server to shut down cleanly.
    Shutdown,
    /// Asks the receiving server for a snapshot of its telemetry; `token` is echoed in
    /// the [`Frame::StatsReply`] so concurrent scrapes can be demultiplexed.
    StatsRequest {
        /// Caller-chosen correlation token.
        token: u64,
    },
    /// A server's metrics snapshot, answering a [`Frame::StatsRequest`].
    StatsReply {
        /// Token echoed from the request.
        token: u64,
        /// Data center of the answering server.
        dc: DcId,
        /// The frozen metrics.
        snapshot: MetricsSnapshot,
    },
}

const FRAME_REQUEST: u8 = 1;
const FRAME_REPLY: u8 = 2;
const FRAME_CONTROL: u8 = 3;
const FRAME_SHUTDOWN: u8 = 4;
const FRAME_STATS_REQUEST: u8 = 5;
const FRAME_STATS_REPLY: u8 = 6;

impl Frame {
    /// Encodes the frame, including its 4-byte length prefix, into a fresh buffer.
    ///
    /// The buffer is written to a socket with a single `write_all`, which keeps concurrent
    /// senders on a shared connection frame-atomic (serialize writers externally).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Frame::Request(inbound) => {
                w.u8(FRAME_REQUEST);
                put_inbound(&mut w, inbound);
            }
            Frame::Reply { endpoint, from, sent_at_ns, service_ns, phase, epoch, reply } => {
                w.u8(FRAME_REPLY);
                w.u64(*endpoint);
                w.u16(from.0);
                w.u64(*sent_at_ns);
                w.u64(*service_ns);
                w.u8(*phase);
                w.u64(epoch.0);
                put_reply(&mut w, reply);
            }
            Frame::Control(ctrl) => {
                w.u8(FRAME_CONTROL);
                put_control(&mut w, ctrl);
            }
            Frame::Shutdown => w.u8(FRAME_SHUTDOWN),
            Frame::StatsRequest { token } => {
                w.u8(FRAME_STATS_REQUEST);
                w.u64(*token);
            }
            Frame::StatsReply { token, dc, snapshot } => {
                w.u8(FRAME_STATS_REPLY);
                w.u64(*token);
                w.u16(dc.0);
                put_snapshot(&mut w, snapshot);
            }
        }
        w.into_framed()
    }

    /// Decodes one frame from its payload bytes (the length prefix already stripped).
    ///
    /// Every `Bytes` payload in the result is a zero-copy window into `payload`.
    pub fn decode(payload: Bytes) -> WireResult<Frame> {
        let mut r = Reader::new(payload);
        let frame = match r.u8()? {
            FRAME_REQUEST => Frame::Request(get_inbound(&mut r)?),
            FRAME_REPLY => Frame::Reply {
                endpoint: r.u64()?,
                from: DcId(r.u16()?),
                sent_at_ns: r.u64()?,
                service_ns: r.u64()?,
                phase: r.u8()?,
                epoch: ConfigEpoch(r.u64()?),
                reply: get_reply(&mut r)?,
            },
            FRAME_CONTROL => Frame::Control(get_control(&mut r)?),
            FRAME_SHUTDOWN => Frame::Shutdown,
            FRAME_STATS_REQUEST => Frame::StatsRequest { token: r.u64()? },
            FRAME_STATS_REPLY => Frame::StatsReply {
                token: r.u64()?,
                dc: DcId(r.u16()?),
                snapshot: get_snapshot(&mut r)?,
            },
            tag => return Err(WireError::UnknownTag { what: "Frame", tag }),
        };
        r.finish()?;
        Ok(frame)
    }

    /// Reads one length-prefixed frame from a stream.
    ///
    /// Returns `Ok(None)` on a clean end-of-stream (EOF at a frame boundary), which is how
    /// an orderly connection close appears to readers.
    pub fn read_from(stream: &mut impl Read) -> WireResult<Option<Frame>> {
        Ok(Frame::read_from_counted(stream)?.map(|(frame, _)| frame))
    }

    /// Like [`Frame::read_from`], additionally returning the frame's full size on the
    /// wire (length prefix included) — transports use it to meter bytes received
    /// without re-encoding the frame.
    pub fn read_from_counted(stream: &mut impl Read) -> WireResult<Option<(Frame, u64)>> {
        let mut len_buf = [0u8; 4];
        // A clean close may surface as EOF on the first header byte.
        match stream.read(&mut len_buf[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                return Frame::read_from_counted(stream);
            }
            Err(e) => return Err(WireError::Io(e)),
        }
        stream.read_exact(&mut len_buf[1..])?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge { len });
        }
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload)?;
        Frame::decode(Bytes::from(payload)).map(|f| Some((f, 4 + len as u64)))
    }

    /// Encodes the frame and writes it to a stream with a single `write_all`.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        stream.write_all(&self.encode())
    }
}

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

struct Writer {
    // The first four bytes are reserved for the length prefix.
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: vec![0u8; 4] }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Backfills the length prefix and returns the finished frame.
    fn into_framed(mut self) -> Vec<u8> {
        let len = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&len.to_le_bytes());
        self.buf
    }
}

struct Reader {
    frame: Bytes,
    pos: usize,
}

impl Reader {
    fn new(frame: Bytes) -> Self {
        Reader { frame, pos: 0 }
    }

    fn take(&mut self, n: usize) -> WireResult<&[u8]> {
        let have = self.frame.len() - self.pos;
        if n > have {
            return Err(WireError::Truncated { need: n, have });
        }
        let out = &self.frame[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn usize(&mut self) -> WireResult<usize> {
        Ok(self.u64()? as usize)
    }

    fn bool(&mut self) -> WireResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag { what: "bool", tag }),
        }
    }

    /// Zero-copy: the returned `Bytes` is a window into the frame buffer.
    fn bytes(&mut self) -> WireResult<Bytes> {
        let n = self.u32()? as usize;
        let have = self.frame.len() - self.pos;
        if n > have {
            return Err(WireError::Truncated { need: n, have });
        }
        let out = self.frame.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(out)
    }

    fn string(&mut self) -> WireResult<String> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn finish(self) -> WireResult<()> {
        let extra = self.frame.len() - self.pos;
        if extra != 0 {
            return Err(WireError::TrailingBytes { extra });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Domain types
// ---------------------------------------------------------------------------

fn put_tag(w: &mut Writer, tag: Tag) {
    w.u64(tag.seq);
    w.u32(tag.client.0);
}

fn get_tag(r: &mut Reader) -> WireResult<Tag> {
    Ok(Tag::new(r.u64()?, ClientId(r.u32()?)))
}

fn put_key(w: &mut Writer, key: &Key) {
    w.str(key.as_str());
}

fn get_key(r: &mut Reader) -> WireResult<Key> {
    Ok(Key::new(r.string()?))
}

fn put_config(w: &mut Writer, c: &Configuration) {
    w.u8(match c.protocol {
        ProtocolKind::Abd => 0,
        ProtocolKind::Cas => 1,
    });
    w.usize(c.n);
    w.usize(c.k);
    let [q1, q2, q3, q4] = c.quorums.sizes();
    w.usize(q1);
    w.usize(q2);
    w.usize(q3);
    w.usize(q4);
    w.usize(c.dcs.len());
    for dc in &c.dcs {
        w.u16(dc.0);
    }
    w.usize(c.f);
    w.u64(c.epoch.0);
    w.usize(c.preferred_quorums.len());
    for (client, quorums) in &c.preferred_quorums {
        w.u16(client.0);
        w.usize(quorums.len());
        for quorum in quorums {
            w.usize(quorum.len());
            for dc in quorum {
                w.u16(dc.0);
            }
        }
    }
}

fn get_config(r: &mut Reader) -> WireResult<Configuration> {
    let protocol = match r.u8()? {
        0 => ProtocolKind::Abd,
        1 => ProtocolKind::Cas,
        tag => return Err(WireError::UnknownTag { what: "ProtocolKind", tag }),
    };
    let n = r.usize()?;
    let k = r.usize()?;
    let (q1, q2, q3, q4) = (r.usize()?, r.usize()?, r.usize()?, r.usize()?);
    let quorums = QuorumSpec::cas(q1, q2, q3, q4);
    let dc_count = r.usize()?;
    let mut dcs = Vec::with_capacity(dc_count.min(1024));
    for _ in 0..dc_count {
        dcs.push(DcId(r.u16()?));
    }
    let f = r.usize()?;
    let epoch = ConfigEpoch(r.u64()?);
    let pref_count = r.usize()?;
    let mut preferred_quorums = BTreeMap::new();
    for _ in 0..pref_count {
        let client = DcId(r.u16()?);
        let list_count = r.usize()?;
        let mut lists = Vec::with_capacity(list_count.min(1024));
        for _ in 0..list_count {
            let member_count = r.usize()?;
            let mut members = Vec::with_capacity(member_count.min(1024));
            for _ in 0..member_count {
                members.push(DcId(r.u16()?));
            }
            lists.push(members);
        }
        preferred_quorums.insert(client, lists);
    }
    Ok(Configuration { protocol, n, k, quorums, dcs, f, epoch, preferred_quorums })
}

fn put_error(w: &mut Writer, e: &StoreError) {
    match e {
        StoreError::KeyAlreadyExists(key) => {
            w.u8(0);
            put_key(w, key);
        }
        StoreError::KeyNotFound(key) => {
            w.u8(1);
            put_key(w, key);
        }
        StoreError::QuorumTimeout { needed, received } => {
            w.u8(2);
            w.usize(*needed);
            w.usize(*received);
        }
        StoreError::QuorumUnreachable { attempts, last } => {
            w.u8(3);
            w.u32(*attempts);
            put_error(w, last);
        }
        StoreError::TooManyFailures { failed, tolerated } => {
            w.u8(4);
            w.usize(*failed);
            w.usize(*tolerated);
        }
        StoreError::StaleConfiguration { observed, current } => {
            w.u8(5);
            w.u64(observed.0);
            w.u64(current.0);
        }
        StoreError::OperationFailedByReconfig { new_epoch } => {
            w.u8(6);
            w.u64(new_epoch.0);
        }
        StoreError::InvalidConfiguration(msg) => {
            w.u8(7);
            w.str(msg);
        }
        StoreError::DecodeFailed { have, need } => {
            w.u8(8);
            w.usize(*have);
            w.usize(*need);
        }
        StoreError::NotAHost { dc, key } => {
            w.u8(9);
            w.u16(dc.0);
            put_key(w, key);
        }
        StoreError::MetadataUnavailable(key) => {
            w.u8(10);
            put_key(w, key);
        }
        StoreError::Transport(msg) => {
            w.u8(11);
            w.str(msg);
        }
        StoreError::Internal(msg) => {
            w.u8(12);
            w.str(msg);
        }
        StoreError::ReconfigStalled { epoch, round } => {
            w.u8(13);
            w.u64(epoch.0);
            w.u8(*round);
        }
    }
}

fn get_error(r: &mut Reader) -> WireResult<StoreError> {
    Ok(match r.u8()? {
        0 => StoreError::KeyAlreadyExists(get_key(r)?),
        1 => StoreError::KeyNotFound(get_key(r)?),
        2 => StoreError::QuorumTimeout { needed: r.usize()?, received: r.usize()? },
        3 => StoreError::QuorumUnreachable {
            attempts: r.u32()?,
            last: Box::new(get_error(r)?),
        },
        4 => StoreError::TooManyFailures { failed: r.usize()?, tolerated: r.usize()? },
        5 => StoreError::StaleConfiguration {
            observed: ConfigEpoch(r.u64()?),
            current: ConfigEpoch(r.u64()?),
        },
        6 => StoreError::OperationFailedByReconfig { new_epoch: ConfigEpoch(r.u64()?) },
        7 => StoreError::InvalidConfiguration(r.string()?),
        8 => StoreError::DecodeFailed { have: r.usize()?, need: r.usize()? },
        9 => StoreError::NotAHost { dc: DcId(r.u16()?), key: get_key(r)? },
        10 => StoreError::MetadataUnavailable(get_key(r)?),
        11 => StoreError::Transport(r.string()?),
        12 => StoreError::Internal(r.string()?),
        13 => StoreError::ReconfigStalled { epoch: ConfigEpoch(r.u64()?), round: r.u8()? },
        tag => return Err(WireError::UnknownTag { what: "StoreError", tag }),
    })
}

fn put_payload(w: &mut Writer, p: &ReconfigPayload) {
    match p {
        ReconfigPayload::Value(v) => {
            w.u8(0);
            w.bytes(v.as_bytes());
        }
        ReconfigPayload::Shard(s) => {
            w.u8(1);
            w.bytes(s);
        }
    }
}

fn get_payload(r: &mut Reader) -> WireResult<ReconfigPayload> {
    Ok(match r.u8()? {
        0 => ReconfigPayload::Value(Value::new(r.bytes()?)),
        1 => ReconfigPayload::Shard(r.bytes()?),
        tag => return Err(WireError::UnknownTag { what: "ReconfigPayload", tag }),
    })
}

fn put_msg(w: &mut Writer, m: &ProtoMsg) {
    match m {
        ProtoMsg::AbdReadQuery => w.u8(0),
        ProtoMsg::AbdWriteQuery => w.u8(1),
        ProtoMsg::AbdWrite { tag, value } => {
            w.u8(2);
            put_tag(w, *tag);
            w.bytes(value.as_bytes());
        }
        ProtoMsg::CasQuery => w.u8(3),
        ProtoMsg::CasPreWrite { tag, shard } => {
            w.u8(4);
            put_tag(w, *tag);
            w.bytes(shard);
        }
        ProtoMsg::CasFinalizeWrite { tag } => {
            w.u8(5);
            put_tag(w, *tag);
        }
        ProtoMsg::CasFinalizeRead { tag } => {
            w.u8(6);
            put_tag(w, *tag);
        }
        ProtoMsg::ReconfigQuery { new_config } => {
            w.u8(7);
            put_config(w, new_config);
        }
        ProtoMsg::ReconfigGet { tag } => {
            w.u8(8);
            put_tag(w, *tag);
        }
        ProtoMsg::ReconfigWrite { tag, data, config } => {
            w.u8(9);
            put_tag(w, *tag);
            put_payload(w, data);
            put_config(w, config);
        }
        ProtoMsg::FinishReconfig { highest_tag, new_config } => {
            w.u8(10);
            put_tag(w, *highest_tag);
            put_config(w, new_config);
        }
    }
}

fn get_msg(r: &mut Reader) -> WireResult<ProtoMsg> {
    Ok(match r.u8()? {
        0 => ProtoMsg::AbdReadQuery,
        1 => ProtoMsg::AbdWriteQuery,
        2 => ProtoMsg::AbdWrite { tag: get_tag(r)?, value: Value::new(r.bytes()?) },
        3 => ProtoMsg::CasQuery,
        4 => ProtoMsg::CasPreWrite { tag: get_tag(r)?, shard: r.bytes()? },
        5 => ProtoMsg::CasFinalizeWrite { tag: get_tag(r)? },
        6 => ProtoMsg::CasFinalizeRead { tag: get_tag(r)? },
        7 => ProtoMsg::ReconfigQuery { new_config: Box::new(get_config(r)?) },
        8 => ProtoMsg::ReconfigGet { tag: get_tag(r)? },
        9 => ProtoMsg::ReconfigWrite {
            tag: get_tag(r)?,
            data: get_payload(r)?,
            config: Box::new(get_config(r)?),
        },
        10 => ProtoMsg::FinishReconfig {
            highest_tag: get_tag(r)?,
            new_config: Box::new(get_config(r)?),
        },
        tag => return Err(WireError::UnknownTag { what: "ProtoMsg", tag }),
    })
}

fn put_reply(w: &mut Writer, reply: &ProtoReply) {
    match reply {
        ProtoReply::AbdTagValue { tag, value } => {
            w.u8(0);
            put_tag(w, *tag);
            w.bytes(value.as_bytes());
        }
        ProtoReply::TagOnly { tag } => {
            w.u8(1);
            put_tag(w, *tag);
        }
        ProtoReply::Ack => w.u8(2),
        ProtoReply::CasShard { tag, shard } => {
            w.u8(3);
            put_tag(w, *tag);
            match shard {
                None => w.bool(false),
                Some(s) => {
                    w.bool(true);
                    w.bytes(s);
                }
            }
        }
        ProtoReply::OperationFail { new_config } => {
            w.u8(4);
            put_config(w, new_config);
        }
        ProtoReply::Error(e) => {
            w.u8(5);
            put_error(w, e);
        }
    }
}

fn get_reply(r: &mut Reader) -> WireResult<ProtoReply> {
    Ok(match r.u8()? {
        0 => ProtoReply::AbdTagValue { tag: get_tag(r)?, value: Value::new(r.bytes()?) },
        1 => ProtoReply::TagOnly { tag: get_tag(r)? },
        2 => ProtoReply::Ack,
        3 => {
            let tag = get_tag(r)?;
            let shard = if r.bool()? { Some(r.bytes()?) } else { None };
            ProtoReply::CasShard { tag, shard }
        }
        4 => ProtoReply::OperationFail { new_config: Box::new(get_config(r)?) },
        5 => ProtoReply::Error(get_error(r)?),
        tag => return Err(WireError::UnknownTag { what: "ProtoReply", tag }),
    })
}

fn put_inbound(w: &mut Writer, inbound: &Inbound) {
    w.u64(inbound.from);
    w.u64(inbound.msg_id);
    w.u8(inbound.phase);
    put_key(w, &inbound.key);
    w.u64(inbound.epoch.0);
    put_msg(w, &inbound.msg);
}

fn get_inbound(r: &mut Reader) -> WireResult<Inbound> {
    Ok(Inbound {
        from: r.u64()?,
        msg_id: r.u64()?,
        phase: r.u8()?,
        key: get_key(r)?,
        epoch: ConfigEpoch(r.u64()?),
        msg: get_msg(r)?,
    })
}

fn put_snapshot(w: &mut Writer, s: &MetricsSnapshot) {
    w.u32(s.counters.len() as u32);
    for (name, v) in &s.counters {
        w.str(name);
        w.u64(*v);
    }
    w.u32(s.gauges.len() as u32);
    for (name, v) in &s.gauges {
        w.str(name);
        w.u64(*v);
    }
    w.u32(s.histograms.len() as u32);
    for (name, h) in &s.histograms {
        w.str(name);
        w.u64(h.count);
        w.u64(h.sum);
        w.u32(h.buckets.len() as u32);
        for (idx, n) in &h.buckets {
            w.u8(*idx);
            w.u64(*n);
        }
    }
}

fn get_snapshot(r: &mut Reader) -> WireResult<MetricsSnapshot> {
    let mut snapshot = MetricsSnapshot::default();
    for _ in 0..r.u32()? {
        let name = r.string()?;
        snapshot.counters.insert(name, r.u64()?);
    }
    for _ in 0..r.u32()? {
        let name = r.string()?;
        snapshot.gauges.insert(name, r.u64()?);
    }
    for _ in 0..r.u32()? {
        let name = r.string()?;
        let count = r.u64()?;
        let sum = r.u64()?;
        let bucket_count = r.u32()? as usize;
        let mut buckets = Vec::with_capacity(bucket_count.min(1024));
        for _ in 0..bucket_count {
            let idx = r.u8()?;
            buckets.push((idx, r.u64()?));
        }
        snapshot.histograms.insert(name, HistogramSnapshot { count, sum, buckets });
    }
    Ok(snapshot)
}

fn put_control(w: &mut Writer, ctrl: &ControlMsg) {
    match ctrl {
        ControlMsg::InstallKey { key, config, tag, payload } => {
            w.u8(0);
            put_key(w, key);
            put_config(w, config);
            put_tag(w, *tag);
            put_payload(w, payload);
        }
        ControlMsg::RemoveKey(key) => {
            w.u8(1);
            put_key(w, key);
        }
        ControlMsg::SetFailed(failed) => {
            w.u8(2);
            w.bool(*failed);
        }
        ControlMsg::GarbageCollect(keep) => {
            w.u8(3);
            w.usize(*keep);
        }
    }
}

fn get_control(r: &mut Reader) -> WireResult<ControlMsg> {
    Ok(match r.u8()? {
        0 => ControlMsg::InstallKey {
            key: get_key(r)?,
            config: get_config(r)?,
            tag: get_tag(r)?,
            payload: get_payload(r)?,
        },
        1 => ControlMsg::RemoveKey(get_key(r)?),
        2 => ControlMsg::SetFailed(r.bool()?),
        3 => ControlMsg::GarbageCollect(r.usize()?),
        tag => return Err(WireError::UnknownTag { what: "ControlMsg", tag }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) -> Frame {
        let encoded = frame.encode();
        let len = u32::from_le_bytes(encoded[..4].try_into().unwrap()) as usize;
        assert_eq!(len, encoded.len() - 4, "length prefix covers the payload exactly");
        let decoded = Frame::decode(Bytes::from(encoded[4..].to_vec())).expect("decodes");
        assert_eq!(decoded, frame);
        decoded
    }

    fn sample_config() -> Configuration {
        let mut c = Configuration::cas_default(
            vec![DcId(0), DcId(3), DcId(5), DcId(7), DcId(8)],
            3,
            1,
        );
        c.epoch = ConfigEpoch(9);
        c.preferred_quorums
            .insert(DcId(0), vec![vec![DcId(0), DcId(3), DcId(5)], vec![DcId(0)]]);
        c
    }

    #[test]
    fn request_roundtrip_preserves_every_field() {
        roundtrip(Frame::Request(Inbound {
            from: 0xDEAD_BEEF_0000_0001,
            msg_id: 7,
            phase: 3,
            key: Key::from("user:42"),
            epoch: ConfigEpoch(2),
            msg: ProtoMsg::AbdWrite {
                tag: Tag::new(11, ClientId(4)),
                value: Value::from("hello"),
            },
        }));
    }

    #[test]
    fn reply_roundtrip_with_nested_error() {
        roundtrip(Frame::Reply {
            endpoint: 99,
            from: DcId(6),
            sent_at_ns: 123_456_789,
            service_ns: 42_000,
            phase: 2,
            epoch: ConfigEpoch(7),
            reply: ProtoReply::Error(StoreError::QuorumUnreachable {
                attempts: 4,
                last: Box::new(StoreError::QuorumTimeout { needed: 3, received: 1 }),
            }),
        });
    }

    #[test]
    fn control_and_shutdown_roundtrip() {
        roundtrip(Frame::Control(ControlMsg::InstallKey {
            key: Key::from("k"),
            config: sample_config(),
            tag: Tag::INITIAL,
            payload: ReconfigPayload::Shard(Bytes::from(vec![9u8; 33])),
        }));
        roundtrip(Frame::Control(ControlMsg::SetFailed(true)));
        roundtrip(Frame::Control(ControlMsg::GarbageCollect(5)));
        roundtrip(Frame::Shutdown);
    }

    #[test]
    fn decoded_payloads_are_zero_copy_windows_into_the_frame() {
        let shard = Bytes::from(vec![0xABu8; 4096]);
        let frame = Frame::Request(Inbound {
            from: 1,
            msg_id: 2,
            phase: 1,
            key: Key::from("z"),
            epoch: ConfigEpoch(0),
            msg: ProtoMsg::CasPreWrite { tag: Tag::INITIAL, shard },
        });
        let encoded = frame.encode();
        let payload = Bytes::from(encoded[4..].to_vec());
        let payload_range = payload.as_ptr() as usize..payload.as_ptr() as usize + payload.len();
        let Frame::Request(inbound) = Frame::decode(payload.clone()).unwrap() else {
            panic!()
        };
        let ProtoMsg::CasPreWrite { shard, .. } = inbound.msg else { panic!() };
        let p = shard.as_ptr() as usize;
        assert!(
            payload_range.contains(&p) && payload_range.contains(&(p + shard.len() - 1)),
            "decoded shard must alias the frame buffer, not copy out of it"
        );
    }

    #[test]
    fn zero_length_and_empty_payloads_roundtrip() {
        roundtrip(Frame::Request(Inbound {
            from: 0,
            msg_id: 0,
            phase: 0,
            key: Key::from(""),
            epoch: ConfigEpoch(0),
            msg: ProtoMsg::AbdWrite { tag: Tag::INITIAL, value: Value::empty() },
        }));
        roundtrip(Frame::Reply {
            endpoint: 0,
            from: DcId(0),
            sent_at_ns: 0,
            service_ns: 0,
            phase: 0,
            epoch: ConfigEpoch(0),
            reply: ProtoReply::CasShard { tag: Tag::INITIAL, shard: Some(Bytes::new()) },
        });
    }

    #[test]
    fn stats_frames_roundtrip() {
        roundtrip(Frame::StatsRequest { token: 0xFEED_F00D });
        roundtrip(Frame::StatsReply {
            token: 7,
            dc: DcId(4),
            snapshot: MetricsSnapshot::default(),
        });
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters.insert("server.requests".into(), 12);
        snapshot.counters.insert("server.replies".into(), 12);
        snapshot.gauges.insert("server.keys".into(), 3);
        snapshot.histograms.insert(
            "server.dispatch_ns.phase1".into(),
            HistogramSnapshot { count: 5, sum: 1_234, buckets: vec![(7, 3), (8, 2)] },
        );
        roundtrip(Frame::StatsReply { token: u64::MAX, dc: DcId(8), snapshot });
    }

    #[test]
    fn stream_read_write_and_clean_eof() {
        let frames = vec![
            Frame::Request(Inbound {
                from: 5,
                msg_id: 6,
                phase: 1,
                key: Key::from("s"),
                epoch: ConfigEpoch(1),
                msg: ProtoMsg::CasQuery,
            }),
            Frame::Shutdown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            f.write_to(&mut wire).unwrap();
        }
        let mut cursor = io::Cursor::new(wire);
        for f in &frames {
            assert_eq!(&Frame::read_from(&mut cursor).unwrap().unwrap(), f);
        }
        assert!(Frame::read_from(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corrupt_input_is_rejected_not_trusted() {
        // Unknown frame kind.
        let err = Frame::decode(Bytes::from(vec![0xFFu8])).unwrap_err();
        assert!(matches!(err, WireError::UnknownTag { what: "Frame", .. }), "{err}");
        // Truncated field.
        let err = Frame::decode(Bytes::from(vec![FRAME_REPLY, 1, 2])).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err}");
        // Trailing garbage after a complete frame.
        let mut shutdown = Frame::Shutdown.encode()[4..].to_vec();
        shutdown.push(0);
        let err = Frame::decode(Bytes::from(shutdown)).unwrap_err();
        assert!(matches!(err, WireError::TrailingBytes { extra: 1 }), "{err}");
        // A hostile length prefix larger than the cap is rejected before allocating.
        let mut stream = io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        let err = Frame::read_from(&mut stream).unwrap_err();
        assert!(matches!(err, WireError::FrameTooLarge { .. }), "{err}");
        // Truncated stream mid-frame is an I/O error, not a hang or a panic.
        let mut stream = io::Cursor::new(vec![10u8, 0, 0, 0, 1, 2]);
        let err = Frame::read_from(&mut stream).unwrap_err();
        assert!(matches!(err, WireError::Io(_)), "{err}");
    }
}
