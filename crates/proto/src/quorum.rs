//! Quorum bookkeeping for the client-side protocol state machines.

use legostore_types::{Configuration, DcId};
use std::collections::BTreeSet;

/// Overrides `config`'s preferred quorums for `client` so every protocol phase targets
/// the full placement — the paper's §4.5 widening, made *sticky* for a resumed
/// operation: after one timeout, later phase transitions must not fall back to a
/// preferred quorum that may contain the unreachable DC. Quorum *sizes* are untouched;
/// only the target sets grow.
pub fn widen_preferred_quorums(config: &mut Configuration, client: DcId) {
    let all = config.dcs.clone();
    config
        .preferred_quorums
        .insert(client, vec![all.clone(), all.clone(), all.clone(), all]);
}

/// Tracks which data centers have responded in the current phase and whether the phase's
/// quorum has been reached.
#[derive(Debug, Clone, Default)]
pub struct QuorumTracker {
    needed: usize,
    responded: BTreeSet<DcId>,
}

impl QuorumTracker {
    /// Starts a tracker that needs `needed` distinct responders.
    pub fn new(needed: usize) -> Self {
        QuorumTracker {
            needed,
            responded: BTreeSet::new(),
        }
    }

    /// Records a response from `dc`. Returns `true` exactly once: when this response is the
    /// one that completes the quorum.
    pub fn record(&mut self, dc: DcId) -> bool {
        if self.reached() {
            self.responded.insert(dc);
            return false;
        }
        self.responded.insert(dc);
        self.reached()
    }

    /// True if a duplicate or new response from `dc` has already been counted.
    pub fn has_responded(&self, dc: DcId) -> bool {
        self.responded.contains(&dc)
    }

    /// True once at least `needed` distinct DCs responded.
    pub fn reached(&self) -> bool {
        self.responded.len() >= self.needed
    }

    /// Number of distinct responders so far.
    pub fn count(&self) -> usize {
        self.responded.len()
    }

    /// The quorum size this tracker waits for.
    pub fn needed(&self) -> usize {
        self.needed
    }

    /// The set of responders.
    pub fn responders(&self) -> impl Iterator<Item = DcId> + '_ {
        self.responded.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_is_reached_exactly_once() {
        let mut q = QuorumTracker::new(2);
        assert!(!q.reached());
        assert!(!q.record(DcId(0)));
        assert!(!q.record(DcId(0))); // duplicate doesn't count twice
        assert_eq!(q.count(), 1);
        assert!(q.record(DcId(1))); // completes the quorum
        assert!(q.reached());
        assert!(!q.record(DcId(2))); // extra responses don't re-trigger
        assert_eq!(q.count(), 3);
        assert_eq!(q.needed(), 2);
        assert!(q.has_responded(DcId(2)));
        assert!(!q.has_responded(DcId(5)));
    }

    #[test]
    fn zero_quorum_is_immediately_reached() {
        let q = QuorumTracker::new(0);
        assert!(q.reached());
    }

    #[test]
    fn responders_iterates_distinct_dcs() {
        let mut q = QuorumTracker::new(3);
        q.record(DcId(2));
        q.record(DcId(1));
        q.record(DcId(2));
        let r: Vec<DcId> = q.responders().collect();
        assert_eq!(r, vec![DcId(1), DcId(2)]);
    }
}
