//! The ABD (Attiya–Bar-Noy–Dolev) replication protocol — Figure 7 of the paper.
//!
//! * Server side: each data center stores one `(tag, value)` pair per key and replaces it
//!   whenever it receives a higher-tagged write ([`AbdKeyState`]).
//! * PUT ([`AbdPut`]): phase 1 queries `q1` servers for their tags; phase 2 propagates the
//!   new `(tag, value)` to `q2` servers.
//! * GET ([`AbdGet`]): phase 1 queries `q1` servers for `(tag, value)` pairs; phase 2
//!   writes the highest pair back to `q2` servers. With the *optimized GET* enhancement the
//!   read returns after phase 1 if at least `q2` of `max(q1, q2)` responses already carry
//!   the highest tag (so the write-back would be a no-op).

use crate::msg::{OpOutcome, OpProgress, Outbound, ProtoMsg, ProtoReply};
use crate::quorum::{widen_preferred_quorums, QuorumTracker};
use legostore_types::{
    ClientId, ConfigEpoch, Configuration, DcId, Key, QuorumId, StoreError, Tag, Value,
};
use std::collections::BTreeMap;

/// Per-key server state for ABD.
#[derive(Debug, Clone, PartialEq)]
pub struct AbdKeyState {
    /// Highest tag seen so far.
    pub tag: Tag,
    /// Value associated with [`Self::tag`].
    pub value: Value,
}

impl AbdKeyState {
    /// Initial state installed by CREATE or by a reconfiguration write.
    pub fn new(tag: Tag, value: Value) -> Self {
        AbdKeyState { tag, value }
    }

    /// Handles an ABD request, returning the reply.
    pub fn handle(&mut self, msg: &ProtoMsg) -> ProtoReply {
        match msg {
            ProtoMsg::AbdReadQuery => ProtoReply::AbdTagValue {
                tag: self.tag,
                value: self.value.clone(),
            },
            ProtoMsg::AbdWriteQuery => ProtoReply::TagOnly { tag: self.tag },
            ProtoMsg::AbdWrite { tag, value } => {
                if *tag > self.tag {
                    self.tag = *tag;
                    self.value = value.clone();
                }
                ProtoReply::Ack
            }
            other => ProtoReply::Error(StoreError::Internal(format!(
                "ABD server cannot handle {other:?}"
            ))),
        }
    }

    /// Bytes of storage this key consumes at the server (value only; tags are negligible).
    pub fn storage_bytes(&self) -> u64 {
        self.value.len() as u64
    }
}

/// Client-side state machine for an ABD PUT.
#[derive(Debug, Clone)]
pub struct AbdPut {
    key: Key,
    epoch: ConfigEpoch,
    config: Configuration,
    client_dc: DcId,
    client_id: ClientId,
    value: Value,
    phase: u8,
    q1: QuorumTracker,
    q2: QuorumTracker,
    max_tag: Tag,
    new_tag: Option<Tag>,
    /// Distinct servers that answered `KeyNotFound` (see `on_reply` for the quorum rule).
    not_found: QuorumTracker,
}

impl AbdPut {
    /// Creates the state machine. `client_dc` selects the optimizer-recommended quorums.
    pub fn new(
        key: Key,
        config: Configuration,
        client_dc: DcId,
        client_id: ClientId,
        value: Value,
    ) -> Self {
        let q1 = QuorumTracker::new(config.quorums.size(QuorumId::Q1));
        let q2 = QuorumTracker::new(config.quorums.size(QuorumId::Q2));
        let not_found = QuorumTracker::new(config.quorums.size(QuorumId::Q1));
        AbdPut {
            key,
            epoch: config.epoch,
            config,
            client_dc,
            client_id,
            value,
            phase: 1,
            q1,
            q2,
            max_tag: Tag::INITIAL,
            new_tag: None,
            not_found,
        }
    }

    /// Rebuilds a PUT that already chose its tag in a *previous* configuration epoch so
    /// it re-enters the new epoch at the write phase with that tag pinned.
    ///
    /// This is the cross-epoch analogue of [`AbdPut::resend_widened`]'s tag pinning, and
    /// just as much a linearizability requirement: when a reconfiguration redirects a
    /// partially-complete PUT, phase-2 writes carrying the old tag may already have taken
    /// effect at old-epoch servers and been *transferred* into the new placement. A
    /// restarted machine would re-query and install the same value under a fresh, higher
    /// tag — one logical PUT linearizing twice (readers could observe new → old → new).
    /// Resuming keeps the single linearization point: the new-epoch servers' strictly-
    /// greater write rule makes the re-sent `(tag, value)` a no-op wherever the transfer
    /// already delivered it.
    pub fn resume_write(
        key: Key,
        config: Configuration,
        client_dc: DcId,
        client_id: ClientId,
        tag: Tag,
        value: Value,
    ) -> Self {
        let mut put = AbdPut::new(key, config, client_dc, client_id, value);
        put.phase = 2;
        put.new_tag = Some(tag);
        put
    }

    /// The tag this PUT will install (available once phase 1 completes).
    pub fn chosen_tag(&self) -> Option<Tag> {
        self.new_tag
    }

    /// The 1-based protocol phase currently collecting replies (telemetry spans
    /// stamp phase boundaries with this).
    pub fn current_phase(&self) -> u8 {
        self.phase
    }

    /// `(needed, received)` of the current phase's quorum — how far the stalled phase
    /// got, for timeout diagnostics.
    pub fn pending_quorum(&self) -> (usize, usize) {
        let q = if self.phase == 1 { &self.q1 } else { &self.q2 };
        (q.needed(), q.count())
    }

    /// Messages for the first phase this machine runs: the write-query for a fresh PUT,
    /// or the pinned-tag write fan-out for a machine built by [`AbdPut::resume_write`].
    pub fn start(&self) -> Vec<Outbound> {
        if self.phase >= 2 {
            let tag = self.new_tag.expect("a resumed PUT carries its pinned tag");
            return self
                .config
                .quorum_for(self.client_dc, QuorumId::Q2)
                .iter().copied()
                .map(|to| Outbound {
                    to,
                    phase: 2,
                    key: self.key.clone(),
                    epoch: self.epoch,
                    msg: ProtoMsg::AbdWrite { tag, value: self.value.clone() },
                })
                .collect();
        }
        self.config
            .quorum_for(self.client_dc, QuorumId::Q1)
            .iter().copied()
            .map(|to| Outbound {
                to,
                phase: 1,
                key: self.key.clone(),
                epoch: self.epoch,
                msg: ProtoMsg::AbdWriteQuery,
            })
            .collect()
    }

    /// Re-sends the *current* phase's messages to every DC of the placement — the
    /// paper's §4.5 failure handling ("send the request to all other DCs participating
    /// in the configuration") for a timed-out attempt.
    ///
    /// Resuming (instead of restarting) is a linearizability requirement, not just an
    /// optimization: once phase 1 completed, phase-2 writes carrying
    /// [`AbdPut::chosen_tag`] may already have taken effect at some servers. A restarted
    /// attempt would query again and install the same value under a fresh, *higher* tag,
    /// making one logical PUT take effect at two distinct linearization points (reads
    /// could then observe new → old → new). Re-sending keeps the tag pinned, so the
    /// retried write is idempotent. Responses already counted stay counted (the quorum
    /// trackers deduplicate by DC).
    ///
    /// The widening is sticky: later phases of the resumed operation also target the
    /// full placement (a preferred quorum containing the unreachable DC would otherwise
    /// stall every subsequent phase transition until its own timeout).
    pub fn resend_widened(&mut self) -> Vec<Outbound> {
        widen_preferred_quorums(&mut self.config, self.client_dc);
        let msg = match self.phase {
            1 => ProtoMsg::AbdWriteQuery,
            _ => ProtoMsg::AbdWrite {
                tag: self.new_tag.expect("phase 2 implies a chosen tag"),
                value: self.value.clone(),
            },
        };
        let phase = self.phase;
        self.config
            .dcs
            .iter()
            .copied()
            .map(|to| Outbound {
                to,
                phase,
                key: self.key.clone(),
                epoch: self.epoch,
                msg: msg.clone(),
            })
            .collect()
    }

    /// Feeds one reply (tagged with the phase it answers) into the state machine.
    pub fn on_reply(&mut self, from: DcId, phase: u8, reply: ProtoReply) -> OpProgress {
        if let ProtoReply::OperationFail { new_config } = reply {
            return OpProgress::Done(OpOutcome::Reconfigured { new_config });
        }
        if phase != self.phase {
            return OpProgress::Pending;
        }
        match (self.phase, reply) {
            (1, ProtoReply::TagOnly { tag }) => {
                self.max_tag = self.max_tag.max(tag);
                if self.q1.record(from) {
                    let new_tag = self.max_tag.successor(self.client_id);
                    self.new_tag = Some(new_tag);
                    self.phase = 2;
                    let msgs = self
                        .config
                        .quorum_for(self.client_dc, QuorumId::Q2)
                        .iter().copied()
                        .map(|to| Outbound {
                            to,
                            phase: 2,
                            key: self.key.clone(),
                            epoch: self.epoch,
                            msg: ProtoMsg::AbdWrite {
                                tag: new_tag,
                                value: self.value.clone(),
                            },
                        })
                        .collect();
                    OpProgress::Send(msgs)
                } else {
                    OpProgress::Pending
                }
            }
            (2, ProtoReply::Ack) => {
                if self.q2.record(from) {
                    OpProgress::Done(OpOutcome::PutOk {
                        tag: self.new_tag.expect("tag chosen in phase 1"),
                    })
                } else {
                    OpProgress::Pending
                }
            }
            (_, ProtoReply::Error(e)) if matches!(e, StoreError::KeyNotFound(_)) => {
                // One key-less server must not veto an operation a quorum can still
                // serve: a new-placement DC that was crashed or partitioned during the
                // reconfiguration's write-new round answers `KeyNotFound` even though a
                // write quorum holds the transferred key. Only a *read quorum* of
                // `KeyNotFound`s — which intersects every write quorum, so no write
                // could have completed — proves the key truly does not exist; fewer
                // are treated as non-replies.
                if self.not_found.record(from) {
                    OpProgress::Done(OpOutcome::Failed(e))
                } else {
                    OpProgress::Pending
                }
            }
            _ => OpProgress::Pending,
        }
    }
}

/// Client-side state machine for an ABD GET.
#[derive(Debug, Clone)]
pub struct AbdGet {
    key: Key,
    epoch: ConfigEpoch,
    config: Configuration,
    client_dc: DcId,
    phase: u8,
    optimized: bool,
    /// Phase-1 quorum target: `q1` normally, `max(q1, q2)` when the optimized fast path is
    /// enabled.
    phase1: QuorumTracker,
    q2: QuorumTracker,
    /// Highest `(tag, value)` pair seen in phase 1.
    best: Option<(Tag, Value)>,
    /// How many phase-1 responders reported each tag (needed for the fast-path test).
    tag_counts: BTreeMap<Tag, usize>,
    /// Distinct servers that answered `KeyNotFound` (see [`AbdPut`]'s quorum rule).
    not_found: QuorumTracker,
}

impl AbdGet {
    /// Creates the state machine. When `optimized` is true the GET may complete in one
    /// phase if enough servers already store the highest tag.
    pub fn new(key: Key, config: Configuration, client_dc: DcId, optimized: bool) -> Self {
        let q1 = config.quorums.size(QuorumId::Q1);
        let q2 = config.quorums.size(QuorumId::Q2);
        let phase1_needed = if optimized { q1.max(q2) } else { q1 };
        AbdGet {
            key,
            epoch: config.epoch,
            config: config.clone(),
            client_dc,
            phase: 1,
            optimized,
            phase1: QuorumTracker::new(phase1_needed),
            q2: QuorumTracker::new(q2),
            best: None,
            tag_counts: BTreeMap::new(),
            not_found: QuorumTracker::new(q1),
        }
    }

    /// The 1-based protocol phase currently collecting replies.
    pub fn current_phase(&self) -> u8 {
        self.phase
    }

    /// `(needed, received)` of the current phase's quorum (timeout diagnostics).
    pub fn pending_quorum(&self) -> (usize, usize) {
        let q = if self.phase == 1 { &self.phase1 } else { &self.q2 };
        (q.needed(), q.count())
    }

    /// Messages for phase 1 (read-query).
    pub fn start(&self) -> Vec<Outbound> {
        let mut targets = self.config.quorum_for(self.client_dc, QuorumId::Q1).to_vec();
        if self.optimized {
            // Need max(q1, q2) responses; widen the target set with the Q2 preference.
            for &dc in self.config.quorum_for(self.client_dc, QuorumId::Q2) {
                if !targets.contains(&dc) {
                    targets.push(dc);
                }
            }
        }
        targets
            .into_iter()
            .map(|to| Outbound {
                to,
                phase: 1,
                key: self.key.clone(),
                epoch: self.epoch,
                msg: ProtoMsg::AbdReadQuery,
            })
            .collect()
    }

    /// Re-sends the current phase's messages to every DC of the placement (§4.5 timeout
    /// handling; see [`AbdPut::resend_widened`]). Reads have no double-effect hazard, but
    /// resuming preserves the responses already gathered, which matters for liveness on
    /// lossy links.
    pub fn resend_widened(&mut self) -> Vec<Outbound> {
        widen_preferred_quorums(&mut self.config, self.client_dc);
        let msg = match self.phase {
            1 => ProtoMsg::AbdReadQuery,
            _ => {
                let (tag, value) = self.best.clone().expect("phase 2 implies a best pair");
                ProtoMsg::AbdWrite { tag, value }
            }
        };
        let phase = self.phase;
        self.config
            .dcs
            .iter()
            .copied()
            .map(|to| Outbound {
                to,
                phase,
                key: self.key.clone(),
                epoch: self.epoch,
                msg: msg.clone(),
            })
            .collect()
    }

    /// Feeds one reply into the state machine.
    pub fn on_reply(&mut self, from: DcId, phase: u8, reply: ProtoReply) -> OpProgress {
        if let ProtoReply::OperationFail { new_config } = reply {
            return OpProgress::Done(OpOutcome::Reconfigured { new_config });
        }
        if phase != self.phase {
            return OpProgress::Pending;
        }
        match (self.phase, reply) {
            (1, ProtoReply::AbdTagValue { tag, value }) => {
                if self.phase1.has_responded(from) {
                    return OpProgress::Pending;
                }
                match &self.best {
                    Some((t, _)) if *t >= tag => {}
                    _ => self.best = Some((tag, value)),
                }
                *self.tag_counts.entry(tag).or_insert(0) += 1;
                if self.phase1.record(from) {
                    let (tag, value) = self.best.clone().expect("at least one response");
                    if self.optimized {
                        let max_count = self.tag_counts.get(&tag).copied().unwrap_or(0);
                        if max_count >= self.q2.needed() {
                            return OpProgress::Done(OpOutcome::GetOk {
                                tag,
                                value,
                                one_phase: true,
                            });
                        }
                    }
                    self.phase = 2;
                    let msgs = self
                        .config
                        .quorum_for(self.client_dc, QuorumId::Q2)
                        .iter().copied()
                        .map(|to| Outbound {
                            to,
                            phase: 2,
                            key: self.key.clone(),
                            epoch: self.epoch,
                            msg: ProtoMsg::AbdWrite {
                                tag,
                                value: value.clone(),
                            },
                        })
                        .collect();
                    OpProgress::Send(msgs)
                } else {
                    OpProgress::Pending
                }
            }
            (2, ProtoReply::Ack) => {
                if self.q2.record(from) {
                    let (tag, value) = self.best.clone().expect("phase 1 completed");
                    OpProgress::Done(OpOutcome::GetOk {
                        tag,
                        value,
                        one_phase: false,
                    })
                } else {
                    OpProgress::Pending
                }
            }
            (_, ProtoReply::Error(e)) if matches!(e, StoreError::KeyNotFound(_)) => {
                // Authoritative only from a read quorum; see [`AbdPut::on_reply`].
                if self.not_found.record(from) {
                    OpProgress::Done(OpOutcome::Failed(e))
                } else {
                    OpProgress::Pending
                }
            }
            _ => OpProgress::Pending,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcs(n: usize) -> Vec<DcId> {
        (0..n).map(DcId::from).collect()
    }

    fn config3() -> Configuration {
        Configuration::abd_majority(dcs(3), 1)
    }

    /// Drives a full PUT against in-memory server states, returning the outcome.
    fn run_put(
        servers: &mut BTreeMap<DcId, AbdKeyState>,
        config: &Configuration,
        client_id: u32,
        value: &str,
    ) -> OpOutcome {
        let mut put = AbdPut::new(
            Key::from("k"),
            config.clone(),
            DcId(0),
            ClientId(client_id),
            Value::from(value),
        );
        let mut inflight = put.start();
        loop {
            let out = inflight.remove(0);
            let reply = servers.get_mut(&out.to).unwrap().handle(&out.msg);
            match put.on_reply(out.to, out.phase, reply) {
                OpProgress::Pending => {}
                OpProgress::Send(more) => inflight.extend(more),
                OpProgress::Done(outcome) => return outcome,
            }
            assert!(!inflight.is_empty(), "protocol stalled");
        }
    }

    fn run_get(
        servers: &mut BTreeMap<DcId, AbdKeyState>,
        config: &Configuration,
        optimized: bool,
    ) -> OpOutcome {
        let mut get = AbdGet::new(Key::from("k"), config.clone(), DcId(0), optimized);
        let mut inflight = get.start();
        loop {
            let out = inflight.remove(0);
            let reply = servers.get_mut(&out.to).unwrap().handle(&out.msg);
            match get.on_reply(out.to, out.phase, reply) {
                OpProgress::Pending => {}
                OpProgress::Send(more) => inflight.extend(more),
                OpProgress::Done(outcome) => return outcome,
            }
            assert!(!inflight.is_empty(), "protocol stalled");
        }
    }

    fn fresh_servers(config: &Configuration) -> BTreeMap<DcId, AbdKeyState> {
        config
            .dcs
            .iter()
            .map(|d| (*d, AbdKeyState::new(Tag::INITIAL, Value::from("init"))))
            .collect()
    }

    #[test]
    fn put_then_get_round_trip() {
        let config = config3();
        let mut servers = fresh_servers(&config);
        let outcome = run_put(&mut servers, &config, 1, "v1");
        let OpOutcome::PutOk { tag } = outcome else { panic!("{outcome:?}") };
        assert_eq!(tag.seq, 1);
        let outcome = run_get(&mut servers, &config, false);
        let OpOutcome::GetOk { value, one_phase, .. } = outcome else { panic!("{outcome:?}") };
        assert_eq!(value, Value::from("v1"));
        assert!(!one_phase);
    }

    #[test]
    fn get_of_initial_value() {
        let config = config3();
        let mut servers = fresh_servers(&config);
        let OpOutcome::GetOk { tag, value, .. } = run_get(&mut servers, &config, false) else {
            panic!()
        };
        assert_eq!(tag, Tag::INITIAL);
        assert_eq!(value, Value::from("init"));
    }

    #[test]
    fn successive_puts_use_increasing_tags() {
        let config = config3();
        let mut servers = fresh_servers(&config);
        let OpOutcome::PutOk { tag: t1 } = run_put(&mut servers, &config, 1, "a") else { panic!() };
        let OpOutcome::PutOk { tag: t2 } = run_put(&mut servers, &config, 2, "b") else { panic!() };
        assert!(t2 > t1);
        let OpOutcome::GetOk { value, .. } = run_get(&mut servers, &config, false) else { panic!() };
        assert_eq!(value, Value::from("b"));
    }

    #[test]
    fn optimized_get_completes_in_one_phase_when_replicas_agree() {
        let config = config3();
        let mut servers = fresh_servers(&config);
        run_put(&mut servers, &config, 1, "stable");
        let OpOutcome::GetOk { value, one_phase, .. } = run_get(&mut servers, &config, true) else {
            panic!()
        };
        assert_eq!(value, Value::from("stable"));
        assert!(one_phase, "all replicas agree, fast path must trigger");
    }

    #[test]
    fn optimized_get_falls_back_when_replicas_disagree() {
        let config = config3();
        let mut servers = fresh_servers(&config);
        // Manually install a newer version at only one server (as if a PUT is in flight).
        let newer = Tag::new(5, ClientId(9));
        servers
            .get_mut(&DcId(1))
            .unwrap()
            .handle(&ProtoMsg::AbdWrite { tag: newer, value: Value::from("new") });
        let OpOutcome::GetOk { tag, value, one_phase } = run_get(&mut servers, &config, true) else {
            panic!()
        };
        // The read must return the newer value (it saw it) and must have written it back.
        assert_eq!(tag, newer);
        assert_eq!(value, Value::from("new"));
        assert!(!one_phase, "disagreement forces the write-back phase");
        // Write-back propagated the newer version to a quorum.
        let holders = servers.values().filter(|s| s.tag == newer).count();
        assert!(holders >= 2);
    }

    #[test]
    fn stale_write_does_not_overwrite_newer_value() {
        let mut s = AbdKeyState::new(Tag::new(5, ClientId(1)), Value::from("new"));
        let reply = s.handle(&ProtoMsg::AbdWrite { tag: Tag::new(3, ClientId(2)), value: Value::from("old") });
        assert_eq!(reply, ProtoReply::Ack);
        assert_eq!(s.value, Value::from("new"));
        assert_eq!(s.tag, Tag::new(5, ClientId(1)));
    }

    #[test]
    fn server_rejects_cas_messages() {
        let mut s = AbdKeyState::new(Tag::INITIAL, Value::empty());
        let reply = s.handle(&ProtoMsg::CasQuery);
        assert!(matches!(reply, ProtoReply::Error(StoreError::Internal(_))));
    }

    #[test]
    fn put_ignores_replies_from_previous_phase() {
        let config = config3();
        let mut put = AbdPut::new(Key::from("k"), config.clone(), DcId(0), ClientId(1), Value::from("x"));
        let start = put.start();
        assert_eq!(start.len(), 2); // q1 = 2 for N=3 majority
        // First phase-1 reply: still pending.
        assert_eq!(
            put.on_reply(DcId(0), 1, ProtoReply::TagOnly { tag: Tag::INITIAL }),
            OpProgress::Pending
        );
        // Second phase-1 reply: transition to phase 2.
        let OpProgress::Send(p2) = put.on_reply(DcId(1), 1, ProtoReply::TagOnly { tag: Tag::INITIAL }) else {
            panic!()
        };
        assert_eq!(p2.len(), 2);
        assert!(p2.iter().all(|o| o.phase == 2));
        // A straggler phase-1 reply must be ignored.
        assert_eq!(
            put.on_reply(DcId(2), 1, ProtoReply::TagOnly { tag: Tag::new(9, ClientId(7)) }),
            OpProgress::Pending
        );
        // Phase-2 acks complete the operation.
        assert_eq!(put.on_reply(DcId(0), 2, ProtoReply::Ack), OpProgress::Pending);
        let OpProgress::Done(OpOutcome::PutOk { tag }) = put.on_reply(DcId(1), 2, ProtoReply::Ack) else {
            panic!()
        };
        assert_eq!(tag.seq, 1);
        assert_eq!(put.chosen_tag(), Some(tag));
    }

    #[test]
    fn put_resend_pins_the_chosen_tag_and_widens_to_all_dcs() {
        let config = config3();
        let mut put = AbdPut::new(Key::from("k"), config, DcId(0), ClientId(1), Value::from("x"));
        // Before phase 1 completes, a resend re-queries (no tag exists to pin).
        let msgs = put.resend_widened();
        assert_eq!(msgs.len(), 3, "widened to the full placement");
        assert!(msgs.iter().all(|m| matches!(m.msg, ProtoMsg::AbdWriteQuery)));
        // Complete phase 1; the tag is now chosen.
        put.on_reply(DcId(0), 1, ProtoReply::TagOnly { tag: Tag::INITIAL });
        let OpProgress::Send(_) = put.on_reply(DcId(1), 1, ProtoReply::TagOnly { tag: Tag::INITIAL })
        else {
            panic!()
        };
        let tag = put.chosen_tag().expect("phase 1 done");
        // A timed-out attempt resumes: same tag, same value, all DCs. A fresh state
        // machine would pick a higher tag here — the double-effect bug the
        // linearizability-under-faults suite caught.
        let msgs = put.resend_widened();
        assert_eq!(msgs.len(), 3);
        for m in &msgs {
            assert_eq!(m.phase, 2);
            let ProtoMsg::AbdWrite { tag: t, value } = &m.msg else { panic!("{m:?}") };
            assert_eq!(*t, tag);
            assert_eq!(value, &Value::from("x"));
        }
        // Acks gathered before and after the resend combine into one quorum.
        assert_eq!(put.on_reply(DcId(2), 2, ProtoReply::Ack), OpProgress::Pending);
        let OpProgress::Done(OpOutcome::PutOk { tag: done }) =
            put.on_reply(DcId(0), 2, ProtoReply::Ack)
        else {
            panic!()
        };
        assert_eq!(done, tag);
    }

    #[test]
    fn resumed_put_starts_at_the_write_phase_with_the_pinned_tag() {
        let config = config3();
        let pinned = Tag::new(4, ClientId(6));
        let mut put = AbdPut::resume_write(
            Key::from("k"),
            config.clone(),
            DcId(0),
            ClientId(6),
            pinned,
            Value::from("moved"),
        );
        // No query round: the machine opens directly with the pinned write.
        let msgs = put.start();
        assert!(!msgs.is_empty());
        for m in &msgs {
            assert_eq!(m.phase, 2);
            let ProtoMsg::AbdWrite { tag, value } = &m.msg else { panic!("{m:?}") };
            assert_eq!(*tag, pinned);
            assert_eq!(value, &Value::from("moved"));
        }
        // Replaying the pinned write at a server that already received it via the
        // reconfiguration transfer is a no-op Ack — no second linearization point.
        let mut transferred = AbdKeyState::new(pinned, Value::from("moved"));
        assert_eq!(transferred.handle(&msgs[0].msg), ProtoReply::Ack);
        assert_eq!(transferred.tag, pinned);
        // Acks complete the PUT under the original tag.
        assert_eq!(put.on_reply(DcId(0), 2, ProtoReply::Ack), OpProgress::Pending);
        let OpProgress::Done(OpOutcome::PutOk { tag }) = put.on_reply(DcId(1), 2, ProtoReply::Ack)
        else {
            panic!()
        };
        assert_eq!(tag, pinned);
    }

    #[test]
    fn put_chooses_tag_above_max_observed() {
        let config = config3();
        let mut put = AbdPut::new(Key::from("k"), config, DcId(0), ClientId(3), Value::from("x"));
        put.start();
        put.on_reply(DcId(0), 1, ProtoReply::TagOnly { tag: Tag::new(7, ClientId(2)) });
        let OpProgress::Send(_) = put.on_reply(DcId(1), 1, ProtoReply::TagOnly { tag: Tag::new(4, ClientId(1)) }) else {
            panic!()
        };
        assert_eq!(put.chosen_tag(), Some(Tag::new(8, ClientId(3))));
    }

    #[test]
    fn operation_fail_aborts_with_new_config() {
        let config = config3();
        let mut new_config = config.clone();
        new_config.epoch = new_config.epoch.next();
        let mut put = AbdPut::new(Key::from("k"), config.clone(), DcId(0), ClientId(1), Value::from("x"));
        put.start();
        let progress = put.on_reply(
            DcId(0),
            1,
            ProtoReply::OperationFail { new_config: Box::new(new_config.clone()) },
        );
        let OpProgress::Done(OpOutcome::Reconfigured { new_config: got }) = progress else {
            panic!("{progress:?}")
        };
        assert_eq!(got.epoch, new_config.epoch);
    }

    #[test]
    fn get_duplicate_phase1_replies_do_not_count_twice() {
        let config = config3();
        let mut get = AbdGet::new(Key::from("k"), config, DcId(0), false);
        get.start();
        let r = ProtoReply::AbdTagValue { tag: Tag::INITIAL, value: Value::from("v") };
        assert_eq!(get.on_reply(DcId(0), 1, r.clone()), OpProgress::Pending);
        assert_eq!(get.on_reply(DcId(0), 1, r.clone()), OpProgress::Pending);
        // Only a second *distinct* responder completes the quorum.
        assert!(matches!(get.on_reply(DcId(1), 1, r), OpProgress::Send(_)));
    }

    #[test]
    fn key_not_found_fails_only_once_a_read_quorum_agrees() {
        let config = config3();
        let mut get = AbdGet::new(Key::from("k"), config, DcId(0), false);
        get.start();
        let nf = ProtoReply::Error(StoreError::KeyNotFound(Key::from("k")));
        // A single key-less server (e.g. a new-placement DC that missed the transfer's
        // write round) is a non-reply, not a veto.
        assert_eq!(get.on_reply(DcId(0), 1, nf.clone()), OpProgress::Pending);
        // The same server repeating itself still is not a quorum.
        assert_eq!(get.on_reply(DcId(0), 1, nf.clone()), OpProgress::Pending);
        // A read quorum (2 of 3) agreeing the key is absent is authoritative.
        let progress = get.on_reply(DcId(1), 1, nf);
        assert!(matches!(progress, OpProgress::Done(OpOutcome::Failed(_))));
    }
}
