//! Transport-agnostic implementations of LEGOStore's consistency protocols.
//!
//! This crate contains the protocol logic of the paper, factored as pure state machines so
//! that the same code runs on the deterministic discrete-event simulator
//! (`legostore-sim`), on the threaded in-process deployment (`legostore-core`), and in unit
//! tests that drive message exchanges by hand:
//!
//! * [`abd`] — the Attiya–Bar-Noy–Dolev replication protocol (Figure 7 of the paper):
//!   2-phase PUT, 2-phase GET, and the one-phase "optimized GET" fast path.
//! * [`cas`] — Coded Atomic Storage (Figures 8–9): 3-phase PUT, 2-phase GET over
//!   Reed–Solomon codeword symbols, optimized GET through a client-side cache, and server
//!   garbage collection (Appendix F).
//! * [`reconfig`] — the reconfiguration protocol (Algorithms 1–2, Appendix D): controller,
//!   server-side blocking/fail-over behaviour and client retry handling.
//! * [`server`] — the per-data-center server that hosts per-key, per-epoch protocol state
//!   and dispatches the messages defined in [`msg`].
//! * [`quorum`] — quorum bookkeeping shared by the client-side state machines.
//! * [`wire`] — the length-prefixed binary codec that puts every message of [`msg`] on a
//!   real socket (used by the TCP transport and the `legostore-server` binary).
//!
//! The state machines never perform I/O: clients emit [`msg::Outbound`] messages and consume
//! replies via `on_reply`, servers map one inbound message to zero or more replies. The
//! hosting runtime is responsible for delivery, timeouts and retries.

#![warn(missing_docs)]

pub mod abd;
pub mod cas;
pub mod msg;
pub mod quorum;
pub mod reconfig;
pub mod server;
pub mod wire;

pub use abd::{AbdGet, AbdPut};
pub use cas::{CasGet, CasPut};
pub use msg::{OpOutcome, OpProgress, Outbound, ProtoMsg, ProtoReply};
pub use reconfig::{ReconfigController, ReconfigOutcome};
pub use server::{ControlMsg, DcServer, KeyServerState};
pub use wire::{Frame, WireError};
