//! Wire-format pinning tests.
//!
//! Two layers of protection for the TCP wire format, mirroring the erasure codec's golden
//! fingerprints:
//!
//! 1. **Golden FNV-1a fingerprints** over the encoded bytes of a catalog covering every
//!    `ProtoMsg`, `ProtoReply`, `ControlMsg` and `StoreError` variant (plus zero-length and
//!    frame-cap-sized `Bytes` payloads). Any byte-level change to the encoding fails here
//!    and must be made deliberately — it is a wire-format break between mixed-version
//!    processes.
//! 2. **Seeded round-trip property tests**: pseudo-random frames drawn from the full
//!    message space must decode back to exactly the value that was encoded.

use bytes::Bytes;
use legostore_proto::msg::{ProtoMsg, ProtoReply, ReconfigPayload};
use legostore_proto::server::{ControlMsg, Inbound};
use legostore_proto::wire::{Frame, WireError, MAX_FRAME_BYTES};
use legostore_obs::{HistogramSnapshot, MetricsSnapshot};
use legostore_types::{
    ClientId, ConfigEpoch, Configuration, DcId, Key, StoreError, Tag, Value,
};
use proptest::prelude::*;

/// FNV-1a 64 over the full encoded frame (length prefix included), matching
/// `legostore_lincheck::recorder::fingerprint`.
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn filler(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + 7) % 256) as u8).collect()
}

fn sample_config() -> Configuration {
    let mut c = Configuration::cas_default(vec![DcId(0), DcId(3), DcId(5), DcId(7), DcId(8)], 3, 1);
    c.epoch = ConfigEpoch(9);
    c.preferred_quorums
        .insert(DcId(0), vec![vec![DcId(0), DcId(3), DcId(5)], vec![DcId(0), DcId(7)]]);
    c.preferred_quorums.insert(DcId(7), vec![vec![DcId(7), DcId(8), DcId(0)]]);
    c
}

fn abd_config() -> Configuration {
    let mut c = Configuration::abd_majority(vec![DcId(1), DcId(2), DcId(4)], 1);
    c.epoch = ConfigEpoch(3);
    c
}

fn request(msg: ProtoMsg) -> Frame {
    Frame::Request(Inbound {
        from: 0x1122_3344_5566_7788,
        msg_id: 42,
        phase: 2,
        key: Key::from("user:42"),
        epoch: ConfigEpoch(7),
        msg,
    })
}

fn reply(body: ProtoReply) -> Frame {
    Frame::Reply {
        endpoint: 0x8877_6655_4433_2211,
        from: DcId(5),
        sent_at_ns: 987_654_321,
        service_ns: 55_000,
        phase: 3,
        epoch: ConfigEpoch(7),
        reply: body,
    }
}

fn sample_snapshot() -> MetricsSnapshot {
    let mut s = MetricsSnapshot::default();
    s.counters.insert("server.requests".into(), 12);
    s.counters.insert("server.replies".into(), 12);
    s.gauges.insert("server.keys".into(), 3);
    s.histograms.insert(
        "server.dispatch_ns.phase1".into(),
        HistogramSnapshot { count: 5, sum: 1_234, buckets: vec![(7, 3), (8, 2)] },
    );
    s
}

/// One frame per variant of every wire enum, with fixed field values. Order matters: the
/// golden table below is index-aligned with this catalog.
fn catalog() -> Vec<(&'static str, Frame)> {
    let tag = Tag::new(11, ClientId(4));
    vec![
        ("req/AbdReadQuery", request(ProtoMsg::AbdReadQuery)),
        ("req/AbdWriteQuery", request(ProtoMsg::AbdWriteQuery)),
        (
            "req/AbdWrite",
            request(ProtoMsg::AbdWrite { tag, value: Value::new(filler(317)) }),
        ),
        ("req/AbdWrite/empty", request(ProtoMsg::AbdWrite { tag, value: Value::empty() })),
        ("req/CasQuery", request(ProtoMsg::CasQuery)),
        (
            "req/CasPreWrite",
            request(ProtoMsg::CasPreWrite { tag, shard: Bytes::from(filler(129)) }),
        ),
        (
            "req/CasPreWrite/empty",
            request(ProtoMsg::CasPreWrite { tag, shard: Bytes::new() }),
        ),
        ("req/CasFinalizeWrite", request(ProtoMsg::CasFinalizeWrite { tag })),
        ("req/CasFinalizeRead", request(ProtoMsg::CasFinalizeRead { tag })),
        (
            "req/ReconfigQuery",
            request(ProtoMsg::ReconfigQuery { new_config: Box::new(sample_config()) }),
        ),
        ("req/ReconfigGet", request(ProtoMsg::ReconfigGet { tag })),
        (
            "req/ReconfigWrite/value",
            request(ProtoMsg::ReconfigWrite {
                tag,
                data: ReconfigPayload::Value(Value::new(filler(64))),
                config: Box::new(abd_config()),
            }),
        ),
        (
            "req/ReconfigWrite/shard",
            request(ProtoMsg::ReconfigWrite {
                tag,
                data: ReconfigPayload::Shard(Bytes::from(filler(48))),
                config: Box::new(sample_config()),
            }),
        ),
        (
            "req/FinishReconfig",
            request(ProtoMsg::FinishReconfig {
                highest_tag: tag,
                new_config: Box::new(sample_config()),
            }),
        ),
        (
            "rep/AbdTagValue",
            reply(ProtoReply::AbdTagValue { tag, value: Value::new(filler(317)) }),
        ),
        ("rep/TagOnly", reply(ProtoReply::TagOnly { tag })),
        ("rep/Ack", reply(ProtoReply::Ack)),
        (
            "rep/CasShard/some",
            reply(ProtoReply::CasShard { tag, shard: Some(Bytes::from(filler(129))) }),
        ),
        (
            "rep/CasShard/empty",
            reply(ProtoReply::CasShard { tag, shard: Some(Bytes::new()) }),
        ),
        ("rep/CasShard/none", reply(ProtoReply::CasShard { tag, shard: None })),
        (
            "rep/OperationFail",
            reply(ProtoReply::OperationFail { new_config: Box::new(sample_config()) }),
        ),
        (
            "rep/Error/KeyAlreadyExists",
            reply(ProtoReply::Error(StoreError::KeyAlreadyExists(Key::from("k")))),
        ),
        (
            "rep/Error/KeyNotFound",
            reply(ProtoReply::Error(StoreError::KeyNotFound(Key::from("k")))),
        ),
        (
            "rep/Error/QuorumTimeout",
            reply(ProtoReply::Error(StoreError::QuorumTimeout { needed: 3, received: 1 })),
        ),
        (
            "rep/Error/QuorumUnreachable",
            reply(ProtoReply::Error(StoreError::QuorumUnreachable {
                attempts: 4,
                last: Box::new(StoreError::QuorumTimeout { needed: 2, received: 0 }),
            })),
        ),
        (
            "rep/Error/TooManyFailures",
            reply(ProtoReply::Error(StoreError::TooManyFailures { failed: 2, tolerated: 1 })),
        ),
        (
            "rep/Error/StaleConfiguration",
            reply(ProtoReply::Error(StoreError::StaleConfiguration {
                observed: ConfigEpoch(1),
                current: ConfigEpoch(2),
            })),
        ),
        (
            "rep/Error/OperationFailedByReconfig",
            reply(ProtoReply::Error(StoreError::OperationFailedByReconfig {
                new_epoch: ConfigEpoch(5),
            })),
        ),
        (
            "rep/Error/InvalidConfiguration",
            reply(ProtoReply::Error(StoreError::InvalidConfiguration("bad".into()))),
        ),
        (
            "rep/Error/DecodeFailed",
            reply(ProtoReply::Error(StoreError::DecodeFailed { have: 1, need: 3 })),
        ),
        (
            "rep/Error/NotAHost",
            reply(ProtoReply::Error(StoreError::NotAHost { dc: DcId(6), key: Key::from("k") })),
        ),
        (
            "rep/Error/MetadataUnavailable",
            reply(ProtoReply::Error(StoreError::MetadataUnavailable(Key::from("k")))),
        ),
        (
            "rep/Error/Transport",
            reply(ProtoReply::Error(StoreError::Transport("conn reset".into()))),
        ),
        (
            "rep/Error/ReconfigStalled",
            reply(ProtoReply::Error(StoreError::ReconfigStalled {
                epoch: ConfigEpoch(6),
                round: 2,
            })),
        ),
        ("rep/Error/Internal", reply(ProtoReply::Error(StoreError::Internal("bug".into())))),
        (
            "ctl/InstallKey",
            Frame::Control(ControlMsg::InstallKey {
                key: Key::from("user:42"),
                config: sample_config(),
                tag: Tag::INITIAL,
                payload: ReconfigPayload::Shard(Bytes::from(filler(33))),
            }),
        ),
        ("ctl/RemoveKey", Frame::Control(ControlMsg::RemoveKey(Key::from("user:42")))),
        ("ctl/SetFailed", Frame::Control(ControlMsg::SetFailed(true))),
        ("ctl/GarbageCollect", Frame::Control(ControlMsg::GarbageCollect(2))),
        ("shutdown", Frame::Shutdown),
        ("stats/Request", Frame::StatsRequest { token: 0x0123_4567_89AB_CDEF }),
        (
            "stats/Reply/empty",
            Frame::StatsReply { token: 1, dc: DcId(2), snapshot: MetricsSnapshot::default() },
        ),
        (
            "stats/Reply/populated",
            Frame::StatsReply { token: 2, dc: DcId(8), snapshot: sample_snapshot() },
        ),
    ]
}

/// Golden fingerprints, index-aligned with [`catalog`]. Recorded from the first
/// implementation of the codec and regenerated (a deliberate wire-format break) when
/// replies gained `service_ns`, when the stats-scrape frames were added, and when
/// replies gained the `epoch` stamp / `ReconfigQuery` grew a full configuration for the
/// epoch-lease failover; a mismatch means the wire format changed.
#[rustfmt::skip]
const GOLDEN: &[u64] = &[
    0xf74c910f7cbfc6f7, // req/AbdReadQuery
    0xf74c900f7cbfc544, // req/AbdWriteQuery
    0x1e3298567a3aa953, // req/AbdWrite
    0x4d8d7c4494eb1562, // req/AbdWrite/empty
    0xf74c920f7cbfc8aa, // req/CasQuery
    0x160b85f428cafd5d, // req/CasPreWrite
    0x305fc59a12ffbeb4, // req/CasPreWrite/empty
    0xc5f4635b9fd6a453, // req/CasFinalizeWrite
    0xdf79a58f7c5cbc4a, // req/CasFinalizeRead
    0x56ae640a40f53f8a, // req/ReconfigQuery
    0xd5eb723faec2dc84, // req/ReconfigGet
    0x3ef02130a0f04fdf, // req/ReconfigWrite/value
    0xf822cadd652110fb, // req/ReconfigWrite/shard
    0xb7063d0110ee92ea, // req/FinishReconfig
    0x8a639c4e85609fa0, // rep/AbdTagValue
    0x006ff4757743c9c6, // rep/TagOnly
    0xbb63134d70339964, // rep/Ack
    0x0a9e29f9cd1dc841, // rep/CasShard/some
    0x991aa95626ab322c, // rep/CasShard/empty
    0x5d3c33ee7cc30f8b, // rep/CasShard/none
    0x484a22069327e15a, // rep/OperationFail
    0x9039e2bc07815109, // rep/Error/KeyAlreadyExists
    0xcd00cede142d9714, // rep/Error/KeyNotFound
    0x6d6d99202c79985c, // rep/Error/QuorumTimeout
    0x72374b7b328b1460, // rep/Error/QuorumUnreachable
    0x360bf07b5547e247, // rep/Error/TooManyFailures
    0x3af89e006812f194, // rep/Error/StaleConfiguration
    0x4fcede4b5c8628d7, // rep/Error/OperationFailedByReconfig
    0x7a50a542c5bc379c, // rep/Error/InvalidConfiguration
    0x34f6ab0e28103ca2, // rep/Error/DecodeFailed
    0xea1917b5065024b4, // rep/Error/NotAHost
    0xbbc077ed9b2c5c53, // rep/Error/MetadataUnavailable
    0xbd6bfd5f7e33b1a4, // rep/Error/Transport
    0x328182e11b914d96, // rep/Error/ReconfigStalled
    0x5a092bd911eb701e, // rep/Error/Internal
    0xa7d92f4b2918d366, // ctl/InstallKey
    0xd62b7f6cf3295d78, // ctl/RemoveKey
    0x342d4d9f036d76d2, // ctl/SetFailed
    0x4aa78613ba8593f7, // ctl/GarbageCollect
    0xd80d68aea7dc7820, // shutdown
    0x63f811af8e753eeb, // stats/Request
    0x405d125d272b9f07, // stats/Reply/empty
    0x20c02002d0444a18, // stats/Reply/populated
];

#[test]
fn golden_frame_fingerprints_unchanged() {
    let catalog = catalog();
    if std::env::var("LEGOSTORE_PRINT_GOLDENS").is_ok() {
        for (name, frame) in &catalog {
            println!("0x{:016x}, // {name}", fingerprint(&frame.encode()));
        }
        return;
    }
    assert_eq!(GOLDEN.len(), catalog.len(), "golden table out of sync with catalog");
    for (i, (name, frame)) in catalog.iter().enumerate() {
        assert_eq!(
            fingerprint(&frame.encode()),
            GOLDEN[i],
            "wire fingerprint changed for {name} — this is a wire-format break"
        );
    }
}

#[test]
fn every_catalog_frame_roundtrips() {
    for (name, frame) in catalog() {
        let encoded = frame.encode();
        let payload = Bytes::from(encoded[4..].to_vec());
        let decoded = Frame::decode(payload).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(decoded, frame, "{name}");
    }
}

#[test]
fn largest_admissible_frame_roundtrips_and_oversized_is_rejected() {
    // The biggest payload an AbdWrite request can carry while the whole frame stays at the
    // cap: everything except the value bytes is fixed-size overhead for this message.
    let empty = request(ProtoMsg::AbdWrite { tag: Tag::INITIAL, value: Value::empty() });
    let overhead = empty.encode().len() - 4;
    let max_value = MAX_FRAME_BYTES - overhead;
    let frame = request(ProtoMsg::AbdWrite {
        tag: Tag::INITIAL,
        value: Value::new(vec![0xABu8; max_value]),
    });
    let encoded = frame.encode();
    assert_eq!(encoded.len() - 4, MAX_FRAME_BYTES, "frame sits exactly at the cap");
    let mut cursor = std::io::Cursor::new(encoded);
    let decoded = Frame::read_from(&mut cursor).unwrap().unwrap();
    assert_eq!(decoded, frame);

    // One byte more and the stream reader rejects the length prefix before allocating.
    let over = request(ProtoMsg::AbdWrite {
        tag: Tag::INITIAL,
        value: Value::new(vec![0xABu8; max_value + 1]),
    });
    let mut cursor = std::io::Cursor::new(over.encode());
    let err = Frame::read_from(&mut cursor).unwrap_err();
    assert!(matches!(err, WireError::FrameTooLarge { .. }), "{err}");
}

// ---------------------------------------------------------------------------
// Seeded round-trip property tests
// ---------------------------------------------------------------------------

/// SplitMix64: deterministic pseudo-random stream from one seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bytes(&mut self, max_len: u64) -> Bytes {
        let len = self.below(max_len + 1) as usize;
        Bytes::from((0..len).map(|_| self.next() as u8).collect::<Vec<u8>>())
    }

    fn string(&mut self, max_len: u64) -> String {
        let len = self.below(max_len + 1) as usize;
        (0..len).map(|_| char::from(b'a' + (self.next() % 26) as u8)).collect()
    }

    fn tag(&mut self) -> Tag {
        Tag::new(self.next(), ClientId(self.next() as u32))
    }

    fn config(&mut self) -> Configuration {
        let n = 3 + self.below(5) as usize;
        let dcs: Vec<DcId> = (0..n).map(|i| DcId(i as u16 * 2)).collect();
        let mut c = if self.below(2) == 0 {
            Configuration::abd_majority(dcs, 1)
        } else {
            let k = 1 + self.below(n as u64 - 2) as usize;
            Configuration::cas_default(dcs, k, 1)
        };
        c.epoch = ConfigEpoch(self.below(1000));
        c
    }

    fn error(&mut self, depth: u32) -> StoreError {
        match self.below(if depth == 0 { 13 } else { 14 }) {
            0 => StoreError::KeyAlreadyExists(Key::new(self.string(12))),
            1 => StoreError::KeyNotFound(Key::new(self.string(12))),
            2 => StoreError::QuorumTimeout {
                needed: self.below(10) as usize,
                received: self.below(10) as usize,
            },
            3 => StoreError::TooManyFailures {
                failed: self.below(10) as usize,
                tolerated: self.below(10) as usize,
            },
            4 => StoreError::StaleConfiguration {
                observed: ConfigEpoch(self.next()),
                current: ConfigEpoch(self.next()),
            },
            5 => StoreError::OperationFailedByReconfig { new_epoch: ConfigEpoch(self.next()) },
            6 => StoreError::InvalidConfiguration(self.string(20)),
            7 => StoreError::DecodeFailed {
                have: self.below(10) as usize,
                need: self.below(10) as usize,
            },
            8 => StoreError::NotAHost { dc: DcId(self.next() as u16), key: Key::new(self.string(8)) },
            9 => StoreError::MetadataUnavailable(Key::new(self.string(8))),
            10 => StoreError::Transport(self.string(20)),
            11 => StoreError::Internal(self.string(20)),
            12 => StoreError::ReconfigStalled {
                epoch: ConfigEpoch(self.next()),
                round: self.next() as u8,
            },
            _ => StoreError::QuorumUnreachable {
                attempts: self.next() as u32,
                last: Box::new(self.error(depth - 1)),
            },
        }
    }

    fn msg(&mut self) -> ProtoMsg {
        match self.below(11) {
            0 => ProtoMsg::AbdReadQuery,
            1 => ProtoMsg::AbdWriteQuery,
            2 => ProtoMsg::AbdWrite { tag: self.tag(), value: Value::new(self.bytes(2048)) },
            3 => ProtoMsg::CasQuery,
            4 => ProtoMsg::CasPreWrite { tag: self.tag(), shard: self.bytes(2048) },
            5 => ProtoMsg::CasFinalizeWrite { tag: self.tag() },
            6 => ProtoMsg::CasFinalizeRead { tag: self.tag() },
            7 => ProtoMsg::ReconfigQuery { new_config: Box::new(self.config()) },
            8 => ProtoMsg::ReconfigGet { tag: self.tag() },
            9 => {
                let data = if self.below(2) == 0 {
                    ReconfigPayload::Value(Value::new(self.bytes(512)))
                } else {
                    ReconfigPayload::Shard(self.bytes(512))
                };
                ProtoMsg::ReconfigWrite { tag: self.tag(), data, config: Box::new(self.config()) }
            }
            _ => ProtoMsg::FinishReconfig {
                highest_tag: self.tag(),
                new_config: Box::new(self.config()),
            },
        }
    }

    fn reply(&mut self) -> ProtoReply {
        match self.below(6) {
            0 => ProtoReply::AbdTagValue { tag: self.tag(), value: Value::new(self.bytes(2048)) },
            1 => ProtoReply::TagOnly { tag: self.tag() },
            2 => ProtoReply::Ack,
            3 => {
                let tag = self.tag();
                let shard = (self.below(2) == 0).then(|| self.bytes(2048));
                ProtoReply::CasShard { tag, shard }
            }
            4 => ProtoReply::OperationFail { new_config: Box::new(self.config()) },
            _ => ProtoReply::Error(self.error(2)),
        }
    }

    fn control(&mut self) -> ControlMsg {
        match self.below(4) {
            0 => {
                let payload = if self.below(2) == 0 {
                    ReconfigPayload::Value(Value::new(self.bytes(512)))
                } else {
                    ReconfigPayload::Shard(self.bytes(512))
                };
                ControlMsg::InstallKey {
                    key: Key::new(self.string(16)),
                    config: self.config(),
                    tag: self.tag(),
                    payload,
                }
            }
            1 => ControlMsg::RemoveKey(Key::new(self.string(16))),
            2 => ControlMsg::SetFailed(self.below(2) == 0),
            _ => ControlMsg::GarbageCollect(self.below(100) as usize),
        }
    }

    fn frame(&mut self) -> Frame {
        match self.below(6) {
            0 => Frame::Request(Inbound {
                from: self.next(),
                msg_id: self.next(),
                phase: self.next() as u8,
                key: Key::new(self.string(16)),
                epoch: ConfigEpoch(self.below(1000)),
                msg: self.msg(),
            }),
            1 => Frame::Reply {
                endpoint: self.next(),
                from: DcId(self.next() as u16),
                sent_at_ns: self.next(),
                service_ns: self.next(),
                phase: self.next() as u8,
                epoch: ConfigEpoch(self.below(1000)),
                reply: self.reply(),
            },
            2 => Frame::Control(self.control()),
            3 => Frame::StatsRequest { token: self.next() },
            4 => Frame::StatsReply {
                token: self.next(),
                dc: DcId(self.next() as u16),
                snapshot: self.snapshot(),
            },
            _ => Frame::Shutdown,
        }
    }

    fn snapshot(&mut self) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for _ in 0..self.below(4) {
            s.counters.insert(self.string(12), self.next());
        }
        for _ in 0..self.below(3) {
            s.gauges.insert(self.string(12), self.next());
        }
        for _ in 0..self.below(3) {
            let buckets = (0..self.below(5)).map(|_| ((self.next() % 64) as u8, self.next())).collect();
            s.histograms.insert(
                self.string(12),
                HistogramSnapshot { count: self.next(), sum: self.next(), buckets },
            );
        }
        s
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary frames drawn from the full message space round-trip exactly, both through
    /// `decode` and through the stream reader.
    #[test]
    fn arbitrary_frames_roundtrip(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let mut wire = Vec::new();
        let frames: Vec<Frame> = (0..8).map(|_| rng.frame()).collect();
        for frame in &frames {
            let encoded = frame.encode();
            let decoded = Frame::decode(Bytes::from(encoded[4..].to_vec())).unwrap();
            prop_assert_eq!(&decoded, frame);
            wire.extend_from_slice(&encoded);
        }
        // The same frames back-to-back on one stream (as a socket delivers them).
        let mut cursor = std::io::Cursor::new(wire);
        for frame in &frames {
            let decoded = Frame::read_from(&mut cursor).unwrap().unwrap();
            prop_assert_eq!(&decoded, frame);
        }
        prop_assert!(Frame::read_from(&mut cursor).unwrap().is_none());
    }
}
