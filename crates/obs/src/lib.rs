//! LEGOStore's telemetry layer: lock-light metrics, per-operation phase spans, a
//! wire-exportable snapshot format, and a bounded fault flight recorder.
//!
//! The paper's §3.4 reconfiguration loop needs the request stream *observed* — arrival
//! rates, origin mix, SLO violations — and explaining benchmark numbers needs to know
//! where an operation's time goes (encode vs phase-1 quorum vs decode vs retry
//! widening). This crate provides the shared machinery; the runtime crates thread it
//! through their hot paths:
//!
//! * [`metrics`] — atomic [`Counter`]/[`Gauge`]/log₂ [`Histogram`] primitives, the
//!   name-keyed [`Registry`], and the deterministic [`MetricsSnapshot`] export.
//! * [`span`] — [`OpSpan`] timelines of one client operation and the pre-resolved
//!   [`ClientMetrics`]/[`ServerMetrics`] bundles.
//! * [`flight`] — the [`FlightRecorder`] ring dumped on `QuorumUnreachable` and on
//!   stress-suite linearizability failures.
//!
//! Design rules enforced throughout:
//!
//! * **Near-zero cost when off.** Every instrumentation site guards on
//!   [`Obs::enabled`], a single relaxed atomic load; with [`ObsConfig::Off`] nothing
//!   else runs.
//! * **Clock-agnostic, hence deterministic.** This crate never reads a clock; all
//!   timestamps are caller-supplied nanoseconds from whichever `Clock` the deployment
//!   runs under. Virtual-time runs therefore export modeled durations and identical
//!   runs snapshot byte-identically.

#![warn(missing_docs)]

pub mod flight;
pub mod metrics;
pub mod span;

pub use flight::{FlightEvent, FlightRecorder};
pub use metrics::{
    bucket_bounds, bucket_index, percentile_sorted, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use span::{ClientMetrics, OpSpan, ServerMetrics, SpanEvent, SpanEventKind, MAX_PHASES};

use legostore_types::{DcId, OpKind};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// How much telemetry a component records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ObsConfig {
    /// Record nothing; instrumentation sites reduce to one atomic load and a skip.
    #[default]
    Off,
    /// Record metrics, spans, op records and flight events.
    Metrics,
    /// Everything `Metrics` records, plus a pretty-printed timeline of every finished
    /// operation on stderr (the `LEGOSTORE_TRACE=1` debugging aid).
    Trace,
}

impl ObsConfig {
    /// Resolves the level from the environment: `LEGOSTORE_TRACE=1` selects
    /// [`ObsConfig::Trace`], otherwise `LEGOSTORE_OBS=1` selects
    /// [`ObsConfig::Metrics`], otherwise [`ObsConfig::Off`].
    pub fn from_env() -> Self {
        let on = |var: &str| std::env::var(var).is_ok_and(|v| v == "1");
        if on("LEGOSTORE_TRACE") {
            ObsConfig::Trace
        } else if on("LEGOSTORE_OBS") {
            ObsConfig::Metrics
        } else {
            ObsConfig::Off
        }
    }

    /// True unless the level is [`ObsConfig::Off`].
    pub fn is_enabled(self) -> bool {
        self != ObsConfig::Off
    }
}

/// One finished client operation, as fed to `WorkloadMonitor::ingest` — the live
/// counterpart of the monitor's synthetic `OpObservation`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Process-unique operation id (matches the span and flight-recorder entries).
    pub op_id: u64,
    /// GET or PUT.
    pub kind: OpKind,
    /// Key operated on.
    pub key: String,
    /// Data center of the issuing client.
    pub origin: DcId,
    /// Clock nanoseconds at invocation.
    pub started_ns: u64,
    /// Clock nanoseconds at completion (or terminal failure).
    pub completed_ns: u64,
    /// Size of the value written (PUT) or read (GET) in bytes.
    pub object_bytes: u64,
    /// Whether the operation succeeded.
    pub ok: bool,
}

impl OpRecord {
    /// End-to-end latency in clock nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.completed_ns.saturating_sub(self.started_ns)
    }
}

/// Most op records kept for [`Obs::drain_ops`] before the oldest are discarded.
const MAX_OP_RECORDS: usize = 65_536;

struct ObsInner {
    level: AtomicU8,
    registry: Registry,
    flight: FlightRecorder,
    ops: Mutex<VecDeque<OpRecord>>,
    next_op_id: AtomicU64,
}

/// A cheaply clonable handle to one component's telemetry state: the enablement level,
/// the metric [`Registry`], the [`FlightRecorder`], and the bounded stream of
/// [`OpRecord`]s awaiting [`Obs::drain_ops`].
///
/// A deployment typically owns one `Obs` for the client side and one per hosted DC
/// server; clones share state.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("level", &self.level()).finish()
    }
}

impl Obs {
    /// Creates a handle at `config`'s level.
    pub fn new(config: ObsConfig) -> Self {
        Obs {
            inner: Arc::new(ObsInner {
                level: AtomicU8::new(config as u8),
                registry: Registry::default(),
                flight: FlightRecorder::default(),
                ops: Mutex::new(VecDeque::new()),
                next_op_id: AtomicU64::new(1),
            }),
        }
    }

    /// A disabled handle ([`ObsConfig::Off`]).
    pub fn off() -> Self {
        Obs::new(ObsConfig::Off)
    }

    /// Current level.
    pub fn level(&self) -> ObsConfig {
        match self.inner.level.load(Ordering::Relaxed) {
            0 => ObsConfig::Off,
            1 => ObsConfig::Metrics,
            _ => ObsConfig::Trace,
        }
    }

    /// True when anything at all should be recorded — the single atomic load every
    /// instrumentation site guards on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.level.load(Ordering::Relaxed) != ObsConfig::Off as u8
    }

    /// True when finished operations should additionally print their span timeline.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.inner.level.load(Ordering::Relaxed) == ObsConfig::Trace as u8
    }

    /// The metric registry behind this handle.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The flight recorder behind this handle.
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// Allocates the next operation id.
    pub fn next_op_id(&self) -> u64 {
        self.inner.next_op_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends a finished operation to the record stream (bounded; oldest discarded).
    pub fn push_op(&self, rec: OpRecord) {
        let mut ops = self.inner.ops.lock().expect("obs op stream poisoned");
        if ops.len() == MAX_OP_RECORDS {
            ops.pop_front();
        }
        ops.push_back(rec);
    }

    /// Takes every op record accumulated since the last drain — the feed for
    /// `WorkloadMonitor::ingest`.
    pub fn drain_ops(&self) -> Vec<OpRecord> {
        self.inner.ops.lock().expect("obs op stream poisoned").drain(..).collect()
    }

    /// Freezes the registry into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_reports_disabled_with_one_load() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        assert!(!obs.trace_enabled());
        assert_eq!(obs.level(), ObsConfig::Off);
    }

    #[test]
    fn levels_round_trip() {
        assert_eq!(Obs::new(ObsConfig::Metrics).level(), ObsConfig::Metrics);
        assert!(Obs::new(ObsConfig::Metrics).enabled());
        assert!(!Obs::new(ObsConfig::Metrics).trace_enabled());
        assert!(Obs::new(ObsConfig::Trace).trace_enabled());
    }

    #[test]
    fn op_stream_is_bounded_and_drains() {
        let obs = Obs::new(ObsConfig::Metrics);
        let rec = |i: u64| OpRecord {
            op_id: i,
            kind: OpKind::Put,
            key: "k".into(),
            origin: DcId(0),
            started_ns: 0,
            completed_ns: 10,
            object_bytes: 1,
            ok: true,
        };
        obs.push_op(rec(1));
        obs.push_op(rec(2));
        let drained = obs.drain_ops();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[1].op_id, 2);
        assert_eq!(drained[0].latency_ns(), 10);
        assert!(obs.drain_ops().is_empty());
    }

    #[test]
    fn from_env_honors_trace_then_obs() {
        // Sequential set/remove inside one test: no other test in this crate reads
        // these variables.
        std::env::remove_var("LEGOSTORE_TRACE");
        std::env::remove_var("LEGOSTORE_OBS");
        assert_eq!(ObsConfig::from_env(), ObsConfig::Off);
        std::env::set_var("LEGOSTORE_OBS", "1");
        assert_eq!(ObsConfig::from_env(), ObsConfig::Metrics);
        std::env::set_var("LEGOSTORE_TRACE", "1");
        assert_eq!(ObsConfig::from_env(), ObsConfig::Trace);
        std::env::remove_var("LEGOSTORE_TRACE");
        std::env::remove_var("LEGOSTORE_OBS");
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::new(ObsConfig::Metrics);
        let clone = obs.clone();
        clone.registry().counter("shared").inc();
        assert_eq!(obs.snapshot().counter("shared"), 1);
        assert_eq!(obs.next_op_id(), 1);
        assert_eq!(clone.next_op_id(), 2);
    }
}
