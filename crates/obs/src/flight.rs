//! The fault flight recorder: a bounded ring of recent span events.
//!
//! Every span event a component records (when observability is enabled) is also pushed
//! into this ring, so that when something goes wrong — a terminal
//! `QuorumUnreachable`, a linearizability-check failure in a stress suite — the last
//! moments of protocol activity can be dumped as a timeline without having kept
//! unbounded logs. The ring holds [`FlightRecorder::DEFAULT_CAPACITY`] events and
//! overwrites the oldest.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// One entry in the flight-recorder ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Clock nanoseconds when the event happened (modeled time under a virtual clock).
    pub at_ns: u64,
    /// Operation the event belongs to (`0` for events outside any operation, e.g.
    /// transport-level fault drops).
    pub op_id: u64,
    /// Human-readable description of what happened.
    pub what: String,
}

/// Bounded ring buffer of recent [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<FlightEvent>>,
    capacity: usize,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(Self::DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Events kept before the oldest is overwritten.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { ring: Mutex::new(VecDeque::new()), capacity: capacity.max(1) }
    }

    /// Appends an event, evicting the oldest entry when the ring is full.
    pub fn record(&self, at_ns: u64, op_id: u64, what: String) {
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(FlightEvent { at_ns, op_id, what });
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all held events.
    pub fn clear(&self) {
        self.ring.lock().expect("flight ring poisoned").clear();
    }

    /// Renders the ring, oldest first, as a timeline headed by `reason`.
    pub fn dump(&self, reason: &str) -> String {
        let ring = self.ring.lock().expect("flight ring poisoned");
        let mut out = String::new();
        let _ = writeln!(out, "--- flight recorder: {reason} ({} events) ---", ring.len());
        for ev in ring.iter() {
            let _ = writeln!(out, "[{:>14} ns  op#{:<6}] {}", ev.at_ns, ev.op_id, ev.what);
        }
        out.push_str("--- end flight recorder ---\n");
        out
    }

    /// Writes [`FlightRecorder::dump`] to stderr — the automatic path taken on a
    /// terminal `QuorumUnreachable` and on stress-suite linearizability failures.
    pub fn dump_to_stderr(&self, reason: &str) {
        eprintln!("{}", self.dump(reason));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(i, i, format!("event {i}"));
        }
        assert_eq!(fr.len(), 3);
        let dump = fr.dump("test");
        assert!(!dump.contains("event 0"), "{dump}");
        assert!(!dump.contains("event 1"), "{dump}");
        assert!(dump.contains("event 2") && dump.contains("event 4"), "{dump}");
        fr.clear();
        assert!(fr.is_empty());
    }
}
