//! Lock-light metric primitives and the registry/snapshot layer.
//!
//! Hot paths touch only pre-created [`Counter`]/[`Gauge`]/[`Histogram`] handles — every
//! update is a single relaxed atomic RMW, no locks, no allocation. The registry's mutex
//! is taken only at registration time (once per metric name per component) and at
//! snapshot time, never per operation.
//!
//! All metric values are plain `u64`s; latency metrics record **clock nanoseconds** as
//! reported by whichever `Clock` the caller runs under, so virtual-time deployments
//! export modeled durations and two identical virtual runs snapshot byte-identically.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets in a [`Histogram`] — enough for the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins (or running-maximum) instantaneous measurement.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the gauge with `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (running maximum, e.g. peak queue depth).
    #[inline]
    pub fn maximize(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index a value lands in: bucket 0 covers `[0, 2)`, bucket `i ≥ 1` covers
/// `[2^i, 2^(i+1))` — i.e. the position of the value's highest set bit.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < 2 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// `[lo, hi)` bounds of bucket `index` (the last bucket is closed at `u64::MAX`).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        (0, 2)
    } else {
        let lo = 1u64 << index;
        let hi = if index >= 63 { u64::MAX } else { 1u64 << (index + 1) };
        (lo, hi)
    }
}

/// A fixed-size log₂-bucketed latency histogram.
///
/// Recording is wait-free: one relaxed add each to the count, the sum and the value's
/// bucket. Quantiles are estimated from the bucket distribution at snapshot time with
/// linear interpolation inside the target bucket (see [`HistogramSnapshot::quantile`]).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Immutable copy of the current distribution (non-empty buckets only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u8, n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen copy of a [`Histogram`]: total count, total sum, and the non-empty
/// `(bucket_index, samples)` pairs in ascending bucket order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Non-empty buckets as `(bucket_index, samples)`, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile (`q ∈ [0, 1]`) of the recorded distribution.
    ///
    /// Walks the cumulative bucket counts to the bucket containing rank `q·count`,
    /// then interpolates linearly inside that bucket's `[lo, hi)` range. Returns `0.0`
    /// for an empty histogram. With log₂ buckets the estimate is within a factor of 2
    /// of the true sample; the golden tests in `tests/histogram_goldens.rs` pin the
    /// exact arithmetic.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0.0;
        for &(idx, n) in &self.buckets {
            let n = n as f64;
            if cum + n >= target {
                let (lo, hi) = bucket_bounds(idx as usize);
                let frac = if n > 0.0 { ((target - cum) / n).clamp(0.0, 1.0) } else { 0.0 };
                return lo as f64 + frac * (hi - lo) as f64;
            }
            cum += n;
        }
        self.buckets.last().map_or(0.0, |&(idx, _)| bucket_bounds(idx as usize).1 as f64)
    }

    /// Arithmetic mean of the recorded values (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice of exact samples.
///
/// Same definition `perfbench` uses for its `*_p50_ms` fields
/// (`index = round((len - 1) · p)`), exposed here so the golden tests can pin both
/// percentile definitions side by side.
pub fn percentile_sorted(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Name-keyed home of a component's metrics.
///
/// `counter`/`gauge`/`histogram` return shared handles: the first call for a name
/// creates the metric, later calls return the same instance. Components resolve their
/// handles once at construction and never touch the registry again on hot paths.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Returns (creating if needed) the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("obs registry poisoned");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Returns (creating if needed) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("obs registry poisoned");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Returns (creating if needed) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("obs registry poisoned");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Freezes every registered metric into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// A point-in-time copy of a [`Registry`], ordered (`BTreeMap`) so renderings are
/// deterministic, with a wall-clock-free JSON export.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram distributions by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, `0` if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of gauge `name`, `0` if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if any samples were registered under it.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as JSON.
    ///
    /// Deterministic by construction: keys come out in `BTreeMap` order, floats are
    /// formatted with fixed precision, and no wall-clock field is ever included — two
    /// identical virtual-time runs serialize byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape_json(k));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape_json(k));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.3}, \
                 \"p50\": {:.3}, \"p99\": {:.3}, \"buckets\": [",
                escape_json(k),
                h.count,
                h.sum,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
            );
            for (j, (idx, n)) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}[{idx}, {n}]");
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Escapes a metric name for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(7);
        g.maximize(3);
        assert_eq!(g.get(), 7);
        g.maximize(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counter("x"), 2);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_ordered() {
        let build = || {
            let r = Registry::default();
            r.counter("b.second").add(2);
            r.counter("a.first").inc();
            r.gauge("depth").set(3);
            let h = r.histogram("lat");
            h.record(100);
            h.record(1_000);
            r.snapshot()
        };
        let one = build();
        let two = build();
        assert_eq!(one, two);
        assert_eq!(one.to_json(), two.to_json());
        let json = one.to_json();
        // BTreeMap order puts a.first before b.second.
        let a = json.find("a.first").unwrap();
        let b = json.find("b.second").unwrap();
        assert!(a < b, "{json}");
        assert!(!json.contains("unix"), "snapshots must carry no wall-clock fields");
    }

    #[test]
    fn histogram_snapshot_keeps_only_populated_buckets() {
        let h = Histogram::default();
        h.record(1);
        h.record(1);
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1_000_002);
        assert_eq!(s.buckets, vec![(0, 2), (bucket_index(1_000_000) as u8, 1)]);
    }
}
