//! Per-operation phase spans and the pre-resolved metric bundles components feed.
//!
//! A [`OpSpan`] is built up by the client while one GET/PUT runs: phase starts, replies
//! (with the server-reported service time split out of the network time), encode/decode
//! durations, timeout widenings and reconfiguration restarts. When the operation
//! finishes, [`ClientMetrics::observe_span`] folds the span into histograms/counters and
//! — under `ObsConfig::Trace` — [`OpSpan::render`] pretty-prints the timeline.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::Obs;
use legostore_types::{DcId, OpKind};
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// What happened at one instant of an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanEventKind {
    /// Erasure-encoding the value into shards took `dur_ns` (CAS PUT only).
    Encode {
        /// Encoding duration in clock nanoseconds.
        dur_ns: u64,
    },
    /// Protocol phase `phase` began fanning out to its quorum.
    PhaseStart {
        /// 1-based protocol phase (ABD has 2 phases, CAS PUT has 3).
        phase: u8,
    },
    /// A reply arrived from `from` for phase `phase`.
    Reply {
        /// The answering data center.
        from: DcId,
        /// Phase the reply belongs to.
        phase: u8,
        /// Server-side processing duration, carried in the reply frame.
        service_ns: u64,
        /// Time attributed to the network: elapsed since the phase started, minus
        /// the server's service time.
        network_ns: u64,
    },
    /// Erasure-decoding shards back into the value took `dur_ns` (CAS GET only).
    Decode {
        /// Decoding duration in clock nanoseconds.
        dur_ns: u64,
    },
    /// The attempt timed out; the current phase was re-sent to the full placement
    /// (§4.5 widening).
    TimeoutWiden {
        /// Phase that was widened.
        phase: u8,
    },
    /// The servers answered with a newer configuration; the operation restarted
    /// against it.
    ReconfigRestart,
    /// The operation completed (`ok`) or failed terminally (`!ok`).
    Finished {
        /// Whether the operation succeeded.
        ok: bool,
    },
}

impl fmt::Display for SpanEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanEventKind::Encode { dur_ns } => write!(f, "encode {:.3} ms", ms(*dur_ns)),
            SpanEventKind::PhaseStart { phase } => write!(f, "phase {phase} start"),
            SpanEventKind::Reply { from, phase, service_ns, network_ns } => write!(
                f,
                "reply from {from} phase={phase} service={:.3} ms network={:.3} ms",
                ms(*service_ns),
                ms(*network_ns)
            ),
            SpanEventKind::Decode { dur_ns } => write!(f, "decode {:.3} ms", ms(*dur_ns)),
            SpanEventKind::TimeoutWiden { phase } => {
                write!(f, "timeout; widening phase {phase} to full placement")
            }
            SpanEventKind::ReconfigRestart => write!(f, "reconfigured; restarting op"),
            SpanEventKind::Finished { ok } => {
                write!(f, "finished {}", if *ok { "ok" } else { "FAILED" })
            }
        }
    }
}

/// A timestamped [`SpanEventKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Clock nanoseconds when the event happened.
    pub at_ns: u64,
    /// What happened.
    pub kind: SpanEventKind,
}

/// The recorded timeline of one client operation.
#[derive(Debug, Clone)]
pub struct OpSpan {
    /// Process-unique operation id (also stamped on flight-recorder entries).
    pub op_id: u64,
    /// GET or PUT.
    pub kind: OpKind,
    /// Key operated on.
    pub key: String,
    /// Data center the client issuing the operation lives in.
    pub origin: DcId,
    /// Clock nanoseconds at invocation.
    pub started_ns: u64,
    /// Events in arrival order.
    pub events: Vec<SpanEvent>,
}

/// Highest protocol phase a span tracks per-phase durations for (CAS PUT uses 3; one
/// extra slot leaves headroom for reconfiguration's 4-phase shape).
pub const MAX_PHASES: usize = 4;

impl OpSpan {
    /// Starts an empty span.
    pub fn new(op_id: u64, kind: OpKind, key: &str, origin: DcId, started_ns: u64) -> Self {
        OpSpan {
            op_id,
            kind,
            key: key.to_owned(),
            origin,
            started_ns,
            events: Vec::with_capacity(12),
        }
    }

    /// Appends an event at `at_ns`.
    pub fn push(&mut self, at_ns: u64, kind: SpanEventKind) {
        self.events.push(SpanEvent { at_ns, kind });
    }

    /// Total time spent in each protocol phase, plus how often each phase started.
    ///
    /// A phase runs from its `PhaseStart` to the next `PhaseStart` (or to the last
    /// event). Retried phases accumulate: a phase that ran twice contributes both
    /// stretches to its total.
    pub fn phase_durations(&self) -> [(u64, u32); MAX_PHASES] {
        let mut totals = [(0u64, 0u32); MAX_PHASES];
        let mut open: Option<(usize, u64)> = None;
        for ev in &self.events {
            if let SpanEventKind::PhaseStart { phase } = ev.kind {
                if let Some((slot, since)) = open.take() {
                    totals[slot].0 += ev.at_ns.saturating_sub(since);
                }
                let slot = (phase as usize).clamp(1, MAX_PHASES) - 1;
                totals[slot].1 += 1;
                open = Some((slot, ev.at_ns));
            }
        }
        if let (Some((slot, since)), Some(last)) = (open, self.events.last()) {
            totals[slot].0 += last.at_ns.saturating_sub(since);
        }
        totals
    }

    /// Pretty-prints the timeline (the `LEGOSTORE_TRACE=1` output): one line per event
    /// with a millisecond offset relative to invocation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "op#{} {} key={:?} origin={} started at {} ns",
            self.op_id, self.kind, self.key, self.origin, self.started_ns
        );
        for ev in &self.events {
            let _ = writeln!(
                out,
                "  +{:>10.3} ms  {}",
                ms(ev.at_ns.saturating_sub(self.started_ns)),
                ev.kind
            );
        }
        let phases = self.phase_durations();
        let _ = write!(out, "  phase totals:");
        for (i, (total, starts)) in phases.iter().enumerate() {
            if *starts > 0 {
                let _ = write!(out, "  p{}={:.3} ms (x{})", i + 1, ms(*total), starts);
            }
        }
        out.push('\n');
        out
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Index of `kind` in the per-kind metric arrays ([GET, PUT]).
fn kind_slot(kind: OpKind) -> usize {
    match kind {
        OpKind::Get => 0,
        OpKind::Put => 1,
    }
}

/// The client-side metric bundle: handles resolved once per `StoreClient`, fed once per
/// finished operation by [`ClientMetrics::observe_span`].
#[derive(Debug, Clone)]
pub struct ClientMetrics {
    /// Completed+failed operations by kind (`client.get.ops` / `client.put.ops`).
    pub ops: [Arc<Counter>; 2],
    /// Operations that ended in a terminal error (`client.ops_failed`).
    pub ops_failed: Arc<Counter>,
    /// GETs that finished in one phase (`client.get.one_phase`).
    pub one_phase_gets: Arc<Counter>,
    /// Timeout-triggered quorum widenings (`client.retries.timeout_widen`).
    pub timeout_widens: Arc<Counter>,
    /// Restarts caused by concurrent reconfiguration (`client.retries.reconfig`).
    pub reconfig_restarts: Arc<Counter>,
    /// End-to-end latency by kind (`client.{get,put}.latency_ns`).
    pub latency: [Arc<Histogram>; 2],
    /// Per-phase time by kind (`client.{get,put}.phase{1..4}_ns`).
    pub phase: [[Arc<Histogram>; MAX_PHASES]; 2],
    /// Erasure-encode time on CAS PUTs (`client.encode_ns`).
    pub encode: Arc<Histogram>,
    /// Erasure-decode time on CAS GETs (`client.decode_ns`).
    pub decode: Arc<Histogram>,
    /// Server-reported processing time per reply (`client.reply.service_ns`).
    pub reply_service: Arc<Histogram>,
    /// Network share of each reply's round trip (`client.reply.network_ns`).
    pub reply_network: Arc<Histogram>,
}

impl ClientMetrics {
    /// Resolves all client metric handles from `obs`'s registry.
    pub fn new(obs: &Obs) -> Self {
        let r = obs.registry();
        let phase_histograms = |kind: &str| {
            std::array::from_fn(|i| r.histogram(&format!("client.{kind}.phase{}_ns", i + 1)))
        };
        ClientMetrics {
            ops: [r.counter("client.get.ops"), r.counter("client.put.ops")],
            ops_failed: r.counter("client.ops_failed"),
            one_phase_gets: r.counter("client.get.one_phase"),
            timeout_widens: r.counter("client.retries.timeout_widen"),
            reconfig_restarts: r.counter("client.retries.reconfig"),
            latency: [r.histogram("client.get.latency_ns"), r.histogram("client.put.latency_ns")],
            phase: [phase_histograms("get"), phase_histograms("put")],
            encode: r.histogram("client.encode_ns"),
            decode: r.histogram("client.decode_ns"),
            reply_service: r.histogram("client.reply.service_ns"),
            reply_network: r.histogram("client.reply.network_ns"),
        }
    }

    /// Folds a finished span into the bundle: op/latency by kind, accumulated per-phase
    /// times, encode/decode durations, per-reply service/network split, retry counters.
    pub fn observe_span(&self, span: &OpSpan, completed_ns: u64, ok: bool) {
        let slot = kind_slot(span.kind);
        self.ops[slot].inc();
        if !ok {
            self.ops_failed.inc();
        }
        self.latency[slot].record(completed_ns.saturating_sub(span.started_ns));
        for (i, (total, starts)) in span.phase_durations().iter().enumerate() {
            if *starts > 0 {
                self.phase[slot][i].record(*total);
            }
        }
        for ev in &span.events {
            match ev.kind {
                SpanEventKind::Encode { dur_ns } => self.encode.record(dur_ns),
                SpanEventKind::Decode { dur_ns } => self.decode.record(dur_ns),
                SpanEventKind::Reply { service_ns, network_ns, .. } => {
                    self.reply_service.record(service_ns);
                    self.reply_network.record(network_ns);
                }
                SpanEventKind::TimeoutWiden { .. } => self.timeout_widens.inc(),
                SpanEventKind::ReconfigRestart => self.reconfig_restarts.inc(),
                _ => {}
            }
        }
    }
}

/// The server-side metric bundle (one per `DcServer` host, whether that host is an
/// in-process thread or the standalone TCP server).
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// Request frames dispatched (`server.requests`).
    pub requests: Arc<Counter>,
    /// Reply frames produced (`server.replies`).
    pub replies: Arc<Counter>,
    /// Bytes received, wire framing included (`server.bytes_in`).
    pub bytes_in: Arc<Counter>,
    /// Bytes sent, wire framing included (`server.bytes_out`).
    pub bytes_out: Arc<Counter>,
    /// Peak depth of the dispatch queue (`server.queue_depth_max`; TCP server only —
    /// the in-process queue length is scheduling-dependent and would break virtual-time
    /// snapshot determinism).
    pub queue_depth_max: Arc<Gauge>,
    /// Keys currently hosted (`server.keys`, refreshed when stats are scraped).
    pub keys: Arc<Gauge>,
    /// Bytes of stored state (`server.storage_bytes`, refreshed when stats are scraped).
    pub storage_bytes: Arc<Gauge>,
    /// Dispatch time by protocol phase (`server.dispatch_ns.phase{0..4}`; phase 0
    /// catches control traffic outside the 1..=4 range).
    pub dispatch: [Arc<Histogram>; MAX_PHASES + 1],
    /// Requests by protocol message kind (`server.msg.<kind>`), index-aligned with the
    /// kind-name list given to [`ServerMetrics::new`].
    pub msg_kinds: Vec<Arc<Counter>>,
}

impl ServerMetrics {
    /// Resolves all server metric handles from `obs`'s registry. `msg_kind_names` is
    /// the protocol's message-kind catalog (index-aligned with the wire encoding) — it
    /// is passed in so this crate needs no dependency on the protocol crate.
    pub fn new(obs: &Obs, msg_kind_names: &[&str]) -> Self {
        let r = obs.registry();
        ServerMetrics {
            requests: r.counter("server.requests"),
            replies: r.counter("server.replies"),
            bytes_in: r.counter("server.bytes_in"),
            bytes_out: r.counter("server.bytes_out"),
            queue_depth_max: r.gauge("server.queue_depth_max"),
            keys: r.gauge("server.keys"),
            storage_bytes: r.gauge("server.storage_bytes"),
            dispatch: std::array::from_fn(|i| {
                r.histogram(&format!("server.dispatch_ns.phase{i}"))
            }),
            msg_kinds: msg_kind_names
                .iter()
                .map(|name| r.counter(&format!("server.msg.{name}")))
                .collect(),
        }
    }

    /// Records one dispatched request: its message kind, its protocol phase, how long
    /// `DcServer::handle` took, and how many reply frames it produced.
    pub fn on_request(&self, msg_kind: usize, phase: u8, dispatch_ns: u64, replies: u64) {
        self.requests.inc();
        self.replies.add(replies);
        if let Some(c) = self.msg_kinds.get(msg_kind) {
            c.inc();
        }
        let slot = if (1..=MAX_PHASES as u8).contains(&phase) { phase as usize } else { 0 };
        self.dispatch[slot].record(dispatch_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsConfig;

    #[test]
    fn phase_durations_accumulate_across_retries() {
        let mut span = OpSpan::new(1, OpKind::Put, "k", DcId(0), 0);
        span.push(0, SpanEventKind::PhaseStart { phase: 1 });
        span.push(100, SpanEventKind::PhaseStart { phase: 2 });
        span.push(150, SpanEventKind::TimeoutWiden { phase: 2 });
        span.push(150, SpanEventKind::PhaseStart { phase: 2 });
        span.push(400, SpanEventKind::Finished { ok: true });
        let phases = span.phase_durations();
        assert_eq!(phases[0], (100, 1));
        assert_eq!(phases[1], (300, 2), "both phase-2 stretches count");
        assert_eq!(phases[2], (0, 0));
    }

    #[test]
    fn observe_span_feeds_every_bundle_member() {
        let obs = Obs::new(ObsConfig::Metrics);
        let m = ClientMetrics::new(&obs);
        let mut span = OpSpan::new(7, OpKind::Get, "k", DcId(2), 1_000);
        span.push(1_000, SpanEventKind::PhaseStart { phase: 1 });
        span.push(1_500, SpanEventKind::Reply {
            from: DcId(3),
            phase: 1,
            service_ns: 100,
            network_ns: 400,
        });
        span.push(1_600, SpanEventKind::Decode { dur_ns: 50 });
        span.push(1_700, SpanEventKind::Finished { ok: true });
        m.observe_span(&span, 1_700, true);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("client.get.ops"), 1);
        assert_eq!(snap.counter("client.ops_failed"), 0);
        assert_eq!(snap.histogram("client.get.latency_ns").unwrap().sum, 700);
        assert_eq!(snap.histogram("client.get.phase1_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("client.reply.service_ns").unwrap().sum, 100);
        assert_eq!(snap.histogram("client.reply.network_ns").unwrap().sum, 400);
        assert_eq!(snap.histogram("client.decode_ns").unwrap().sum, 50);
    }

    #[test]
    fn render_is_one_line_per_event_plus_totals() {
        let mut span = OpSpan::new(9, OpKind::Put, "key", DcId(1), 0);
        span.push(0, SpanEventKind::PhaseStart { phase: 1 });
        span.push(2_000_000, SpanEventKind::Finished { ok: true });
        let text = span.render();
        assert!(text.contains("op#9 PUT"), "{text}");
        assert!(text.contains("phase 1 start"), "{text}");
        assert!(text.contains("p1=2.000 ms"), "{text}");
    }

    #[test]
    fn server_metrics_classify_phases_and_kinds() {
        let obs = Obs::new(ObsConfig::Metrics);
        let m = ServerMetrics::new(&obs, &["abd_read_query", "abd_write"]);
        m.on_request(0, 1, 500, 1);
        m.on_request(1, 2, 700, 1);
        m.on_request(1, 9, 100, 0);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("server.requests"), 3);
        assert_eq!(snap.counter("server.replies"), 2);
        assert_eq!(snap.counter("server.msg.abd_write"), 2);
        assert_eq!(snap.histogram("server.dispatch_ns.phase1").unwrap().count, 1);
        assert_eq!(snap.histogram("server.dispatch_ns.phase0").unwrap().count, 1);
    }
}
