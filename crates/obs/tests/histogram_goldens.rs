//! Golden tests pinning the histogram/percentile arithmetic.
//!
//! Two percentile definitions coexist in the workspace: `perfbench` computes
//! nearest-rank percentiles over exact samples, while metric histograms estimate
//! quantiles from log₂ buckets with in-bucket linear interpolation. Both are pinned
//! here with hand-computed goldens so future BENCH field changes can't silently skew
//! reported percentiles.

use legostore_obs::{bucket_bounds, bucket_index, percentile_sorted, Histogram};

#[test]
fn log2_bucket_boundaries_are_exact() {
    // Bucket 0 is [0, 2); bucket i >= 1 is [2^i, 2^(i+1)).
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 0);
    assert_eq!(bucket_index(2), 1);
    assert_eq!(bucket_index(3), 1);
    assert_eq!(bucket_index(4), 2);
    assert_eq!(bucket_index(7), 2);
    assert_eq!(bucket_index(8), 3);
    assert_eq!(bucket_index(1_023), 9);
    assert_eq!(bucket_index(1_024), 10);
    assert_eq!(bucket_index(u64::MAX), 63);

    assert_eq!(bucket_bounds(0), (0, 2));
    assert_eq!(bucket_bounds(1), (2, 4));
    assert_eq!(bucket_bounds(10), (1 << 10, 1 << 11));
    assert_eq!(bucket_bounds(63), (1 << 63, u64::MAX));

    // Every representable value lands inside its bucket's bounds.
    for v in [0u64, 1, 2, 3, 1_000, 123_456_789, u64::MAX / 2, u64::MAX] {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        assert!(lo <= v && (v < hi || v == u64::MAX), "{v} outside [{lo}, {hi})");
    }
}

#[test]
fn interpolated_quantiles_golden_uniform_1_to_100() {
    // Recording 1..=100 fills buckets: idx0 holds {1} (1 sample), idx1 {2,3},
    // idx2 {4..7}, idx3 {8..15}, idx4 {16..31}, idx5 {32..63}, idx6 {64..100} (37).
    let h = Histogram::default();
    for v in 1..=100u64 {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 100);
    assert_eq!(s.sum, 5_050);
    assert_eq!(s.buckets, vec![(0, 1), (1, 2), (2, 4), (3, 8), (4, 16), (5, 32), (6, 37)]);

    // p50: rank 50 falls in bucket 5 ([32, 64), 32 samples, 31 before it):
    // 32 + (50 - 31) / 32 * 32 = 51.
    assert!((s.quantile(0.50) - 51.0).abs() < 1e-9, "{}", s.quantile(0.50));
    // p99: rank 99 falls in bucket 6 ([64, 128), 37 samples, 63 before it):
    // 64 + (99 - 63) / 37 * 64.
    let p99 = 64.0 + 36.0 / 37.0 * 64.0;
    assert!((s.quantile(0.99) - p99).abs() < 1e-9, "{}", s.quantile(0.99));
    // p0 is the low edge of the first non-empty bucket; p1 (rank 1, exactly the one
    // sample of bucket 0) is that bucket's high edge under interpolation.
    assert!((s.quantile(0.0) - 0.0).abs() < 1e-9);
    assert!((s.quantile(0.01) - 2.0).abs() < 1e-9);
    // q > 1 clamps to the top of the distribution.
    assert!((s.quantile(2.0) - 128.0).abs() < 1e-9);
    assert!((s.mean() - 50.5).abs() < 1e-9);
}

#[test]
fn single_sample_quantile_interpolates_inside_its_bucket() {
    // One sample of 1000 sits in bucket 9 ([512, 1024)); the p50 estimate is the
    // bucket midpoint — a factor-of-2-bounded estimate, pinned exactly here.
    let h = Histogram::default();
    h.record(1_000);
    let s = h.snapshot();
    assert!((s.quantile(0.50) - 768.0).abs() < 1e-9, "{}", s.quantile(0.50));
    assert!((s.quantile(1.0) - 1_024.0).abs() < 1e-9);
}

#[test]
fn empty_histogram_quantiles_are_zero() {
    let s = Histogram::default().snapshot();
    assert_eq!(s.quantile(0.5), 0.0);
    assert_eq!(s.mean(), 0.0);
    assert_eq!(percentile_sorted(&[], 0.5), 0);
}

#[test]
fn nearest_rank_percentile_matches_perfbench_definition() {
    // perfbench: index = round((len - 1) * p) into the ascending-sorted samples.
    let five = [10u64, 20, 30, 40, 50];
    assert_eq!(percentile_sorted(&five, 0.0), 10);
    assert_eq!(percentile_sorted(&five, 0.50), 30); // round(4 * 0.50) = 2
    assert_eq!(percentile_sorted(&five, 0.99), 50); // round(4 * 0.99) = 4
    assert_eq!(percentile_sorted(&five, 1.0), 50);

    let four = [10u64, 20, 30, 40];
    assert_eq!(percentile_sorted(&four, 0.50), 30); // round(3 * 0.50) = round(1.5) = 2
    assert_eq!(percentile_sorted(&four, 0.25), 20); // round(0.75) = 1

    assert_eq!(percentile_sorted(&[42], 0.99), 42);
}

#[test]
fn identical_recordings_snapshot_identically() {
    let run = || {
        let h = Histogram::default();
        for v in [3u64, 17, 17, 250_000, 1, 999] {
            h.record(v);
        }
        h.snapshot()
    };
    assert_eq!(run(), run());
}
