//! Figure 1: cumulative distribution of baseline cost normalized by the optimizer's cost
//! over the basic workload grid (subsampled for benchmarking; run the `experiments` binary
//! for the full 567-workload grid).

use criterion::{criterion_group, criterion_main, Criterion};
use legostore_bench::experiments::optimizer_studies as opt;
use std::time::Duration;

fn bench_fig1(c: &mut Criterion) {
    // Print a representative (subsampled) rendering once for both SLOs of Figure 1.
    for slo in [1000.0, 200.0] {
        println!("{}", opt::baseline_cdf(slo, 1, 48).render());
    }
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("baseline_cdf_subsampled_slo1s", |b| {
        b.iter(|| opt::baseline_cdf(1000.0, 1, 200))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
