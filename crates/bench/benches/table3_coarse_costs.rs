//! Table 3: coarse per-operation cost comparison of ABD vs CAS. The rendered table is
//! printed once; the benchmark times the underlying cost-model evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legostore_bench::experiments::optimizer_studies as opt;
use legostore_cloud::CloudModel;
use legostore_optimizer::cost::cost_of;
use legostore_types::{Configuration, DcId};
use legostore_workload::WorkloadSpec;

fn bench_table3(c: &mut Criterion) {
    println!("{}", opt::table3(1024));
    let model = CloudModel::gcp9();
    let spec = WorkloadSpec::example();
    let abd = Configuration::abd_majority((0..3).map(DcId::from).collect(), 1);
    let cas = Configuration::cas_default((0..5).map(DcId::from).collect(), 3, 1);
    c.bench_function("table3/cost_model_eval", |b| {
        b.iter(|| {
            let a = cost_of(black_box(&model), black_box(&spec), black_box(&abd));
            let c2 = cost_of(black_box(&model), black_box(&spec), black_box(&cas));
            (a.total(), c2.total())
        })
    });
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
