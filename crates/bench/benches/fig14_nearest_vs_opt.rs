//! Figure 14 / Appendix G.2: choosing the nearest data centers can waste money.

use criterion::{criterion_group, criterion_main, Criterion};
use legostore_bench::experiments::optimizer_studies as opt;
use std::time::Duration;

fn bench_fig14(c: &mut Criterion) {
    println!("{}", opt::render_nearest_vs_optimal(&opt::nearest_vs_optimal()));
    for row in opt::ec_vs_replication_latency() {
        println!(
            "§4.2.5 f={} {}: {} GET {:.0} ms, ${:.4}/h",
            row.f, row.family, row.config, row.get_latency_ms, row.cost_per_hour
        );
    }
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("nearest_vs_optimal", |b| b.iter(opt::nearest_vs_optimal));
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
