//! Figure 4: latency stays flat as the per-key arrival rate (and hence concurrency) grows.

use criterion::{criterion_group, criterion_main, Criterion};
use legostore_bench::experiments::sim_studies as sim;
use std::time::Duration;

fn bench_fig4(c: &mut Criterion) {
    let rates = [20.0, 40.0, 60.0, 80.0, 100.0];
    for (label, rho) in [("RW", 0.5), ("HW", 1.0 / 31.0)] {
        println!("-- read ratio {label}");
        let points = sim::concurrency_robustness(&rates, rho, 20_000.0, 42);
        println!("{}", sim::render_concurrency(&points));
    }
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_function("simulate_20s_at_60rps", |b| {
        b.iter(|| sim::concurrency_robustness(&[60.0], 0.5, 20_000.0, 42))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
