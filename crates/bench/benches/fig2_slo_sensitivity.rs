//! Figure 2: sensitivity of the optimizer's protocol choice to the latency SLO.

use criterion::{criterion_group, criterion_main, Criterion};
use legostore_bench::experiments::optimizer_studies as opt;
use legostore_workload::ClientDistribution;
use std::time::Duration;

fn bench_fig2(c: &mut Criterion) {
    let slos: Vec<f64> = vec![100.0, 200.0, 400.0, 575.0, 700.0, 1000.0];
    let dists = [
        ClientDistribution::Tokyo,
        ClientDistribution::SydneyTokyo,
        ClientDistribution::Uniform,
    ];
    let rows = opt::slo_sensitivity(1, &[1024, 10 * 1024], &slos, &dists);
    println!("{}", opt::render_slo_sensitivity(&rows));
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("slo_sensitivity_1kb_tokyo", |b| {
        b.iter(|| opt::slo_sensitivity(1, &[1024], &[200.0, 1000.0], &[ClientDistribution::Tokyo]))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
