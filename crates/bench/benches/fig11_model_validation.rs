//! Figure 11: the worst-case latency model versus simulator measurements, with and without
//! a failed data center.

use criterion::{criterion_group, criterion_main, Criterion};
use legostore_bench::experiments::sim_studies as sim;
use std::time::Duration;

fn bench_fig11(c: &mut Criterion) {
    let rows = sim::model_validation(30_000.0, 50.0, 3);
    println!("{}", sim::render_model_validation(&rows));
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_function("model_validation_10s", |b| {
        b.iter(|| sim::model_validation(10_000.0, 30.0, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
