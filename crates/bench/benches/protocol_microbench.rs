//! Microbenchmarks of the ABD and CAS protocol state machines (no network): the cost of a
//! complete PUT/GET message exchange against in-memory per-key server states.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legostore_proto::abd::AbdKeyState;
use legostore_proto::cas::initial_cas_states;
use legostore_proto::msg::{OpOutcome, OpProgress};
use legostore_proto::{AbdGet, AbdPut, CasGet, CasPut};
use legostore_types::{ClientId, Configuration, DcId, Key, Tag, Value};
use std::collections::BTreeMap;

fn dcs(n: usize) -> Vec<DcId> {
    (0..n).map(DcId::from).collect()
}

fn run_abd_pair(servers: &mut BTreeMap<DcId, AbdKeyState>, config: &Configuration, payload: &Value) {
    let mut put = AbdPut::new(Key::from("k"), config.clone(), DcId(0), ClientId(1), payload.clone());
    let mut inflight = put.start();
    loop {
        let out = inflight.remove(0);
        let reply = servers.get_mut(&out.to).unwrap().handle(&out.msg);
        match put.on_reply(out.to, out.phase, reply) {
            OpProgress::Pending => {}
            OpProgress::Send(more) => inflight.extend(more),
            OpProgress::Done(_) => break,
        }
    }
    let mut get = AbdGet::new(Key::from("k"), config.clone(), DcId(0), true);
    let mut inflight = get.start();
    loop {
        let out = inflight.remove(0);
        let reply = servers.get_mut(&out.to).unwrap().handle(&out.msg);
        match get.on_reply(out.to, out.phase, reply) {
            OpProgress::Pending => {}
            OpProgress::Send(more) => inflight.extend(more),
            OpProgress::Done(OpOutcome::GetOk { .. }) => break,
            OpProgress::Done(_) => panic!("unexpected outcome"),
        }
    }
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_state_machines");
    for &size in &[1024usize, 16 * 1024] {
        let payload = Value::filler(size);
        let abd = Configuration::abd_majority(dcs(3), 1);
        let mut abd_servers: BTreeMap<DcId, AbdKeyState> = abd
            .dcs
            .iter()
            .map(|d| (*d, AbdKeyState::new(Tag::INITIAL, payload.clone())))
            .collect();
        group.bench_function(format!("abd_put_get_{size}B"), |b| {
            b.iter(|| run_abd_pair(black_box(&mut abd_servers), &abd, &payload))
        });

        let cas = Configuration::cas_default(dcs(5), 3, 1);
        let mut cas_servers = initial_cas_states(&cas, &payload);
        group.bench_function(format!("cas_put_get_{size}B"), |b| {
            b.iter(|| {
                let mut put = CasPut::new(Key::from("k"), cas.clone(), DcId(0), ClientId(1), payload.clone());
                let mut inflight = put.start();
                loop {
                    let out = inflight.remove(0);
                    let reply = cas_servers.get_mut(&out.to).unwrap().handle(&out.msg);
                    match put.on_reply(out.to, out.phase, reply) {
                        OpProgress::Pending => {}
                        OpProgress::Send(more) => inflight.extend(more),
                        OpProgress::Done(_) => break,
                    }
                }
                let mut get = CasGet::new(Key::from("k"), cas.clone(), DcId(0), None);
                let mut inflight = get.start();
                loop {
                    let out = inflight.remove(0);
                    let reply = cas_servers.get_mut(&out.to).unwrap().handle(&out.msg);
                    match get.on_reply(out.to, out.phase, reply) {
                        OpProgress::Pending => {}
                        OpProgress::Send(more) => inflight.extend(more),
                        OpProgress::Done(_) => break,
                    }
                }
                // Keep server-side history bounded so iteration time stays constant.
                for s in cas_servers.values_mut() {
                    s.garbage_collect(1);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
