//! Microbenchmarks of the from-scratch Reed-Solomon codec used by CAS.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legostore_erasure::{decode_value, encode_value};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure_codec");
    for &(n, k) in &[(5usize, 3usize), (4, 2), (8, 1), (9, 6)] {
        for &size in &[1024usize, 10 * 1024, 100 * 1024] {
            let value = vec![0xA5u8; size];
            group.bench_function(format!("encode_n{n}_k{k}_{size}B"), |b| {
                b.iter(|| encode_value(black_box(&value), n, k).unwrap())
            });
            let shards = encode_value(&value, n, k).unwrap();
            // Decode from the last k shards (forces matrix inversion, the worst case).
            let subset: Vec<_> = shards[n - k..].to_vec();
            group.bench_function(format!("decode_n{n}_k{k}_{size}B"), |b| {
                b.iter(|| decode_value(black_box(&subset), n, k).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
