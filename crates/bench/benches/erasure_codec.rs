//! Microbenchmarks of the from-scratch Reed-Solomon codec used by CAS.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legostore_erasure::gf256::{self, Kernel};
use legostore_erasure::{decode_value, encode_value};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure_codec");
    for &(n, k) in &[(5usize, 3usize), (4, 2), (8, 1), (9, 6)] {
        for &size in &[1024usize, 10 * 1024, 100 * 1024] {
            let value = vec![0xA5u8; size];
            group.bench_function(format!("encode_n{n}_k{k}_{size}B"), |b| {
                b.iter(|| encode_value(black_box(&value), n, k).unwrap())
            });
            let shards = encode_value(&value, n, k).unwrap();
            // Decode from the last k shards (forces matrix inversion, the worst case).
            let subset: Vec<_> = shards[n - k..].to_vec();
            group.bench_function(format!("decode_n{n}_k{k}_{size}B"), |b| {
                b.iter(|| decode_value(black_box(&subset), n, k).unwrap())
            });
        }
    }
    group.finish();
}

/// The GF(256) multiply-accumulate kernel in isolation, per tier, so a regression in one
/// tier is visible without the codec layers on top.
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256_mul_acc");
    let src: Vec<u8> = (0..64 * 1024).map(|i| (i * 7 + 3) as u8).collect();
    let mut dst = vec![0u8; src.len()];
    for (tag, kernel) in [
        ("scalar", Kernel::Scalar),
        ("split", Kernel::Split),
        ("simd", Kernel::Simd),
    ] {
        gf256::set_kernel(kernel);
        group.bench_function(format!("{tag}_64KiB"), |b| {
            b.iter(|| gf256::mul_acc_slice(black_box(&mut dst), black_box(&src), 0x53))
        });
    }
    gf256::set_kernel(Kernel::Simd);
    group.finish();
}

/// Worst-case decode: a 1 MiB value reconstructed entirely from parity symbols, so every
/// data shard needs the full `k` multiply-accumulate passes plus the sub-matrix inversion.
fn bench_all_parity_decode_1mib(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure_worst_case");
    let value = vec![0x5Au8; 1024 * 1024];
    let (n, k) = (6usize, 3usize);
    let shards = encode_value(&value, n, k).unwrap();
    let parity_only: Vec<_> = shards[k..].to_vec();
    assert_eq!(parity_only.len(), k);
    group.bench_function("decode_all_parity_n6_k3_1MiB", |b| {
        b.iter(|| decode_value(black_box(&parity_only), n, k).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_kernels, bench_all_parity_decode_1mib);
criterion_main!(benches);
