//! Figure 3: cost is non-monotonic in K; Kopt grows with object size and shrinks with
//! arrival rate.

use criterion::{criterion_group, criterion_main, Criterion};
use legostore_bench::experiments::optimizer_studies as opt;
use std::time::Duration;

fn bench_fig3(c: &mut Criterion) {
    println!("{}", opt::kopt_study(7).render());
    for (size, model_k, search_k) in opt::kopt_model_validation() {
        println!("Eq.4 validation: object {size} B -> analytic Kopt {model_k:.1}, optimizer K {search_k}");
    }
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_function("kopt_study_small", |b| b.iter(|| opt::kopt_study(3)));
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
