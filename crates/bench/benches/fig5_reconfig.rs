//! Figure 5: agile reconfiguration under a 4x load increase and a DC failure.

use criterion::{criterion_group, criterion_main, Criterion};
use legostore_bench::experiments::sim_studies as sim;
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    // Compressed timeline (x0.1 of the paper's 500 s scenario) with 10 keys.
    let result =
        sim::reconfiguration_scenario(10, 20_000.0, 36_000.0, 40_000.0, 50_000.0, 60.0, 7);
    println!("{}", result.render());
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_function("reconfig_scenario_small", |b| {
        b.iter(|| sim::reconfiguration_scenario(3, 4_000.0, 8_000.0, 10_000.0, 14_000.0, 30.0, 5))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
