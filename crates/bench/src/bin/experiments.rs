//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p legostore-bench --bin experiments -- all
//! cargo run --release -p legostore-bench --bin experiments -- fig1 fig3 fig5
//! cargo run --release -p legostore-bench --bin experiments -- all --tier nightly
//! cargo run --release -p legostore-bench --bin experiments -- fig1 --quick
//! ```
//!
//! Grid depth is budgeted through the campaign tiers (see `legostore-campaign`):
//! the default `ci` tier subsamples every workload grid so `all` finishes in
//! seconds, and only `--tier nightly` / `--tier full` evaluate the paper's full
//! 567-workload grids. `--quick` is shorthand for `--tier smoke`.

use legostore_bench::experiments::{optimizer_studies as opt, sim_studies as sim};
use legostore_campaign::Tier;

struct Settings {
    tier: Tier,
}

impl Settings {
    /// Workload-grid stride: the campaign tier's budget for the bounded tiers, the
    /// full grid (stride 1) for the unbudgeted nightly/full tiers.
    fn stride(&self) -> usize {
        match self.tier {
            Tier::Nightly | Tier::Full => 1,
            t => t.budget().grid_stride,
        }
    }

    /// True for the unbudgeted tiers that run the paper's experiments at full depth.
    fn deep(&self) -> bool {
        matches!(self.tier, Tier::Nightly | Tier::Full)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tier = Tier::Ci;
    if args.iter().any(|a| a == "--quick") {
        tier = Tier::Smoke;
    }
    if let Some(i) = args.iter().position(|a| a == "--tier") {
        let Some(t) = args.get(i + 1).and_then(|v| Tier::parse(v)) else {
            eprintln!("--tier requires one of: smoke, ci, nightly, full");
            std::process::exit(2);
        };
        tier = t;
    }
    let mut skip_next = false;
    let mut selected: Vec<String> = args
        .into_iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if a == "--tier" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .collect();
    if selected.is_empty() || selected.iter().any(|a| a == "all") {
        selected = vec![
            "tables", "table3", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig11", "fig12",
            "fig13", "fig14", "fig15", "kopt", "ec", "gc",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    let settings = Settings { tier };
    println!(
        "experiments tier={} (grid stride {}); the full 567-workload grids run only at \
         --tier nightly|full",
        settings.tier.label(),
        settings.stride()
    );
    for name in selected {
        run_experiment(&name, &settings);
    }
}

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn run_experiment(name: &str, s: &Settings) {
    match name {
        "tables" => {
            banner("Tables 1 & 2: embedded GCP prices and RTTs");
            println!("{}", opt::table_inputs());
        }
        "table3" => {
            banner("Table 3: coarse ABD vs CAS comparison");
            println!("{}", opt::table3(1024));
        }
        "fig1" => {
            banner("Figure 1: baseline normalized-cost CDFs, f = 1");
            let stride = s.stride();
            for slo in [1000.0, 200.0] {
                let cdf = opt::baseline_cdf(slo, 1, stride);
                println!("{}", cdf.render());
            }
        }
        "fig12" => {
            banner("Figure 12: baseline normalized-cost CDFs, f = 2");
            let stride = s.stride();
            for slo in [1000.0, 300.0] {
                let cdf = opt::baseline_cdf(slo, 2, stride);
                println!("{}", cdf.render());
            }
        }
        "fig2" | "fig13" => {
            let f = if name == "fig2" { 1 } else { 2 };
            banner(&format!("Figure {}: optimizer choice vs latency SLO, f = {f}", if f == 1 { 2 } else { 13 }));
            let slos: Vec<f64> = if !s.deep() {
                vec![200.0, 400.0, 700.0, 1000.0]
            } else {
                (1..=20).map(|i| 50.0 * i as f64).collect()
            };
            let dists = if !s.deep() {
                vec![
                    legostore_workload::ClientDistribution::Tokyo,
                    legostore_workload::ClientDistribution::SydneyTokyo,
                    legostore_workload::ClientDistribution::Uniform,
                ]
            } else {
                legostore_workload::ClientDistribution::ALL.to_vec()
            };
            let rows = opt::slo_sensitivity(f, &[1024, 10 * 1024], &slos, &dists);
            println!("{}", opt::render_slo_sensitivity(&rows));
        }
        "fig3" => {
            banner("Figure 3: cost vs K and Kopt trends");
            let study = opt::kopt_study(if s.deep() { 7 } else { 5 });
            println!("{}", study.render());
        }
        "kopt" => {
            banner("Eq. 4 analytical model vs optimizer");
            for (size, model_k, search_k) in opt::kopt_model_validation() {
                println!("object {size:>6} B: analytic Kopt = {model_k:.1}, optimizer K = {search_k}");
            }
        }
        "fig4" => {
            banner("Figure 4: latency robustness under concurrent access");
            let duration = if s.deep() { 60_000.0 } else { 10_000.0 };
            for (label, rho) in [("RW (50% reads)", 0.5), ("HW (3.2% reads)", 1.0 / 31.0)] {
                println!("-- {label}");
                let rates = [20.0, 40.0, 60.0, 80.0, 100.0];
                let points = sim::concurrency_robustness(&rates, rho, duration, 42);
                println!("{}", sim::render_concurrency(&points));
            }
        }
        "fig5" => {
            banner("Figure 5: reconfiguration under load change and DC failure");
            let scale = if s.deep() { 0.25 } else { 0.05 };
            let result = sim::reconfiguration_scenario(
                if s.deep() { 20 } else { 5 },
                200_000.0 * scale,
                360_000.0 * scale,
                400_000.0 * scale,
                500_000.0 * scale,
                if s.deep() { 100.0 } else { 40.0 },
                7,
            );
            println!("{}", result.render());
        }
        "fig6" => {
            banner("Figure 6: Wikipedia hot key reconfiguration");
            let result = sim::wikipedia_key_scenario(if s.deep() { 600_000.0 } else { 20_000.0 }, 13);
            println!("{}", result.render());
            if let Some((t1, t2)) = opt::wikipedia_hot_key_choices() {
                println!(
                    "optimizer choice: T1 {} (${:.4}/h) -> T2 {} (${:.4}/h)",
                    t1.config.describe(),
                    t1.total_cost(),
                    t2.config.describe(),
                    t2.total_cost()
                );
            }
        }
        "fig11" => {
            banner("Figure 11: predicted vs measured latency (and under LA failure)");
            let duration = if s.deep() { 60_000.0 } else { 10_000.0 };
            let rows = sim::model_validation(duration, 50.0, 3);
            println!("{}", sim::render_model_validation(&rows));
        }
        "fig14" => {
            banner("Figure 14: nearest placements vs the optimizer (Sydney+Tokyo HR)");
            let rows = opt::nearest_vs_optimal();
            println!("{}", opt::render_nearest_vs_optimal(&rows));
        }
        "fig15" => {
            banner("Figure 15: Wikipedia-derived keys, baseline normalized-cost CDF");
            let keys = if s.deep() { 1550 } else { 100 };
            let cdf = opt::wikipedia_cdf(keys);
            println!("{}", cdf.render());
        }
        "ec" => {
            banner("§4.2.5: EC at comparable latency, lower cost (Tokyo HR)");
            for row in opt::ec_vs_replication_latency() {
                println!(
                    "f={} {}: {} GET latency {:.0} ms, cost ${:.4}/h",
                    row.f, row.family, row.config, row.get_latency_ms, row.cost_per_hour
                );
            }
        }
        "gc" => {
            banner("Appendix F: garbage-collection overhead");
            let (v_no, b_no, v_gc, b_gc) = sim::gc_overhead(1000, 1024, 50);
            println!(
                "without GC: {v_no} versions, {b_no} bytes/server; with GC every 50 PUTs: {v_gc} versions, {b_gc} bytes/server"
            );
        }
        other => eprintln!("unknown experiment '{other}' (try: all, tables, table3, fig1..fig15, kopt, ec, gc)"),
    }
}
