//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p legostore-bench --bin experiments -- all
//! cargo run --release -p legostore-bench --bin experiments -- fig1 fig3 fig5
//! cargo run --release -p legostore-bench --bin experiments -- fig1 --quick
//! ```
//!
//! `--quick` subsamples the workload grids so every experiment finishes in seconds; without
//! it the full grids of the paper are evaluated.

use legostore_bench::experiments::{optimizer_studies as opt, sim_studies as sim};

struct Settings {
    quick: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut selected: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if selected.is_empty() || selected.iter().any(|a| a == "all") {
        selected = vec![
            "tables", "table3", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig11", "fig12",
            "fig13", "fig14", "fig15", "kopt", "ec", "gc",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    let settings = Settings { quick };
    for name in selected {
        run_experiment(&name, &settings);
    }
}

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn run_experiment(name: &str, s: &Settings) {
    match name {
        "tables" => {
            banner("Tables 1 & 2: embedded GCP prices and RTTs");
            println!("{}", opt::table_inputs());
        }
        "table3" => {
            banner("Table 3: coarse ABD vs CAS comparison");
            println!("{}", opt::table3(1024));
        }
        "fig1" => {
            banner("Figure 1: baseline normalized-cost CDFs, f = 1");
            let stride = if s.quick { 24 } else { 1 };
            for slo in [1000.0, 200.0] {
                let cdf = opt::baseline_cdf(slo, 1, stride);
                println!("{}", cdf.render());
            }
        }
        "fig12" => {
            banner("Figure 12: baseline normalized-cost CDFs, f = 2");
            let stride = if s.quick { 24 } else { 1 };
            for slo in [1000.0, 300.0] {
                let cdf = opt::baseline_cdf(slo, 2, stride);
                println!("{}", cdf.render());
            }
        }
        "fig2" | "fig13" => {
            let f = if name == "fig2" { 1 } else { 2 };
            banner(&format!("Figure {}: optimizer choice vs latency SLO, f = {f}", if f == 1 { 2 } else { 13 }));
            let slos: Vec<f64> = if s.quick {
                vec![200.0, 400.0, 700.0, 1000.0]
            } else {
                (1..=20).map(|i| 50.0 * i as f64).collect()
            };
            let dists = if s.quick {
                vec![
                    legostore_workload::ClientDistribution::Tokyo,
                    legostore_workload::ClientDistribution::SydneyTokyo,
                    legostore_workload::ClientDistribution::Uniform,
                ]
            } else {
                legostore_workload::ClientDistribution::ALL.to_vec()
            };
            let rows = opt::slo_sensitivity(f, &[1024, 10 * 1024], &slos, &dists);
            println!("{}", opt::render_slo_sensitivity(&rows));
        }
        "fig3" => {
            banner("Figure 3: cost vs K and Kopt trends");
            let study = opt::kopt_study(if s.quick { 5 } else { 7 });
            println!("{}", study.render());
        }
        "kopt" => {
            banner("Eq. 4 analytical model vs optimizer");
            for (size, model_k, search_k) in opt::kopt_model_validation() {
                println!("object {size:>6} B: analytic Kopt = {model_k:.1}, optimizer K = {search_k}");
            }
        }
        "fig4" => {
            banner("Figure 4: latency robustness under concurrent access");
            let duration = if s.quick { 10_000.0 } else { 60_000.0 };
            for (label, rho) in [("RW (50% reads)", 0.5), ("HW (3.2% reads)", 1.0 / 31.0)] {
                println!("-- {label}");
                let rates = [20.0, 40.0, 60.0, 80.0, 100.0];
                let points = sim::concurrency_robustness(&rates, rho, duration, 42);
                println!("{}", sim::render_concurrency(&points));
            }
        }
        "fig5" => {
            banner("Figure 5: reconfiguration under load change and DC failure");
            let scale = if s.quick { 0.05 } else { 0.25 };
            let result = sim::reconfiguration_scenario(
                if s.quick { 5 } else { 20 },
                200_000.0 * scale,
                360_000.0 * scale,
                400_000.0 * scale,
                500_000.0 * scale,
                if s.quick { 40.0 } else { 100.0 },
                7,
            );
            println!("{}", result.render());
        }
        "fig6" => {
            banner("Figure 6: Wikipedia hot key reconfiguration");
            let result = sim::wikipedia_key_scenario(if s.quick { 20_000.0 } else { 600_000.0 }, 13);
            println!("{}", result.render());
            if let Some((t1, t2)) = opt::wikipedia_hot_key_choices() {
                println!(
                    "optimizer choice: T1 {} (${:.4}/h) -> T2 {} (${:.4}/h)",
                    t1.config.describe(),
                    t1.total_cost(),
                    t2.config.describe(),
                    t2.total_cost()
                );
            }
        }
        "fig11" => {
            banner("Figure 11: predicted vs measured latency (and under LA failure)");
            let duration = if s.quick { 10_000.0 } else { 60_000.0 };
            let rows = sim::model_validation(duration, 50.0, 3);
            println!("{}", sim::render_model_validation(&rows));
        }
        "fig14" => {
            banner("Figure 14: nearest placements vs the optimizer (Sydney+Tokyo HR)");
            let rows = opt::nearest_vs_optimal();
            println!("{}", opt::render_nearest_vs_optimal(&rows));
        }
        "fig15" => {
            banner("Figure 15: Wikipedia-derived keys, baseline normalized-cost CDF");
            let keys = if s.quick { 100 } else { 1550 };
            let cdf = opt::wikipedia_cdf(keys);
            println!("{}", cdf.render());
        }
        "ec" => {
            banner("§4.2.5: EC at comparable latency, lower cost (Tokyo HR)");
            for row in opt::ec_vs_replication_latency() {
                println!(
                    "f={} {}: {} GET latency {:.0} ms, cost ${:.4}/h",
                    row.f, row.family, row.config, row.get_latency_ms, row.cost_per_hour
                );
            }
        }
        "gc" => {
            banner("Appendix F: garbage-collection overhead");
            let (v_no, b_no, v_gc, b_gc) = sim::gc_overhead(1000, 1024, 50);
            println!(
                "without GC: {v_no} versions, {b_no} bytes/server; with GC every 50 PUTs: {v_gc} versions, {b_gc} bytes/server"
            );
        }
        other => eprintln!("unknown experiment '{other}' (try: all, tables, table3, fig1..fig15, kopt, ec, gc)"),
    }
}
