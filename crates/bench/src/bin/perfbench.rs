//! Machine-readable performance harness for the erasure hot path and the deployment.
//!
//! Unlike the Criterion-style microbenches (whose offline shim is one-pass and meant only
//! to keep the bench code compiling), this binary owns its timing loops and emits JSON that
//! CI and the repo history can diff:
//!
//! * `BENCH_erasure.json` — encode/decode throughput (MB/s) per `(n, k)` × value size, for
//!   the pre-optimization baseline (per-call codec construction + scalar GF kernels) and
//!   the current implementation (cached codec, single-allocation encode, SIMD kernels),
//!   with the speedup ratio per case.
//! * `BENCH_e2e.json` — end-to-end PUT/GET throughput and latency across a
//!   `transport × clock` grid: the in-process channel transport under the virtual clock
//!   (scalar vs SIMD GF kernels), the same channel transport under a real clock, and the
//!   TCP loopback transport (per-DC server threads behind real sockets). Virtual-clock
//!   modes measure CPU cost per operation (nothing sleeps; p50/p99 reflect modeled RTTs);
//!   real-clock modes run with modeled latencies scaled down to ~1% so the inproc vs TCP
//!   delta isolates the wire-path overhead (framing, syscalls, reader-thread handoff).
//!   Every mode runs with telemetry on and reports per-phase p50 breakdowns scraped from
//!   the client's obs registry, and an `obs_overhead` section compares PUT p50 with
//!   telemetry off vs on (CI asserts the overhead stays under 3%).
//!
//! Usage: `perfbench [--smoke] [--erasure-only] [--out-dir DIR]`.
//! `--smoke` shrinks sizes and iteration counts so CI can validate the schema in seconds.

use legostore_cloud::{CloudModel, GcpLocation};
use legostore_core::{Clock, Cluster, ClusterOptions};
use legostore_erasure::gf256::{self, Kernel};
use legostore_erasure::{
    decode_value, decode_value_reference, encode_value, encode_value_reference, Shard,
};
use legostore_obs::{MetricsSnapshot, ObsConfig, MAX_PHASES};
use legostore_server::spawn_server_thread;
use legostore_types::{Configuration, DcId, Key, Value};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Target wall time per measured loop; iteration counts adapt to reach it.
const TARGET_MEASURE: Duration = Duration::from_millis(250);
const TARGET_MEASURE_SMOKE: Duration = Duration::from_millis(25);

struct Options {
    smoke: bool,
    erasure_only: bool,
    out_dir: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        erasure_only: false,
        out_dir: ".".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--erasure-only" => opts.erasure_only = true,
            "--out-dir" => {
                opts.out_dir = args.next().unwrap_or_else(|| {
                    eprintln!("--out-dir requires a value");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perfbench [--smoke] [--erasure-only] [--out-dir DIR]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Runs `op` in a timed loop sized to `target`, returning achieved MB/s for
/// `bytes_per_op` payload bytes per iteration.
fn measure_mbps(bytes_per_op: usize, target: Duration, mut op: impl FnMut()) -> f64 {
    // Warm up and estimate the per-op cost.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            op();
        }
        let elapsed = t.elapsed();
        if elapsed >= target / 4 || iters >= 1 << 24 {
            // Scale once to the target and take the final measurement.
            let scale = (target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(1.0, 64.0);
            let final_iters = ((iters as f64) * scale).ceil() as u64;
            let t = Instant::now();
            for _ in 0..final_iters {
                op();
            }
            let secs = t.elapsed().as_secs_f64().max(1e-9);
            return (bytes_per_op as f64 * final_iters as f64) / 1e6 / secs;
        }
        iters *= 4;
    }
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn kernel_name(k: Kernel) -> &'static str {
    match k {
        Kernel::Scalar => "scalar",
        Kernel::Split => "split",
        Kernel::Simd => "simd",
    }
}

struct ErasureCase {
    n: usize,
    k: usize,
    value_bytes: usize,
    encode_baseline_mbps: f64,
    encode_current_mbps: f64,
    decode_baseline_mbps: f64,
    decode_current_mbps: f64,
}

fn run_erasure(opts: &Options) -> String {
    let target = if opts.smoke {
        TARGET_MEASURE_SMOKE
    } else {
        TARGET_MEASURE
    };
    let codes: &[(usize, usize)] = if opts.smoke {
        &[(5, 3)]
    } else {
        &[(5, 3), (4, 2), (9, 6)]
    };
    let sizes: &[usize] = if opts.smoke {
        &[1024, 100 * 1024]
    } else {
        &[1024, 10 * 1024, 100 * 1024, 1024 * 1024]
    };
    let mut cases = Vec::new();
    for &(n, k) in codes {
        for &size in sizes {
            let value: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();
            // Decode from the last k shards (all parity when n >= 2k): forces the
            // sub-matrix inversion path, the decoder's worst case.
            let shards = encode_value(&value, n, k).expect("valid parameters");
            let parity_subset: Vec<Shard> = shards[n - k..].to_vec();

            gf256::set_kernel(Kernel::Scalar);
            let encode_baseline_mbps = measure_mbps(size, target, || {
                std::hint::black_box(encode_value_reference(&value, n, k).unwrap());
            });
            let decode_baseline_mbps = measure_mbps(size, target, || {
                std::hint::black_box(decode_value_reference(&parity_subset, n, k).unwrap());
            });

            gf256::set_kernel(Kernel::Simd);
            let encode_current_mbps = measure_mbps(size, target, || {
                std::hint::black_box(encode_value(&value, n, k).unwrap());
            });
            let decode_current_mbps = measure_mbps(size, target, || {
                std::hint::black_box(decode_value(&parity_subset, n, k).unwrap());
            });

            eprintln!(
                "erasure n={n} k={k} {size}B: encode {:.0} -> {:.0} MB/s ({:.1}x), decode {:.0} -> {:.0} MB/s ({:.1}x)",
                encode_baseline_mbps,
                encode_current_mbps,
                encode_current_mbps / encode_baseline_mbps,
                decode_baseline_mbps,
                decode_current_mbps,
                decode_current_mbps / decode_baseline_mbps,
            );
            cases.push(ErasureCase {
                n,
                k,
                value_bytes: size,
                encode_baseline_mbps,
                encode_current_mbps,
                decode_baseline_mbps,
                decode_current_mbps,
            });
        }
    }
    gf256::set_kernel(Kernel::Simd);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"erasure\",");
    let _ = writeln!(json, "  \"created_unix\": {},", unix_now());
    let _ = writeln!(json, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(
        json,
        "  \"baseline\": \"per-call codec + scalar log/exp kernels (pre-optimization)\","
    );
    let _ = writeln!(
        json,
        "  \"current\": \"cached codec + single-allocation encode + {} kernels\",",
        kernel_name(gf256::active_kernel())
    );
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"k\": {}, \"value_bytes\": {}, \
             \"encode_baseline_mbps\": {}, \"encode_current_mbps\": {}, \"encode_speedup\": {}, \
             \"decode_baseline_mbps\": {}, \"decode_current_mbps\": {}, \"decode_speedup\": {}}}",
            c.n,
            c.k,
            c.value_bytes,
            fmt_f64(c.encode_baseline_mbps),
            fmt_f64(c.encode_current_mbps),
            fmt_f64(c.encode_current_mbps / c.encode_baseline_mbps),
            fmt_f64(c.decode_baseline_mbps),
            fmt_f64(c.decode_current_mbps),
            fmt_f64(c.decode_current_mbps / c.decode_baseline_mbps),
        );
        json.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

struct E2eMode {
    label: &'static str,
    transport: &'static str,
    clock: &'static str,
    latency_scale: f64,
    put_wall_ops_per_sec: f64,
    get_wall_ops_per_sec: f64,
    put_p50_ms: f64,
    put_p99_ms: f64,
    get_p50_ms: f64,
    get_p99_ms: f64,
    /// p50 time spent in each protocol phase (ms), from the client's obs histograms.
    /// CAS PUTs use phases 1..=3, CAS GETs 1..=2; untouched phases render as `null`.
    put_phase_p50_ms: [f64; MAX_PHASES],
    get_phase_p50_ms: [f64; MAX_PHASES],
    /// p50 erasure encode/decode time on the client (ms). Zero under the virtual
    /// clock, where compute does not advance time.
    encode_p50_ms: f64,
    decode_p50_ms: f64,
}

/// p50 of a snapshot histogram in milliseconds, `NAN` (rendered `null`) when the
/// histogram is absent or empty.
fn snapshot_p50_ms(snap: &MetricsSnapshot, name: &str) -> f64 {
    match snap.histogram(name) {
        Some(h) if h.count > 0 => h.quantile(0.50) / 1e6,
        _ => f64::NAN,
    }
}

fn fmt_f64_array(xs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&fmt_f64(*x));
    }
    out.push(']');
    out
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

/// How a mode stands up its deployment.
enum E2eSetup {
    /// In-process channel transport under the virtual clock (full modeled latencies).
    InprocVirtual,
    /// In-process channel transport under a real clock, modeled latencies at
    /// [`REALTIME_LATENCY_SCALE`].
    InprocReal,
    /// TCP loopback transport (one server thread per gcp9 DC behind a real listener),
    /// real clock, modeled latencies at [`REALTIME_LATENCY_SCALE`].
    TcpLoopback,
}

/// Real-clock modes scale the modeled gcp9 latencies to 1% so the measured ops/sec and
/// p50/p99 are dominated by the transport hot path, not by sleeping out geo RTTs; the
/// same scale in both real-clock modes makes `inproc_realtime` vs `tcp_loopback` a
/// direct read of the wire-path overhead.
const REALTIME_LATENCY_SCALE: f64 = 0.01;

/// Runs `ops` PUTs then `ops` GETs of a `value_bytes` value against a CAS(5, 3) key on a
/// fresh gcp9 deployment stood up per `setup`, with the GF kernel pinned to `kernel`.
fn run_e2e_mode(
    label: &'static str,
    kernel: Kernel,
    setup: E2eSetup,
    ops: usize,
    value_bytes: usize,
    obs: ObsConfig,
) -> E2eMode {
    gf256::set_kernel(kernel);
    let (transport, clock_label, latency_scale) = match setup {
        E2eSetup::InprocVirtual => ("inproc", "virtual", 1.0),
        E2eSetup::InprocReal => ("inproc", "real", REALTIME_LATENCY_SCALE),
        E2eSetup::TcpLoopback => ("tcp-loopback", "real", REALTIME_LATENCY_SCALE),
    };
    let mut servers: Vec<JoinHandle<std::io::Result<()>>> = Vec::new();
    let cluster = match setup {
        E2eSetup::InprocVirtual => Cluster::gcp9(ClusterOptions {
            clock: Clock::virtual_time(),
            obs,
            ..Default::default()
        }),
        E2eSetup::InprocReal => Cluster::gcp9(ClusterOptions {
            clock: Clock::real(),
            latency_scale,
            obs,
            ..Default::default()
        }),
        E2eSetup::TcpLoopback => {
            let model = CloudModel::gcp9();
            let mut addrs: HashMap<DcId, SocketAddr> = HashMap::new();
            for dc in model.dc_ids() {
                let (addr, handle) = spawn_server_thread(dc).expect("spawn server");
                addrs.insert(dc, addr);
                servers.push(handle);
            }
            let options = ClusterOptions {
                latency_scale,
                op_timeout: Duration::from_secs(5),
                obs,
                ..Default::default()
            };
            Cluster::connect_tcp(model, options, &addrs).expect("connect tcp")
        }
    };
    let near = GcpLocation::Tokyo.dc();
    let dcs: Vec<DcId> = cluster.model().nearest_dcs(near).into_iter().take(5).collect();
    let config = Configuration::cas_default(dcs, 3, 1);
    let mut client = cluster.client(near);
    let key = Key::from("perf");
    cluster.install_key(key.clone(), config, &Value::empty());
    let clock = cluster.options().clock.clone();
    let value = Value::filler(value_bytes);

    let mut put_ns: Vec<u64> = Vec::with_capacity(ops);
    let wall = Instant::now();
    for _ in 0..ops {
        let t0 = clock.now_ns();
        client.put(&key, value.clone()).expect("put");
        put_ns.push(clock.now_ns() - t0);
    }
    let put_wall = wall.elapsed().as_secs_f64().max(1e-9);

    let mut get_ns: Vec<u64> = Vec::with_capacity(ops);
    let wall = Instant::now();
    for _ in 0..ops {
        let t0 = clock.now_ns();
        let got = client.get(&key).expect("get");
        assert_eq!(got.len(), value_bytes);
        get_ns.push(clock.now_ns() - t0);
    }
    let get_wall = wall.elapsed().as_secs_f64().max(1e-9);
    // Per-phase breakdowns come from the client-side obs registry; scrape before the
    // transport goes away. With obs off the histograms are absent and render as null.
    let snap = cluster.obs().snapshot();
    cluster.shutdown();
    for handle in servers {
        handle.join().expect("join server thread").expect("server exits cleanly");
    }

    put_ns.sort_unstable();
    get_ns.sort_unstable();
    E2eMode {
        label,
        transport,
        clock: clock_label,
        latency_scale,
        put_wall_ops_per_sec: ops as f64 / put_wall,
        get_wall_ops_per_sec: ops as f64 / get_wall,
        put_p50_ms: percentile_ms(&put_ns, 0.50),
        put_p99_ms: percentile_ms(&put_ns, 0.99),
        get_p50_ms: percentile_ms(&get_ns, 0.50),
        get_p99_ms: percentile_ms(&get_ns, 0.99),
        put_phase_p50_ms: std::array::from_fn(|i| {
            snapshot_p50_ms(&snap, &format!("client.put.phase{}_ns", i + 1))
        }),
        get_phase_p50_ms: std::array::from_fn(|i| {
            snapshot_p50_ms(&snap, &format!("client.get.phase{}_ns", i + 1))
        }),
        encode_p50_ms: snapshot_p50_ms(&snap, "client.encode_ns"),
        decode_p50_ms: snapshot_p50_ms(&snap, "client.decode_ns"),
    }
}

fn run_e2e(opts: &Options) -> String {
    let (ops, value_bytes) = if opts.smoke { (10, 10 * 1024) } else { (200, 100 * 1024) };
    // The first two modes pin the GF kernel on the virtual-clock deployment — the toggle
    // isolates the GF(256) contribution (the structural codec changes are always on; they
    // replaced the old code). The last two run the SIMD kernel under a real clock over
    // each transport, so their delta is the TCP wire path itself. All four run with
    // metrics on, so every mode gets a per-phase latency breakdown.
    let obs = ObsConfig::Metrics;
    let modes = [
        run_e2e_mode("scalar_kernel", Kernel::Scalar, E2eSetup::InprocVirtual, ops, value_bytes, obs),
        run_e2e_mode("simd_kernel", Kernel::Simd, E2eSetup::InprocVirtual, ops, value_bytes, obs),
        run_e2e_mode("inproc_realtime", Kernel::Simd, E2eSetup::InprocReal, ops, value_bytes, obs),
        run_e2e_mode("tcp_loopback", Kernel::Simd, E2eSetup::TcpLoopback, ops, value_bytes, obs),
    ];
    // Telemetry overhead check: the same virtual-clock SIMD deployment with obs fully
    // off. Virtual-clock p50s reflect modeled RTTs, so any drift here means telemetry
    // changed the protocol's behaviour (extra messages, different quorums), not just
    // burned CPU; CI asserts the fraction stays under 3%.
    let obs_off =
        run_e2e_mode("obs_off_baseline", Kernel::Simd, E2eSetup::InprocVirtual, ops, value_bytes, ObsConfig::Off);
    let overhead_frac = (modes[1].put_p50_ms - obs_off.put_p50_ms) / obs_off.put_p50_ms;
    eprintln!(
        "obs overhead on virtual-clock PUT p50: off {:.3} ms, on {:.3} ms ({:+.2}%)",
        obs_off.put_p50_ms,
        modes[1].put_p50_ms,
        overhead_frac * 100.0,
    );
    gf256::set_kernel(Kernel::Simd);
    for m in &modes {
        eprintln!(
            "e2e [{}] ({} / {} clock): PUT {:.0} ops/s (p50 {:.1} ms, p99 {:.1} ms), GET {:.0} ops/s (p50 {:.1} ms, p99 {:.1} ms)",
            m.label,
            m.transport,
            m.clock,
            m.put_wall_ops_per_sec,
            m.put_p50_ms,
            m.put_p99_ms,
            m.get_wall_ops_per_sec,
            m.get_p50_ms,
            m.get_p99_ms,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e2e\",");
    let _ = writeln!(json, "  \"created_unix\": {},", unix_now());
    let _ = writeln!(json, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(json, "  \"deployment\": \"gcp9, CAS(5,3), client at Tokyo\",");
    let _ = writeln!(json, "  \"ops_per_mode\": {ops},");
    let _ = writeln!(json, "  \"value_bytes\": {value_bytes},");
    json.push_str("  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"label\": \"{}\", \"transport\": \"{}\", \"clock\": \"{}\", \
             \"latency_scale\": {}, \
             \"put_wall_ops_per_sec\": {}, \"get_wall_ops_per_sec\": {}, \
             \"put_p50_ms\": {}, \"put_p99_ms\": {}, \
             \"get_p50_ms\": {}, \"get_p99_ms\": {}, \
             \"put_phase_p50_ms\": {}, \"get_phase_p50_ms\": {}, \
             \"encode_p50_ms\": {}, \"decode_p50_ms\": {}}}",
            m.label,
            m.transport,
            m.clock,
            fmt_f64(m.latency_scale),
            fmt_f64(m.put_wall_ops_per_sec),
            fmt_f64(m.get_wall_ops_per_sec),
            fmt_f64(m.put_p50_ms),
            fmt_f64(m.put_p99_ms),
            fmt_f64(m.get_p50_ms),
            fmt_f64(m.get_p99_ms),
            fmt_f64_array(&m.put_phase_p50_ms),
            fmt_f64_array(&m.get_phase_p50_ms),
            fmt_f64(m.encode_p50_ms),
            fmt_f64(m.decode_p50_ms),
        );
        json.push_str(if i + 1 < modes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"obs_overhead\": {{\"mode\": \"simd_kernel\", \"put_p50_off_ms\": {}, \
         \"put_p50_on_ms\": {}, \"overhead_frac\": {}}}",
        fmt_f64(obs_off.put_p50_ms),
        fmt_f64(modes[1].put_p50_ms),
        if overhead_frac.is_finite() {
            format!("{overhead_frac:.4}")
        } else {
            "null".to_string()
        },
    );
    json.push_str("}\n");
    json
}

fn main() {
    let opts = parse_args();
    std::fs::create_dir_all(&opts.out_dir).expect("create out dir");

    let erasure_json = run_erasure(&opts);
    let path = format!("{}/BENCH_erasure.json", opts.out_dir);
    std::fs::write(&path, &erasure_json).expect("write BENCH_erasure.json");
    eprintln!("wrote {path}");

    if !opts.erasure_only {
        let e2e_json = run_e2e(&opts);
        let path = format!("{}/BENCH_e2e.json", opts.out_dir);
        std::fs::write(&path, &e2e_json).expect("write BENCH_e2e.json");
        eprintln!("wrote {path}");
    }
}
