//! Machine-readable performance harness for the erasure hot path and the deployment.
//!
//! Unlike the Criterion-style microbenches (whose offline shim is one-pass and meant only
//! to keep the bench code compiling), this binary owns its timing loops and emits JSON that
//! CI and the repo history can diff:
//!
//! * `BENCH_erasure.json` — encode/decode throughput (MB/s) per `(n, k)` × value size, for
//!   the pre-optimization baseline (per-call codec construction + scalar GF kernels) and
//!   the current implementation (cached codec, single-allocation encode, SIMD kernels),
//!   with the speedup ratio per case.
//! * `BENCH_e2e.json` — end-to-end PUT/GET throughput and latency on an in-process
//!   virtual-time deployment. Wall-clock ops/sec reflects CPU cost per operation (nothing
//!   sleeps under the virtual clock); virtual-time p50/p99 reflect the modeled RTTs.
//!
//! Usage: `perfbench [--smoke] [--erasure-only] [--out-dir DIR]`.
//! `--smoke` shrinks sizes and iteration counts so CI can validate the schema in seconds.

use legostore_cloud::GcpLocation;
use legostore_core::{Clock, Cluster, ClusterOptions};
use legostore_erasure::gf256::{self, Kernel};
use legostore_erasure::{
    decode_value, decode_value_reference, encode_value, encode_value_reference, Shard,
};
use legostore_types::{Configuration, DcId, Key, Value};
use std::fmt::Write as _;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Target wall time per measured loop; iteration counts adapt to reach it.
const TARGET_MEASURE: Duration = Duration::from_millis(250);
const TARGET_MEASURE_SMOKE: Duration = Duration::from_millis(25);

struct Options {
    smoke: bool,
    erasure_only: bool,
    out_dir: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        erasure_only: false,
        out_dir: ".".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--erasure-only" => opts.erasure_only = true,
            "--out-dir" => {
                opts.out_dir = args.next().unwrap_or_else(|| {
                    eprintln!("--out-dir requires a value");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perfbench [--smoke] [--erasure-only] [--out-dir DIR]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Runs `op` in a timed loop sized to `target`, returning achieved MB/s for
/// `bytes_per_op` payload bytes per iteration.
fn measure_mbps(bytes_per_op: usize, target: Duration, mut op: impl FnMut()) -> f64 {
    // Warm up and estimate the per-op cost.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            op();
        }
        let elapsed = t.elapsed();
        if elapsed >= target / 4 || iters >= 1 << 24 {
            // Scale once to the target and take the final measurement.
            let scale = (target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(1.0, 64.0);
            let final_iters = ((iters as f64) * scale).ceil() as u64;
            let t = Instant::now();
            for _ in 0..final_iters {
                op();
            }
            let secs = t.elapsed().as_secs_f64().max(1e-9);
            return (bytes_per_op as f64 * final_iters as f64) / 1e6 / secs;
        }
        iters *= 4;
    }
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn kernel_name(k: Kernel) -> &'static str {
    match k {
        Kernel::Scalar => "scalar",
        Kernel::Split => "split",
        Kernel::Simd => "simd",
    }
}

struct ErasureCase {
    n: usize,
    k: usize,
    value_bytes: usize,
    encode_baseline_mbps: f64,
    encode_current_mbps: f64,
    decode_baseline_mbps: f64,
    decode_current_mbps: f64,
}

fn run_erasure(opts: &Options) -> String {
    let target = if opts.smoke {
        TARGET_MEASURE_SMOKE
    } else {
        TARGET_MEASURE
    };
    let codes: &[(usize, usize)] = if opts.smoke {
        &[(5, 3)]
    } else {
        &[(5, 3), (4, 2), (9, 6)]
    };
    let sizes: &[usize] = if opts.smoke {
        &[1024, 100 * 1024]
    } else {
        &[1024, 10 * 1024, 100 * 1024, 1024 * 1024]
    };
    let mut cases = Vec::new();
    for &(n, k) in codes {
        for &size in sizes {
            let value: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();
            // Decode from the last k shards (all parity when n >= 2k): forces the
            // sub-matrix inversion path, the decoder's worst case.
            let shards = encode_value(&value, n, k).expect("valid parameters");
            let parity_subset: Vec<Shard> = shards[n - k..].to_vec();

            gf256::set_kernel(Kernel::Scalar);
            let encode_baseline_mbps = measure_mbps(size, target, || {
                std::hint::black_box(encode_value_reference(&value, n, k).unwrap());
            });
            let decode_baseline_mbps = measure_mbps(size, target, || {
                std::hint::black_box(decode_value_reference(&parity_subset, n, k).unwrap());
            });

            gf256::set_kernel(Kernel::Simd);
            let encode_current_mbps = measure_mbps(size, target, || {
                std::hint::black_box(encode_value(&value, n, k).unwrap());
            });
            let decode_current_mbps = measure_mbps(size, target, || {
                std::hint::black_box(decode_value(&parity_subset, n, k).unwrap());
            });

            eprintln!(
                "erasure n={n} k={k} {size}B: encode {:.0} -> {:.0} MB/s ({:.1}x), decode {:.0} -> {:.0} MB/s ({:.1}x)",
                encode_baseline_mbps,
                encode_current_mbps,
                encode_current_mbps / encode_baseline_mbps,
                decode_baseline_mbps,
                decode_current_mbps,
                decode_current_mbps / decode_baseline_mbps,
            );
            cases.push(ErasureCase {
                n,
                k,
                value_bytes: size,
                encode_baseline_mbps,
                encode_current_mbps,
                decode_baseline_mbps,
                decode_current_mbps,
            });
        }
    }
    gf256::set_kernel(Kernel::Simd);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"erasure\",");
    let _ = writeln!(json, "  \"created_unix\": {},", unix_now());
    let _ = writeln!(json, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(
        json,
        "  \"baseline\": \"per-call codec + scalar log/exp kernels (pre-optimization)\","
    );
    let _ = writeln!(
        json,
        "  \"current\": \"cached codec + single-allocation encode + {} kernels\",",
        kernel_name(gf256::active_kernel())
    );
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"k\": {}, \"value_bytes\": {}, \
             \"encode_baseline_mbps\": {}, \"encode_current_mbps\": {}, \"encode_speedup\": {}, \
             \"decode_baseline_mbps\": {}, \"decode_current_mbps\": {}, \"decode_speedup\": {}}}",
            c.n,
            c.k,
            c.value_bytes,
            fmt_f64(c.encode_baseline_mbps),
            fmt_f64(c.encode_current_mbps),
            fmt_f64(c.encode_current_mbps / c.encode_baseline_mbps),
            fmt_f64(c.decode_baseline_mbps),
            fmt_f64(c.decode_current_mbps),
            fmt_f64(c.decode_current_mbps / c.decode_baseline_mbps),
        );
        json.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

struct E2eMode {
    label: &'static str,
    put_wall_ops_per_sec: f64,
    get_wall_ops_per_sec: f64,
    put_virtual_p50_ms: f64,
    put_virtual_p99_ms: f64,
    get_virtual_p50_ms: f64,
    get_virtual_p99_ms: f64,
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

/// Runs `ops` PUTs then `ops` GETs of a `value_bytes` value against a CAS(5, 3) key on a
/// fresh virtual-time deployment, with the GF kernel pinned to `kernel`.
fn run_e2e_mode(
    label: &'static str,
    kernel: Kernel,
    ops: usize,
    value_bytes: usize,
) -> E2eMode {
    gf256::set_kernel(kernel);
    let cluster = Cluster::gcp9(ClusterOptions {
        clock: Clock::virtual_time(),
        ..Default::default()
    });
    let near = GcpLocation::Tokyo.dc();
    let dcs: Vec<DcId> = cluster.model().nearest_dcs(near).into_iter().take(5).collect();
    let config = Configuration::cas_default(dcs, 3, 1);
    let mut client = cluster.client(near);
    let key = Key::from("perf");
    cluster.install_key(key.clone(), config, &Value::empty());
    let clock = cluster.options().clock.clone();
    let value = Value::filler(value_bytes);

    let mut put_ns: Vec<u64> = Vec::with_capacity(ops);
    let wall = Instant::now();
    for _ in 0..ops {
        let t0 = clock.now_ns();
        client.put(&key, value.clone()).expect("put");
        put_ns.push(clock.now_ns() - t0);
    }
    let put_wall = wall.elapsed().as_secs_f64().max(1e-9);

    let mut get_ns: Vec<u64> = Vec::with_capacity(ops);
    let wall = Instant::now();
    for _ in 0..ops {
        let t0 = clock.now_ns();
        let got = client.get(&key).expect("get");
        assert_eq!(got.len(), value_bytes);
        get_ns.push(clock.now_ns() - t0);
    }
    let get_wall = wall.elapsed().as_secs_f64().max(1e-9);
    cluster.shutdown();

    put_ns.sort_unstable();
    get_ns.sort_unstable();
    E2eMode {
        label,
        put_wall_ops_per_sec: ops as f64 / put_wall,
        get_wall_ops_per_sec: ops as f64 / get_wall,
        put_virtual_p50_ms: percentile_ms(&put_ns, 0.50),
        put_virtual_p99_ms: percentile_ms(&put_ns, 0.99),
        get_virtual_p50_ms: percentile_ms(&get_ns, 0.50),
        get_virtual_p99_ms: percentile_ms(&get_ns, 0.99),
    }
}

fn run_e2e(opts: &Options) -> String {
    let (ops, value_bytes) = if opts.smoke { (10, 10 * 1024) } else { (200, 100 * 1024) };
    // Baseline mode pins the scalar kernels; the structural changes (codec cache,
    // single-allocation encode, refcounted shard fan-out) are always on — they replaced
    // the old code — so the kernel toggle isolates the GF(256) contribution while the
    // absolute numbers document the full current hot path.
    let modes = [
        run_e2e_mode("scalar_kernel", Kernel::Scalar, ops, value_bytes),
        run_e2e_mode("simd_kernel", Kernel::Simd, ops, value_bytes),
    ];
    gf256::set_kernel(Kernel::Simd);
    for m in &modes {
        eprintln!(
            "e2e [{}]: PUT {:.0} ops/s (virtual p50 {:.1} ms, p99 {:.1} ms), GET {:.0} ops/s (p50 {:.1} ms, p99 {:.1} ms)",
            m.label,
            m.put_wall_ops_per_sec,
            m.put_virtual_p50_ms,
            m.put_virtual_p99_ms,
            m.get_wall_ops_per_sec,
            m.get_virtual_p50_ms,
            m.get_virtual_p99_ms,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"e2e\",");
    let _ = writeln!(json, "  \"created_unix\": {},", unix_now());
    let _ = writeln!(json, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(json, "  \"deployment\": \"gcp9 virtual-time, CAS(5,3), client at Tokyo\",");
    let _ = writeln!(json, "  \"ops_per_mode\": {ops},");
    let _ = writeln!(json, "  \"value_bytes\": {value_bytes},");
    json.push_str("  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"label\": \"{}\", \
             \"put_wall_ops_per_sec\": {}, \"get_wall_ops_per_sec\": {}, \
             \"put_virtual_p50_ms\": {}, \"put_virtual_p99_ms\": {}, \
             \"get_virtual_p50_ms\": {}, \"get_virtual_p99_ms\": {}}}",
            m.label,
            fmt_f64(m.put_wall_ops_per_sec),
            fmt_f64(m.get_wall_ops_per_sec),
            fmt_f64(m.put_virtual_p50_ms),
            fmt_f64(m.put_virtual_p99_ms),
            fmt_f64(m.get_virtual_p50_ms),
            fmt_f64(m.get_virtual_p99_ms),
        );
        json.push_str(if i + 1 < modes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let opts = parse_args();
    std::fs::create_dir_all(&opts.out_dir).expect("create out dir");

    let erasure_json = run_erasure(&opts);
    let path = format!("{}/BENCH_erasure.json", opts.out_dir);
    std::fs::write(&path, &erasure_json).expect("write BENCH_erasure.json");
    eprintln!("wrote {path}");

    if !opts.erasure_only {
        let e2e_json = run_e2e(&opts);
        let path = format!("{}/BENCH_e2e.json", opts.out_dir);
        std::fs::write(&path, &e2e_json).expect("write BENCH_e2e.json");
        eprintln!("wrote {path}");
    }
}
